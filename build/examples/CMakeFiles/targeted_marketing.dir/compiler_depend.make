# Empty compiler generated dependencies file for targeted_marketing.
# This may be replaced when dependencies are built.
