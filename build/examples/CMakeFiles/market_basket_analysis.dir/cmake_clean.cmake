file(REMOVE_RECURSE
  "CMakeFiles/market_basket_analysis.dir/market_basket_analysis.cc.o"
  "CMakeFiles/market_basket_analysis.dir/market_basket_analysis.cc.o.d"
  "market_basket_analysis"
  "market_basket_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_basket_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
