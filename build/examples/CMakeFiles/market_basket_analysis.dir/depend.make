# Empty dependencies file for market_basket_analysis.
# This may be replaced when dependencies are built.
