file(REMOVE_RECURSE
  "CMakeFiles/peer_recommendation.dir/peer_recommendation.cc.o"
  "CMakeFiles/peer_recommendation.dir/peer_recommendation.cc.o.d"
  "peer_recommendation"
  "peer_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
