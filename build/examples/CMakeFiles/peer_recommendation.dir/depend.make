# Empty dependencies file for peer_recommendation.
# This may be replaced when dependencies are built.
