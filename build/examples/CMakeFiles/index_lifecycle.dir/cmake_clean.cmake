file(REMOVE_RECURSE
  "CMakeFiles/index_lifecycle.dir/index_lifecycle.cc.o"
  "CMakeFiles/index_lifecycle.dir/index_lifecycle.cc.o.d"
  "index_lifecycle"
  "index_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
