file(REMOVE_RECURSE
  "CMakeFiles/multi_target_search.dir/multi_target_search.cc.o"
  "CMakeFiles/multi_target_search.dir/multi_target_search.cc.o.d"
  "multi_target_search"
  "multi_target_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_target_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
