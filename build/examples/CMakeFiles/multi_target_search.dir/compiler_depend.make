# Empty compiler generated dependencies file for multi_target_search.
# This may be replaced when dependencies are built.
