# Empty dependencies file for fig11_accuracy_txsize_matchratio.
# This may be replaced when dependencies are built.
