file(REMOVE_RECURSE
  "CMakeFiles/fig11_accuracy_txsize_matchratio.dir/fig11_accuracy_txsize_matchratio.cc.o"
  "CMakeFiles/fig11_accuracy_txsize_matchratio.dir/fig11_accuracy_txsize_matchratio.cc.o.d"
  "fig11_accuracy_txsize_matchratio"
  "fig11_accuracy_txsize_matchratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_accuracy_txsize_matchratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
