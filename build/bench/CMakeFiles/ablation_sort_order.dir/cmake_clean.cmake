file(REMOVE_RECURSE
  "CMakeFiles/ablation_sort_order.dir/ablation_sort_order.cc.o"
  "CMakeFiles/ablation_sort_order.dir/ablation_sort_order.cc.o.d"
  "ablation_sort_order"
  "ablation_sort_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sort_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
