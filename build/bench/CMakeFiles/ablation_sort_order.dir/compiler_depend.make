# Empty compiler generated dependencies file for ablation_sort_order.
# This may be replaced when dependencies are built.
