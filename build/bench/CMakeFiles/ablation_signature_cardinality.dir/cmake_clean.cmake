file(REMOVE_RECURSE
  "CMakeFiles/ablation_signature_cardinality.dir/ablation_signature_cardinality.cc.o"
  "CMakeFiles/ablation_signature_cardinality.dir/ablation_signature_cardinality.cc.o.d"
  "ablation_signature_cardinality"
  "ablation_signature_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_signature_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
