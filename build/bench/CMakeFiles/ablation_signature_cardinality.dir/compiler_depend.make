# Empty compiler generated dependencies file for ablation_signature_cardinality.
# This may be replaced when dependencies are built.
