# Empty dependencies file for comparison_methods.
# This may be replaced when dependencies are built.
