file(REMOVE_RECURSE
  "CMakeFiles/comparison_methods.dir/comparison_methods.cc.o"
  "CMakeFiles/comparison_methods.dir/comparison_methods.cc.o.d"
  "comparison_methods"
  "comparison_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparison_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
