file(REMOVE_RECURSE
  "CMakeFiles/fig13_accuracy_termination_cosine.dir/fig13_accuracy_termination_cosine.cc.o"
  "CMakeFiles/fig13_accuracy_termination_cosine.dir/fig13_accuracy_termination_cosine.cc.o.d"
  "fig13_accuracy_termination_cosine"
  "fig13_accuracy_termination_cosine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_accuracy_termination_cosine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
