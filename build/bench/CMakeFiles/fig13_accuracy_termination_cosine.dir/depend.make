# Empty dependencies file for fig13_accuracy_termination_cosine.
# This may be replaced when dependencies are built.
