file(REMOVE_RECURSE
  "CMakeFiles/mbi_bench_common.dir/common/harness.cc.o"
  "CMakeFiles/mbi_bench_common.dir/common/harness.cc.o.d"
  "libmbi_bench_common.a"
  "libmbi_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbi_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
