# Empty compiler generated dependencies file for mbi_bench_common.
# This may be replaced when dependencies are built.
