file(REMOVE_RECURSE
  "libmbi_bench_common.a"
)
