# Empty dependencies file for fig12_pruning_dbsize_cosine.
# This may be replaced when dependencies are built.
