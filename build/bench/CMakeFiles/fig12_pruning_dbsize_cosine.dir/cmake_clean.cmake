file(REMOVE_RECURSE
  "CMakeFiles/fig12_pruning_dbsize_cosine.dir/fig12_pruning_dbsize_cosine.cc.o"
  "CMakeFiles/fig12_pruning_dbsize_cosine.dir/fig12_pruning_dbsize_cosine.cc.o.d"
  "fig12_pruning_dbsize_cosine"
  "fig12_pruning_dbsize_cosine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_pruning_dbsize_cosine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
