file(REMOVE_RECURSE
  "CMakeFiles/table01_inverted_index_access.dir/table01_inverted_index_access.cc.o"
  "CMakeFiles/table01_inverted_index_access.dir/table01_inverted_index_access.cc.o.d"
  "table01_inverted_index_access"
  "table01_inverted_index_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_inverted_index_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
