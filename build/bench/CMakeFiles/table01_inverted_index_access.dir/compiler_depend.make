# Empty compiler generated dependencies file for table01_inverted_index_access.
# This may be replaced when dependencies are built.
