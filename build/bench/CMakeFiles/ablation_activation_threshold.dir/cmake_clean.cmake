file(REMOVE_RECURSE
  "CMakeFiles/ablation_activation_threshold.dir/ablation_activation_threshold.cc.o"
  "CMakeFiles/ablation_activation_threshold.dir/ablation_activation_threshold.cc.o.d"
  "ablation_activation_threshold"
  "ablation_activation_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_activation_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
