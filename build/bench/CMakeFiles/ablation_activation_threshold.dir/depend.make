# Empty dependencies file for ablation_activation_threshold.
# This may be replaced when dependencies are built.
