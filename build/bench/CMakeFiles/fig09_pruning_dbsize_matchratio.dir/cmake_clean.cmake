file(REMOVE_RECURSE
  "CMakeFiles/fig09_pruning_dbsize_matchratio.dir/fig09_pruning_dbsize_matchratio.cc.o"
  "CMakeFiles/fig09_pruning_dbsize_matchratio.dir/fig09_pruning_dbsize_matchratio.cc.o.d"
  "fig09_pruning_dbsize_matchratio"
  "fig09_pruning_dbsize_matchratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_pruning_dbsize_matchratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
