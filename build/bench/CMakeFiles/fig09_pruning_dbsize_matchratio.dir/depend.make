# Empty dependencies file for fig09_pruning_dbsize_matchratio.
# This may be replaced when dependencies are built.
