file(REMOVE_RECURSE
  "CMakeFiles/fig10_accuracy_termination_matchratio.dir/fig10_accuracy_termination_matchratio.cc.o"
  "CMakeFiles/fig10_accuracy_termination_matchratio.dir/fig10_accuracy_termination_matchratio.cc.o.d"
  "fig10_accuracy_termination_matchratio"
  "fig10_accuracy_termination_matchratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_accuracy_termination_matchratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
