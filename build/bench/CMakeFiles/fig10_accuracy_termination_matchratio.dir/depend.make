# Empty dependencies file for fig10_accuracy_termination_matchratio.
# This may be replaced when dependencies are built.
