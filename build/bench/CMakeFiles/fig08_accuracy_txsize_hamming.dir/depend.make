# Empty dependencies file for fig08_accuracy_txsize_hamming.
# This may be replaced when dependencies are built.
