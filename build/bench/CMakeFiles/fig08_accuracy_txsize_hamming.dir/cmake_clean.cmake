file(REMOVE_RECURSE
  "CMakeFiles/fig08_accuracy_txsize_hamming.dir/fig08_accuracy_txsize_hamming.cc.o"
  "CMakeFiles/fig08_accuracy_txsize_hamming.dir/fig08_accuracy_txsize_hamming.cc.o.d"
  "fig08_accuracy_txsize_hamming"
  "fig08_accuracy_txsize_hamming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_accuracy_txsize_hamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
