file(REMOVE_RECURSE
  "CMakeFiles/motivation_rtree_curse.dir/motivation_rtree_curse.cc.o"
  "CMakeFiles/motivation_rtree_curse.dir/motivation_rtree_curse.cc.o.d"
  "motivation_rtree_curse"
  "motivation_rtree_curse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_rtree_curse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
