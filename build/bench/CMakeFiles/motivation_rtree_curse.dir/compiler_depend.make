# Empty compiler generated dependencies file for motivation_rtree_curse.
# This may be replaced when dependencies are built.
