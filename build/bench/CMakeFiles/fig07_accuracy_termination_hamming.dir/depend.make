# Empty dependencies file for fig07_accuracy_termination_hamming.
# This may be replaced when dependencies are built.
