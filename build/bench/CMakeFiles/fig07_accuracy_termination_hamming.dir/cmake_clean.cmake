file(REMOVE_RECURSE
  "CMakeFiles/fig07_accuracy_termination_hamming.dir/fig07_accuracy_termination_hamming.cc.o"
  "CMakeFiles/fig07_accuracy_termination_hamming.dir/fig07_accuracy_termination_hamming.cc.o.d"
  "fig07_accuracy_termination_hamming"
  "fig07_accuracy_termination_hamming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_accuracy_termination_hamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
