# Empty compiler generated dependencies file for comparison_minhash.
# This may be replaced when dependencies are built.
