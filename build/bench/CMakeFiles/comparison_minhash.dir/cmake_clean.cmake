file(REMOVE_RECURSE
  "CMakeFiles/comparison_minhash.dir/comparison_minhash.cc.o"
  "CMakeFiles/comparison_minhash.dir/comparison_minhash.cc.o.d"
  "comparison_minhash"
  "comparison_minhash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparison_minhash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
