file(REMOVE_RECURSE
  "CMakeFiles/fig06_pruning_dbsize_hamming.dir/fig06_pruning_dbsize_hamming.cc.o"
  "CMakeFiles/fig06_pruning_dbsize_hamming.dir/fig06_pruning_dbsize_hamming.cc.o.d"
  "fig06_pruning_dbsize_hamming"
  "fig06_pruning_dbsize_hamming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_pruning_dbsize_hamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
