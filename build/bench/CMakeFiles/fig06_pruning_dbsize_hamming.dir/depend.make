# Empty dependencies file for fig06_pruning_dbsize_hamming.
# This may be replaced when dependencies are built.
