# Empty dependencies file for fig14_accuracy_txsize_cosine.
# This may be replaced when dependencies are built.
