file(REMOVE_RECURSE
  "CMakeFiles/fig14_accuracy_txsize_cosine.dir/fig14_accuracy_txsize_cosine.cc.o"
  "CMakeFiles/fig14_accuracy_txsize_cosine.dir/fig14_accuracy_txsize_cosine.cc.o.d"
  "fig14_accuracy_txsize_cosine"
  "fig14_accuracy_txsize_cosine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_accuracy_txsize_cosine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
