
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_partitioner.cc" "bench/CMakeFiles/ablation_partitioner.dir/ablation_partitioner.cc.o" "gcc" "bench/CMakeFiles/ablation_partitioner.dir/ablation_partitioner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mbi_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mbi_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mbi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/mbi_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/mbi_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mbi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/mbi_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mbi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
