
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/bench_command.cc" "tools/CMakeFiles/mbi.dir/bench_command.cc.o" "gcc" "tools/CMakeFiles/mbi.dir/bench_command.cc.o.d"
  "/root/repo/tools/build_command.cc" "tools/CMakeFiles/mbi.dir/build_command.cc.o" "gcc" "tools/CMakeFiles/mbi.dir/build_command.cc.o.d"
  "/root/repo/tools/generate_command.cc" "tools/CMakeFiles/mbi.dir/generate_command.cc.o" "gcc" "tools/CMakeFiles/mbi.dir/generate_command.cc.o.d"
  "/root/repo/tools/mbi_main.cc" "tools/CMakeFiles/mbi.dir/mbi_main.cc.o" "gcc" "tools/CMakeFiles/mbi.dir/mbi_main.cc.o.d"
  "/root/repo/tools/mine_command.cc" "tools/CMakeFiles/mbi.dir/mine_command.cc.o" "gcc" "tools/CMakeFiles/mbi.dir/mine_command.cc.o.d"
  "/root/repo/tools/query_command.cc" "tools/CMakeFiles/mbi.dir/query_command.cc.o" "gcc" "tools/CMakeFiles/mbi.dir/query_command.cc.o.d"
  "/root/repo/tools/stats_command.cc" "tools/CMakeFiles/mbi.dir/stats_command.cc.o" "gcc" "tools/CMakeFiles/mbi.dir/stats_command.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/mbi_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mbi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/mbi_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/mbi_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mbi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/mbi_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mbi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
