file(REMOVE_RECURSE
  "CMakeFiles/mbi.dir/bench_command.cc.o"
  "CMakeFiles/mbi.dir/bench_command.cc.o.d"
  "CMakeFiles/mbi.dir/build_command.cc.o"
  "CMakeFiles/mbi.dir/build_command.cc.o.d"
  "CMakeFiles/mbi.dir/generate_command.cc.o"
  "CMakeFiles/mbi.dir/generate_command.cc.o.d"
  "CMakeFiles/mbi.dir/mbi_main.cc.o"
  "CMakeFiles/mbi.dir/mbi_main.cc.o.d"
  "CMakeFiles/mbi.dir/mine_command.cc.o"
  "CMakeFiles/mbi.dir/mine_command.cc.o.d"
  "CMakeFiles/mbi.dir/query_command.cc.o"
  "CMakeFiles/mbi.dir/query_command.cc.o.d"
  "CMakeFiles/mbi.dir/stats_command.cc.o"
  "CMakeFiles/mbi.dir/stats_command.cc.o.d"
  "mbi"
  "mbi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
