file(REMOVE_RECURSE
  "CMakeFiles/dynamic_insert_test.dir/dynamic_insert_test.cc.o"
  "CMakeFiles/dynamic_insert_test.dir/dynamic_insert_test.cc.o.d"
  "dynamic_insert_test"
  "dynamic_insert_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_insert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
