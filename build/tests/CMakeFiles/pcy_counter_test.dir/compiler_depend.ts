# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pcy_counter_test.
