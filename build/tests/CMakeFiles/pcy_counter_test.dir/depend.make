# Empty dependencies file for pcy_counter_test.
# This may be replaced when dependencies are built.
