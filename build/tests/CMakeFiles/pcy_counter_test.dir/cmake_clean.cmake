file(REMOVE_RECURSE
  "CMakeFiles/pcy_counter_test.dir/pcy_counter_test.cc.o"
  "CMakeFiles/pcy_counter_test.dir/pcy_counter_test.cc.o.d"
  "pcy_counter_test"
  "pcy_counter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcy_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
