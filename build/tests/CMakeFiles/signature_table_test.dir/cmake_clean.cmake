file(REMOVE_RECURSE
  "CMakeFiles/signature_table_test.dir/signature_table_test.cc.o"
  "CMakeFiles/signature_table_test.dir/signature_table_test.cc.o.d"
  "signature_table_test"
  "signature_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signature_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
