# Empty compiler generated dependencies file for signature_table_test.
# This may be replaced when dependencies are built.
