file(REMOVE_RECURSE
  "CMakeFiles/bound_tightness_test.dir/bound_tightness_test.cc.o"
  "CMakeFiles/bound_tightness_test.dir/bound_tightness_test.cc.o.d"
  "bound_tightness_test"
  "bound_tightness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bound_tightness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
