# Empty compiler generated dependencies file for bound_tightness_test.
# This may be replaced when dependencies are built.
