file(REMOVE_RECURSE
  "CMakeFiles/compressed_postings_test.dir/compressed_postings_test.cc.o"
  "CMakeFiles/compressed_postings_test.dir/compressed_postings_test.cc.o.d"
  "compressed_postings_test"
  "compressed_postings_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_postings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
