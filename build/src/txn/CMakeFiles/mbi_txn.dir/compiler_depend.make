# Empty compiler generated dependencies file for mbi_txn.
# This may be replaced when dependencies are built.
