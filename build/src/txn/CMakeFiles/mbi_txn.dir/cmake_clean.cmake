file(REMOVE_RECURSE
  "CMakeFiles/mbi_txn.dir/database.cc.o"
  "CMakeFiles/mbi_txn.dir/database.cc.o.d"
  "CMakeFiles/mbi_txn.dir/database_io.cc.o"
  "CMakeFiles/mbi_txn.dir/database_io.cc.o.d"
  "CMakeFiles/mbi_txn.dir/transaction.cc.o"
  "CMakeFiles/mbi_txn.dir/transaction.cc.o.d"
  "libmbi_txn.a"
  "libmbi_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbi_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
