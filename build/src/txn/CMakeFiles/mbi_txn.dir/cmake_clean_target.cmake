file(REMOVE_RECURSE
  "libmbi_txn.a"
)
