
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch_query.cc" "src/core/CMakeFiles/mbi_core.dir/batch_query.cc.o" "gcc" "src/core/CMakeFiles/mbi_core.dir/batch_query.cc.o.d"
  "/root/repo/src/core/bounds.cc" "src/core/CMakeFiles/mbi_core.dir/bounds.cc.o" "gcc" "src/core/CMakeFiles/mbi_core.dir/bounds.cc.o.d"
  "/root/repo/src/core/branch_and_bound.cc" "src/core/CMakeFiles/mbi_core.dir/branch_and_bound.cc.o" "gcc" "src/core/CMakeFiles/mbi_core.dir/branch_and_bound.cc.o.d"
  "/root/repo/src/core/clustering.cc" "src/core/CMakeFiles/mbi_core.dir/clustering.cc.o" "gcc" "src/core/CMakeFiles/mbi_core.dir/clustering.cc.o.d"
  "/root/repo/src/core/index_builder.cc" "src/core/CMakeFiles/mbi_core.dir/index_builder.cc.o" "gcc" "src/core/CMakeFiles/mbi_core.dir/index_builder.cc.o.d"
  "/root/repo/src/core/partition_io.cc" "src/core/CMakeFiles/mbi_core.dir/partition_io.cc.o" "gcc" "src/core/CMakeFiles/mbi_core.dir/partition_io.cc.o.d"
  "/root/repo/src/core/signature_partition.cc" "src/core/CMakeFiles/mbi_core.dir/signature_partition.cc.o" "gcc" "src/core/CMakeFiles/mbi_core.dir/signature_partition.cc.o.d"
  "/root/repo/src/core/signature_table.cc" "src/core/CMakeFiles/mbi_core.dir/signature_table.cc.o" "gcc" "src/core/CMakeFiles/mbi_core.dir/signature_table.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/mbi_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/mbi_core.dir/similarity.cc.o.d"
  "/root/repo/src/core/supercoordinate.cc" "src/core/CMakeFiles/mbi_core.dir/supercoordinate.cc.o" "gcc" "src/core/CMakeFiles/mbi_core.dir/supercoordinate.cc.o.d"
  "/root/repo/src/core/table_io.cc" "src/core/CMakeFiles/mbi_core.dir/table_io.cc.o" "gcc" "src/core/CMakeFiles/mbi_core.dir/table_io.cc.o.d"
  "/root/repo/src/core/tuner.cc" "src/core/CMakeFiles/mbi_core.dir/tuner.cc.o" "gcc" "src/core/CMakeFiles/mbi_core.dir/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mining/CMakeFiles/mbi_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mbi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/mbi_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mbi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
