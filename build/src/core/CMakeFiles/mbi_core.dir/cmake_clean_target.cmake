file(REMOVE_RECURSE
  "libmbi_core.a"
)
