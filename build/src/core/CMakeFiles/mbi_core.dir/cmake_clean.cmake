file(REMOVE_RECURSE
  "CMakeFiles/mbi_core.dir/batch_query.cc.o"
  "CMakeFiles/mbi_core.dir/batch_query.cc.o.d"
  "CMakeFiles/mbi_core.dir/bounds.cc.o"
  "CMakeFiles/mbi_core.dir/bounds.cc.o.d"
  "CMakeFiles/mbi_core.dir/branch_and_bound.cc.o"
  "CMakeFiles/mbi_core.dir/branch_and_bound.cc.o.d"
  "CMakeFiles/mbi_core.dir/clustering.cc.o"
  "CMakeFiles/mbi_core.dir/clustering.cc.o.d"
  "CMakeFiles/mbi_core.dir/index_builder.cc.o"
  "CMakeFiles/mbi_core.dir/index_builder.cc.o.d"
  "CMakeFiles/mbi_core.dir/partition_io.cc.o"
  "CMakeFiles/mbi_core.dir/partition_io.cc.o.d"
  "CMakeFiles/mbi_core.dir/signature_partition.cc.o"
  "CMakeFiles/mbi_core.dir/signature_partition.cc.o.d"
  "CMakeFiles/mbi_core.dir/signature_table.cc.o"
  "CMakeFiles/mbi_core.dir/signature_table.cc.o.d"
  "CMakeFiles/mbi_core.dir/similarity.cc.o"
  "CMakeFiles/mbi_core.dir/similarity.cc.o.d"
  "CMakeFiles/mbi_core.dir/supercoordinate.cc.o"
  "CMakeFiles/mbi_core.dir/supercoordinate.cc.o.d"
  "CMakeFiles/mbi_core.dir/table_io.cc.o"
  "CMakeFiles/mbi_core.dir/table_io.cc.o.d"
  "CMakeFiles/mbi_core.dir/tuner.cc.o"
  "CMakeFiles/mbi_core.dir/tuner.cc.o.d"
  "libmbi_core.a"
  "libmbi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
