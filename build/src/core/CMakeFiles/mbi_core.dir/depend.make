# Empty dependencies file for mbi_core.
# This may be replaced when dependencies are built.
