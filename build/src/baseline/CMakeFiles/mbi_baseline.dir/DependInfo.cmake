
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/compressed_postings.cc" "src/baseline/CMakeFiles/mbi_baseline.dir/compressed_postings.cc.o" "gcc" "src/baseline/CMakeFiles/mbi_baseline.dir/compressed_postings.cc.o.d"
  "/root/repo/src/baseline/inverted_index.cc" "src/baseline/CMakeFiles/mbi_baseline.dir/inverted_index.cc.o" "gcc" "src/baseline/CMakeFiles/mbi_baseline.dir/inverted_index.cc.o.d"
  "/root/repo/src/baseline/minhash.cc" "src/baseline/CMakeFiles/mbi_baseline.dir/minhash.cc.o" "gcc" "src/baseline/CMakeFiles/mbi_baseline.dir/minhash.cc.o.d"
  "/root/repo/src/baseline/rtree.cc" "src/baseline/CMakeFiles/mbi_baseline.dir/rtree.cc.o" "gcc" "src/baseline/CMakeFiles/mbi_baseline.dir/rtree.cc.o.d"
  "/root/repo/src/baseline/sequential_scan.cc" "src/baseline/CMakeFiles/mbi_baseline.dir/sequential_scan.cc.o" "gcc" "src/baseline/CMakeFiles/mbi_baseline.dir/sequential_scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mbi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mbi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/mbi_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mbi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/mbi_mining.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
