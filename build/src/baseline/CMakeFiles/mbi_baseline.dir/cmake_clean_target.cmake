file(REMOVE_RECURSE
  "libmbi_baseline.a"
)
