# Empty dependencies file for mbi_baseline.
# This may be replaced when dependencies are built.
