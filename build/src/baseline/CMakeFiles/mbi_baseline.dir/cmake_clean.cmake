file(REMOVE_RECURSE
  "CMakeFiles/mbi_baseline.dir/compressed_postings.cc.o"
  "CMakeFiles/mbi_baseline.dir/compressed_postings.cc.o.d"
  "CMakeFiles/mbi_baseline.dir/inverted_index.cc.o"
  "CMakeFiles/mbi_baseline.dir/inverted_index.cc.o.d"
  "CMakeFiles/mbi_baseline.dir/minhash.cc.o"
  "CMakeFiles/mbi_baseline.dir/minhash.cc.o.d"
  "CMakeFiles/mbi_baseline.dir/rtree.cc.o"
  "CMakeFiles/mbi_baseline.dir/rtree.cc.o.d"
  "CMakeFiles/mbi_baseline.dir/sequential_scan.cc.o"
  "CMakeFiles/mbi_baseline.dir/sequential_scan.cc.o.d"
  "libmbi_baseline.a"
  "libmbi_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbi_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
