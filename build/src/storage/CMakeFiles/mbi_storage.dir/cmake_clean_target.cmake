file(REMOVE_RECURSE
  "libmbi_storage.a"
)
