file(REMOVE_RECURSE
  "CMakeFiles/mbi_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/mbi_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/mbi_storage.dir/page_store.cc.o"
  "CMakeFiles/mbi_storage.dir/page_store.cc.o.d"
  "CMakeFiles/mbi_storage.dir/transaction_store.cc.o"
  "CMakeFiles/mbi_storage.dir/transaction_store.cc.o.d"
  "libmbi_storage.a"
  "libmbi_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbi_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
