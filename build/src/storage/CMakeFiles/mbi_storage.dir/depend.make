# Empty dependencies file for mbi_storage.
# This may be replaced when dependencies are built.
