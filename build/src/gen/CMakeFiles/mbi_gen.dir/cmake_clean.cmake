file(REMOVE_RECURSE
  "CMakeFiles/mbi_gen.dir/quest_generator.cc.o"
  "CMakeFiles/mbi_gen.dir/quest_generator.cc.o.d"
  "libmbi_gen.a"
  "libmbi_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbi_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
