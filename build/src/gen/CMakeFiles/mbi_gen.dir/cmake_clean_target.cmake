file(REMOVE_RECURSE
  "libmbi_gen.a"
)
