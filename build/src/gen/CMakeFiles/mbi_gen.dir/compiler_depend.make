# Empty compiler generated dependencies file for mbi_gen.
# This may be replaced when dependencies are built.
