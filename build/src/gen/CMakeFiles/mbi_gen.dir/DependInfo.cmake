
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/quest_generator.cc" "src/gen/CMakeFiles/mbi_gen.dir/quest_generator.cc.o" "gcc" "src/gen/CMakeFiles/mbi_gen.dir/quest_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/mbi_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mbi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
