# Empty dependencies file for mbi_mining.
# This may be replaced when dependencies are built.
