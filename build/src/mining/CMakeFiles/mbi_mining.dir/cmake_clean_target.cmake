file(REMOVE_RECURSE
  "libmbi_mining.a"
)
