
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mining/apriori.cc" "src/mining/CMakeFiles/mbi_mining.dir/apriori.cc.o" "gcc" "src/mining/CMakeFiles/mbi_mining.dir/apriori.cc.o.d"
  "/root/repo/src/mining/pcy_counter.cc" "src/mining/CMakeFiles/mbi_mining.dir/pcy_counter.cc.o" "gcc" "src/mining/CMakeFiles/mbi_mining.dir/pcy_counter.cc.o.d"
  "/root/repo/src/mining/support_counter.cc" "src/mining/CMakeFiles/mbi_mining.dir/support_counter.cc.o" "gcc" "src/mining/CMakeFiles/mbi_mining.dir/support_counter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/mbi_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mbi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
