file(REMOVE_RECURSE
  "CMakeFiles/mbi_mining.dir/apriori.cc.o"
  "CMakeFiles/mbi_mining.dir/apriori.cc.o.d"
  "CMakeFiles/mbi_mining.dir/pcy_counter.cc.o"
  "CMakeFiles/mbi_mining.dir/pcy_counter.cc.o.d"
  "CMakeFiles/mbi_mining.dir/support_counter.cc.o"
  "CMakeFiles/mbi_mining.dir/support_counter.cc.o.d"
  "libmbi_mining.a"
  "libmbi_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbi_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
