# Empty compiler generated dependencies file for mbi_util.
# This may be replaced when dependencies are built.
