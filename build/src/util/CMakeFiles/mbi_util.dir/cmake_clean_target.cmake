file(REMOVE_RECURSE
  "libmbi_util.a"
)
