file(REMOVE_RECURSE
  "CMakeFiles/mbi_util.dir/alias_sampler.cc.o"
  "CMakeFiles/mbi_util.dir/alias_sampler.cc.o.d"
  "CMakeFiles/mbi_util.dir/flags.cc.o"
  "CMakeFiles/mbi_util.dir/flags.cc.o.d"
  "CMakeFiles/mbi_util.dir/histogram.cc.o"
  "CMakeFiles/mbi_util.dir/histogram.cc.o.d"
  "CMakeFiles/mbi_util.dir/rng.cc.o"
  "CMakeFiles/mbi_util.dir/rng.cc.o.d"
  "CMakeFiles/mbi_util.dir/table_printer.cc.o"
  "CMakeFiles/mbi_util.dir/table_printer.cc.o.d"
  "CMakeFiles/mbi_util.dir/thread_pool.cc.o"
  "CMakeFiles/mbi_util.dir/thread_pool.cc.o.d"
  "libmbi_util.a"
  "libmbi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
