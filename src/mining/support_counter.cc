#include "mining/support_counter.h"

#include "util/macros.h"

namespace mbi {
namespace {

// Triangular pair storage is used while it stays within ~64 MiB of counters.
constexpr uint64_t kDensePairBudget = 16ULL * 1024 * 1024;

uint64_t SparseKey(ItemId a, ItemId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

SupportCounter::SupportCounter(const TransactionDatabase& database)
    : universe_size_(database.universe_size()),
      num_transactions_(database.size()),
      item_counts_(database.universe_size(), 0) {
  const uint64_t pair_slots =
      static_cast<uint64_t>(universe_size_) * (universe_size_ - 1) / 2;
  use_dense_pairs_ = pair_slots <= kDensePairBudget;
  if (use_dense_pairs_) dense_pair_counts_.assign(pair_slots, 0);

  for (const auto& transaction : database.transactions()) {
    const auto& items = transaction.items();
    for (size_t i = 0; i < items.size(); ++i) {
      ++item_counts_[items[i]];
      for (size_t j = i + 1; j < items.size(); ++j) {
        if (use_dense_pairs_) {
          ++dense_pair_counts_[TriangularIndex(items[i], items[j])];
        } else {
          ++sparse_pair_counts_[SparseKey(items[i], items[j])];
        }
      }
    }
  }
}

size_t SupportCounter::TriangularIndex(ItemId a, ItemId b) const {
  // Requires a < b. Row a starts after sum_{r<a} (n-1-r) slots, which equals
  // a*(n-1) - a*(a-1)/2.
  uint64_t row_start = static_cast<uint64_t>(a) * (universe_size_ - 1) -
                       static_cast<uint64_t>(a) * (a - 1) / 2;
  return static_cast<size_t>(row_start + (b - a - 1));
}

uint64_t SupportCounter::ItemCount(ItemId item) const {
  MBI_CHECK(item < universe_size_);
  return item_counts_[item];
}

double SupportCounter::ItemSupport(ItemId item) const {
  if (num_transactions_ == 0) return 0.0;
  return static_cast<double>(ItemCount(item)) /
         static_cast<double>(num_transactions_);
}

uint64_t SupportCounter::PairCount(ItemId a, ItemId b) const {
  MBI_CHECK(a < universe_size_ && b < universe_size_);
  MBI_CHECK(a != b);
  if (a > b) std::swap(a, b);
  if (use_dense_pairs_) return dense_pair_counts_[TriangularIndex(a, b)];
  auto it = sparse_pair_counts_.find(SparseKey(a, b));
  return it == sparse_pair_counts_.end() ? 0 : it->second;
}

double SupportCounter::PairSupport(ItemId a, ItemId b) const {
  if (num_transactions_ == 0) return 0.0;
  return static_cast<double>(PairCount(a, b)) /
         static_cast<double>(num_transactions_);
}

std::vector<SupportProvider::PairEntry> SupportCounter::PairsWithMinCount(
    uint64_t min_count) const {
  std::vector<PairEntry> result;
  if (use_dense_pairs_) {
    for (ItemId a = 0; a + 1 < universe_size_; ++a) {
      for (ItemId b = a + 1; b < universe_size_; ++b) {
        uint64_t count = dense_pair_counts_[TriangularIndex(a, b)];
        if (count >= min_count && count > 0) result.push_back({a, b, count});
      }
    }
  } else {
    for (const auto& [key, count] : sparse_pair_counts_) {
      if (count >= min_count) {
        result.push_back({static_cast<ItemId>(key >> 32),
                          static_cast<ItemId>(key & 0xFFFFFFFFu), count});
      }
    }
  }
  return result;
}

}  // namespace mbi
