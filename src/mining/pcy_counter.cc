#include "mining/pcy_counter.h"

#include <algorithm>

#include "util/macros.h"

namespace mbi {
namespace {

/// Pair hash for the bucket filter (64-bit mix of the packed pair).
uint32_t BucketOf(ItemId a, ItemId b, uint32_t num_buckets) {
  uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
  key ^= key >> 33;
  key *= 0xFF51AFD7ED558CCDULL;
  key ^= key >> 33;
  key *= 0xC4CEB9FE1A85EC53ULL;
  key ^= key >> 33;
  return static_cast<uint32_t>(key % num_buckets);
}

}  // namespace

PcyCounter::PcyCounter(const TransactionDatabase& database,
                       const PcyConfig& config)
    : config_(config),
      universe_size_(database.universe_size()),
      num_transactions_(database.size()),
      item_counts_(database.universe_size(), 0) {
  MBI_CHECK(config_.min_pair_count >= 1);
  MBI_CHECK(config_.num_hash_buckets >= 1);

  // Pass 1: item counts + hashed pair-bucket counts.
  std::vector<uint32_t> bucket_counts(config_.num_hash_buckets, 0);
  for (const auto& transaction : database.transactions()) {
    const auto& items = transaction.items();
    for (size_t i = 0; i < items.size(); ++i) {
      ++item_counts_[items[i]];
      for (size_t j = i + 1; j < items.size(); ++j) {
        ++bucket_counts[BucketOf(items[i], items[j],
                                 config_.num_hash_buckets)];
      }
    }
  }

  // Collapse the bucket counters into a bitmap of surviving buckets.
  std::vector<bool> frequent_bucket(config_.num_hash_buckets);
  for (uint32_t b = 0; b < config_.num_hash_buckets; ++b) {
    frequent_bucket[b] = bucket_counts[b] >= config_.min_pair_count;
  }
  bucket_counts.clear();
  bucket_counts.shrink_to_fit();

  // Pass 2: exact counts for pairs in surviving buckets only. A pair's true
  // count never exceeds its bucket's count, so no qualifying pair is missed.
  for (const auto& transaction : database.transactions()) {
    const auto& items = transaction.items();
    for (size_t i = 0; i < items.size(); ++i) {
      // Cheap item-level prune: a pair cannot qualify if either item's total
      // count is below the pair threshold.
      if (item_counts_[items[i]] < config_.min_pair_count) continue;
      for (size_t j = i + 1; j < items.size(); ++j) {
        if (item_counts_[items[j]] < config_.min_pair_count) continue;
        if (!frequent_bucket[BucketOf(items[i], items[j],
                                      config_.num_hash_buckets)]) {
          continue;
        }
        ++exact_pair_counts_[PairKey(items[i], items[j])];
      }
    }
  }

  // Drop false positives (bucket survived via collisions, pair did not).
  for (auto it = exact_pair_counts_.begin(); it != exact_pair_counts_.end();) {
    if (it->second < config_.min_pair_count) {
      it = exact_pair_counts_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t PcyCounter::ItemCount(ItemId item) const {
  MBI_CHECK(item < universe_size_);
  return item_counts_[item];
}

double PcyCounter::ItemSupport(ItemId item) const {
  if (num_transactions_ == 0) return 0.0;
  return static_cast<double>(ItemCount(item)) /
         static_cast<double>(num_transactions_);
}

uint64_t PcyCounter::PairCount(ItemId a, ItemId b) const {
  MBI_CHECK(a < universe_size_ && b < universe_size_);
  MBI_CHECK(a != b);
  if (a > b) std::swap(a, b);
  auto it = exact_pair_counts_.find(PairKey(a, b));
  return it == exact_pair_counts_.end() ? 0 : it->second;
}

std::vector<SupportProvider::PairEntry> PcyCounter::PairsWithMinCount(
    uint64_t min_count) const {
  MBI_CHECK_MSG(min_count >= config_.min_pair_count,
                "PCY cannot report pairs below its construction threshold");
  std::vector<PairEntry> result;
  result.reserve(exact_pair_counts_.size());
  for (const auto& [key, count] : exact_pair_counts_) {
    if (count >= min_count) {
      result.push_back({static_cast<ItemId>(key >> 32),
                        static_cast<ItemId>(key & 0xFFFFFFFFu), count});
    }
  }
  return result;
}

uint64_t PcyCounter::MemoryBytes() const {
  return item_counts_.size() * sizeof(uint64_t) +
         exact_pair_counts_.size() *
             (sizeof(uint64_t) * 2 + sizeof(void*));  // Approximate node cost.
}

}  // namespace mbi
