#ifndef MBI_MINING_APRIORI_H_
#define MBI_MINING_APRIORI_H_

#include <cstdint>
#include <vector>

#include "txn/database.h"
#include "txn/transaction.h"

namespace mbi {

/// A frequent itemset together with its absolute support count.
struct FrequentItemset {
  std::vector<ItemId> items;  // Sorted ascending.
  uint64_t count = 0;

  /// Support as a fraction of `num_transactions`.
  double Support(uint64_t num_transactions) const {
    return num_transactions == 0
               ? 0.0
               : static_cast<double>(count) /
                     static_cast<double>(num_transactions);
  }
};

/// Configuration for the Apriori miner.
struct AprioriConfig {
  /// Minimum fractional support in (0, 1].
  double min_support = 0.01;
  /// Stop after this itemset size (0 = unbounded).
  uint32_t max_itemset_size = 0;
};

/// Classic levelwise Apriori frequent-itemset miner (Agrawal & Srikant,
/// VLDB 1994 — the paper's reference [3]).
///
/// This is the association-rule substrate the paper builds on; the signature
/// table itself only needs the 2-itemset level (see SupportCounter), but the
/// full miner is provided both as the natural companion tool for market
/// basket analysis and to validate the synthetic generator: the planted
/// "potentially large itemsets" must surface as frequent itemsets.
///
/// Returns all frequent itemsets of every size, sorted by (size, items).
std::vector<FrequentItemset> MineFrequentItemsets(
    const TransactionDatabase& database, const AprioriConfig& config);

/// An association rule `antecedent => consequent` with its metrics.
struct AssociationRule {
  std::vector<ItemId> antecedent;  // Sorted.
  std::vector<ItemId> consequent;  // Sorted, disjoint from antecedent.
  double support = 0.0;            // Support of antecedent ∪ consequent.
  double confidence = 0.0;         // support(A ∪ C) / support(A).
};

/// Derives all association rules meeting `min_confidence` from the frequent
/// itemsets (standard rule-generation step of the Apriori framework).
std::vector<AssociationRule> GenerateAssociationRules(
    const std::vector<FrequentItemset>& frequent_itemsets,
    uint64_t num_transactions, double min_confidence);

}  // namespace mbi

#endif  // MBI_MINING_APRIORI_H_
