#ifndef MBI_MINING_PCY_COUNTER_H_
#define MBI_MINING_PCY_COUNTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mining/support_counter.h"
#include "txn/database.h"

namespace mbi {

/// Configuration of the PCY pair counter.
struct PcyConfig {
  /// Minimum absolute pair count of interest. Pairs below this threshold are
  /// not materialized (PairsWithMinCount can only be queried at or above it).
  uint64_t min_pair_count = 2;

  /// Number of hash buckets for the first pass. More buckets = fewer false
  /// positives = less memory in the second pass; 1M buckets cost 4 MiB.
  uint32_t num_hash_buckets = 1 << 20;
};

/// Memory-bounded 2-itemset support counting by the hash-filter technique of
/// Park, Chen & Yu (SIGMOD 1995) — "An Effective Hash-Based Algorithm for
/// Mining Association Rules".
///
/// Exact triangular pair counting needs |U|²/2 counters, which stops being
/// fun around |U| ≈ 10⁵ (5·10⁹ cells). PCY makes two passes instead:
///
///   pass 1: count item supports and hash every pair into a bucket counter
///           array of fixed size;
///   pass 2: recount exactly only the pairs whose bucket reached the
///           threshold (a superset of the truly frequent pairs, since a
///           pair's count is at most its bucket's count).
///
/// The result is *exact* for every pair at or above `min_pair_count`, which
/// is all signature construction needs. Memory: O(items + buckets +
/// surviving pairs) instead of O(items²).
class PcyCounter final : public SupportProvider {
 public:
  PcyCounter(const TransactionDatabase& database, const PcyConfig& config);

  uint64_t ItemCount(ItemId item) const override;
  double ItemSupport(ItemId item) const override;

  /// Exact count for pairs with count >= min_pair_count; 0 for all others
  /// (indistinguishable from "below threshold").
  uint64_t PairCount(ItemId a, ItemId b) const;

  /// Requires `min_count >= config.min_pair_count` (checked): below the
  /// construction threshold the counter has no information.
  std::vector<PairEntry> PairsWithMinCount(uint64_t min_count) const override;

  uint64_t num_transactions() const override { return num_transactions_; }
  uint32_t universe_size() const override { return universe_size_; }

  /// Second-pass candidate pairs (bucket survivors), for instrumentation:
  /// the filter's effectiveness is `candidate_pairs() / total pairs seen`.
  uint64_t candidate_pairs() const { return exact_pair_counts_.size(); }

  /// Bytes of counting state retained after construction.
  uint64_t MemoryBytes() const;

 private:
  static uint64_t PairKey(ItemId a, ItemId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  PcyConfig config_;
  uint32_t universe_size_;
  uint64_t num_transactions_;
  std::vector<uint64_t> item_counts_;
  std::unordered_map<uint64_t, uint64_t> exact_pair_counts_;
};

}  // namespace mbi

#endif  // MBI_MINING_PCY_COUNTER_H_
