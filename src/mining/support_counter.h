#ifndef MBI_MINING_SUPPORT_COUNTER_H_
#define MBI_MINING_SUPPORT_COUNTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "txn/database.h"
#include "txn/transaction.h"

namespace mbi {

/// Interface over item/pair support statistics.
///
/// Signature construction (paper §3.1) needs exactly these statistics: the
/// item graph's edge weights are the inverse supports of the item pairs, and
/// the critical-mass criterion sums item supports. Two implementations are
/// provided: the exact `SupportCounter` and the memory-bounded `PcyCounter`
/// (hash-filtered, for large universes).
class SupportProvider {
 public:
  /// A 2-itemset with its absolute support count, a < b.
  struct PairEntry {
    ItemId a;
    ItemId b;
    uint64_t count;
  };

  virtual ~SupportProvider() = default;

  /// Number of transactions containing `item`.
  virtual uint64_t ItemCount(ItemId item) const = 0;

  /// Support of `item` as a fraction of the database size in [0, 1].
  virtual double ItemSupport(ItemId item) const = 0;

  /// All pairs with count >= `min_count` (and > 0), as (a, b, count), a < b.
  /// `min_count` must be at least the implementation's counting floor
  /// (1 for the exact counter; the construction-time threshold for PCY).
  virtual std::vector<PairEntry> PairsWithMinCount(
      uint64_t min_count) const = 0;

  virtual uint64_t num_transactions() const = 0;
  virtual uint32_t universe_size() const = 0;
};

/// Exact support counting: all single items and all 2-itemsets in one scan
/// of a transaction database.
///
/// Pair counts are kept in a dense triangular array when the universe is
/// small enough, falling back to a hash map for large universes.
class SupportCounter final : public SupportProvider {
 public:
  /// Scans `database` and materializes the counts.
  explicit SupportCounter(const TransactionDatabase& database);

  uint64_t ItemCount(ItemId item) const override;
  double ItemSupport(ItemId item) const override;

  /// Number of transactions containing both items (order irrelevant).
  uint64_t PairCount(ItemId a, ItemId b) const;

  /// Support of the pair as a fraction of the database size.
  double PairSupport(ItemId a, ItemId b) const;

  std::vector<PairEntry> PairsWithMinCount(uint64_t min_count) const override;

  uint64_t num_transactions() const override { return num_transactions_; }
  uint32_t universe_size() const override { return universe_size_; }

 private:
  /// Index into the triangular array for a < b.
  size_t TriangularIndex(ItemId a, ItemId b) const;

  uint32_t universe_size_;
  uint64_t num_transactions_;
  std::vector<uint64_t> item_counts_;

  bool use_dense_pairs_;
  std::vector<uint32_t> dense_pair_counts_;                 // Triangular.
  std::unordered_map<uint64_t, uint64_t> sparse_pair_counts_;  // a<<32|b.
};

}  // namespace mbi

#endif  // MBI_MINING_SUPPORT_COUNTER_H_
