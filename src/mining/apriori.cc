#include "mining/apriori.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/macros.h"

namespace mbi {
namespace {

/// Hash for a sorted itemset (FNV-1a over the id bytes).
struct ItemsetHash {
  size_t operator()(const std::vector<ItemId>& items) const {
    uint64_t hash = 1469598103934665603ULL;
    for (ItemId item : items) {
      hash ^= item;
      hash *= 1099511628211ULL;
    }
    return static_cast<size_t>(hash);
  }
};

using CandidateCounts =
    std::unordered_map<std::vector<ItemId>, uint64_t, ItemsetHash>;

/// Apriori-gen: joins frequent (k-1)-itemsets sharing their first k-2 items,
/// then prunes candidates with an infrequent subset.
std::vector<std::vector<ItemId>> GenerateCandidates(
    const std::vector<std::vector<ItemId>>& frequent_prev) {
  std::vector<std::vector<ItemId>> candidates;
  if (frequent_prev.empty()) return candidates;
  const size_t k_minus_1 = frequent_prev[0].size();

  // Membership structure for the prune step.
  std::unordered_map<std::vector<ItemId>, bool, ItemsetHash> is_frequent;
  is_frequent.reserve(frequent_prev.size() * 2);
  for (const auto& itemset : frequent_prev) is_frequent[itemset] = true;

  for (size_t i = 0; i < frequent_prev.size(); ++i) {
    for (size_t j = i + 1; j < frequent_prev.size(); ++j) {
      const auto& a = frequent_prev[i];
      const auto& b = frequent_prev[j];
      // Join condition: identical prefix of length k-2 (inputs are sorted
      // lexicographically, so joinable partners are adjacent-ish, but the
      // quadratic scan with an early break keeps the code simple).
      if (!std::equal(a.begin(), a.end() - 1, b.begin())) {
        if (a.size() > 1) break;  // Sorted input: prefixes only diverge.
        continue;
      }
      std::vector<ItemId> candidate = a;
      candidate.push_back(b.back());
      if (candidate[candidate.size() - 2] > candidate.back()) {
        std::swap(candidate[candidate.size() - 2],
                  candidate[candidate.size() - 1]);
      }
      // Prune: every (k-1)-subset must be frequent.
      bool all_subsets_frequent = true;
      std::vector<ItemId> subset(candidate.size() - 1);
      for (size_t drop = 0; drop < candidate.size() && all_subsets_frequent;
           ++drop) {
        size_t out = 0;
        for (size_t pos = 0; pos < candidate.size(); ++pos) {
          if (pos != drop) subset[out++] = candidate[pos];
        }
        if (!is_frequent.count(subset)) all_subsets_frequent = false;
      }
      if (all_subsets_frequent) candidates.push_back(std::move(candidate));
      (void)k_minus_1;
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

/// Counts how many transactions contain each candidate (subset test per
/// transaction via sorted inclusion).
void CountCandidates(const TransactionDatabase& database,
                     const std::vector<std::vector<ItemId>>& candidates,
                     CandidateCounts* counts) {
  counts->clear();
  counts->reserve(candidates.size() * 2);
  for (const auto& candidate : candidates) (*counts)[candidate] = 0;
  for (const auto& transaction : database.transactions()) {
    const auto& items = transaction.items();
    for (const auto& candidate : candidates) {
      if (candidate.size() > items.size()) continue;
      if (std::includes(items.begin(), items.end(), candidate.begin(),
                        candidate.end())) {
        ++(*counts)[candidate];
      }
    }
  }
}

}  // namespace

std::vector<FrequentItemset> MineFrequentItemsets(
    const TransactionDatabase& database, const AprioriConfig& config) {
  MBI_CHECK(config.min_support > 0.0 && config.min_support <= 1.0);
  std::vector<FrequentItemset> result;
  if (database.empty()) return result;

  const uint64_t min_count = static_cast<uint64_t>(
      std::ceil(config.min_support * static_cast<double>(database.size())));

  // Level 1: direct item counting.
  std::vector<uint64_t> item_counts(database.universe_size(), 0);
  for (const auto& transaction : database.transactions()) {
    for (ItemId item : transaction.items()) ++item_counts[item];
  }
  std::vector<std::vector<ItemId>> frequent_prev;
  for (ItemId item = 0; item < database.universe_size(); ++item) {
    if (item_counts[item] >= min_count && item_counts[item] > 0) {
      result.push_back({{item}, item_counts[item]});
      frequent_prev.push_back({item});
    }
  }

  uint32_t level = 2;
  CandidateCounts counts;
  while (!frequent_prev.empty() &&
         (config.max_itemset_size == 0 || level <= config.max_itemset_size)) {
    std::vector<std::vector<ItemId>> candidates =
        GenerateCandidates(frequent_prev);
    if (candidates.empty()) break;
    CountCandidates(database, candidates, &counts);

    std::vector<std::vector<ItemId>> frequent_now;
    for (const auto& candidate : candidates) {
      uint64_t count = counts[candidate];
      if (count >= min_count) {
        result.push_back({candidate, count});
        frequent_now.push_back(candidate);
      }
    }
    std::sort(frequent_now.begin(), frequent_now.end());
    frequent_prev = std::move(frequent_now);
    ++level;
  }

  std::sort(result.begin(), result.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return result;
}

std::vector<AssociationRule> GenerateAssociationRules(
    const std::vector<FrequentItemset>& frequent_itemsets,
    uint64_t num_transactions, double min_confidence) {
  MBI_CHECK(min_confidence >= 0.0 && min_confidence <= 1.0);
  // Index supports for O(1) lookup of antecedent supports.
  std::map<std::vector<ItemId>, uint64_t> support_of;
  for (const auto& itemset : frequent_itemsets) {
    support_of[itemset.items] = itemset.count;
  }

  std::vector<AssociationRule> rules;
  for (const auto& itemset : frequent_itemsets) {
    const size_t n = itemset.items.size();
    if (n < 2) continue;
    // Enumerate all proper non-empty subsets as antecedents.
    const uint32_t subsets = 1u << n;
    for (uint32_t mask = 1; mask + 1 < subsets; ++mask) {
      std::vector<ItemId> antecedent, consequent;
      for (size_t bit = 0; bit < n; ++bit) {
        if (mask & (1u << bit)) {
          antecedent.push_back(itemset.items[bit]);
        } else {
          consequent.push_back(itemset.items[bit]);
        }
      }
      auto it = support_of.find(antecedent);
      if (it == support_of.end() || it->second == 0) continue;
      double confidence = static_cast<double>(itemset.count) /
                          static_cast<double>(it->second);
      if (confidence >= min_confidence) {
        rules.push_back({std::move(antecedent), std::move(consequent),
                         itemset.Support(num_transactions), confidence});
      }
    }
  }
  return rules;
}

}  // namespace mbi
