#ifndef MBI_KERNEL_BLOCKED_LAYOUT_H_
#define MBI_KERNEL_BLOCKED_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "kernel/aligned_buffer.h"

// Blocked candidate bitmap layout with a frequent/infrequent item-band
// split ("Set Similarity Search for Skewed Data", PAPERS.md).
//
// Market-basket item frequencies are Zipfian: a small head of items
// appears in most transactions, a long tail almost never. A flat bitmap
// over the whole universe wastes bandwidth on tail words that are nearly
// always zero; a pure sparse representation gives up the AND+popcount
// kernel for the head. The band split takes both:
//
//   * the `dense_capacity` most frequent items get *slots* in a dense,
//     64-byte-aligned bitmap row per transaction — the SIMD match kernel
//     (kernel/kernels.h) runs over these rows;
//   * everything else lands in a per-row sorted tail list (CSR-style),
//     probed per item against the target's membership bitset.
//
// When the universe fits within the capacity, every item is dense and the
// tail lists are empty — the common case for the datasets in bench/.

namespace mbi::kernel {

/// Maps item ids to dense-band slots. Built once per database snapshot.
class ItemBandMap {
 public:
  /// Slot value for items outside the dense band.
  static constexpr uint32_t kNotDense = 0xffffffffu;

  ItemBandMap() = default;

  /// Chooses the dense band: the most frequent `max_dense_bits` items
  /// (rounded down to a multiple of 64; ties broken toward smaller item
  /// ids), assigned slots in ascending item-id order so dense rows keep a
  /// stable shape across rebuilds. `item_frequency[i]` is the number of
  /// transactions containing item i; its size is the universe size.
  static ItemBandMap Build(const std::vector<uint64_t>& item_frequency,
                           uint32_t max_dense_bits);

  /// Dense slot for `item`, or kNotDense when it is in the sparse tail.
  uint32_t DenseSlot(uint32_t item) const { return slots_[item]; }

  uint32_t universe_size() const { return static_cast<uint32_t>(slots_.size()); }
  /// Width of a dense row in bits (multiple of 64; 0 = everything sparse).
  uint32_t dense_bits() const { return dense_bits_; }
  size_t dense_words() const { return dense_bits_ / 64; }
  /// Number of items actually assigned dense slots.
  uint32_t dense_items() const { return dense_items_; }

 private:
  std::vector<uint32_t> slots_;
  uint32_t dense_bits_ = 0;
  uint32_t dense_items_ = 0;
};

/// The per-transaction blocked bitmap + sparse-tail store the match kernel
/// scans. Immutable after Build(); rebuilt wholesale when the database
/// grows past its row count (call sites fall back to the legacy probe path
/// for rows the layout does not cover yet).
class BlockedLayout {
 public:
  class Builder {
   public:
    /// `reserve_rows`/`reserve_items` are capacity hints.
    Builder(ItemBandMap band_map, size_t reserve_rows, size_t reserve_items);

    /// Appends the next transaction (row ids are assigned 0,1,2,... in call
    /// order). `items` need not be sorted; duplicates are caller error.
    void AddRow(const uint32_t* items, size_t count);

    BlockedLayout Build() &&;

   private:
    ItemBandMap band_map_;
    std::vector<uint32_t> flat_items_;
    std::vector<size_t> row_offsets_;  // size rows+1
  };

  BlockedLayout() = default;

  size_t num_rows() const { return num_rows_; }
  /// Dense words that carry data (<= stride_words()).
  size_t words_per_row() const { return band_map_.dense_words(); }
  /// Row pitch in words — words_per_row() rounded up to a multiple of 8 so
  /// every row starts 64-byte aligned.
  size_t stride_words() const { return stride_words_; }
  const uint64_t* rows() const { return bits_.data(); }
  const uint64_t* row(size_t i) const { return bits_.data() + i * stride_words_; }
  /// Total item count of row i (dense + tail) — the |C| term of Hamming.
  uint32_t row_size(size_t i) const { return row_sizes_[i]; }

  /// Sparse-tail items of row i, sorted ascending.
  std::pair<const uint32_t*, size_t> tail(size_t i) const {
    const size_t begin = tail_offsets_[i];
    return {tail_items_.data() + begin, tail_offsets_[i + 1] - begin};
  }

  const ItemBandMap& band_map() const { return band_map_; }

 private:
  friend class Builder;

  ItemBandMap band_map_;
  AlignedWordBuffer bits_;
  size_t num_rows_ = 0;
  size_t stride_words_ = 0;
  std::vector<uint32_t> row_sizes_;
  std::vector<size_t> tail_offsets_;  // size num_rows_+1
  std::vector<uint32_t> tail_items_;
};

}  // namespace mbi::kernel

#endif  // MBI_KERNEL_BLOCKED_LAYOUT_H_
