#include "kernel/blocked_layout.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mbi::kernel {

ItemBandMap ItemBandMap::Build(const std::vector<uint64_t>& item_frequency,
                               uint32_t max_dense_bits) {
  ItemBandMap map;
  const auto universe = static_cast<uint32_t>(item_frequency.size());
  const uint32_t capacity = max_dense_bits & ~63u;
  map.slots_.assign(universe, kNotDense);

  if (universe <= capacity) {
    // Whole universe fits: identity mapping, no sparse tail at all.
    std::iota(map.slots_.begin(), map.slots_.end(), 0u);
    map.dense_items_ = universe;
    map.dense_bits_ = (universe + 63u) & ~63u;
    return map;
  }

  if (capacity == 0) return map;

  // Top-`capacity` items by (frequency desc, id asc); nth_element keeps the
  // build O(universe) rather than a full sort.
  std::vector<uint32_t> order(universe);
  std::iota(order.begin(), order.end(), 0u);
  auto hotter = [&](uint32_t a, uint32_t b) {
    if (item_frequency[a] != item_frequency[b]) {
      return item_frequency[a] > item_frequency[b];
    }
    return a < b;
  };
  std::nth_element(order.begin(), order.begin() + capacity, order.end(),
                   hotter);
  order.resize(capacity);
  // Slots in ascending item-id order: dense rows stay bit-comparable when
  // the same band is chosen from a grown database.
  std::sort(order.begin(), order.end());
  for (uint32_t slot = 0; slot < capacity; ++slot) {
    map.slots_[order[slot]] = slot;
  }
  map.dense_items_ = capacity;
  map.dense_bits_ = capacity;
  return map;
}

BlockedLayout::Builder::Builder(ItemBandMap band_map, size_t reserve_rows,
                                size_t reserve_items)
    : band_map_(std::move(band_map)) {
  row_offsets_.reserve(reserve_rows + 1);
  row_offsets_.push_back(0);
  flat_items_.reserve(reserve_items);
}

void BlockedLayout::Builder::AddRow(const uint32_t* items, size_t count) {
  flat_items_.insert(flat_items_.end(), items, items + count);
  row_offsets_.push_back(flat_items_.size());
}

BlockedLayout BlockedLayout::Builder::Build() && {
  BlockedLayout layout;
  layout.num_rows_ = row_offsets_.size() - 1;
  // Round the pitch to 8 words so each row starts on its own 64-byte line
  // and the AVX-512 full-block loop never splits a row.
  layout.stride_words_ =
      band_map_.dense_words() == 0 ? 0 : (band_map_.dense_words() + 7) & ~size_t{7};
  layout.bits_.Reset(layout.num_rows_ * layout.stride_words_);
  layout.row_sizes_.resize(layout.num_rows_);
  layout.tail_offsets_.assign(layout.num_rows_ + 1, 0);

  uint64_t* bits = layout.bits_.data();
  // Pass 1: dense bits + tail counts.
  for (size_t r = 0; r < layout.num_rows_; ++r) {
    uint64_t* row = bits + r * layout.stride_words_;
    size_t tail_count = 0;
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const uint32_t slot = band_map_.DenseSlot(flat_items_[k]);
      if (slot == ItemBandMap::kNotDense) {
        ++tail_count;
      } else {
        row[slot / 64] |= uint64_t{1} << (slot % 64);
      }
    }
    layout.row_sizes_[r] =
        static_cast<uint32_t>(row_offsets_[r + 1] - row_offsets_[r]);
    layout.tail_offsets_[r + 1] = layout.tail_offsets_[r] + tail_count;
  }

  // Pass 2: CSR tail fill, then per-row sort for deterministic probes.
  layout.tail_items_.resize(layout.tail_offsets_.back());
  std::vector<size_t> cursor = layout.tail_offsets_;
  for (size_t r = 0; r < layout.num_rows_; ++r) {
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const uint32_t item = flat_items_[k];
      if (band_map_.DenseSlot(item) == ItemBandMap::kNotDense) {
        layout.tail_items_[cursor[r]++] = item;
      }
    }
    std::sort(layout.tail_items_.begin() +
                  static_cast<std::ptrdiff_t>(layout.tail_offsets_[r]),
              layout.tail_items_.begin() +
                  static_cast<std::ptrdiff_t>(layout.tail_offsets_[r + 1]));
  }

  layout.band_map_ = std::move(band_map_);
  return layout;
}

}  // namespace mbi::kernel
