#include "kernel/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mbi::kernel {
namespace {

constexpr KernelOps kScalarOps = {Isa::kScalar, "scalar", MatchRowsScalar,
                                  BoundsBatchScalar};
#if MBI_KERNEL_BUILD_AVX2
constexpr KernelOps kAvx2Ops = {Isa::kAvx2, "avx2", MatchRowsAvx2,
                                BoundsBatchAvx2};
#endif
#if MBI_KERNEL_BUILD_AVX512
constexpr KernelOps kAvx512Ops = {Isa::kAvx512, "avx512", MatchRowsAvx512,
                                  BoundsBatchAvx512};
#endif
#if MBI_KERNEL_BUILD_NEON
constexpr KernelOps kNeonOps = {Isa::kNeon, "neon", MatchRowsNeon,
                                BoundsBatchNeon};
#endif

bool CpuSupports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
#if MBI_KERNEL_BUILD_AVX2
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
#endif
#if MBI_KERNEL_BUILD_AVX512
    case Isa::kAvx512:
      // The 512-bit match kernel leans on VPOPCNTDQ; hosts with plain
      // AVX-512F fall back to the AVX2 family instead of a slower emulation.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
#endif
#if MBI_KERNEL_BUILD_NEON
    case Isa::kNeon:
      return true;  // Architectural baseline on AArch64.
#endif
    default:
      return false;
  }
}

/// The chosen-ISA table, or the widest supported fallback when the request
/// cannot run on this build/host.
const KernelOps* OpsForClamped(Isa isa);

const KernelOps* OpsFor(Isa isa) {
  if (!CpuSupports(isa)) return nullptr;
  switch (isa) {
    case Isa::kScalar:
      return &kScalarOps;
#if MBI_KERNEL_BUILD_AVX2
    case Isa::kAvx2:
      return &kAvx2Ops;
#endif
#if MBI_KERNEL_BUILD_AVX512
    case Isa::kAvx512:
      return &kAvx512Ops;
#endif
#if MBI_KERNEL_BUILD_NEON
    case Isa::kNeon:
      return &kNeonOps;
#endif
    default:
      return nullptr;
  }
}

const KernelOps* OpsForClamped(Isa isa) {
  const KernelOps* ops = OpsFor(isa);
  if (ops == nullptr) ops = OpsFor(WidestSupportedIsa());
  return ops != nullptr ? ops : &kScalarOps;
}

/// cpuid default, narrowed by MBI_FORCE_ISA when set (unknown values are
/// reported once and ignored; unsupported requests clamp to the widest
/// supported path so a forced-ISA CI sweep runs everywhere).
const KernelOps* Resolve() {
  Isa isa = WidestSupportedIsa();
  const char* env = std::getenv("MBI_FORCE_ISA");
  if (env != nullptr && *env != '\0') {
    Isa forced;
    if (ParseIsaName(env, &forced)) {
      isa = OpsForClamped(forced)->isa;
    } else {
      std::fprintf(stderr,
                   "mbi: ignoring unknown MBI_FORCE_ISA=%s "
                   "(want scalar|avx2|avx512|neon)\n",
                   env);
    }
  }
  return OpsForClamped(isa);
}

std::atomic<const KernelOps*> g_active{nullptr};

}  // namespace

const KernelOps& ActiveKernels() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Benign race: concurrent first calls resolve to the same table.
    ops = Resolve();
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

Isa ActiveIsa() { return ActiveKernels().isa; }

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool IsaSupported(Isa isa) { return OpsFor(isa) != nullptr; }

Isa WidestSupportedIsa() {
#if MBI_KERNEL_BUILD_AVX512
  if (CpuSupports(Isa::kAvx512)) return Isa::kAvx512;
#endif
#if MBI_KERNEL_BUILD_AVX2
  if (CpuSupports(Isa::kAvx2)) return Isa::kAvx2;
#endif
#if MBI_KERNEL_BUILD_NEON
  if (CpuSupports(Isa::kNeon)) return Isa::kNeon;
#endif
  return Isa::kScalar;
}

const KernelOps* KernelsFor(Isa isa) { return OpsFor(isa); }

bool ParseIsaName(const char* name, Isa* out) {
  if (name == nullptr || out == nullptr) return false;
  auto equals_ci = [](const char* a, const char* b) {
    for (; *a != '\0' && *b != '\0'; ++a, ++b) {
      if ((*a | 0x20) != (*b | 0x20)) return false;
    }
    return *a == '\0' && *b == '\0';
  };
  if (equals_ci(name, "scalar")) {
    *out = Isa::kScalar;
  } else if (equals_ci(name, "avx2")) {
    *out = Isa::kAvx2;
  } else if (equals_ci(name, "avx512")) {
    *out = Isa::kAvx512;
  } else if (equals_ci(name, "neon")) {
    *out = Isa::kNeon;
  } else {
    return false;
  }
  return true;
}

Isa ForceIsa(Isa isa) {
  const KernelOps* ops = OpsForClamped(isa);
  g_active.store(ops, std::memory_order_release);
  return ops->isa;
}

void ResetIsaForTesting() {
  g_active.store(Resolve(), std::memory_order_release);
}

}  // namespace mbi::kernel
