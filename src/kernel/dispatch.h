#ifndef MBI_KERNEL_DISPATCH_H_
#define MBI_KERNEL_DISPATCH_H_

#include "kernel/kernels.h"

// Runtime (cpuid-based) kernel dispatch.
//
// The first call to ActiveKernels() probes the CPU once and selects the
// widest kernel family both compiled into this binary and supported by the
// host; every later call is an atomic pointer load. The selection can be
// narrowed (never widened past hardware support) two ways:
//
//   * the MBI_FORCE_ISA environment variable ("scalar", "avx2", "avx512",
//     "neon"), read at first dispatch — how CI sweeps every variant on one
//     host (requests the hardware cannot honor clamp to the widest
//     supported path, so MBI_FORCE_ISA=avx512 is safe on an AVX2-only
//     runner);
//   * ForceIsa() below, the in-process hook tests, fuzzers, and the
//     micro_kernels bench use to pin a specific variant.
//
// All variants are bit-identical (tests/kernel_test.cc), so dispatch is
// purely a performance decision and never changes query results.

namespace mbi::kernel {

/// The dispatch table in effect. Resolved once (cpuid + MBI_FORCE_ISA) on
/// first use; thread-safe, allocation-free.
const KernelOps& ActiveKernels();

/// ISA of the table ActiveKernels() returns.
Isa ActiveIsa();

/// Human-readable name ("scalar", "avx2", "avx512", "neon").
const char* IsaName(Isa isa);

/// True when `isa` is both compiled into this binary and runnable on this
/// CPU. kScalar is always supported.
bool IsaSupported(Isa isa);

/// Widest supported ISA on this host (the default dispatch choice).
Isa WidestSupportedIsa();

/// The dispatch table for one specific ISA, or nullptr when unsupported on
/// this build/host. Lets benches and tests drive a variant directly.
const KernelOps* KernelsFor(Isa isa);

/// Parses an ISA name (case-insensitive). Returns false on unknown names.
bool ParseIsaName(const char* name, Isa* out);

/// Testing/bench hook: re-points ActiveKernels() at `isa`, clamped to the
/// widest supported path when the request cannot run here. Returns the ISA
/// actually installed. Not for production call sites.
Isa ForceIsa(Isa isa);

/// Undoes ForceIsa: re-resolves from cpuid and MBI_FORCE_ISA.
void ResetIsaForTesting();

}  // namespace mbi::kernel

#endif  // MBI_KERNEL_DISPATCH_H_
