#ifndef MBI_KERNEL_KERNELS_H_
#define MBI_KERNEL_KERNELS_H_

#include <cstddef>
#include <cstdint>

// Raw kernel entry points and the dispatch table they populate.
//
// Every kernel family has one scalar reference implementation plus a set of
// ISA variants compiled in their own translation units with per-file target
// flags (see src/kernel/CMakeLists.txt). The variants are *bit-identical* to
// the scalar path by construction — all operations are exact integer
// arithmetic — and tests/kernel_test.cc proves it exhaustively across
// alignments, tail lengths, and band splits.
//
// Everything outside src/kernel/ calls through ActiveKernels()
// (kernel/dispatch.h); raw intrinsics elsewhere are a lint error
// (tools/mbi_lint.py rule no-raw-intrinsics).

namespace mbi::kernel {

/// Instruction-set levels the dispatcher can select, narrowest first.
enum class Isa : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

/// AND+popcount-fused match kernel over a blocked candidate bitmap layout.
///
/// Computes, for each of `count` candidates, the popcount of
/// `target_row & candidate_row` over `words` 64-bit words. Candidate row i
/// starts at `rows + row_index * stride_words`, where row_index is `ids[i]`
/// when `ids` is non-null (gather form, with software prefetch of upcoming
/// rows) and `i` itself when `ids` is null (streaming form). Pointers need
/// not be aligned (the production layout is 64-byte aligned; tests probe
/// unaligned bases on purpose). `words` may be anything >= 0, including
/// ragged tails shorter than one vector block.
using MatchRowsFn = void (*)(const uint64_t* target_row, const uint64_t* rows,
                             size_t stride_words, size_t words,
                             const uint32_t* ids, size_t count,
                             uint32_t* match_out);

/// Per-entry optimistic-bound kernel, vectorized across table entries.
///
/// For each of `count` supercoordinates, sums the per-signature D/M
/// contribution tables selected by the coordinate's activation bits
/// (paper §4.1; core/bounds.h documents the table contents):
///
///   dist_out[i]  = sum_j (coords[i] >> j & 1 ? dist_if_one[j]
///                                            : dist_if_zero[j])
///   match_out[i] = sum_j (coords[i] >> j & 1 ? match_if_one[j]
///                                            : match_if_zero[j])
///
/// for j in [0, cardinality). Exact int32 arithmetic in every variant.
using BoundsBatchFn = void (*)(const uint32_t* coords, size_t count,
                               uint32_t cardinality,
                               const int32_t* dist_if_zero,
                               const int32_t* dist_if_one,
                               const int32_t* match_if_zero,
                               const int32_t* match_if_one, int32_t* dist_out,
                               int32_t* match_out);

/// One resolved kernel family.
struct KernelOps {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";
  MatchRowsFn match_rows = nullptr;
  BoundsBatchFn bounds_batch = nullptr;
};

// Which ISA variants this build contains (compile-time capability; runtime
// support is probed separately in dispatch.cc). The x86 variants compile on
// any x86-64 toolchain regardless of the host CPU — their TUs carry their
// own -m flags — so CI can compile-test them everywhere.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MBI_KERNEL_BUILD_AVX2 1
#define MBI_KERNEL_BUILD_AVX512 1
#else
#define MBI_KERNEL_BUILD_AVX2 0
#define MBI_KERNEL_BUILD_AVX512 0
#endif
#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define MBI_KERNEL_BUILD_NEON 1
#else
#define MBI_KERNEL_BUILD_NEON 0
#endif

void MatchRowsScalar(const uint64_t* target_row, const uint64_t* rows,
                     size_t stride_words, size_t words, const uint32_t* ids,
                     size_t count, uint32_t* match_out);
void BoundsBatchScalar(const uint32_t* coords, size_t count,
                       uint32_t cardinality, const int32_t* dist_if_zero,
                       const int32_t* dist_if_one, const int32_t* match_if_zero,
                       const int32_t* match_if_one, int32_t* dist_out,
                       int32_t* match_out);

#if MBI_KERNEL_BUILD_AVX2
void MatchRowsAvx2(const uint64_t* target_row, const uint64_t* rows,
                   size_t stride_words, size_t words, const uint32_t* ids,
                   size_t count, uint32_t* match_out);
void BoundsBatchAvx2(const uint32_t* coords, size_t count,
                     uint32_t cardinality, const int32_t* dist_if_zero,
                     const int32_t* dist_if_one, const int32_t* match_if_zero,
                     const int32_t* match_if_one, int32_t* dist_out,
                     int32_t* match_out);
#endif

#if MBI_KERNEL_BUILD_AVX512
void MatchRowsAvx512(const uint64_t* target_row, const uint64_t* rows,
                     size_t stride_words, size_t words, const uint32_t* ids,
                     size_t count, uint32_t* match_out);
void BoundsBatchAvx512(const uint32_t* coords, size_t count,
                       uint32_t cardinality, const int32_t* dist_if_zero,
                       const int32_t* dist_if_one, const int32_t* match_if_zero,
                       const int32_t* match_if_one, int32_t* dist_out,
                       int32_t* match_out);
#endif

#if MBI_KERNEL_BUILD_NEON
void MatchRowsNeon(const uint64_t* target_row, const uint64_t* rows,
                   size_t stride_words, size_t words, const uint32_t* ids,
                   size_t count, uint32_t* match_out);
void BoundsBatchNeon(const uint32_t* coords, size_t count,
                     uint32_t cardinality, const int32_t* dist_if_zero,
                     const int32_t* dist_if_one, const int32_t* match_if_zero,
                     const int32_t* match_if_one, int32_t* dist_out,
                     int32_t* match_out);
#endif

}  // namespace mbi::kernel

#endif  // MBI_KERNEL_KERNELS_H_
