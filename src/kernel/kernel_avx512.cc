// AVX-512 kernel variants. This TU is compiled with
// -mavx512f -mavx512vpopcntdq on any x86-64 toolchain; dispatch.cc only
// installs the table when the host reports both avx512f and avx512vpopcntdq
// (hosts without VPOPCNTDQ fall back to the AVX2 family).

#include "kernel/kernels.h"

#if MBI_KERNEL_BUILD_AVX512

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "util/hot_path.h"

// GCC's AVX-512 headers pass deliberately-undefined operands as
// `__m256i __Y = __Y;`, which -Wmaybe-uninitialized flags through inlining
// at -O2 (false positive; the lanes are fully overwritten). The warning
// originates in the system header, so suppress it for this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace mbi::kernel {
namespace {

constexpr size_t kPrefetchAhead = 8;

}  // namespace

MBI_HOT void MatchRowsAvx512(const uint64_t* target_row, const uint64_t* rows,
                             size_t stride_words, size_t words,
                             const uint32_t* ids, size_t count,
                             uint32_t* match_out) {
  for (size_t i = 0; i < count; ++i) {
    const size_t row_index = ids != nullptr ? size_t{ids[i]} : i;
    const uint64_t* row = rows + row_index * stride_words;
    if (ids != nullptr && i + kPrefetchAhead < count) {
      __builtin_prefetch(rows + size_t{ids[i + kPrefetchAhead]} * stride_words);
    }
    __m512i acc = _mm512_setzero_si512();
    size_t w = 0;
    for (; w + 8 <= words; w += 8) {
      const __m512i t = _mm512_loadu_si512(target_row + w);
      const __m512i c = _mm512_loadu_si512(row + w);
      acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(t, c)));
    }
    if (w < words) {
      // Ragged tail in one masked load instead of a scalar loop.
      const __mmask8 tail =
          static_cast<__mmask8>((1u << (words - w)) - 1u);
      const __m512i t = _mm512_maskz_loadu_epi64(tail, target_row + w);
      const __m512i c = _mm512_maskz_loadu_epi64(tail, row + w);
      acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(t, c)));
    }
    match_out[i] =
        static_cast<uint32_t>(_mm512_reduce_add_epi64(acc));
  }
}

MBI_HOT void BoundsBatchAvx512(const uint32_t* coords, size_t count,
                               uint32_t cardinality,
                               const int32_t* dist_if_zero,
                               const int32_t* dist_if_one,
                               const int32_t* match_if_zero,
                               const int32_t* match_if_one, int32_t* dist_out,
                               int32_t* match_out) {
  const __m512i one = _mm512_set1_epi32(1);
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    __m512i c = _mm512_loadu_si512(coords + i);
    __m512i dist = _mm512_setzero_si512();
    __m512i match = _mm512_setzero_si512();
    // Shift right by one each round so the tested bit is always bit 0.
    for (uint32_t j = 0; j < cardinality; ++j) {
      const __mmask16 bit_set = _mm512_test_epi32_mask(c, one);
      const __m512i d = _mm512_mask_blend_epi32(
          bit_set, _mm512_set1_epi32(dist_if_zero[j]),
          _mm512_set1_epi32(dist_if_one[j]));
      const __m512i m = _mm512_mask_blend_epi32(
          bit_set, _mm512_set1_epi32(match_if_zero[j]),
          _mm512_set1_epi32(match_if_one[j]));
      dist = _mm512_add_epi32(dist, d);
      match = _mm512_add_epi32(match, m);
      c = _mm512_srli_epi32(c, 1);
    }
    _mm512_storeu_si512(dist_out + i, dist);
    _mm512_storeu_si512(match_out + i, match);
  }
  if (i < count) {
    BoundsBatchScalar(coords + i, count - i, cardinality, dist_if_zero,
                      dist_if_one, match_if_zero, match_if_one, dist_out + i,
                      match_out + i);
  }
}

}  // namespace mbi::kernel

#endif  // MBI_KERNEL_BUILD_AVX512
