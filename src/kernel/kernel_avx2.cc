// AVX2 kernel variants. This TU is compiled with -mavx2 on any x86-64
// toolchain (see src/kernel/CMakeLists.txt); dispatch.cc only installs the
// table after __builtin_cpu_supports("avx2") passes at runtime.

#include "kernel/kernels.h"

#if MBI_KERNEL_BUILD_AVX2

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/hot_path.h"

namespace mbi::kernel {
namespace {

constexpr size_t kPrefetchAhead = 8;

/// Per-64-bit-lane population count of a 256-bit vector via the Mula
/// pshufb nibble lookup (AVX2 has no vector popcount instruction):
/// per-byte counts from two 4-bit table lookups, then _mm256_sad_epu8
/// folds each 8-byte group into its lane.
inline __m256i Popcount64x4(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline uint64_t ReduceAdd64x4(__m256i v) {
  const __m128i halves = _mm_add_epi64(_mm256_castsi256_si128(v),
                                       _mm256_extracti128_si256(v, 1));
  return static_cast<uint64_t>(_mm_cvtsi128_si64(halves)) +
         static_cast<uint64_t>(_mm_extract_epi64(halves, 1));
}

}  // namespace

MBI_HOT void MatchRowsAvx2(const uint64_t* target_row, const uint64_t* rows,
                           size_t stride_words, size_t words,
                           const uint32_t* ids, size_t count,
                           uint32_t* match_out) {
  for (size_t i = 0; i < count; ++i) {
    const size_t row_index = ids != nullptr ? size_t{ids[i]} : i;
    const uint64_t* row = rows + row_index * stride_words;
    if (ids != nullptr && i + kPrefetchAhead < count) {
      __builtin_prefetch(rows + size_t{ids[i + kPrefetchAhead]} * stride_words);
    }
    __m256i acc = _mm256_setzero_si256();
    size_t w = 0;
    for (; w + 4 <= words; w += 4) {
      const __m256i t = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(target_row + w));
      const __m256i c =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + w));
      acc = _mm256_add_epi64(acc, Popcount64x4(_mm256_and_si256(t, c)));
    }
    uint64_t sum = ReduceAdd64x4(acc);
    for (; w < words; ++w) {
      sum += static_cast<uint64_t>(std::popcount(target_row[w] & row[w]));
    }
    match_out[i] = static_cast<uint32_t>(sum);
  }
}

MBI_HOT void BoundsBatchAvx2(const uint32_t* coords, size_t count,
                             uint32_t cardinality, const int32_t* dist_if_zero,
                             const int32_t* dist_if_one,
                             const int32_t* match_if_zero,
                             const int32_t* match_if_one, int32_t* dist_out,
                             int32_t* match_out) {
  const __m256i one = _mm256_set1_epi32(1);
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(coords + i));
    __m256i dist = _mm256_setzero_si256();
    __m256i match = _mm256_setzero_si256();
    // Shift the coordinates right by one each round so the tested bit is
    // always bit 0 — avoids a variable shift amount in the loop body.
    for (uint32_t j = 0; j < cardinality; ++j) {
      const __m256i bit_set =
          _mm256_cmpeq_epi32(_mm256_and_si256(c, one), one);
      const __m256i d = _mm256_blendv_epi8(
          _mm256_set1_epi32(dist_if_zero[j]),
          _mm256_set1_epi32(dist_if_one[j]), bit_set);
      const __m256i m = _mm256_blendv_epi8(
          _mm256_set1_epi32(match_if_zero[j]),
          _mm256_set1_epi32(match_if_one[j]), bit_set);
      dist = _mm256_add_epi32(dist, d);
      match = _mm256_add_epi32(match, m);
      c = _mm256_srli_epi32(c, 1);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dist_out + i), dist);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(match_out + i), match);
  }
  if (i < count) {
    BoundsBatchScalar(coords + i, count - i, cardinality, dist_if_zero,
                      dist_if_one, match_if_zero, match_if_one, dist_out + i,
                      match_out + i);
  }
}

}  // namespace mbi::kernel

#endif  // MBI_KERNEL_BUILD_AVX2
