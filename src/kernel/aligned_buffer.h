#ifndef MBI_KERNEL_ALIGNED_BUFFER_H_
#define MBI_KERNEL_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <memory>

namespace mbi::kernel {

/// Zero-initialized uint64_t buffer whose data() is 64-byte aligned — one
/// cache line, and the natural alignment for 512-bit vector rows. Built on
/// make_unique over-allocation rather than aligned new so it works with the
/// allocation interposer and every toolchain in CI.
class AlignedWordBuffer {
 public:
  AlignedWordBuffer() = default;

  explicit AlignedWordBuffer(size_t words) { Reset(words); }

  /// Reallocates to `words` zeroed words. Invalidates prior data().
  void Reset(size_t words) {
    words_ = words;
    storage_ = std::make_unique<uint64_t[]>(words + kSlackWords);
    auto addr = reinterpret_cast<uintptr_t>(storage_.get());
    const uintptr_t aligned = (addr + kAlignment - 1) & ~uintptr_t{kAlignment - 1};
    data_ = reinterpret_cast<uint64_t*>(aligned);
  }

  uint64_t* data() { return data_; }
  const uint64_t* data() const { return data_; }
  size_t size() const { return words_; }

  static constexpr size_t kAlignment = 64;

 private:
  // Worst-case padding to reach the next 64-byte boundary.
  static constexpr size_t kSlackWords = kAlignment / sizeof(uint64_t) - 1;

  std::unique_ptr<uint64_t[]> storage_;
  uint64_t* data_ = nullptr;
  size_t words_ = 0;
};

}  // namespace mbi::kernel

#endif  // MBI_KERNEL_ALIGNED_BUFFER_H_
