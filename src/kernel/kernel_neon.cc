// NEON kernel variants for AArch64, where Advanced SIMD is architectural
// baseline — no runtime probe needed beyond compiling for the target.

#include "kernel/kernels.h"

#if MBI_KERNEL_BUILD_NEON

#include <arm_neon.h>

#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/hot_path.h"

namespace mbi::kernel {
namespace {

constexpr size_t kPrefetchAhead = 8;

}  // namespace

MBI_HOT void MatchRowsNeon(const uint64_t* target_row, const uint64_t* rows,
                           size_t stride_words, size_t words,
                           const uint32_t* ids, size_t count,
                           uint32_t* match_out) {
  for (size_t i = 0; i < count; ++i) {
    const size_t row_index = ids != nullptr ? size_t{ids[i]} : i;
    const uint64_t* row = rows + row_index * stride_words;
    if (ids != nullptr && i + kPrefetchAhead < count) {
      __builtin_prefetch(rows + size_t{ids[i + kPrefetchAhead]} * stride_words);
    }
    uint64x2_t acc = vdupq_n_u64(0);
    size_t w = 0;
    for (; w + 2 <= words; w += 2) {
      const uint64x2_t t = vld1q_u64(target_row + w);
      const uint64x2_t c = vld1q_u64(row + w);
      // vcntq_u8 counts per byte; widening pairwise adds fold the byte
      // counts up to one count per 64-bit lane.
      const uint8x16_t bytes =
          vcntq_u8(vreinterpretq_u8_u64(vandq_u64(t, c)));
      acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bytes))));
    }
    uint64_t sum = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
    for (; w < words; ++w) {
      sum += static_cast<uint64_t>(std::popcount(target_row[w] & row[w]));
    }
    match_out[i] = static_cast<uint32_t>(sum);
  }
}

MBI_HOT void BoundsBatchNeon(const uint32_t* coords, size_t count,
                             uint32_t cardinality, const int32_t* dist_if_zero,
                             const int32_t* dist_if_one,
                             const int32_t* match_if_zero,
                             const int32_t* match_if_one, int32_t* dist_out,
                             int32_t* match_out) {
  const uint32x4_t one = vdupq_n_u32(1);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    uint32x4_t c = vld1q_u32(coords + i);
    int32x4_t dist = vdupq_n_s32(0);
    int32x4_t match = vdupq_n_s32(0);
    // Shift right by one each round so the tested bit is always bit 0.
    for (uint32_t j = 0; j < cardinality; ++j) {
      const uint32x4_t bit_set = vtstq_u32(c, one);
      const int32x4_t d = vbslq_s32(bit_set, vdupq_n_s32(dist_if_one[j]),
                                    vdupq_n_s32(dist_if_zero[j]));
      const int32x4_t m = vbslq_s32(bit_set, vdupq_n_s32(match_if_one[j]),
                                    vdupq_n_s32(match_if_zero[j]));
      dist = vaddq_s32(dist, d);
      match = vaddq_s32(match, m);
      c = vshrq_n_u32(c, 1);
    }
    vst1q_s32(dist_out + i, dist);
    vst1q_s32(match_out + i, match);
  }
  if (i < count) {
    BoundsBatchScalar(coords + i, count - i, cardinality, dist_if_zero,
                      dist_if_one, match_if_zero, match_if_one, dist_out + i,
                      match_out + i);
  }
}

}  // namespace mbi::kernel

#endif  // MBI_KERNEL_BUILD_NEON
