// Scalar reference kernels. Every SIMD variant must be bit-identical to
// these (tests/kernel_test.cc sweeps the equivalence exhaustively); the
// scalar path also serves hosts and builds with no vector units.

#include <bit>
#include <cstddef>
#include <cstdint>

#include "kernel/kernels.h"
#include "util/hot_path.h"

namespace mbi::kernel {
namespace {

/// Gather-form prefetch distance: far enough to cover a memory access,
/// close enough that the prefetched line is still resident when used.
constexpr size_t kPrefetchAhead = 8;

}  // namespace

MBI_HOT void MatchRowsScalar(const uint64_t* target_row, const uint64_t* rows,
                             size_t stride_words, size_t words,
                             const uint32_t* ids, size_t count,
                             uint32_t* match_out) {
  for (size_t i = 0; i < count; ++i) {
    const size_t row_index = ids != nullptr ? size_t{ids[i]} : i;
    const uint64_t* row = rows + row_index * stride_words;
    if (ids != nullptr && i + kPrefetchAhead < count) {
      __builtin_prefetch(rows + size_t{ids[i + kPrefetchAhead]} * stride_words);
    }
    uint64_t acc = 0;
    for (size_t w = 0; w < words; ++w) {
      acc += static_cast<uint64_t>(std::popcount(target_row[w] & row[w]));
    }
    match_out[i] = static_cast<uint32_t>(acc);
  }
}

MBI_HOT void BoundsBatchScalar(const uint32_t* coords, size_t count,
                               uint32_t cardinality,
                               const int32_t* dist_if_zero,
                               const int32_t* dist_if_one,
                               const int32_t* match_if_zero,
                               const int32_t* match_if_one, int32_t* dist_out,
                               int32_t* match_out) {
  for (size_t i = 0; i < count; ++i) {
    const uint32_t coordinate = coords[i];
    int32_t dist = 0;
    int32_t match = 0;
    for (uint32_t j = 0; j < cardinality; ++j) {
      if ((coordinate >> j) & 1u) {
        dist += dist_if_one[j];
        match += match_if_one[j];
      } else {
        dist += dist_if_zero[j];
        match += match_if_zero[j];
      }
    }
    dist_out[i] = dist;
    match_out[i] = match;
  }
}

}  // namespace mbi::kernel
