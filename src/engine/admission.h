#ifndef MBI_ENGINE_ADMISSION_H_
#define MBI_ENGINE_ADMISSION_H_

// Admission control in front of the batch query path: a fixed pool of
// execution tokens, a bounded wait queue, and a two-stage load-shedding
// ladder. Under light load requests pass straight through; under pressure
// they first keep full fidelity while queueing, then get their QueryBudget
// deadline tightened (the engine answers with a certified degraded result
// instead of queueing work it cannot finish), and when the queue itself is
// full — or a queued request waits out its patience — they are rejected
// with kUnavailable carrying a "retry_after_ms=" hint that util/retry's
// RetryTransient folds into its backoff. Queue depth is bounded by
// construction: memory and tail latency stay flat no matter the offered
// load, which is the substrate the ROADMAP's `mbi serve` layer sits on.

#include <atomic>
#include <cstdint>

#include "core/query_budget.h"
#include "util/deadline_clock.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mbi {

struct AdmissionOptions {
  /// Execution tokens: batches running concurrently past admission.
  size_t max_in_flight = 4;

  /// Requests allowed to wait for a token; arrivals beyond this are shed
  /// immediately. The queue can never grow past it (overload_test asserts
  /// this under a closed loop).
  size_t max_queue_depth = 16;

  /// Patience: how long one request may sit in the queue before it is shed
  /// (measured on `clock`, so deterministically testable).
  double max_queue_wait_ms = 50.0;

  /// Stage-one shedding: a request that had to queue gets its budget
  /// deadline tightened to at most this many ms past admission, so the
  /// engine degrades the answer instead of blowing the latency goal.
  /// 0 disables tightening (queueing never touches the budget).
  double degraded_deadline_ms = 0.0;

  /// Base of the retry-after hint attached to kUnavailable rejections; the
  /// actual hint scales with the queue depth at rejection time.
  double retry_after_ms = 5.0;

  /// Time source for queue-wait accounting and deadline tightening.
  /// Null = DeadlineClock::Real(); tests inject a ManualClock.
  const DeadlineClock* clock = nullptr;
};

/// Thread-safe token bucket + bounded FIFO-ish wait queue (wakeup order is
/// the condition variable's, not strictly FIFO; the bound is what matters).
/// Use via the RAII AdmissionSlot, or Admit()/Release() directly.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Registers mbi.admission.* instrumentation: admitted/shed/degraded
  /// counters, the in-queue-time histogram, and in-flight / queue-depth
  /// gauges. Call before serving traffic (not thread-safe vs Admit).
  void set_metrics(MetricsRegistry* registry);

  /// Blocks until a token is granted (possibly tightening *budget — stage
  /// one of the shedding ladder) or sheds the request:
  ///   kUnavailable "admission queue full; retry_after_ms=..."  (queue at
  ///     its bound on arrival), or
  ///   kUnavailable "admission wait timed out; retry_after_ms=..." (queued
  ///     longer than max_queue_wait_ms).
  /// On Ok the caller MUST eventually call Release() exactly once (or hold
  /// an AdmissionSlot). `budget` may be null when the caller has no budget
  /// to tighten.
  Status Admit(QueryBudget* budget) MBI_EXCLUDES(mu_);

  /// Returns the token taken by a successful Admit().
  void Release() MBI_EXCLUDES(mu_);

  // --- Monotone shedding/throughput counters (overload_test asserts they
  // never decrease and reconcile with the closed-loop totals). ---
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  uint64_t degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }

  size_t in_flight() const MBI_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return in_flight_;
  }
  size_t queue_depth() const MBI_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return queue_depth_;
  }

  const AdmissionOptions& options() const { return options_; }

 private:
  struct MetricHandles {
    Counter* admitted = nullptr;
    Counter* shed = nullptr;
    Counter* degraded = nullptr;
    LatencyHistogram* queue_wait = nullptr;
    Gauge* in_flight = nullptr;
    Gauge* queue_depth = nullptr;
  };

  Status Shed(const char* reason, size_t depth_at_rejection);

  const AdmissionOptions options_;
  const DeadlineClock* const clock_;

  mutable Mutex mu_;
  CondVar token_free_;
  size_t in_flight_ MBI_GUARDED_BY(mu_) = 0;
  size_t queue_depth_ MBI_GUARDED_BY(mu_) = 0;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> degraded_{0};

  MetricHandles metrics_;
  bool metrics_enabled_ = false;
};

/// RAII admission token: admit on construction, release on destruction.
///
///   AdmissionSlot slot(&controller, &budget);
///   if (!slot.ok()) return slot.status();   // shed — propagate kUnavailable
///   ... run the batch with `budget` ...
class AdmissionSlot {
 public:
  AdmissionSlot(AdmissionController* controller, QueryBudget* budget)
      : controller_(controller), status_(controller->Admit(budget)) {}

  ~AdmissionSlot() {
    if (status_.ok()) controller_->Release();
  }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

 private:
  AdmissionController* controller_;
  Status status_;
};

}  // namespace mbi

#endif  // MBI_ENGINE_ADMISSION_H_
