#ifndef MBI_ENGINE_ENGINE_H_
#define MBI_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "baseline/sequential_scan.h"
#include "core/branch_and_bound.h"
#include "core/signature_table.h"
#include "core/table_io.h"
#include "storage/env.h"
#include "txn/database.h"
#include "util/status.h"

namespace mbi {

/// Query front end with graceful degradation: owns the loaded SignatureTable
/// (when one loads cleanly) and answers queries through BranchAndBoundEngine;
/// when the index artifact fails its checksum or invariant verification at
/// open time, the engine *quarantines* the index and serves every query via
/// SequentialScanner instead — correct (exact) answers at degraded speed,
/// with the fallback counted in QueryStats::sequential_fallbacks.
///
/// This is the paper's availability story for a disk-resident index: the
/// directory is derived data, the database is the source of truth, so a
/// corrupt index file should cost throughput, never correctness or uptime.
/// Rebuild the index (`mbi build`) to leave quarantine.
class SignatureTableEngine {
 public:
  /// `database` must outlive the engine and is always trusted (its own
  /// loader has already validated it).
  explicit SignatureTableEngine(const TransactionDatabase* database);

  SignatureTableEngine(const SignatureTableEngine&) = delete;
  SignatureTableEngine& operator=(const SignatureTableEngine&) = delete;

  /// Loads the index at `path`. On kCorruption the engine enters quarantine
  /// (queries keep working through the sequential fallback) and the status
  /// describing the damage is returned *and* retained as
  /// quarantine_reason(). Other failures (kNotFound, kIoError,
  /// kInvalidArgument) do not quarantine: there is no artifact to degrade
  /// around, so the caller must decide.
  Status OpenIndex(const std::string& path, Env* env = Env::Default());

  /// Adopts an already-built table (e.g. fresh from BuildIndex), clearing
  /// any quarantine.
  void AdoptTable(SignatureTable table);

  /// True when a healthy index is loaded and queries use branch-and-bound.
  bool healthy() const { return engine_.has_value(); }
  bool quarantined() const { return quarantined_; }
  const Status& quarantine_reason() const { return quarantine_reason_; }

  /// Queries answered by the sequential fallback since construction.
  uint64_t fallback_queries() const {
    return fallback_queries_.load(std::memory_order_relaxed);
  }

  /// k-NN query: branch-and-bound when healthy, exact sequential scan when
  /// quarantined (the result is then marked guaranteed_exact with
  /// stats.sequential_fallbacks == 1). `context` is used only on the healthy
  /// path.
  NearestNeighborResult FindKNearest(const Transaction& target,
                                     const SimilarityFamily& family, size_t k,
                                     const SearchOptions& options = {},
                                     QueryContext* context = nullptr) const;

  /// Range query with the same fallback contract as FindKNearest.
  RangeQueryResult FindInRange(const Transaction& target,
                               const SimilarityFamily& family,
                               double threshold,
                               const SearchOptions& options = {}) const;

  /// Loaded table, or nullptr while quarantined / before OpenIndex.
  const SignatureTable* table() const {
    return table_.has_value() ? &*table_ : nullptr;
  }
  const TransactionDatabase& database() const { return *database_; }

 private:
  NearestNeighborResult SequentialKNearest(const Transaction& target,
                                           const SimilarityFamily& family,
                                           size_t k) const;
  RangeQueryResult SequentialInRange(const Transaction& target,
                                     const SimilarityFamily& family,
                                     double threshold) const;

  const TransactionDatabase* database_;
  SequentialScanner scanner_;
  std::optional<SignatureTable> table_;
  /// Valid only while table_ holds a value (points into it).
  std::optional<BranchAndBoundEngine> engine_;
  bool quarantined_ = false;
  Status quarantine_reason_;
  mutable std::atomic<uint64_t> fallback_queries_{0};
};

}  // namespace mbi

#endif  // MBI_ENGINE_ENGINE_H_
