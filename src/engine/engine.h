#ifndef MBI_ENGINE_ENGINE_H_
#define MBI_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "baseline/sequential_scan.h"
#include "core/branch_and_bound.h"
#include "engine/admission.h"
#include "core/signature_table.h"
#include "core/table_io.h"
#include "storage/env.h"
#include "txn/candidate_layout.h"
#include "txn/database.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace mbi {

/// Query front end with graceful degradation: owns the loaded SignatureTable
/// (when one loads cleanly) and answers queries through BranchAndBoundEngine;
/// when the index artifact fails its checksum or invariant verification at
/// open time, the engine *quarantines* the index and serves every query via
/// SequentialScanner instead — correct (exact) answers at degraded speed,
/// with the fallback counted in QueryStats::sequential_fallbacks.
///
/// This is the paper's availability story for a disk-resident index: the
/// directory is derived data, the database is the source of truth, so a
/// corrupt index file should cost throughput, never correctness or uptime.
/// Rebuild the index (`mbi build`) to leave quarantine.
class SignatureTableEngine {
 public:
  /// `database` must outlive the engine and is always trusted (its own
  /// loader has already validated it).
  explicit SignatureTableEngine(const TransactionDatabase* database);

  SignatureTableEngine(const SignatureTableEngine&) = delete;
  SignatureTableEngine& operator=(const SignatureTableEngine&) = delete;

  /// Loads the index at `path`. On kCorruption the engine enters quarantine
  /// (queries keep working through the sequential fallback) and the status
  /// describing the damage is returned *and* retained as
  /// quarantine_reason(). Other failures (kNotFound, kIoError,
  /// kInvalidArgument) do not quarantine: there is no artifact to degrade
  /// around, so the caller must decide.
  Status OpenIndex(const std::string& path, Env* env = Env::Default());

  /// Adopts an already-built table (e.g. fresh from BuildIndex), clearing
  /// any quarantine.
  void AdoptTable(SignatureTable table);

  /// True when a healthy index is loaded and queries use branch-and-bound.
  bool healthy() const { return engine_.has_value(); }
  bool quarantined() const MBI_EXCLUDES(state_mu_) {
    MutexLock lock(&state_mu_);
    return quarantined_;
  }
  /// The retained kCorruption status while quarantined, Ok() otherwise.
  /// Returned by value: the stored status is replaced by OpenIndex /
  /// AdoptTable, possibly while other threads query.
  Status quarantine_reason() const MBI_EXCLUDES(state_mu_) {
    MutexLock lock(&state_mu_);
    return quarantine_reason_;
  }

  /// Queries answered by the sequential fallback since construction.
  uint64_t fallback_queries() const {
    return fallback_queries_.load(std::memory_order_relaxed);
  }

  /// k-NN query: branch-and-bound when healthy, sequential scan when
  /// quarantined (stats.sequential_fallbacks == 1). `context` is used only
  /// on the healthy path, except that a budget pinned on it applies to both.
  /// SearchOptions::budget is honored on both paths; the fallback propagates
  /// the scanner's full QueryStats — termination, is_exact, and
  /// certificate_bound included — so a degraded fallback answer carries the
  /// same certificate a degraded indexed answer would.
  NearestNeighborResult FindKNearest(const Transaction& target,
                                     const SimilarityFamily& family, size_t k,
                                     const SearchOptions& options = {},
                                     QueryContext* context = nullptr) const;

  /// Range query with the same fallback contract as FindKNearest.
  RangeQueryResult FindInRange(const Transaction& target,
                               const SimilarityFamily& family,
                               double threshold,
                               const SearchOptions& options = {}) const;

  /// Batch k-NN with the engine's degradation contract: when healthy the
  /// batch fans out over a thread pool (see core/batch_query.h for the
  /// threading knobs); when quarantined each target is answered by the
  /// sequential fallback, so every result carries
  /// stats.sequential_fallbacks == 1 and fallback_queries() advances by
  /// `targets.size()`. Results are in target order either way.
  std::vector<NearestNeighborResult> FindKNearestBatch(
      const std::vector<Transaction>& targets, const SimilarityFamily& family,
      size_t k, const SearchOptions& options = {}, size_t num_threads = 0,
      ThreadPool* pool = nullptr) const;

  /// Admission-controlled batch k-NN: the batch first passes through
  /// `controller` (token bucket + bounded queue). Under pressure the
  /// controller may tighten the batch's QueryBudget deadline (every result
  /// then carries a certified degraded answer instead of queueing
  /// unboundedly) or shed the whole batch with kUnavailable carrying a
  /// retry_after_ms hint — the code util/retry's RetryTransient backs off
  /// on. This is the entry point the ROADMAP's `mbi serve` request
  /// scheduler drives.
  StatusOr<std::vector<NearestNeighborResult>> FindKNearestBatchAdmitted(
      AdmissionController* controller, const std::vector<Transaction>& targets,
      const SimilarityFamily& family, size_t k,
      const SearchOptions& options = {}, size_t num_threads = 0,
      ThreadPool* pool = nullptr) const;

  /// Enables engine-level instrumentation in `registry` (names mbi.engine.*,
  /// see DESIGN.md §8): query/prune/fallback counters that aggregate exactly
  /// the per-query QueryStats, per-shape latency histograms, and a
  /// quarantine gauge. Also forwards to the internal SequentialScanner
  /// (mbi.scan.*) and the loaded table's page store (mbi.pagestore.*), and
  /// re-applies itself to tables adopted later. Pass nullptr to disable (the
  /// default; disabled queries skip even the clock reads).
  void set_metrics(MetricsRegistry* registry);

  /// Loaded table, or nullptr while quarantined / before OpenIndex.
  const SignatureTable* table() const {
    return table_.has_value() ? &*table_ : nullptr;
  }
  const TransactionDatabase& database() const { return *database_; }

 private:
  /// Pre-resolved metric handles; null while metrics are disabled.
  struct MetricHandles {
    Counter* knn_queries = nullptr;
    Counter* range_queries = nullptr;
    Counter* fallbacks = nullptr;
    Counter* entries_considered = nullptr;
    Counter* entries_scanned = nullptr;
    Counter* entries_pruned = nullptr;
    Counter* entries_unexplored = nullptr;
    Counter* transactions_evaluated = nullptr;
    Counter* pages_read = nullptr;
    Counter* pages_cached = nullptr;
    Counter* bytes_read = nullptr;
    Counter* transactions_fetched = nullptr;
    LatencyHistogram* knn_latency = nullptr;
    LatencyHistogram* range_latency = nullptr;
    Gauge* quarantined = nullptr;
    /// Overload accounting: queries whose answer was certified non-exact,
    /// and the subset cut specifically by a deadline / a cancellation.
    Counter* degraded = nullptr;
    Counter* deadline_expired = nullptr;
    Counter* cancelled = nullptr;
  };

  NearestNeighborResult SequentialKNearest(const Transaction& target,
                                           const SimilarityFamily& family,
                                           size_t k,
                                           const QueryBudget& budget) const;
  RangeQueryResult SequentialInRange(const Transaction& target,
                                     const SimilarityFamily& family,
                                     double threshold,
                                     const QueryBudget& budget) const;
  NearestNeighborResult FindKNearestImpl(const Transaction& target,
                                         const SimilarityFamily& family,
                                         size_t k, const SearchOptions& options,
                                         QueryContext* context) const;
  RangeQueryResult FindInRangeImpl(const Transaction& target,
                                   const SimilarityFamily& family,
                                   double threshold,
                                   const SearchOptions& options) const;

  /// Folds one query's QueryStats into the aggregate counters (the
  /// counters-reconcile-with-QueryStats property holds by construction).
  void RecordQueryStats(const QueryStats& stats, bool is_range) const;
  /// RecordQueryStats plus the per-shape latency histogram.
  void RecordQuery(const QueryStats& stats, bool is_range,
                   double elapsed_us) const;

  const TransactionDatabase* const database_;
  /// Blocked candidate bitmap shared by the branch-and-bound engine and the
  /// sequential fallback (one build per database snapshot instead of one
  /// per component). Rebuilt by AdoptTable when the database has grown;
  /// queries issued against rows beyond its coverage fall back to the
  /// per-candidate probe path inside each component.
  CandidateLayout layout_;
  SequentialScanner scanner_;
  /// table_/engine_ are written only by OpenIndex/AdoptTable, which the
  /// caller must not run concurrently with queries (the engine swaps the
  /// whole index out from under them otherwise); queries only read. The
  /// quarantine flag and reason, however, are mutated on the same calls and
  /// *read* from concurrent query threads via the public accessors, so they
  /// get a real lock.
  std::optional<SignatureTable> table_;
  /// Valid only while table_ holds a value (points into it).
  std::optional<BranchAndBoundEngine> engine_;
  mutable Mutex state_mu_;
  bool quarantined_ MBI_GUARDED_BY(state_mu_) = false;
  Status quarantine_reason_ MBI_GUARDED_BY(state_mu_);
  mutable std::atomic<uint64_t> fallback_queries_{0};
  MetricsRegistry* metrics_registry_ = nullptr;
  MetricHandles metrics_;
  bool metrics_enabled_ = false;
};

}  // namespace mbi

#endif  // MBI_ENGINE_ENGINE_H_
