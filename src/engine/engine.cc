#include "engine/engine.h"

#include <limits>
#include <utility>

namespace mbi {

SignatureTableEngine::SignatureTableEngine(const TransactionDatabase* database)
    : database_(database), scanner_(database) {}

Status SignatureTableEngine::OpenIndex(const std::string& path, Env* env) {
  StatusOr<SignatureTable> loaded = LoadSignatureTable(path, *database_, env);
  if (loaded.ok()) {
    AdoptTable(std::move(loaded).value());
    return Status::Ok();
  }
  if (loaded.status().code() == StatusCode::kCorruption) {
    engine_.reset();
    table_.reset();
    quarantined_ = true;
    quarantine_reason_ = loaded.status();
  }
  return loaded.status();
}

void SignatureTableEngine::AdoptTable(SignatureTable table) {
  engine_.reset();  // Points into the old table; drop it first.
  table_.emplace(std::move(table));
  engine_.emplace(database_, &*table_);
  quarantined_ = false;
  quarantine_reason_ = Status::Ok();
}

NearestNeighborResult SignatureTableEngine::SequentialKNearest(
    const Transaction& target, const SimilarityFamily& family,
    size_t k) const {
  fallback_queries_.fetch_add(1, std::memory_order_relaxed);
  NearestNeighborResult result;
  IoStats io;
  result.neighbors = scanner_.FindKNearest(target, family, k, &io);
  result.guaranteed_exact = true;  // The scan evaluated every transaction.
  result.unexplored_optimistic_bound =
      -std::numeric_limits<double>::infinity();
  result.best_unscanned_bound = -std::numeric_limits<double>::infinity();
  result.stats.database_size = database_->size();
  result.stats.transactions_evaluated = database_->size();
  result.stats.io = io;
  result.stats.sequential_fallbacks = 1;
  return result;
}

RangeQueryResult SignatureTableEngine::SequentialInRange(
    const Transaction& target, const SimilarityFamily& family,
    double threshold) const {
  fallback_queries_.fetch_add(1, std::memory_order_relaxed);
  RangeQueryResult result;
  result.matches = scanner_.FindInRange(target, family, threshold);
  result.guaranteed_complete = true;
  result.stats.database_size = database_->size();
  result.stats.transactions_evaluated = database_->size();
  result.stats.sequential_fallbacks = 1;
  return result;
}

NearestNeighborResult SignatureTableEngine::FindKNearest(
    const Transaction& target, const SimilarityFamily& family, size_t k,
    const SearchOptions& options, QueryContext* context) const {
  if (!healthy()) return SequentialKNearest(target, family, k);
  if (context != nullptr) {
    return engine_->FindKNearest(target, family, k, options, context);
  }
  return engine_->FindKNearest(target, family, k, options);
}

RangeQueryResult SignatureTableEngine::FindInRange(
    const Transaction& target, const SimilarityFamily& family,
    double threshold, const SearchOptions& options) const {
  if (!healthy()) return SequentialInRange(target, family, threshold);
  return engine_->FindInRange(target, family, threshold, options);
}

}  // namespace mbi
