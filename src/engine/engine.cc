#include "engine/engine.h"

#include <limits>
#include <utility>

#include "core/batch_query.h"

namespace mbi {

SignatureTableEngine::SignatureTableEngine(const TransactionDatabase* database)
    : database_(database), scanner_(database, &layout_) {
  // After the scanner's null check: the layout address handed to the
  // scanner stays valid across this assignment.
  layout_ = CandidateLayout::Build(*database_);
}

Status SignatureTableEngine::OpenIndex(const std::string& path, Env* env) {
  StatusOr<SignatureTable> loaded = LoadSignatureTable(path, *database_, env);
  if (loaded.ok()) {
    AdoptTable(std::move(loaded).value());
    return Status::Ok();
  }
  if (loaded.status().code() == StatusCode::kCorruption) {
    engine_.reset();
    table_.reset();
    {
      MutexLock lock(&state_mu_);
      quarantined_ = true;
      quarantine_reason_ = loaded.status();
    }
    if (metrics_enabled_) metrics_.quarantined->Set(1.0);
  }
  return loaded.status();
}

void SignatureTableEngine::AdoptTable(SignatureTable table) {
  engine_.reset();  // Points into the old table; drop it first.
  table_.emplace(std::move(table));
  table_->set_metrics(metrics_registry_);
  // Refresh the shared candidate layout when the database outgrew it, so a
  // rebuilt index queries at full kernel speed again.
  if (layout_.num_rows() < database_->size()) {
    layout_ = CandidateLayout::Build(*database_);
  }
  engine_.emplace(database_, &*table_, &layout_);
  {
    MutexLock lock(&state_mu_);
    quarantined_ = false;
    quarantine_reason_ = Status::Ok();
  }
  if (metrics_enabled_) metrics_.quarantined->Set(0.0);
}

void SignatureTableEngine::set_metrics(MetricsRegistry* registry) {
  metrics_registry_ = registry;
  scanner_.set_metrics(registry);
  if (table_.has_value()) table_->set_metrics(registry);
  if (registry == nullptr) {
    metrics_ = MetricHandles{};
    metrics_enabled_ = false;
    return;
  }
  metrics_.knn_queries = registry->GetCounter(
      "mbi.engine.query.knn", "queries", "k-NN queries answered");
  metrics_.range_queries = registry->GetCounter(
      "mbi.engine.query.range", "queries", "range queries answered");
  metrics_.fallbacks =
      registry->GetCounter("mbi.engine.query.fallback", "queries",
                           "queries served by the sequential fallback");
  metrics_.entries_considered =
      registry->GetCounter("mbi.engine.entries.considered", "entries",
                           "occupied table entries considered");
  metrics_.entries_scanned = registry->GetCounter(
      "mbi.engine.entries.scanned", "entries", "table entries scanned");
  metrics_.entries_pruned =
      registry->GetCounter("mbi.engine.entries.pruned", "entries",
                           "table entries pruned by the optimistic bound");
  metrics_.entries_unexplored =
      registry->GetCounter("mbi.engine.entries.unexplored", "entries",
                           "table entries left unexplored at termination");
  metrics_.transactions_evaluated =
      registry->GetCounter("mbi.engine.transactions.evaluated", "transactions",
                           "transactions fetched and scored");
  metrics_.pages_read = registry->GetCounter(
      "mbi.engine.io.pages_read", "pages", "physical page reads by queries");
  metrics_.pages_cached =
      registry->GetCounter("mbi.engine.io.pages_cached", "pages",
                           "page reads served from cache by queries");
  metrics_.bytes_read = registry->GetCounter(
      "mbi.engine.io.bytes_read", "bytes", "bytes read by queries");
  metrics_.transactions_fetched =
      registry->GetCounter("mbi.engine.io.transactions_fetched", "transactions",
                           "transaction fetches from the simulated disk");
  metrics_.knn_latency = registry->GetHistogram("mbi.engine.latency.knn", "us",
                                                "k-NN query latency");
  metrics_.range_latency = registry->GetHistogram(
      "mbi.engine.latency.range", "us", "range query latency");
  metrics_.quarantined = registry->GetGauge(
      "mbi.engine.quarantined", "bool", "1 while the index is quarantined");
  metrics_.quarantined->Set(quarantined() ? 1.0 : 0.0);
  metrics_.degraded =
      registry->GetCounter("mbi.engine.query.degraded", "queries",
                           "queries answered with a certified non-exact "
                           "(budget- or fraction-limited) result");
  metrics_.deadline_expired =
      registry->GetCounter("mbi.engine.query.deadline_expired", "queries",
                           "queries cut short by a QueryBudget deadline");
  metrics_.cancelled =
      registry->GetCounter("mbi.engine.query.cancelled", "queries",
                           "queries cut short by a cancellation token");
  metrics_enabled_ = true;
}

void SignatureTableEngine::RecordQueryStats(const QueryStats& stats,
                                            bool is_range) const {
  (is_range ? metrics_.range_queries : metrics_.knn_queries)->Increment();
  if (stats.sequential_fallbacks > 0) {
    metrics_.fallbacks->Increment(stats.sequential_fallbacks);
  }
  metrics_.entries_considered->Increment(stats.entries_total);
  metrics_.entries_scanned->Increment(stats.entries_scanned);
  metrics_.entries_pruned->Increment(stats.entries_pruned);
  metrics_.entries_unexplored->Increment(stats.entries_unexplored);
  metrics_.transactions_evaluated->Increment(stats.transactions_evaluated);
  metrics_.pages_read->Increment(stats.io.pages_read);
  metrics_.pages_cached->Increment(stats.io.pages_cached);
  metrics_.bytes_read->Increment(stats.io.bytes_read);
  metrics_.transactions_fetched->Increment(stats.io.transactions_fetched);
  if (!stats.is_exact) metrics_.degraded->Increment();
  if (stats.termination == QueryTermination::kDeadline) {
    metrics_.deadline_expired->Increment();
  } else if (stats.termination == QueryTermination::kCancelled) {
    metrics_.cancelled->Increment();
  }
}

void SignatureTableEngine::RecordQuery(const QueryStats& stats, bool is_range,
                                       double elapsed_us) const {
  RecordQueryStats(stats, is_range);
  (is_range ? metrics_.range_latency : metrics_.knn_latency)
      ->Record(elapsed_us);
}

NearestNeighborResult SignatureTableEngine::SequentialKNearest(
    const Transaction& target, const SimilarityFamily& family, size_t k,
    const QueryBudget& budget) const {
  fallback_queries_.fetch_add(1, std::memory_order_relaxed);
  // The budget-aware scanner fills the complete QueryStats — including the
  // termination / is_exact / certificate_bound trio, which an earlier
  // version of this path silently dropped by rebuilding the stats by hand
  // (query_budget_test pins the regression).
  NearestNeighborResult result;
  scanner_.FindKNearest(target, family, k, budget, &result);
  result.stats.sequential_fallbacks = 1;
  return result;
}

RangeQueryResult SignatureTableEngine::SequentialInRange(
    const Transaction& target, const SimilarityFamily& family,
    double threshold, const QueryBudget& budget) const {
  fallback_queries_.fetch_add(1, std::memory_order_relaxed);
  RangeQueryResult result;
  scanner_.FindInRange(target, family, threshold, budget, &result);
  result.stats.sequential_fallbacks = 1;
  return result;
}

NearestNeighborResult SignatureTableEngine::FindKNearestImpl(
    const Transaction& target, const SimilarityFamily& family, size_t k,
    const SearchOptions& options, QueryContext* context) const {
  if (!healthy()) {
    // Same tightest-wins budget merge the branch-and-bound path applies.
    return SequentialKNearest(
        target, family, k,
        context != nullptr
            ? QueryBudget::Tightest(options.budget, context->budget())
            : options.budget);
  }
  if (context != nullptr) {
    return engine_->FindKNearest(target, family, k, options, context);
  }
  return engine_->FindKNearest(target, family, k, options);
}

NearestNeighborResult SignatureTableEngine::FindKNearest(
    const Transaction& target, const SimilarityFamily& family, size_t k,
    const SearchOptions& options, QueryContext* context) const {
  if (!metrics_enabled_) {
    return FindKNearestImpl(target, family, k, options, context);
  }
  ScopedTimer timer(nullptr);
  NearestNeighborResult result =
      FindKNearestImpl(target, family, k, options, context);
  RecordQuery(result.stats, /*is_range=*/false, timer.ElapsedUs());
  return result;
}

RangeQueryResult SignatureTableEngine::FindInRangeImpl(
    const Transaction& target, const SimilarityFamily& family,
    double threshold, const SearchOptions& options) const {
  if (!healthy()) {
    return SequentialInRange(target, family, threshold, options.budget);
  }
  return engine_->FindInRange(target, family, threshold, options);
}

RangeQueryResult SignatureTableEngine::FindInRange(
    const Transaction& target, const SimilarityFamily& family,
    double threshold, const SearchOptions& options) const {
  if (!metrics_enabled_) {
    return FindInRangeImpl(target, family, threshold, options);
  }
  ScopedTimer timer(nullptr);
  RangeQueryResult result = FindInRangeImpl(target, family, threshold, options);
  RecordQuery(result.stats, /*is_range=*/true, timer.ElapsedUs());
  return result;
}

std::vector<NearestNeighborResult> SignatureTableEngine::FindKNearestBatch(
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    size_t k, const SearchOptions& options, size_t num_threads,
    ThreadPool* pool) const {
  std::vector<NearestNeighborResult> results;
  if (healthy()) {
    results = mbi::FindKNearestBatch(*engine_, targets, family, k, options,
                                     num_threads, pool);
  } else {
    // Degraded mode: answer each target exactly via the scanner. Parallelism
    // is not worth preserving here — the whole mode exists to limp along
    // until the index is rebuilt.
    results.reserve(targets.size());
    for (const Transaction& target : targets) {
      results.push_back(SequentialKNearest(target, family, k, options.budget));
    }
  }
  if (metrics_enabled_) {
    // Per-query wall time is not observable inside the fan-out, so the batch
    // records counters only; the latency histograms stay single-query.
    for (const NearestNeighborResult& result : results) {
      RecordQueryStats(result.stats, /*is_range=*/false);
    }
  }
  return results;
}

StatusOr<std::vector<NearestNeighborResult>>
SignatureTableEngine::FindKNearestBatchAdmitted(
    AdmissionController* controller, const std::vector<Transaction>& targets,
    const SimilarityFamily& family, size_t k, const SearchOptions& options,
    size_t num_threads, ThreadPool* pool) const {
  MBI_CHECK(controller != nullptr);
  SearchOptions admitted = options;
  AdmissionSlot slot(controller, &admitted.budget);
  if (!slot.ok()) return slot.status();
  return FindKNearestBatch(targets, family, k, admitted, num_threads, pool);
}

}  // namespace mbi
