#include "engine/admission.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "util/macros.h"

namespace mbi {

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : DeadlineClock::Real()) {
  MBI_CHECK_MSG(options_.max_in_flight >= 1,
                "max_in_flight must be at least 1");
}

void AdmissionController::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = MetricHandles{};
    metrics_enabled_ = false;
    return;
  }
  metrics_.admitted = registry->GetCounter(
      "mbi.admission.admitted", "requests", "requests granted a token");
  metrics_.shed = registry->GetCounter(
      "mbi.admission.shed", "requests",
      "requests rejected with kUnavailable (queue full or wait timeout)");
  metrics_.degraded = registry->GetCounter(
      "mbi.admission.degraded", "requests",
      "admitted requests whose budget deadline was tightened by queueing");
  metrics_.queue_wait = registry->GetHistogram(
      "mbi.admission.queue_wait", "us", "time from arrival to token grant");
  metrics_.in_flight = registry->GetGauge(
      "mbi.admission.in_flight", "requests", "tokens currently held");
  metrics_.queue_depth = registry->GetGauge(
      "mbi.admission.queue_depth", "requests", "requests waiting for a token");
  metrics_enabled_ = true;
}

Status AdmissionController::Shed(const char* reason,
                                 size_t depth_at_rejection) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_enabled_) metrics_.shed->Increment();
  // Hint scales with how deep the backlog was when this request bounced:
  // the deeper the queue, the longer the drain, the later the retry.
  const double hint_ms =
      options_.retry_after_ms *
      (1.0 + static_cast<double>(depth_at_rejection));
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "%s; retry_after_ms=%.3f", reason,
                hint_ms);
  return Status::Unavailable(buffer);
}

Status AdmissionController::Admit(QueryBudget* budget) {
  const double enqueue_us = clock_->NowUs();
  bool queued = false;
  {
    MutexLock lock(&mu_);
    if (in_flight_ >= options_.max_in_flight) {
      if (queue_depth_ >= options_.max_queue_depth) {
        return Shed("admission queue full", queue_depth_);
      }
      queued = true;
      ++queue_depth_;
      if (metrics_enabled_) {
        metrics_.queue_depth->Set(static_cast<double>(queue_depth_));
      }
      // Patience is an absolute deadline on the (mockable) admission clock;
      // the cv wait itself is a relative duration, re-derived every lap so
      // spurious wakeups never extend the total wait.
      const double wait_deadline_us =
          enqueue_us + options_.max_queue_wait_ms * 1000.0;
      while (in_flight_ >= options_.max_in_flight) {
        const double now_us = clock_->NowUs();
        if (now_us >= wait_deadline_us) {
          --queue_depth_;
          if (metrics_enabled_) {
            metrics_.queue_depth->Set(static_cast<double>(queue_depth_));
          }
          return Shed("admission wait timed out", queue_depth_);
        }
        token_free_.WaitFor(&mu_, (wait_deadline_us - now_us) / 1000.0);
      }
      --queue_depth_;
      if (metrics_enabled_) {
        metrics_.queue_depth->Set(static_cast<double>(queue_depth_));
      }
    }
    ++in_flight_;
    if (metrics_enabled_) {
      metrics_.in_flight->Set(static_cast<double>(in_flight_));
    }
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  const double waited_us = clock_->NowUs() - enqueue_us;
  if (metrics_enabled_) {
    metrics_.admitted->Increment();
    metrics_.queue_wait->Record(std::max(waited_us, 0.0));
  }
  // Stage one of the shedding ladder: a request that had to queue has
  // already spent part of its latency goal, so cap how much work the engine
  // may still do for it — it answers degraded-but-certified instead of late.
  if (queued && options_.degraded_deadline_ms > 0.0 && budget != nullptr) {
    // Measure the tightened deadline on the budget's own clock when it has
    // one (so a ManualClock query stays fully scripted); otherwise stamp the
    // admission clock into the budget so the deadline and its checks agree.
    const DeadlineClock* budget_clock =
        budget->clock != nullptr ? budget->clock : clock_;
    QueryBudget tightened;
    tightened.clock = budget_clock;
    tightened.deadline_us =
        budget_clock->NowUs() + options_.degraded_deadline_ms * 1000.0;
    const double before = budget->deadline_us;
    *budget = QueryBudget::Tightest(*budget, tightened);
    if (budget->deadline_us < before) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_enabled_) metrics_.degraded->Increment();
    }
  }
  return Status::Ok();
}

void AdmissionController::Release() {
  {
    MutexLock lock(&mu_);
    MBI_CHECK_MSG(in_flight_ > 0, "Release without a matching Admit");
    --in_flight_;
    if (metrics_enabled_) {
      metrics_.in_flight->Set(static_cast<double>(in_flight_));
    }
  }
  token_free_.NotifyOne();
}

}  // namespace mbi
