#include "core/signature_table.h"

#include <algorithm>
#include <unordered_map>

#include "util/macros.h"

namespace mbi {

SignatureTable::SignatureTable(
    SignaturePartition partition, SignatureTableConfig config,
    std::vector<Entry> entries,
    std::vector<Supercoordinate> coordinate_of_transaction,
    TransactionStore store)
    : partition_(std::move(partition)),
      config_(config),
      entries_(std::move(entries)),
      coordinate_of_transaction_(std::move(coordinate_of_transaction)),
      store_(std::move(store)) {
  coordinates_.reserve(entries_.size());
  for (const Entry& entry : entries_) coordinates_.push_back(entry.coordinate);
}

SignatureTable SignatureTable::Build(const TransactionDatabase& database,
                                     SignaturePartition partition,
                                     const SignatureTableConfig& config) {
  MBI_CHECK(config.activation_threshold >= 1);
  MBI_CHECK(partition.universe_size() == database.universe_size());

  // Map each transaction to its supercoordinate.
  std::vector<Supercoordinate> coordinate_of(database.size());
  for (TransactionId id = 0; id < database.size(); ++id) {
    coordinate_of[id] = ComputeSupercoordinate(
        database.Get(id), partition, config.activation_threshold);
  }

  // Dense bucket ids for the occupied supercoordinates, ascending by
  // coordinate value for determinism.
  std::vector<Supercoordinate> occupied = coordinate_of;
  std::sort(occupied.begin(), occupied.end());
  occupied.erase(std::unique(occupied.begin(), occupied.end()),
                 occupied.end());

  std::unordered_map<Supercoordinate, uint32_t> bucket_of_coordinate;
  bucket_of_coordinate.reserve(occupied.size() * 2);
  for (uint32_t bucket = 0; bucket < occupied.size(); ++bucket) {
    bucket_of_coordinate[occupied[bucket]] = bucket;
  }

  std::vector<uint32_t> bucket_of(database.size());
  std::vector<Entry> entries(occupied.size());
  for (uint32_t bucket = 0; bucket < occupied.size(); ++bucket) {
    entries[bucket].coordinate = occupied[bucket];
    entries[bucket].bucket = bucket;
  }
  for (TransactionId id = 0; id < database.size(); ++id) {
    uint32_t bucket = bucket_of_coordinate.at(coordinate_of[id]);
    bucket_of[id] = bucket;
    ++entries[bucket].transaction_count;
  }

  TransactionStore store = TransactionStore::BuildBucketed(
      database, bucket_of, static_cast<uint32_t>(occupied.size()),
      config.page_size_bytes);

  return SignatureTable(std::move(partition), config, std::move(entries),
                        std::move(coordinate_of), std::move(store));
}

Supercoordinate SignatureTable::CoordinateOfTransaction(
    TransactionId id) const {
  MBI_CHECK(id < coordinate_of_transaction_.size());
  return coordinate_of_transaction_[id];
}

std::vector<TransactionId> SignatureTable::FetchEntryTransactions(
    size_t entry_index, IoStats* stats) const {
  MBI_CHECK(entry_index < entries_.size());
  return store_.FetchBucket(entries_[entry_index].bucket, stats);
}

MBI_HOT void SignatureTable::FetchEntryTransactions(
    size_t entry_index, IoStats* stats, std::vector<TransactionId>* ids) const {
  MBI_CHECK(entry_index < entries_.size());
  store_.FetchBucket(entries_[entry_index].bucket, stats, ids);
}

const std::vector<PageId>& SignatureTable::PagesOfEntry(
    size_t entry_index) const {
  MBI_CHECK(entry_index < entries_.size());
  return store_.PagesOfBucket(entries_[entry_index].bucket);
}

void SignatureTable::InsertTransaction(TransactionId id,
                                       const Transaction& transaction) {
  MBI_CHECK_MSG(id == coordinate_of_transaction_.size(),
                "transactions must be inserted in database id order");
  Supercoordinate coordinate = ComputeSupercoordinate(
      transaction, partition_, config_.activation_threshold);
  coordinate_of_transaction_.push_back(coordinate);

  // Locate (or create) the directory entry, keeping `entries_` sorted by
  // coordinate while bucket ids stay stable.
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), coordinate,
      [](const Entry& entry, Supercoordinate value) {
        return entry.coordinate < value;
      });
  if (it == entries_.end() || it->coordinate != coordinate) {
    Entry fresh;
    fresh.coordinate = coordinate;
    fresh.bucket = store_.AddBucket();
    it = entries_.insert(it, fresh);
    coordinates_.insert(coordinates_.begin() + (it - entries_.begin()),
                        coordinate);
  }
  ++it->transaction_count;
  store_.AppendToBucket(it->bucket, id,
                        PageStore::SerializedSize(transaction));
}

SignatureTable::Stats SignatureTable::ComputeStats() const {
  Stats stats;
  stats.cardinality = cardinality();
  stats.directory_entries = uint64_t{1} << cardinality();
  stats.occupied_entries = entries_.size();
  stats.num_transactions = coordinate_of_transaction_.size();
  for (const Entry& entry : entries_) {
    stats.max_bucket_size =
        std::max<uint64_t>(stats.max_bucket_size, entry.transaction_count);
  }
  if (!entries_.empty()) {
    stats.avg_bucket_size = static_cast<double>(stats.num_transactions) /
                            static_cast<double>(entries_.size());
  }
  stats.disk_pages = store_.page_store().size();
  stats.directory_bytes = MemoryFootprintBytes();
  return stats;
}

void SignatureTable::CheckInvariants(
    const TransactionDatabase* database) const {
  MBI_CHECK_GE(config_.activation_threshold, 1);
  partition_.CheckInvariants();

  const uint64_t num_transactions = coordinate_of_transaction_.size();
  MBI_CHECK_EQ(num_transactions, store_.num_transactions());
  const Supercoordinate directory_size = Supercoordinate{1}
                                         << partition_.cardinality();

  // Directory shape: strictly sorted coordinates inside the 2^K range,
  // valid and mutually distinct bucket references, and the dense coordinate
  // mirror (for the SIMD bounds kernel) in lockstep with the entries.
  MBI_CHECK_EQ(coordinates_.size(), entries_.size());
  std::vector<bool> bucket_used(store_.num_buckets(), false);
  uint64_t counted = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (i > 0) MBI_CHECK_LT(entries_[i - 1].coordinate, entry.coordinate);
    MBI_CHECK_LT(entry.coordinate, directory_size);
    MBI_CHECK_EQ(coordinates_[i], entry.coordinate);
    MBI_CHECK_LT(entry.bucket, store_.num_buckets());
    MBI_CHECK_MSG(!bucket_used[entry.bucket],
                  "two directory entries share a bucket");
    bucket_used[entry.bucket] = true;
    MBI_CHECK_GT(entry.transaction_count, 0u);
    counted += entry.transaction_count;
  }
  MBI_CHECK_EQ(counted, num_transactions);

  // Bucket contents: each entry's on-disk list holds exactly the
  // transactions whose supercoordinate equals the entry's coordinate, and
  // every transaction appears exactly once across all buckets.
  std::vector<bool> seen(num_transactions, false);
  for (const Entry& entry : entries_) {
    std::vector<TransactionId> ids =
        store_.FetchBucket(entry.bucket, /*stats=*/nullptr);
    MBI_CHECK_EQ(ids.size(), static_cast<size_t>(entry.transaction_count));
    for (TransactionId id : ids) {
      MBI_CHECK_LT(id, num_transactions);
      MBI_CHECK_MSG(!seen[id], "transaction indexed in two buckets");
      seen[id] = true;
      MBI_CHECK_EQ(coordinate_of_transaction_[id], entry.coordinate);
    }
  }

  // Activation counts match the supercoordinate decomposition: recomputing
  // each transaction's coordinate from the raw items must reproduce the
  // stored assignment (paper §3 — bit j set iff |T ∩ S_j| >= r).
  if (database != nullptr) {
    MBI_CHECK_EQ(static_cast<uint64_t>(database->size()), num_transactions);
    MBI_CHECK_EQ(partition_.universe_size(), database->universe_size());
    for (TransactionId id = 0; id < num_transactions; ++id) {
      const Transaction& transaction = database->Get(id);
      std::vector<int> counts = partition_.CountsPerSignature(transaction);
      Supercoordinate recomputed =
          SupercoordinateFromCounts(counts, config_.activation_threshold);
      MBI_CHECK_EQ(coordinate_of_transaction_[id], recomputed);
    }
  }
}

SignatureTable SignatureTable::Assemble(
    SignaturePartition partition, SignatureTableConfig config,
    std::vector<Entry> entries,
    std::vector<Supercoordinate> coordinate_of_transaction,
    TransactionStore store) {
  MBI_CHECK(config.activation_threshold >= 1);
  MBI_CHECK(coordinate_of_transaction.size() == store.num_transactions());
  uint64_t total = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) {
      MBI_CHECK_MSG(entries[i - 1].coordinate < entries[i].coordinate,
                    "entries must be sorted by supercoordinate");
    }
    MBI_CHECK_MSG(entries[i].coordinate <
                      (Supercoordinate{1} << partition.cardinality()),
                  "entry coordinate outside the 2^K directory");
    MBI_CHECK_MSG(entries[i].bucket < store.num_buckets(),
                  "entry references a missing bucket");
    total += entries[i].transaction_count;
  }
  MBI_CHECK_MSG(total == coordinate_of_transaction.size(),
                "entry counts do not sum to the transaction count");
  return SignatureTable(std::move(partition), config, std::move(entries),
                        std::move(coordinate_of_transaction),
                        std::move(store));
}

uint64_t SignatureTable::MemoryFootprintBytes() const {
  // The paper's model: one main-memory slot (a pointer to the page list) per
  // possible supercoordinate.
  return (uint64_t{1} << cardinality()) * sizeof(void*);
}

}  // namespace mbi
