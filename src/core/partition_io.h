#ifndef MBI_CORE_PARTITION_IO_H_
#define MBI_CORE_PARTITION_IO_H_

#include <string>

#include "core/signature_partition.h"
#include "storage/env.h"
#include "util/status.h"

namespace mbi {

/// Persists a signature partition. Clustering is the expensive, data-scan
/// phase of index construction (it needs the pair-support mine); persisting
/// the partition lets deployments rebuild the fast part of the table (the
/// supercoordinate mapping) without re-mining, and lets several processes
/// share one partition. Written in the durable artifact container (magic
/// "MBSP", checksummed sections, atomic rename — see storage/format.h).
[[nodiscard]] Status SavePartition(const SignaturePartition& partition,
                                   const std::string& path,
                                   Env* env = Env::Default());

/// Loads a partition written by SavePartition (v2 container or the unframed
/// v1 seed format). Errors: kNotFound, kCorruption (bad magic / checksum /
/// truncation / out-of-range signature), kIoError.
[[nodiscard]] StatusOr<SignaturePartition> LoadPartition(
    const std::string& path, Env* env = Env::Default());

}  // namespace mbi

#endif  // MBI_CORE_PARTITION_IO_H_
