#ifndef MBI_CORE_PARTITION_IO_H_
#define MBI_CORE_PARTITION_IO_H_

#include <optional>
#include <string>

#include "core/signature_partition.h"

namespace mbi {

/// Persists a signature partition. Clustering is the expensive, data-scan
/// phase of index construction (it needs the pair-support mine); persisting
/// the partition lets deployments rebuild the fast part of the table (the
/// supercoordinate mapping) without re-mining, and lets several processes
/// share one partition.
bool SavePartition(const SignaturePartition& partition,
                   const std::string& path);

/// Loads a partition written by SavePartition. Returns nullopt on I/O
/// failure or malformed input.
std::optional<SignaturePartition> LoadPartition(const std::string& path);

}  // namespace mbi

#endif  // MBI_CORE_PARTITION_IO_H_
