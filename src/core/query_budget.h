#ifndef MBI_CORE_QUERY_BUDGET_H_
#define MBI_CORE_QUERY_BUDGET_H_

// Cooperative per-query resource budget: a wall-clock deadline, an
// entry-scan cap, and a cancellation token. Carried by value in
// SearchOptions (and optionally pinned on a QueryContext for session-wide
// defaults); the engines check it at entry granularity and, on expiry,
// return a *certified degraded answer* instead of crashing or blocking —
// QueryStats::termination / certificate_bound record what was given up
// (paper §4's a-posteriori quality guarantee).
//
// All fields are plain data; a default-constructed budget is unlimited and
// costs one branch per check, which keeps the MBI_HOT paths honest.

#include <atomic>
#include <cstdint>
#include <limits>

#include "util/deadline_clock.h"

namespace mbi {

struct QueryBudget {
  /// Absolute deadline in the clock's NowUs() timeline; +inf = none.
  double deadline_us = std::numeric_limits<double>::infinity();

  /// Maximum entries this query may scan before it must return whatever it
  /// has, counted in the path's scan unit: occupied signature-table entries
  /// on the indexed path, candidate rows on the scan/re-rank paths (which
  /// check at 256-row chunk boundaries, so they may overshoot by at most
  /// 255 rows — DESIGN.md §13.4).
  uint64_t max_entries = std::numeric_limits<uint64_t>::max();

  /// Cooperative cancellation: the query gives up (with a certified partial
  /// answer) at its next check after the flag becomes true. Not owned; must
  /// outlive the query. Null = not cancellable.
  const std::atomic<bool>* cancel = nullptr;

  /// Clock the deadline is measured against. Null = DeadlineClock::Real().
  /// Tests inject a ManualClock here to script expiry deterministically.
  const DeadlineClock* clock = nullptr;

  /// True when any limit is set — lets hot loops hoist "budget can never
  /// trip" out of the per-entry check.
  bool limited() const {
    return deadline_us != std::numeric_limits<double>::infinity() ||
           max_entries != std::numeric_limits<uint64_t>::max() ||
           cancel != nullptr;
  }

  const DeadlineClock* effective_clock() const {
    return clock != nullptr ? clock : DeadlineClock::Real();
  }

  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }

  bool deadline_expired() const {
    return deadline_us != std::numeric_limits<double>::infinity() &&
           effective_clock()->NowUs() >= deadline_us;
  }

  /// Budget with an absolute deadline `ms` milliseconds from `clock`'s now
  /// (other limits unlimited). Non-positive `ms` means already expired.
  static QueryBudget WithDeadlineAfterMs(double ms,
                                         const DeadlineClock* clock = nullptr) {
    QueryBudget budget;
    budget.clock = clock;
    budget.deadline_us = budget.effective_clock()->NowUs() + ms * 1000.0;
    return budget;
  }

  /// Tightest-wins merge of two budgets (used when both SearchOptions and
  /// the QueryContext carry one). A non-null clock in `a` wins, else `b`'s;
  /// two distinct cancel tokens cannot be merged without allocation, so `a`'s
  /// token wins when both are set.
  static QueryBudget Tightest(const QueryBudget& a, const QueryBudget& b) {
    QueryBudget merged;
    merged.deadline_us = a.deadline_us < b.deadline_us ? a.deadline_us
                                                       : b.deadline_us;
    merged.max_entries =
        a.max_entries < b.max_entries ? a.max_entries : b.max_entries;
    merged.cancel = a.cancel != nullptr ? a.cancel : b.cancel;
    merged.clock = a.clock != nullptr ? a.clock : b.clock;
    return merged;
  }
};

}  // namespace mbi

#endif  // MBI_CORE_QUERY_BUDGET_H_
