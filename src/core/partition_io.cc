#include "core/partition_io.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace mbi {
namespace {

constexpr uint32_t kMagic = 0x4D425350;  // "MBSP"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(FILE* file) const {
    if (file != nullptr) std::fclose(file);
  }
};
using FileHandle = std::unique_ptr<FILE, FileCloser>;

}  // namespace

bool SavePartition(const SignaturePartition& partition,
                   const std::string& path) {
  FileHandle file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) return false;
  const uint32_t header[4] = {kMagic, kVersion, partition.cardinality(),
                              partition.universe_size()};
  if (std::fwrite(header, sizeof(uint32_t), 4, file.get()) != 4) return false;
  std::vector<uint32_t> signature_of_item(partition.universe_size());
  for (ItemId item = 0; item < partition.universe_size(); ++item) {
    signature_of_item[item] = partition.SignatureOf(item);
  }
  if (std::fwrite(signature_of_item.data(), sizeof(uint32_t),
                  signature_of_item.size(),
                  file.get()) != signature_of_item.size()) {
    return false;
  }
  return std::fflush(file.get()) == 0;
}

std::optional<SignaturePartition> LoadPartition(const std::string& path) {
  FileHandle file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) return std::nullopt;
  uint32_t header[4];
  if (std::fread(header, sizeof(uint32_t), 4, file.get()) != 4) {
    return std::nullopt;
  }
  if (header[0] != kMagic || header[1] != kVersion) return std::nullopt;
  const uint32_t cardinality = header[2];
  const uint32_t universe = header[3];
  if (cardinality == 0 || cardinality > SignaturePartition::kMaxCardinality ||
      universe == 0) {
    return std::nullopt;
  }
  std::vector<uint32_t> signature_of_item(universe);
  if (std::fread(signature_of_item.data(), sizeof(uint32_t), universe,
                 file.get()) != universe) {
    return std::nullopt;
  }
  for (uint32_t s : signature_of_item) {
    if (s >= cardinality) return std::nullopt;
  }
  return SignaturePartition(cardinality, std::move(signature_of_item));
}

}  // namespace mbi
