#include "core/partition_io.h"

#include <cstdint>
#include <vector>

#include "storage/format.h"

namespace mbi {
namespace {

// v2 section ids.
constexpr uint32_t kSectionMeta = 1;        // cardinality u32, universe u32
constexpr uint32_t kSectionAssignment = 2;  // u32 span: signature per item

/// Shared structural validation; rejects what SignaturePartition's
/// constructor would abort on.
Status ValidatePartition(const std::string& path, uint32_t cardinality,
                         uint32_t universe,
                         const std::vector<uint32_t>& signature_of_item) {
  if (cardinality == 0 || cardinality > SignaturePartition::kMaxCardinality) {
    return Status::Corruption(path + ": cardinality " +
                              std::to_string(cardinality) +
                              " outside [1, " +
                              std::to_string(SignaturePartition::kMaxCardinality) +
                              "]");
  }
  if (universe == 0) return Status::Corruption(path + ": zero universe size");
  if (signature_of_item.size() != universe) {
    return Status::Corruption(path + ": assignment covers " +
                              std::to_string(signature_of_item.size()) +
                              " items, header declares " +
                              std::to_string(universe));
  }
  for (uint32_t signature : signature_of_item) {
    if (signature >= cardinality) {
      return Status::Corruption(path + ": item assigned to signature " +
                                std::to_string(signature) + " >= cardinality " +
                                std::to_string(cardinality));
    }
  }
  return Status::Ok();
}

}  // namespace

Status SavePartition(const SignaturePartition& partition,
                     const std::string& path, Env* env) {
  ArtifactWriter writer(env, path, kPartitionMagic);
  MBI_RETURN_IF_ERROR(writer.Open());

  writer.BeginSection(kSectionMeta);
  writer.PutU32(partition.cardinality());
  writer.PutU32(partition.universe_size());
  MBI_RETURN_IF_ERROR(writer.EndSection());

  std::vector<uint32_t> signature_of_item(partition.universe_size());
  for (ItemId item = 0; item < partition.universe_size(); ++item) {
    signature_of_item[item] = partition.SignatureOf(item);
  }
  writer.BeginSection(kSectionAssignment);
  writer.PutU32Span(signature_of_item.data(), signature_of_item.size());
  MBI_RETURN_IF_ERROR(writer.EndSection());

  return writer.Commit();
}

StatusOr<SignaturePartition> LoadPartition(const std::string& path, Env* env) {
  MBI_ASSIGN_OR_RETURN(ArtifactReader reader,
                       ArtifactReader::Open(env, path, kPartitionMagic));

  uint32_t cardinality = 0, universe = 0;
  std::vector<uint32_t> signature_of_item;
  if (reader.version() == kFormatVersionDurable) {
    MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> meta,
                         reader.ReadSection(kSectionMeta, "meta"));
    SectionParser meta_parser(meta, path + ": section 'meta'");
    MBI_RETURN_IF_ERROR(meta_parser.ReadU32(&cardinality));
    MBI_RETURN_IF_ERROR(meta_parser.ReadU32(&universe));
    MBI_RETURN_IF_ERROR(meta_parser.ExpectConsumed());

    MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                         reader.ReadSection(kSectionAssignment, "assignment"));
    MBI_RETURN_IF_ERROR(reader.ExpectEnd());
    SectionParser parser(body, path + ": section 'assignment'");
    MBI_RETURN_IF_ERROR(parser.ReadU32Vector(universe, &signature_of_item));
    MBI_RETURN_IF_ERROR(parser.ExpectConsumed());
  } else {
    // Legacy v1: cardinality u32, universe u32, then `universe` raw u32s with
    // no count prefix.
    MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> body, reader.ReadRemainder());
    SectionParser parser(body, path);
    MBI_RETURN_IF_ERROR(parser.ReadU32(&cardinality));
    MBI_RETURN_IF_ERROR(parser.ReadU32(&universe));
    if (universe == 0) return Status::Corruption(path + ": zero universe size");
    if (parser.remaining() < uint64_t{universe} * sizeof(uint32_t)) {
      return Status::Corruption(path + ": assignment truncated");
    }
    signature_of_item.resize(universe);
    MBI_RETURN_IF_ERROR(parser.ReadBytes(signature_of_item.data(),
                                         universe * sizeof(uint32_t)));
    MBI_RETURN_IF_ERROR(parser.ExpectConsumed());
  }

  MBI_RETURN_IF_ERROR(
      ValidatePartition(path, cardinality, universe, signature_of_item));
  return SignaturePartition(cardinality, std::move(signature_of_item));
}

}  // namespace mbi
