#ifndef MBI_CORE_SIMILARITY_H_
#define MBI_CORE_SIMILARITY_H_

#include <functional>
#include <memory>
#include <string>

#include "txn/transaction.h"

namespace mbi {

/// A similarity function f(x, y) over the number of matches x and the Hamming
/// distance y between two transactions (paper Section 2).
///
/// The branch-and-bound engine accepts *any* function satisfying the paper's
/// two monotonicity constraints:
///
///     df/dx >= 0   (more matches never decrease similarity)
///     df/dy <= 0   (larger Hamming distance never increases similarity)
///
/// Lemma 2.1: under these constraints, if `alpha >= x` and `beta <= y`, then
/// `f(alpha, beta) >= f(x, y)` — which is what makes f(M_opt, D_opt) a valid
/// optimistic bound for a signature table entry.
///
/// Implementations must be monotone over the whole integer domain x >= 0,
/// y >= 0 (including combinations that cannot occur between real
/// transactions), because bound evaluation feeds in the per-entry optimistic
/// pair (M_opt, D_opt) which need not be jointly feasible. Higher return
/// values mean greater similarity; +infinity is allowed (identical
/// transactions under 1/y).
class SimilarityFunction {
 public:
  virtual ~SimilarityFunction() = default;

  /// Evaluates f(x, y). `matches >= 0`, `hamming >= 0`.
  virtual double Evaluate(int matches, int hamming) const = 0;

  /// Human-readable name for logs and benchmark output.
  virtual std::string name() const = 0;
};

/// The paper's example (1): Hamming distance restated in maximization form,
/// f(x, y) = 1 / y. Identical transactions (y = 0) evaluate to +infinity.
class InverseHammingSimilarity final : public SimilarityFunction {
 public:
  double Evaluate(int matches, int hamming) const override;
  std::string name() const override { return "hamming"; }
};

/// The paper's example (2): match to Hamming distance ratio, f(x, y) = x / y.
/// y = 0 evaluates to +infinity when x > 0 (identical non-empty transactions)
/// and to 0 when x = 0 (two empty transactions are a degenerate case; any
/// value is consistent because no third value can beat +inf ties).
class MatchRatioSimilarity final : public SimilarityFunction {
 public:
  double Evaluate(int matches, int hamming) const override;
  std::string name() const override { return "match_ratio"; }
};

/// The paper's example (3): cosine of the angle between the transactions
/// viewed as 0/1 vectors. For a fixed target T with #T items,
///
///     cosine(S, T) = x / (sqrt(#S) * sqrt(#T))
///                  = x / (sqrt(2x + y - #T) * sqrt(#T))
///
/// because #S + #T = 2x + y. The class is bound to a target size; infeasible
/// (x, y) combinations arising from bound evaluation are clamped so the
/// implemented function stays monotone everywhere (the clamp is exact on all
/// feasible pairs).
class CosineSimilarity final : public SimilarityFunction {
 public:
  explicit CosineSimilarity(size_t target_size);

  double Evaluate(int matches, int hamming) const override;
  std::string name() const override { return "cosine"; }

  /// Re-targets this instance in place (CosineFamily::RebindTarget uses it
  /// to reuse a warm allocation instead of constructing a new function).
  void set_target_size(size_t target_size) {
    target_size_ = static_cast<double>(target_size);
  }

 private:
  double target_size_;
};

/// Jaccard coefficient |S ∩ T| / |S ∪ T| = x / (x + y) — not one of the
/// paper's three examples but admissible under its §2 constraints, so the
/// same signature table serves it. Provided for the comparison against the
/// MinHash/LSH baseline, whose collision probability estimates exactly this
/// function. f(0, 0) is defined as 1 (two empty baskets are identical).
class JaccardSimilarity final : public SimilarityFunction {
 public:
  double Evaluate(int matches, int hamming) const override;
  std::string name() const override { return "jaccard"; }
};

/// A user-supplied similarity function wrapping a callable; the caller
/// promises the monotonicity constraints hold. This is the "specified at
/// query time" extension point: any f(x, y) obeying the constraints can be
/// used against an already-built signature table.
class CustomSimilarity final : public SimilarityFunction {
 public:
  CustomSimilarity(std::string name, std::function<double(int, int)> fn);

  double Evaluate(int matches, int hamming) const override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::function<double(int, int)> fn_;
};

/// Factory binding a similarity function to a query target.
///
/// Hamming and match/ratio ignore the target; cosine needs the target's size.
/// Query APIs accept a family so that multi-target queries can bind one
/// function per target.
class SimilarityFamily {
 public:
  virtual ~SimilarityFamily() = default;

  /// Creates the function instance for `target`.
  virtual std::unique_ptr<SimilarityFunction> ForTarget(
      const Transaction& target) const = 0;

  /// Binds `*slot` to `target`, reusing the existing instance when it is
  /// already this family's function type (the MBI_HOT query path calls this
  /// per query through a warm QueryContext, where reuse makes it
  /// allocation-free in steady state). The base implementation falls back
  /// to ForTarget — correct for any family, allocating. Overrides must be
  /// exactly equivalent to `*slot = ForTarget(target)`.
  virtual void RebindTarget(const Transaction& target,
                            std::unique_ptr<SimilarityFunction>* slot) const;

  virtual std::string name() const = 0;
};

/// Families for the paper's three evaluation functions. Each overrides
/// RebindTarget to reuse a slot already holding its (final) function type:
/// the target-independent families leave the instance untouched, cosine
/// re-targets in place via set_target_size.
class InverseHammingFamily final : public SimilarityFamily {
 public:
  std::unique_ptr<SimilarityFunction> ForTarget(
      const Transaction& target) const override;
  void RebindTarget(const Transaction& target,
                    std::unique_ptr<SimilarityFunction>* slot) const override;
  std::string name() const override { return "hamming"; }
};

class MatchRatioFamily final : public SimilarityFamily {
 public:
  std::unique_ptr<SimilarityFunction> ForTarget(
      const Transaction& target) const override;
  void RebindTarget(const Transaction& target,
                    std::unique_ptr<SimilarityFunction>* slot) const override;
  std::string name() const override { return "match_ratio"; }
};

class CosineFamily final : public SimilarityFamily {
 public:
  std::unique_ptr<SimilarityFunction> ForTarget(
      const Transaction& target) const override;
  void RebindTarget(const Transaction& target,
                    std::unique_ptr<SimilarityFunction>* slot) const override;
  std::string name() const override { return "cosine"; }
};

class JaccardFamily final : public SimilarityFamily {
 public:
  std::unique_ptr<SimilarityFunction> ForTarget(
      const Transaction& target) const override;
  void RebindTarget(const Transaction& target,
                    std::unique_ptr<SimilarityFunction>* slot) const override;
  std::string name() const override { return "jaccard"; }
};

/// Family wrapping a fixed target-independent custom function.
class CustomFamily final : public SimilarityFamily {
 public:
  CustomFamily(std::string name, std::function<double(int, int)> fn);
  std::unique_ptr<SimilarityFunction> ForTarget(
      const Transaction& target) const override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::function<double(int, int)> fn_;
};

/// Creates a family by name
/// ("hamming", "match_ratio", "cosine", "jaccard"); aborts on unknown names.
std::unique_ptr<SimilarityFamily> MakeSimilarityFamily(
    const std::string& name);

/// Result of CheckAdmissibility.
struct AdmissibilityReport {
  bool admissible = true;
  /// First violating lattice point when not admissible: comparing
  /// f(x, y) against f(x + 1, y) (match violation) or f(x, y + 1)
  /// (hamming violation).
  int x = 0;
  int y = 0;
  bool match_monotonicity_violated = false;

  std::string ToString() const;
};

/// Grid-checks that `similarity` satisfies the paper's §2 constraints —
/// nondecreasing in matches, nonincreasing in Hamming distance — over
/// `0 <= x <= max_matches`, `0 <= y <= max_hamming`. The engine's bounds are
/// only correct for admissible functions (Lemma 2.1), so callers supplying a
/// CustomSimilarity should run this over the realistic (x, y) range of their
/// data before trusting query results. O(max_matches * max_hamming)
/// evaluations.
AdmissibilityReport CheckAdmissibility(const SimilarityFunction& similarity,
                                       int max_matches, int max_hamming);

}  // namespace mbi

#endif  // MBI_CORE_SIMILARITY_H_
