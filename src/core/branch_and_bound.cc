#include "core/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <numeric>

#include "core/bounds.h"
#include "core/query_context.h"
#include "txn/packed_target.h"
#include "util/macros.h"

namespace mbi {
namespace {

constexpr double kNegInfinity = -std::numeric_limits<double>::infinity();

/// Strict ordering "a is a better result than b". Used as the `<` of a
/// std::*_heap, it puts the *worst* kept candidate at the heap front (the
/// heap max is the least-better element), which is exactly the pessimistic
/// bound. Ties on similarity rank smaller ids as better, so the evicted
/// element among ties is the largest id — deterministic output.
struct BetterThan {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  }
};

/// Bookkeeping used by the frozen reference implementation.
struct EntryOrder {
  std::vector<uint32_t> indices;  // Entry indices in visit order.
  std::vector<double> optimistic;  // Optimistic bound per entry index.
};

/// Transactions-evaluated budget implied by the early-termination fraction.
uint64_t AccessBudget(double fraction, uint64_t database_size) {
  MBI_CHECK_MSG(fraction > 0.0 && fraction <= 1.0,
                "max_access_fraction must be in (0, 1]");
  if (fraction >= 1.0) return database_size;
  return static_cast<uint64_t>(
      std::ceil(fraction * static_cast<double>(database_size)));
}

}  // namespace

BranchAndBoundEngine::BranchAndBoundEngine(const TransactionDatabase* database,
                                           const SignatureTable* table,
                                           const CandidateLayout* layout)
    : database_(database), table_(table), layout_(layout) {
  MBI_CHECK(database != nullptr && table != nullptr);
  MBI_CHECK(database->universe_size() == table->partition().universe_size());
  if (layout_ == nullptr) {
    owned_layout_ =
        std::make_shared<const CandidateLayout>(CandidateLayout::Build(*database));
    layout_ = owned_layout_.get();
  }
}

NearestNeighborResult BranchAndBoundEngine::FindNearest(
    const Transaction& target, const SimilarityFamily& family,
    const SearchOptions& options) const {
  return FindKNearest(target, family, /*k=*/1, options);
}

NearestNeighborResult BranchAndBoundEngine::FindKNearest(
    const Transaction& target, const SimilarityFamily& family, size_t k,
    const SearchOptions& options) const {
  QueryContext context;
  NearestNeighborResult result;
  RunKNearest(&target, 1, family, k, options, &context, &result);
  return result;
}

NearestNeighborResult BranchAndBoundEngine::FindKNearest(
    const Transaction& target, const SimilarityFamily& family, size_t k,
    const SearchOptions& options, QueryContext* context) const {
  NearestNeighborResult result;
  RunKNearest(&target, 1, family, k, options, context, &result);
  return result;
}

MBI_HOT void BranchAndBoundEngine::FindKNearest(
    const Transaction& target, const SimilarityFamily& family, size_t k,
    const SearchOptions& options, QueryContext* context,
    NearestNeighborResult* result) const {
  RunKNearest(&target, 1, family, k, options, context, result);
}

NearestNeighborResult BranchAndBoundEngine::FindKNearestMultiTarget(
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    size_t k, const SearchOptions& options) const {
  QueryContext context;
  NearestNeighborResult result;
  RunKNearest(targets.data(), targets.size(), family, k, options, &context,
              &result);
  return result;
}

NearestNeighborResult BranchAndBoundEngine::FindKNearestMultiTarget(
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    size_t k, const SearchOptions& options, QueryContext* context) const {
  NearestNeighborResult result;
  RunKNearest(targets.data(), targets.size(), family, k, options, context,
              &result);
  return result;
}

MBI_HOT void BranchAndBoundEngine::FindKNearestMultiTarget(
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    size_t k, const SearchOptions& options, QueryContext* context,
    NearestNeighborResult* result) const {
  RunKNearest(targets.data(), targets.size(), family, k, options, context,
              result);
}

MBI_HOT void BranchAndBoundEngine::RunKNearest(
    const Transaction* targets, size_t num_targets,
    const SimilarityFamily& family, size_t k, const SearchOptions& options,
    QueryContext* context, NearestNeighborResult* result_out) const {
  MBI_CHECK(context != nullptr);
  MBI_CHECK(result_out != nullptr);
  MBI_CHECK(num_targets >= 1);
  MBI_CHECK(k >= 1);
  MBI_CHECK_MSG(options.optimality_gap >= 0.0,
                "optimality_gap must be non-negative");
  QueryContext& ctx = *context;

  // Reset the output in place: capacity survives, so a warm result object
  // costs nothing to refill.
  NearestNeighborResult& result = *result_out;
  result.neighbors.clear();
  result.trace.clear();
  result.stats = QueryStats{};
  result.guaranteed_exact = false;
  result.unexplored_optimistic_bound = 0.0;
  result.best_unscanned_bound = 0.0;

  // Bind the similarity function, bound calculator, and packed bitmap to
  // each target, reusing the context's buffers. RebindTarget re-targets a
  // warm function object in place (built-in families), so with a warm
  // context this loop allocates nothing; slots beyond num_targets keep
  // their bindings but never participate (all loops run to num_targets).
  if (ctx.functions_.size() < num_targets) {
    ctx.functions_.resize(num_targets);
  }
  if (ctx.calculators_.size() < num_targets) {
    ctx.calculators_.resize(num_targets);
  }
  if (ctx.packed_targets_.size() < num_targets) {
    ctx.packed_targets_.resize(num_targets);
  }
  // The blocked layout only serves ids it covers; transactions appended
  // after its build take the legacy probe path (checked once per query so
  // a dynamic insert mid-stream can never read past the layout).
  const bool use_layout =
      layout_ != nullptr && layout_->num_rows() >= database_->size();
  for (size_t t = 0; t < num_targets; ++t) {
    family.RebindTarget(targets[t], &ctx.functions_[t]);
    table_->partition().CountsPerSignature(targets[t], &ctx.counts_scratch_);
    ctx.calculators_[t].Reset(ctx.counts_scratch_,
                              table_->activation_threshold());
    ctx.packed_targets_[t].Assign(targets[t], database_->universe_size(),
                                  use_layout ? layout_ : nullptr);
  }
  const double target_count = static_cast<double>(num_targets);

  // FindOptimisticBound for every occupied entry: the average over targets
  // of f_t(M_opt, D_opt) (paper §4.3 for the multi-target case; with a single
  // target this is exactly Figure 3's FindOptimisticBound). The M/D bounds
  // for a chunk come from the SIMD bounds kernel over the table's dense
  // coordinate array, one target at a time (t-major scratch, so chunks touch
  // disjoint slices). Chunks write disjoint slots of the output array, so
  // the parallel fan-out is deterministic: identical bounds for any thread
  // count — and the per-candidate sum accumulates targets in ascending t
  // exactly as before, keeping the doubles bit-identical.
  const auto& entries = table_->entries();
  const Supercoordinate* coords = table_->coordinates().data();
  const size_t num_entries = entries.size();
  ctx.optimistic_.resize(num_entries);
  ctx.bound_match_.resize(num_targets * num_entries);
  ctx.bound_dist_.resize(num_targets * num_entries);
  auto compute_bounds = [&](size_t begin, size_t end) {
    for (size_t t = 0; t < num_targets; ++t) {
      const size_t base = t * num_entries;
      ctx.calculators_[t].ComputeBatch(coords + begin, end - begin,
                                       ctx.bound_match_.data() + base + begin,
                                       ctx.bound_dist_.data() + base + begin);
    }
    for (size_t i = begin; i < end; ++i) {
      double sum = 0.0;
      for (size_t t = 0; t < num_targets; ++t) {
        const size_t base = t * num_entries;
        sum += ctx.functions_[t]->Evaluate(ctx.bound_match_[base + i],
                                           ctx.bound_dist_[base + i]);
      }
      ctx.optimistic_[i] = sum / target_count;
    }
  };
  if (ctx.bound_pool_ != nullptr &&
      num_entries >= ctx.parallel_bound_min_entries_) {
    const size_t chunk = std::max<size_t>(1, ctx.parallel_bound_chunk_);
    const size_t num_chunks = (num_entries + chunk - 1) / chunk;
    ctx.bound_pool_->ParallelFor(
        num_chunks,
        [&](size_t c) {
          compute_bounds(c * chunk, std::min(num_entries, (c + 1) * chunk));
        },
        /*chunk=*/1);
  } else {
    compute_bounds(0, num_entries);
  }

  // Visit-order keys (paper §4): either the optimistic bounds themselves or
  // the similarity between supercoordinates; pruning always uses the bounds.
  if (options.sort_order == EntrySortOrder::kSupercoordinateSimilarity) {
    ctx.order_keys_.resize(num_entries);
    // Use the first target's supercoordinate and function as the ranking key.
    table_->partition().CountsPerSignature(targets[0], &ctx.counts_scratch_);
    Supercoordinate target_coordinate = SupercoordinateFromCounts(
        ctx.counts_scratch_, table_->activation_threshold());
    for (size_t i = 0; i < num_entries; ++i) {
      int match = 0, hamming = 0;
      SupercoordinateMatchAndHamming(entries[i].coordinate, target_coordinate,
                                     &match, &hamming);
      ctx.order_keys_[i] = ctx.functions_[0]->Evaluate(match, hamming);
    }
  }
  const std::vector<double>& keys =
      options.sort_order == EntrySortOrder::kOptimisticBound ? ctx.optimistic_
                                                             : ctx.order_keys_;

  // Lazy entry ordering: a max-heap over entry indices replaces the full
  // sort. The comparator is a total order (key, then index), so the pop
  // sequence is exactly the fully-sorted visit order — but a query that
  // prunes or terminates after m pops pays O(n + m log n) instead of
  // O(n log n).
  auto visit_after = [&keys](uint32_t a, uint32_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a > b;
  };
  std::vector<uint32_t>& order_heap = ctx.entry_heap_;
  order_heap.resize(num_entries);
  std::iota(order_heap.begin(), order_heap.end(), 0u);
  std::make_heap(order_heap.begin(), order_heap.end(), visit_after);
  size_t remaining = num_entries;
  auto pop_next = [&]() {
    std::pop_heap(order_heap.begin(),
                  order_heap.begin() + static_cast<ptrdiff_t>(remaining),
                  visit_after);
    return order_heap[--remaining];
  };

  result.stats.database_size = database_->size();
  result.stats.entries_total = num_entries;
  const uint64_t budget =
      AccessBudget(options.max_access_fraction, database_->size());
  // Overload budget (tightest-wins between the per-call options and the
  // context's session default). `limited` is hoisted so the unlimited case
  // pays one branch per entry and zero clock reads.
  const QueryBudget qbudget =
      QueryBudget::Tightest(options.budget, ctx.budget_);
  const bool budget_limited = qbudget.limited();

  // Min-heap of the k best candidates; front is the pessimistic bound once
  // the heap is full.
  std::vector<Neighbor>& knn_heap = ctx.knn_heap_;
  knn_heap.clear();
  auto pessimistic = [&]() {
    return knn_heap.size() == k ? knn_heap.front().similarity : kNegInfinity;
  };
  auto finish_candidate = [&](TransactionId id, double similarity) {
    ++result.stats.transactions_evaluated;
    Neighbor incoming{id, similarity};
    if (knn_heap.size() < k) {
      knn_heap.push_back(incoming);
      std::push_heap(knn_heap.begin(), knn_heap.end(), BetterThan());
    } else if (BetterThan()(incoming, knn_heap.front())) {
      std::pop_heap(knn_heap.begin(), knn_heap.end(), BetterThan());
      knn_heap.back() = incoming;
      std::push_heap(knn_heap.begin(), knn_heap.end(), BetterThan());
    }
  };
  auto evaluate_candidate = [&](TransactionId id) {
    const Transaction& candidate = database_->Get(id);
    double sum = 0.0;
    for (size_t t = 0; t < num_targets; ++t) {
      size_t match = 0, hamming = 0;
      // Packed probe kernel; bit-identical to the merge-scan MatchAndHamming.
      ctx.packed_targets_[t].MatchAndHamming(candidate, &match, &hamming);
      sum += ctx.functions_[t]->Evaluate(static_cast<int>(match),
                                         static_cast<int>(hamming));
    }
    // Divide (not multiply by a reciprocal) so the value is bit-identical to
    // an oracle computing sum / n — ties then compare exactly.
    finish_candidate(id, sum / target_count);
  };
  // Batched evaluation of one entry's candidate list through the SIMD
  // match kernel. Same integer x/y per candidate, same ascending-t
  // accumulation, same division, same heap-update order as
  // evaluate_candidate — bit-identical results, proven at the engine level
  // by kernel_test.cc's forced-ISA sweep against FindKNearestReference.
  auto evaluate_candidates_batch = [&](const TransactionId* ids, size_t n) {
    if (ctx.match_scratch_.size() < n) {
      ctx.match_scratch_.resize(n);
      ctx.hamming_scratch_.resize(n);
    }
    if (ctx.score_scratch_.size() < n) ctx.score_scratch_.resize(n);
    std::fill_n(ctx.score_scratch_.begin(), n, 0.0);
    for (size_t t = 0; t < num_targets; ++t) {
      ctx.packed_targets_[t].MatchAndHammingBatch(
          ids, n, ctx.match_scratch_.data(), ctx.hamming_scratch_.data());
      for (size_t i = 0; i < n; ++i) {
        ctx.score_scratch_[i] += ctx.functions_[t]->Evaluate(
            static_cast<int>(ctx.match_scratch_[i]),
            static_cast<int>(ctx.hamming_scratch_[i]));
      }
    }
    for (size_t i = 0; i < n; ++i) {
      finish_candidate(ids[i], ctx.score_scratch_[i] / target_count);
    }
  };

  auto record_trace = [&](uint32_t entry_index, EntryTrace::Action action) {
    if (!options.collect_trace) return;
    EntryTrace entry_trace;
    entry_trace.coordinate = entries[entry_index].coordinate;
    entry_trace.optimistic_bound = ctx.optimistic_[entry_index];
    entry_trace.transaction_count = entries[entry_index].transaction_count;
    entry_trace.action = action;
    entry_trace.pessimistic_bound = pessimistic();
    result.trace.push_back(entry_trace);
  };

  bool terminated_early = false;
  QueryTermination termination = QueryTermination::kCompleted;
  double max_pruned_bound = kNegInfinity;
  while (remaining > 0) {
    // Cooperative budget check, entry granularity. Guarded on at least one
    // scanned entry so a degraded answer always carries at least one real
    // candidate (an already-expired deadline still returns the best of the
    // top-ranked entry, never an empty neighbor list); the first pop can
    // never prune (the k-heap cannot be full before the first scan), so
    // entries_scanned > 0 always holds from the second iteration on.
    if (budget_limited && result.stats.entries_scanned > 0) {
      if (qbudget.cancelled()) {
        terminated_early = true;
        termination = QueryTermination::kCancelled;
        break;
      }
      if (result.stats.entries_scanned >= qbudget.max_entries) {
        terminated_early = true;
        termination = QueryTermination::kEntryBudget;
        break;
      }
      if (qbudget.deadline_expired()) {
        terminated_early = true;
        termination = QueryTermination::kDeadline;
        break;
      }
    }
    uint32_t entry_index = pop_next();
    double optimistic = ctx.optimistic_[entry_index];
    if (knn_heap.size() == k &&
        optimistic <= pessimistic() + options.optimality_gap) {
      max_pruned_bound = std::max(max_pruned_bound, optimistic);
      record_trace(entry_index, EntryTrace::Action::kPruned);
      if (options.sort_order == EntrySortOrder::kOptimisticBound) {
        // Entries are visited in decreasing optimistic bound, so everything
        // still in the heap is prunable too; it only has to be popped when a
        // trace wants the per-entry records in visit order.
        result.stats.entries_pruned += remaining + 1;
        if (options.collect_trace) {
          while (remaining > 0) {
            record_trace(pop_next(), EntryTrace::Action::kPruned);
          }
        }
        remaining = 0;
        break;
      }
      ++result.stats.entries_pruned;
      continue;
    }
    record_trace(entry_index, EntryTrace::Action::kScanned);
    table_->FetchEntryTransactions(entry_index, &result.stats.io,
                                   &ctx.candidate_ids_);
    ++result.stats.entries_scanned;
    if (use_layout) {
      evaluate_candidates_batch(ctx.candidate_ids_.data(),
                                ctx.candidate_ids_.size());
    } else {
      for (TransactionId id : ctx.candidate_ids_) evaluate_candidate(id);
    }
    if (result.stats.transactions_evaluated >= budget && remaining > 0) {
      terminated_early = true;
      termination = QueryTermination::kAccessFraction;
      break;
    }
  }

  // Early-termination certificate (paper §4.2): the best similarity any
  // unexplored entry could still hold. Without a trace the max is computed
  // directly over the heap's remaining elements (order is irrelevant for a
  // max); with a trace the entries are popped so the records appear in visit
  // order, exactly as a full sort would have produced them.
  double unexplored_bound = kNegInfinity;
  if (terminated_early) {
    result.stats.entries_unexplored = remaining;
    if (options.collect_trace) {
      while (remaining > 0) {
        uint32_t entry_index = pop_next();
        unexplored_bound =
            std::max(unexplored_bound, ctx.optimistic_[entry_index]);
        record_trace(entry_index, EntryTrace::Action::kUnexplored);
      }
    } else {
      for (size_t i = 0; i < remaining; ++i) {
        unexplored_bound =
            std::max(unexplored_bound, ctx.optimistic_[order_heap[i]]);
      }
    }
  }
  result.unexplored_optimistic_bound = unexplored_bound;
  result.best_unscanned_bound = std::max(max_pruned_bound, unexplored_bound);
  result.guaranteed_exact =
      knn_heap.size() == std::min<size_t>(k, database_->size()) &&
      result.best_unscanned_bound <= pessimistic();
  // Paper-§4 quality certificate, duplicated into the stats so it survives
  // paths that only propagate QueryStats (metrics, the quarantine fallback).
  result.stats.termination = termination;
  result.stats.is_exact = result.guaranteed_exact;
  result.stats.certificate_bound = result.best_unscanned_bound;

  std::sort(knn_heap.begin(), knn_heap.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.id < b.id;
            });
  result.neighbors.assign(knn_heap.begin(), knn_heap.end());
}

NearestNeighborResult BranchAndBoundEngine::FindKNearestReference(
    const Transaction& target, const SimilarityFamily& family, size_t k,
    const SearchOptions& options) const {
  return FindKNearestMultiTargetReference({target}, family, k, options);
}

NearestNeighborResult BranchAndBoundEngine::FindKNearestMultiTargetReference(
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    size_t k, const SearchOptions& options) const {
  MBI_CHECK(!targets.empty());
  MBI_CHECK(k >= 1);

  // Bind the similarity function and bound calculator to each target.
  std::vector<std::unique_ptr<SimilarityFunction>> functions;
  std::vector<BoundCalculator> calculators;
  functions.reserve(targets.size());
  calculators.reserve(targets.size());
  for (const Transaction& target : targets) {
    functions.push_back(family.ForTarget(target));
    calculators.emplace_back(table_->partition().CountsPerSignature(target),
                             table_->activation_threshold());
  }
  const double target_count = static_cast<double>(targets.size());

  const auto& entries = table_->entries();
  EntryOrder order;
  order.indices.resize(entries.size());
  order.optimistic.resize(entries.size());
  for (uint32_t i = 0; i < entries.size(); ++i) {
    order.indices[i] = i;
    double sum = 0.0;
    for (size_t t = 0; t < targets.size(); ++t) {
      sum += calculators[t].OptimisticSimilarity(entries[i].coordinate,
                                                 *functions[t]);
    }
    order.optimistic[i] = sum / target_count;
  }

  // Sort the directory (main-memory sort, paper §4). The alternative order
  // ranks entries by the similarity between supercoordinates instead, while
  // pruning still uses the optimistic bounds.
  if (options.sort_order == EntrySortOrder::kOptimisticBound) {
    std::sort(order.indices.begin(), order.indices.end(),
              [&](uint32_t a, uint32_t b) {
                if (order.optimistic[a] != order.optimistic[b]) {
                  return order.optimistic[a] > order.optimistic[b];
                }
                return a < b;
              });
  } else {
    std::vector<double> coordinate_similarity(entries.size());
    // Use the first target's supercoordinate and function as the ranking key.
    Supercoordinate target_coordinate = ComputeSupercoordinate(
        targets[0], table_->partition(), table_->activation_threshold());
    for (uint32_t i = 0; i < entries.size(); ++i) {
      int match = 0, hamming = 0;
      SupercoordinateMatchAndHamming(entries[i].coordinate, target_coordinate,
                                     &match, &hamming);
      coordinate_similarity[i] = functions[0]->Evaluate(match, hamming);
    }
    std::sort(order.indices.begin(), order.indices.end(),
              [&](uint32_t a, uint32_t b) {
                if (coordinate_similarity[a] != coordinate_similarity[b]) {
                  return coordinate_similarity[a] > coordinate_similarity[b];
                }
                return a < b;
              });
  }

  NearestNeighborResult result;
  result.stats.database_size = database_->size();
  result.stats.entries_total = entries.size();
  const uint64_t budget =
      AccessBudget(options.max_access_fraction, database_->size());

  // Min-heap of the k best candidates; front is the pessimistic bound once
  // the heap is full.
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  auto pessimistic = [&]() {
    return heap.size() == k ? heap.front().similarity : kNegInfinity;
  };
  auto evaluate_candidate = [&](TransactionId id) {
    const Transaction& candidate = database_->Get(id);
    double sum = 0.0;
    for (size_t t = 0; t < targets.size(); ++t) {
      size_t match = 0, hamming = 0;
      MatchAndHamming(targets[t], candidate, &match, &hamming);
      sum += functions[t]->Evaluate(static_cast<int>(match),
                                    static_cast<int>(hamming));
    }
    // Divide (not multiply by a reciprocal) so the value is bit-identical to
    // an oracle computing sum / n — ties then compare exactly.
    double similarity = sum / target_count;
    ++result.stats.transactions_evaluated;
    Neighbor incoming{id, similarity};
    if (heap.size() < k) {
      heap.push_back(incoming);
      std::push_heap(heap.begin(), heap.end(), BetterThan());
    } else if (BetterThan()(incoming, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), BetterThan());
      heap.back() = incoming;
      std::push_heap(heap.begin(), heap.end(), BetterThan());
    }
  };

  MBI_CHECK_MSG(options.optimality_gap >= 0.0,
                "optimality_gap must be non-negative");
  auto record_trace = [&](uint32_t entry_index, EntryTrace::Action action) {
    if (!options.collect_trace) return;
    EntryTrace entry_trace;
    entry_trace.coordinate = entries[entry_index].coordinate;
    entry_trace.optimistic_bound = order.optimistic[entry_index];
    entry_trace.transaction_count = entries[entry_index].transaction_count;
    entry_trace.action = action;
    entry_trace.pessimistic_bound = pessimistic();
    result.trace.push_back(entry_trace);
  };

  size_t next = 0;
  bool terminated_early = false;
  double max_pruned_bound = kNegInfinity;
  for (; next < order.indices.size(); ++next) {
    uint32_t entry_index = order.indices[next];
    double optimistic = order.optimistic[entry_index];
    if (heap.size() == k &&
        optimistic <= pessimistic() + options.optimality_gap) {
      max_pruned_bound = std::max(max_pruned_bound, optimistic);
      record_trace(entry_index, EntryTrace::Action::kPruned);
      if (options.sort_order == EntrySortOrder::kOptimisticBound) {
        // Entries are sorted by decreasing optimistic bound, so everything
        // that follows is prunable too.
        for (size_t i = next + 1; i < order.indices.size(); ++i) {
          record_trace(order.indices[i], EntryTrace::Action::kPruned);
        }
        result.stats.entries_pruned += order.indices.size() - next;
        next = order.indices.size();
        break;
      }
      ++result.stats.entries_pruned;
      continue;
    }
    record_trace(entry_index, EntryTrace::Action::kScanned);
    std::vector<TransactionId> ids =
        table_->FetchEntryTransactions(entry_index, &result.stats.io);
    ++result.stats.entries_scanned;
    for (TransactionId id : ids) evaluate_candidate(id);
    if (result.stats.transactions_evaluated >= budget &&
        next + 1 < order.indices.size()) {
      terminated_early = true;
      ++next;
      break;
    }
  }

  // Early-termination certificate (paper §4.2): the best similarity any
  // unexplored entry could still hold.
  double unexplored_bound = kNegInfinity;
  if (terminated_early) {
    for (size_t i = next; i < order.indices.size(); ++i) {
      unexplored_bound =
          std::max(unexplored_bound, order.optimistic[order.indices[i]]);
      ++result.stats.entries_unexplored;
      record_trace(order.indices[i], EntryTrace::Action::kUnexplored);
    }
  }
  result.unexplored_optimistic_bound = unexplored_bound;
  result.best_unscanned_bound = std::max(max_pruned_bound, unexplored_bound);
  result.guaranteed_exact =
      heap.size() == std::min<size_t>(k, database_->size()) &&
      result.best_unscanned_bound <= pessimistic();
  // Certificate mirror (the frozen reference ignores QueryBudget by design,
  // so kAccessFraction is the only early termination it can report).
  result.stats.termination = terminated_early
                                 ? QueryTermination::kAccessFraction
                                 : QueryTermination::kCompleted;
  result.stats.is_exact = result.guaranteed_exact;
  result.stats.certificate_bound = result.best_unscanned_bound;

  std::sort(heap.begin(), heap.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.id < b.id;
  });
  result.neighbors = std::move(heap);
  return result;
}

RangeQueryResult BranchAndBoundEngine::FindInRange(
    const Transaction& target, const SimilarityFamily& family,
    double threshold, const SearchOptions& options) const {
  std::vector<const SimilarityFamily*> families = {&family};
  std::vector<double> thresholds = {threshold};
  return FindInRangeMulti(target, families, thresholds, options);
}

RangeQueryResult BranchAndBoundEngine::FindInRangeMulti(
    const Transaction& target,
    const std::vector<const SimilarityFamily*>& families,
    const std::vector<double>& thresholds,
    const SearchOptions& options) const {
  MBI_CHECK(!families.empty());
  MBI_CHECK(families.size() == thresholds.size());

  std::vector<std::unique_ptr<SimilarityFunction>> functions;
  functions.reserve(families.size());
  for (const SimilarityFamily* family : families) {
    MBI_CHECK(family != nullptr);
    functions.push_back(family->ForTarget(target));
  }
  BoundCalculator calculator(table_->partition().CountsPerSignature(target),
                             table_->activation_threshold());
  const bool use_layout =
      layout_ != nullptr && layout_->num_rows() >= database_->size();
  PackedTarget packed;
  packed.Assign(target, database_->universe_size(),
                use_layout ? layout_ : nullptr);

  RangeQueryResult result;
  result.stats.database_size = database_->size();
  result.stats.entries_total = table_->entries().size();
  const uint64_t budget =
      AccessBudget(options.max_access_fraction, database_->size());
  const QueryBudget& qbudget = options.budget;
  const bool budget_limited = qbudget.limited();

  bool terminated_early = false;
  QueryTermination termination = QueryTermination::kCompleted;
  double unexplored_bound = kNegInfinity;
  const auto& entries = table_->entries();
  // All entry bounds in one SIMD batch up front (range queries visit the
  // directory in index order, so there is no lazy prefix to exploit).
  std::vector<int32_t> bound_match(entries.size());
  std::vector<int32_t> bound_dist(entries.size());
  calculator.ComputeBatch(table_->coordinates().data(), entries.size(),
                          bound_match.data(), bound_dist.data());
  std::vector<TransactionId> ids;
  std::vector<uint32_t> match_scratch;
  std::vector<uint32_t> hamming_scratch;
  for (uint32_t i = 0; i < entries.size(); ++i) {
    if (!terminated_early && budget_limited &&
        result.stats.entries_scanned > 0) {
      // Same min-one-entry guarantee as RunKNearest: the budget can only cut
      // the enumeration after the first scanned entry, so a degraded range
      // answer is never structurally empty.
      if (qbudget.cancelled()) {
        terminated_early = true;
        termination = QueryTermination::kCancelled;
      } else if (result.stats.entries_scanned >= qbudget.max_entries) {
        terminated_early = true;
        termination = QueryTermination::kEntryBudget;
      } else if (qbudget.deadline_expired()) {
        terminated_early = true;
        termination = QueryTermination::kDeadline;
      }
    }
    if (terminated_early) {
      ++result.stats.entries_unexplored;
      // Certificate over what was left behind: no skipped transaction can
      // beat the primary function's optimistic bound for its entry.
      unexplored_bound = std::max(
          unexplored_bound, functions[0]->Evaluate(bound_match[i], bound_dist[i]));
      continue;
    }
    bool prunable = false;
    for (size_t f = 0; f < functions.size(); ++f) {
      double optimistic = functions[f]->Evaluate(bound_match[i], bound_dist[i]);
      if (optimistic < thresholds[f]) {
        prunable = true;
        break;
      }
    }
    if (prunable) {
      ++result.stats.entries_pruned;
      continue;
    }
    table_->FetchEntryTransactions(i, &result.stats.io, &ids);
    ++result.stats.entries_scanned;
    if (use_layout) {
      match_scratch.resize(ids.size());
      hamming_scratch.resize(ids.size());
      packed.MatchAndHammingBatch(ids.data(), ids.size(), match_scratch.data(),
                                  hamming_scratch.data());
    }
    for (size_t c = 0; c < ids.size(); ++c) {
      const TransactionId id = ids[c];
      size_t match = 0, hamming = 0;
      if (use_layout) {
        match = match_scratch[c];
        hamming = hamming_scratch[c];
      } else {
        packed.MatchAndHamming(database_->Get(id), &match, &hamming);
      }
      ++result.stats.transactions_evaluated;
      bool qualifies = true;
      double primary_similarity = 0.0;
      for (size_t f = 0; f < functions.size(); ++f) {
        double value = functions[f]->Evaluate(static_cast<int>(match),
                                              static_cast<int>(hamming));
        if (f == 0) primary_similarity = value;
        if (value < thresholds[f]) {
          qualifies = false;
          break;
        }
      }
      if (qualifies) result.matches.push_back({id, primary_similarity});
    }
    if (result.stats.transactions_evaluated >= budget &&
        i + 1 < entries.size()) {
      terminated_early = true;
      termination = QueryTermination::kAccessFraction;
    }
  }

  result.guaranteed_complete = !terminated_early;
  result.stats.termination = termination;
  result.stats.is_exact = result.guaranteed_complete;
  result.stats.certificate_bound = unexplored_bound;
  std::sort(result.matches.begin(), result.matches.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.id < b.id;
            });
  return result;
}

void BranchAndBoundEngine::CheckBoundDominance(
    const Transaction& target, const SimilarityFamily& family) const {
  std::unique_ptr<SimilarityFunction> similarity = family.ForTarget(target);
  BoundCalculator calculator(table_->partition().CountsPerSignature(target),
                             table_->activation_threshold());

  for (size_t i = 0; i < table_->entries().size(); ++i) {
    const SignatureTable::Entry& entry = table_->entries()[i];
    const double optimistic =
        calculator.OptimisticSimilarity(entry.coordinate, *similarity);
    std::vector<TransactionId> ids =
        table_->FetchEntryTransactions(i, /*stats=*/nullptr);
    for (TransactionId id : ids) {
      size_t match = 0;
      size_t hamming = 0;
      MatchAndHamming(target, database_->Get(id), &match, &hamming);
      const double actual = similarity->Evaluate(static_cast<int>(match),
                                                 static_cast<int>(hamming));
      MBI_CHECK_MSG(actual <= optimistic,
                    "optimistic bound fails to dominate an indexed "
                    "transaction (Lemma 2.1 violated)");
    }
  }
}

}  // namespace mbi
