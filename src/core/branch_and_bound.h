#ifndef MBI_CORE_BRANCH_AND_BOUND_H_
#define MBI_CORE_BRANCH_AND_BOUND_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/query_budget.h"
#include "core/query_stats.h"
#include "core/signature_table.h"
#include "core/similarity.h"
#include "txn/candidate_layout.h"
#include "txn/database.h"
#include "txn/transaction.h"
#include "util/hot_path.h"

namespace mbi {

class QueryContext;

/// One retrieved transaction and its similarity to the target (for
/// multi-target queries: the aggregate similarity).
struct Neighbor {
  TransactionId id = kInvalidTransactionId;
  double similarity = 0.0;
};

/// Order in which the signature table entries are visited (paper §4
/// discusses both; the paper's experiments use the optimistic-bound order).
enum class EntrySortOrder {
  /// Decreasing optimistic bound f(M_opt, D_opt) — the primary strategy.
  kOptimisticBound,
  /// Decreasing similarity between the entry's supercoordinate and the
  /// target's supercoordinate, both viewed as K-bit transactions — the
  /// alternative implementation of §4. Bounds still drive pruning.
  kSupercoordinateSimilarity,
};

/// Per-entry record of what the branch and bound did, for explain/debugging
/// output (populated only when SearchOptions::collect_trace is set).
struct EntryTrace {
  enum class Action { kScanned, kPruned, kUnexplored };

  Supercoordinate coordinate = 0;
  /// Optimistic bound f(M_opt, D_opt) of this entry (for multi-target
  /// queries: the average over targets).
  double optimistic_bound = 0.0;
  /// Transactions indexed by the entry.
  uint32_t transaction_count = 0;
  Action action = Action::kUnexplored;
  /// Pessimistic bound in effect when the entry was visited (for scanned /
  /// pruned entries, in visit order).
  double pessimistic_bound = 0.0;
};

/// Query-time knobs.
struct SearchOptions {
  /// Early termination (paper §4.2): stop once at least this fraction of the
  /// database's transactions has been evaluated. 1.0 disables termination
  /// (the search runs to completion and the answer is guaranteed exact).
  double max_access_fraction = 1.0;

  /// Guaranteed-quality approximation (paper §4.2's second mode: terminate
  /// "when the best transaction found so far is within a reasonable
  /// similarity difference from the optimistic bounds of the unexplored
  /// table entries"). An entry is pruned when its optimistic bound does not
  /// exceed the pessimistic bound by more than this gap, so the returned
  /// best is within `optimality_gap` of the true optimum (in similarity
  /// units). 0 keeps the search exact.
  double optimality_gap = 0.0;

  EntrySortOrder sort_order = EntrySortOrder::kOptimisticBound;

  /// Record a per-entry EntryTrace in the result (visit order). Adds memory
  /// and time proportional to the number of occupied entries; off by
  /// default.
  bool collect_trace = false;

  /// Cooperative overload budget (deadline / entry cap / cancellation),
  /// checked at entry granularity. Merged tightest-wins with any budget
  /// pinned on the QueryContext. Default-constructed = unlimited. On expiry
  /// the query returns a certified degraded answer (never crashes, never
  /// returns an inconsistent certificate); see QueryStats::termination.
  /// The frozen *Reference paths ignore it by design.
  QueryBudget budget;
};

/// Result of a (k-)nearest-neighbour query.
struct NearestNeighborResult {
  /// Up to k neighbours, best first (ties broken by ascending id).
  ///
  /// Tie caveat at the cutoff (found by fuzz/query_differential_fuzz): an
  /// entry is pruned as soon as its optimistic bound is <= the k-th best
  /// similarity, so a candidate *tied* with the k-th best may sit in a
  /// pruned bucket and never be evaluated. The similarity values are still
  /// exact, and every candidate strictly better than the k-th value is
  /// always included — but *which ids* represent the tie group at the k-th
  /// similarity is unspecified and may differ from a full scan (which
  /// resolves that group globally by ascending id). Callers that need
  /// scan-identical ids under ties must rank by (similarity, id), which the
  /// paper's bounds do not support.
  std::vector<Neighbor> neighbors;

  /// True when the result is provably exact (in similarity values): no
  /// entry that was pruned or left unexplored could hold a transaction
  /// more similar than the k-th best found. Always true for a completed
  /// search with optimality_gap = 0; for early-terminated or gap-pruned
  /// searches it reports whether the a-posteriori certificate held
  /// (paper §4.2).
  bool guaranteed_exact = false;

  /// Largest optimistic bound among entries left unexplored at termination;
  /// -infinity when none were left. Together with the k-th best similarity
  /// this is the paper's a-posteriori quality guarantee.
  double unexplored_optimistic_bound = 0.0;

  /// Upper bound on the similarity of any transaction the search did *not*
  /// evaluate (the max optimistic bound over pruned and unexplored entries);
  /// -infinity when every entry was scanned. The true k-th best similarity
  /// is at most max(k-th best found, this bound).
  double best_unscanned_bound = 0.0;

  /// Visit-order per-entry decisions; empty unless
  /// SearchOptions::collect_trace was set.
  std::vector<EntryTrace> trace;

  QueryStats stats;
};

/// Result of a range query.
struct RangeQueryResult {
  /// All qualifying transactions, best first.
  std::vector<Neighbor> matches;

  /// False when early termination may have cut the enumeration short.
  bool guaranteed_complete = false;

  QueryStats stats;
};

/// Branch-and-bound similarity search over a signature table (paper §4).
///
/// The engine is stateless across queries and holds no ownership: the
/// database and table must outlive it. The similarity function is supplied
/// per query (as a SimilarityFamily, so target-dependent functions like
/// cosine bind to each target), which is the paper's headline flexibility:
/// one index, any admissible f(x, y).
///
/// Hot-path structure (see DESIGN.md "Query hot path"): entries are visited
/// through a lazy max-heap keyed by the sort order, so only the prefix of
/// the visit order a query actually consumes is materialized; per-query
/// scratch lives in a caller-suppliable QueryContext so repeated queries
/// allocate nothing on the steady state; and candidate evaluation probes a
/// word-packed target bitmap instead of merge-scanning item vectors. All of
/// it is bit-identical to the straightforward sort-everything merge-scan
/// implementation, which is retained as FindKNearest*Reference and pinned by
/// oracle_equivalence_test.cc.
class BranchAndBoundEngine {
 public:
  /// `layout` is the blocked candidate bitmap the SIMD match kernel scans;
  /// null builds a private one from `database`. Pass a shared layout
  /// (SignatureTableEngine does) when several engines serve one database.
  /// The layout is a snapshot: queries issued after the database grows past
  /// `layout->num_rows()` automatically fall back to the per-candidate
  /// probe path (bit-identical, just slower) until a fresh layout is bound.
  BranchAndBoundEngine(const TransactionDatabase* database,
                       const SignatureTable* table,
                       const CandidateLayout* layout = nullptr);

  /// Finds the single nearest neighbour of `target` under `family`.
  NearestNeighborResult FindNearest(const Transaction& target,
                                    const SimilarityFamily& family,
                                    const SearchOptions& options = {}) const;

  /// Finds the k most similar transactions (paper §4.3: the pessimistic
  /// bound is the k-th best similarity found so far).
  NearestNeighborResult FindKNearest(const Transaction& target,
                                     const SimilarityFamily& family, size_t k,
                                     const SearchOptions& options = {}) const;

  /// Context-reusing variant: identical results, but all per-query scratch
  /// comes from `context`, so a caller issuing many queries through one
  /// context reaches a zero-allocation steady state. `context` must not be
  /// shared between concurrent queries.
  NearestNeighborResult FindKNearest(const Transaction& target,
                                     const SimilarityFamily& family, size_t k,
                                     const SearchOptions& options,
                                     QueryContext* context) const;

  /// Fully reusable variant: scratch comes from `context` AND the output is
  /// written into `*result` (cleared first, capacity kept), so a warm
  /// (context, result) pair makes repeat queries allocate nothing at all —
  /// the steady state query_context_test pins under ScopedAllocationBan.
  MBI_HOT void FindKNearest(const Transaction& target,
                            const SimilarityFamily& family, size_t k,
                            const SearchOptions& options,
                            QueryContext* context,
                            NearestNeighborResult* result) const;

  /// Multi-target variant (paper §4.3): maximizes the *average* similarity
  /// to `targets`; an entry's optimistic bound is the average of its
  /// per-target optimistic bounds.
  NearestNeighborResult FindKNearestMultiTarget(
      const std::vector<Transaction>& targets, const SimilarityFamily& family,
      size_t k, const SearchOptions& options = {}) const;

  /// Context-reusing multi-target variant.
  NearestNeighborResult FindKNearestMultiTarget(
      const std::vector<Transaction>& targets, const SimilarityFamily& family,
      size_t k, const SearchOptions& options, QueryContext* context) const;

  /// Fully reusable multi-target variant (see the result-out FindKNearest).
  MBI_HOT void FindKNearestMultiTarget(const std::vector<Transaction>& targets,
                                       const SimilarityFamily& family,
                                       size_t k, const SearchOptions& options,
                                       QueryContext* context,
                                       NearestNeighborResult* result) const;

  /// Frozen pre-overhaul implementation: full std::sort of all occupied
  /// entries, fresh allocations per query, merge-scan MatchAndHamming.
  /// Kept as the semantic reference — oracle_equivalence_test.cc asserts the
  /// overhauled path returns bit-identical results, and bench/perf_smoke.cc
  /// uses it as the "before" measurement. Do not optimize.
  NearestNeighborResult FindKNearestReference(
      const Transaction& target, const SimilarityFamily& family, size_t k,
      const SearchOptions& options = {}) const;

  /// Frozen pre-overhaul multi-target implementation (see
  /// FindKNearestReference).
  NearestNeighborResult FindKNearestMultiTargetReference(
      const std::vector<Transaction>& targets, const SimilarityFamily& family,
      size_t k, const SearchOptions& options = {}) const;

  /// Range query (paper §4.3): every transaction with f >= `threshold`.
  /// Entries whose optimistic bound is below the threshold are pruned.
  RangeQueryResult FindInRange(const Transaction& target,
                               const SimilarityFamily& family,
                               double threshold,
                               const SearchOptions& options = {}) const;

  /// Conjunctive multi-function range query (paper §4.3): transactions
  /// satisfying f_i >= t_i for *all* i. An entry is pruned as soon as any
  /// one of its optimistic bounds misses its threshold. `families` and
  /// `thresholds` must be non-empty and the same length.
  RangeQueryResult FindInRangeMulti(
      const Transaction& target,
      const std::vector<const SimilarityFamily*>& families,
      const std::vector<double>& thresholds,
      const SearchOptions& options = {}) const;

  const TransactionDatabase& database() const { return *database_; }
  const SignatureTable& table() const { return *table_; }

  /// Exhaustively verifies Lemma 2.1 for `target`: for every signature table
  /// entry, the optimistic bound f(M_opt, D_opt) must dominate (be >= than)
  /// the actual similarity f(x, y) of *every* transaction indexed under that
  /// entry. This is the property that makes branch-and-bound pruning safe;
  /// a violation means the index could silently drop true nearest
  /// neighbours. Aborts (via MBI_CHECK) on the first violation. O(N · |T|);
  /// meant for tests and the CLI's --check_invariants debug flag.
  void CheckBoundDominance(const Transaction& target,
                           const SimilarityFamily& family) const;

 private:
  /// Shared implementation of the k-NN variants. `targets` is a borrowed
  /// span (pointer + count) so the single-target entry point doesn't have to
  /// materialize a one-element vector per call. `*result` is cleared
  /// (keeping capacity) and filled; with a warm context and result this is
  /// allocation-free in steady state (the MBI_HOT contract, util/hot_path.h).
  MBI_HOT void RunKNearest(const Transaction* targets, size_t num_targets,
                           const SimilarityFamily& family, size_t k,
                           const SearchOptions& options, QueryContext* context,
                           NearestNeighborResult* result) const;

  const TransactionDatabase* database_;
  const SignatureTable* table_;
  /// Set only when the engine built its own layout (shared_ptr keeps the
  /// engine copyable); layout_ always points at the layout in use.
  std::shared_ptr<const CandidateLayout> owned_layout_;
  const CandidateLayout* layout_;
};

}  // namespace mbi

#endif  // MBI_CORE_BRANCH_AND_BOUND_H_
