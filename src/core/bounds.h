#ifndef MBI_CORE_BOUNDS_H_
#define MBI_CORE_BOUNDS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/similarity.h"
#include "core/supercoordinate.h"
#include "util/hot_path.h"

namespace mbi {

/// Optimistic bounds on the match count and Hamming distance between a query
/// target and *every* transaction indexed by one signature table entry
/// (paper §4.1: FindOptimisticMatch / FindOptimisticDist).
struct OptimisticBounds {
  /// M_opt — upper bound on the number of matches.
  int match_upper = 0;
  /// D_opt — lower bound on the Hamming distance.
  int dist_lower = 0;
};

/// Per-query precomputation that turns the O(K) per-entry bound loop into
/// table lookups: for each signature j, the contribution of signature j to
/// M_opt and D_opt depends only on the entry's activation bit b_j.
///
/// With r_j = |target ∩ S_j| and activation threshold r (paper §4.1):
///   b_j = 0: every indexed transaction has < r items of S_j, so it misses at
///            least r_j - (r-1) of the target's items there:
///            D += max(0, r_j - r + 1), M += min(r - 1, r_j).
///   b_j = 1: every indexed transaction has >= r items of S_j; if the target
///            has fewer than r there, the extras are mismatches:
///            D += max(0, r - r_j), M += r_j.
class BoundCalculator {
 public:
  /// An unbound calculator; call Reset before use. Exists so reusable query
  /// workspaces can hold a vector of calculators and rebind them per query
  /// without reallocating the per-signature tables.
  BoundCalculator() = default;

  /// `target_counts` is r_j per signature (SignaturePartition::
  /// CountsPerSignature); `activation_threshold` is the table's r.
  BoundCalculator(const std::vector<int>& target_counts,
                  int activation_threshold);

  /// Rebinds the calculator to a new target. Equivalent to constructing a
  /// fresh calculator, but reuses the internal tables (no allocation when
  /// the signature cardinality is unchanged).
  void Reset(const std::vector<int>& target_counts, int activation_threshold);

  /// Evaluates the bounds for one entry's supercoordinate. O(K).
  MBI_HOT OptimisticBounds Compute(Supercoordinate coordinate) const;

  /// Batch form over a contiguous run of supercoordinates: writes M_opt to
  /// `match_out[i]` and D_opt to `dist_out[i]` for each `coords[i]`.
  /// Delegates to the runtime-dispatched SIMD bounds kernel
  /// (kernel/dispatch.h); bit-identical to Compute on every element.
  MBI_HOT void ComputeBatch(const Supercoordinate* coords, size_t count,
                            int32_t* match_out, int32_t* dist_out) const;

  /// Convenience: the optimistic similarity bound f(M_opt, D_opt), valid by
  /// Lemma 2.1 for every transaction indexed under `coordinate`.
  MBI_HOT double OptimisticSimilarity(
      Supercoordinate coordinate, const SimilarityFunction& similarity) const;

  uint32_t cardinality() const {
    return static_cast<uint32_t>(dist_if_zero_.size());
  }

 private:
  // int32_t (not int) so the tables feed the SIMD bounds kernel directly.
  std::vector<int32_t> dist_if_zero_;   // D contribution when b_j = 0.
  std::vector<int32_t> dist_if_one_;    // D contribution when b_j = 1.
  std::vector<int32_t> match_if_zero_;  // M contribution when b_j = 0.
  std::vector<int32_t> match_if_one_;   // M contribution when b_j = 1.
};

}  // namespace mbi

#endif  // MBI_CORE_BOUNDS_H_
