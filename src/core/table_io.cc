#include "core/table_io.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace mbi {
namespace {

constexpr uint32_t kMagic = 0x4D425354;  // "MBST"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(FILE* file) const {
    if (file != nullptr) std::fclose(file);
  }
};
using FileHandle = std::unique_ptr<FILE, FileCloser>;

bool WriteU32(FILE* file, uint32_t value) {
  return std::fwrite(&value, sizeof(value), 1, file) == 1;
}

bool WriteU64(FILE* file, uint64_t value) {
  return std::fwrite(&value, sizeof(value), 1, file) == 1;
}

bool WriteU32Vector(FILE* file, const std::vector<uint32_t>& values) {
  if (!WriteU64(file, values.size())) return false;
  return values.empty() ||
         std::fwrite(values.data(), sizeof(uint32_t), values.size(), file) ==
             values.size();
}

bool ReadU32(FILE* file, uint32_t* value) {
  return std::fread(value, sizeof(*value), 1, file) == 1;
}

bool ReadU64(FILE* file, uint64_t* value) {
  return std::fread(value, sizeof(*value), 1, file) == 1;
}

bool ReadU32Vector(FILE* file, uint64_t max_size,
                   std::vector<uint32_t>* values) {
  uint64_t size = 0;
  if (!ReadU64(file, &size) || size > max_size) return false;
  values->resize(size);
  return size == 0 ||
         std::fread(values->data(), sizeof(uint32_t), size, file) == size;
}

// Hard caps against corrupt headers allocating absurd buffers.
constexpr uint64_t kMaxReasonableCount = 1ULL << 33;

}  // namespace

bool SaveSignatureTable(const SignatureTable& table, const std::string& path) {
  FileHandle file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) return false;
  FILE* out = file.get();

  const SignaturePartition& partition = table.partition();
  if (!WriteU32(out, kMagic) || !WriteU32(out, kVersion) ||
      !WriteU32(out, partition.cardinality()) ||
      !WriteU32(out, partition.universe_size()) ||
      !WriteU32(out, static_cast<uint32_t>(table.activation_threshold())) ||
      !WriteU32(out, table.page_size_bytes())) {
    return false;
  }

  // Partition: signature index per item.
  std::vector<uint32_t> signature_of_item(partition.universe_size());
  for (ItemId item = 0; item < partition.universe_size(); ++item) {
    signature_of_item[item] = partition.SignatureOf(item);
  }
  if (!WriteU32Vector(out, signature_of_item)) return false;

  // Per-transaction supercoordinates.
  const uint64_t num_transactions = table.num_indexed_transactions();
  if (!WriteU64(out, num_transactions)) return false;
  for (TransactionId id = 0; id < num_transactions; ++id) {
    if (!WriteU32(out, table.CoordinateOfTransaction(id))) return false;
  }

  // Directory entries.
  if (!WriteU64(out, table.entries().size())) return false;
  for (const SignatureTable::Entry& entry : table.entries()) {
    if (!WriteU32(out, entry.coordinate) ||
        !WriteU32(out, entry.transaction_count) ||
        !WriteU32(out, entry.bucket)) {
      return false;
    }
  }

  // Disk layout: buckets then pages.
  const TransactionStore& store = table.store();
  if (!WriteU64(out, store.num_buckets())) return false;
  for (uint32_t bucket = 0; bucket < store.num_buckets(); ++bucket) {
    if (!WriteU32Vector(out, store.PagesOfBucket(bucket))) return false;
  }
  const PageStore& pages = store.page_store();
  if (!WriteU64(out, pages.size())) return false;
  for (const Page& page : pages.pages()) {
    if (!WriteU32(out, page.used_bytes) ||
        !WriteU32Vector(out, page.transaction_ids)) {
      return false;
    }
  }
  std::vector<uint32_t> page_of_transaction(num_transactions);
  for (TransactionId id = 0; id < num_transactions; ++id) {
    page_of_transaction[id] = store.PageOfTransaction(id);
  }
  if (!WriteU32Vector(out, page_of_transaction)) return false;
  return std::fflush(out) == 0;
}

std::optional<SignatureTable> LoadSignatureTable(
    const std::string& path, const TransactionDatabase& database) {
  FileHandle file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) return std::nullopt;
  FILE* in = file.get();

  uint32_t magic = 0, version = 0, cardinality = 0, universe = 0;
  uint32_t activation_threshold = 0, page_size = 0;
  if (!ReadU32(in, &magic) || magic != kMagic || !ReadU32(in, &version) ||
      version != kVersion || !ReadU32(in, &cardinality) ||
      !ReadU32(in, &universe) || !ReadU32(in, &activation_threshold) ||
      !ReadU32(in, &page_size)) {
    return std::nullopt;
  }
  if (cardinality == 0 || cardinality > SignaturePartition::kMaxCardinality ||
      universe == 0 || activation_threshold == 0 || page_size < 64) {
    return std::nullopt;
  }
  if (universe != database.universe_size()) return std::nullopt;

  std::vector<uint32_t> signature_of_item;
  if (!ReadU32Vector(in, universe, &signature_of_item) ||
      signature_of_item.size() != universe) {
    return std::nullopt;
  }
  for (uint32_t s : signature_of_item) {
    if (s >= cardinality) return std::nullopt;
  }

  uint64_t num_transactions = 0;
  if (!ReadU64(in, &num_transactions) ||
      num_transactions != database.size() ||
      num_transactions > kMaxReasonableCount) {
    return std::nullopt;
  }
  std::vector<Supercoordinate> coordinates(num_transactions);
  if (num_transactions > 0 &&
      std::fread(coordinates.data(), sizeof(uint32_t), num_transactions, in) !=
          num_transactions) {
    return std::nullopt;
  }

  uint64_t num_entries = 0;
  if (!ReadU64(in, &num_entries) || num_entries > num_transactions) {
    return std::nullopt;
  }
  std::vector<SignatureTable::Entry> entries(num_entries);
  for (auto& entry : entries) {
    if (!ReadU32(in, &entry.coordinate) ||
        !ReadU32(in, &entry.transaction_count) || !ReadU32(in, &entry.bucket)) {
      return std::nullopt;
    }
  }

  uint64_t num_buckets = 0;
  if (!ReadU64(in, &num_buckets) || num_buckets > num_transactions) {
    return std::nullopt;
  }
  std::vector<std::vector<PageId>> buckets(num_buckets);
  for (auto& bucket : buckets) {
    if (!ReadU32Vector(in, kMaxReasonableCount, &bucket)) return std::nullopt;
  }

  uint64_t num_pages = 0;
  if (!ReadU64(in, &num_pages) || num_pages > kMaxReasonableCount) {
    return std::nullopt;
  }
  std::vector<Page> pages(num_pages);
  for (auto& page : pages) {
    if (!ReadU32(in, &page.used_bytes) ||
        !ReadU32Vector(in, kMaxReasonableCount, &page.transaction_ids)) {
      return std::nullopt;
    }
    if (page.used_bytes > page_size) return std::nullopt;
  }
  std::vector<PageId> page_of_transaction;
  if (!ReadU32Vector(in, kMaxReasonableCount, &page_of_transaction) ||
      page_of_transaction.size() != num_transactions) {
    return std::nullopt;
  }
  for (PageId page : page_of_transaction) {
    if (page >= num_pages) return std::nullopt;
  }
  for (const auto& bucket : buckets) {
    for (PageId page : bucket) {
      if (page >= num_pages) return std::nullopt;
    }
  }
  for (const auto& entry : entries) {
    if (entry.bucket >= num_buckets) return std::nullopt;
    if (entry.coordinate >= (Supercoordinate{1} << cardinality)) {
      return std::nullopt;
    }
  }
  // Entry counts must sum to the transaction count; ordering is validated by
  // Assemble (which aborts on programmer error — here we reject gracefully).
  uint64_t total = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0 && entries[i - 1].coordinate >= entries[i].coordinate) {
      return std::nullopt;
    }
    total += entries[i].transaction_count;
  }
  if (total != num_transactions) return std::nullopt;

  SignatureTableConfig config;
  config.activation_threshold = static_cast<int>(activation_threshold);
  config.page_size_bytes = page_size;
  return SignatureTable::Assemble(
      SignaturePartition(cardinality, std::move(signature_of_item)), config,
      std::move(entries), std::move(coordinates),
      TransactionStore::FromParts(
          PageStore::FromPages(page_size, std::move(pages)),
          std::move(buckets), std::move(page_of_transaction)));
}

}  // namespace mbi
