#include "core/table_io.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "storage/format.h"

namespace mbi {
namespace {

// v2 section ids, in file order.
constexpr uint32_t kSectionMeta = 1;       // cardinality, universe, activation,
                                           // page_size (u32 each), num_tx u64
constexpr uint32_t kSectionPartition = 2;  // u32 span: signature per item
constexpr uint32_t kSectionCoordinates = 3;  // u32 span: coordinate per tx
constexpr uint32_t kSectionDirectory = 4;  // u64 count, then 3 u32 per entry
constexpr uint32_t kSectionBuckets = 5;    // u64 count, then a u32 span each
constexpr uint32_t kSectionPages = 6;      // u64 count, then used u32 + span
constexpr uint32_t kSectionPageMap = 7;    // u32 span: page per tx

// Hard caps against corrupt headers allocating absurd buffers.
constexpr uint64_t kMaxReasonableCount = 1ULL << 33;

/// Everything LoadSignatureTable reads off disk before assembly.
struct TableParts {
  uint32_t cardinality = 0;
  uint32_t universe = 0;
  uint32_t activation_threshold = 0;
  uint32_t page_size = 0;
  uint64_t num_transactions = 0;
  std::vector<uint32_t> signature_of_item;
  std::vector<Supercoordinate> coordinates;
  std::vector<SignatureTable::Entry> entries;
  std::vector<std::vector<PageId>> buckets;
  std::vector<Page> pages;
  std::vector<PageId> page_of_transaction;
};

Status ParseDirectory(SectionParser* parser, uint64_t max_entries,
                      std::vector<SignatureTable::Entry>* entries) {
  uint64_t num_entries = 0;
  MBI_RETURN_IF_ERROR(parser->ReadU64(&num_entries));
  if (num_entries > max_entries) {
    return Status::Corruption("directory declares " +
                              std::to_string(num_entries) +
                              " entries for " + std::to_string(max_entries) +
                              " transactions");
  }
  entries->resize(static_cast<size_t>(num_entries));
  for (auto& entry : *entries) {
    MBI_RETURN_IF_ERROR(parser->ReadU32(&entry.coordinate));
    MBI_RETURN_IF_ERROR(parser->ReadU32(&entry.transaction_count));
    MBI_RETURN_IF_ERROR(parser->ReadU32(&entry.bucket));
  }
  return Status::Ok();
}

Status ParseBuckets(SectionParser* parser, uint64_t max_buckets,
                    std::vector<std::vector<PageId>>* buckets) {
  uint64_t num_buckets = 0;
  MBI_RETURN_IF_ERROR(parser->ReadU64(&num_buckets));
  if (num_buckets > max_buckets) {
    return Status::Corruption("bucket count " + std::to_string(num_buckets) +
                              " exceeds the transaction count");
  }
  buckets->resize(static_cast<size_t>(num_buckets));
  for (auto& bucket : *buckets) {
    MBI_RETURN_IF_ERROR(parser->ReadU32Vector(kMaxReasonableCount, &bucket));
  }
  return Status::Ok();
}

Status ParsePages(SectionParser* parser, std::vector<Page>* pages) {
  uint64_t num_pages = 0;
  MBI_RETURN_IF_ERROR(parser->ReadU64(&num_pages));
  if (num_pages > kMaxReasonableCount) {
    return Status::Corruption("implausible page count " +
                              std::to_string(num_pages));
  }
  pages->resize(static_cast<size_t>(num_pages));
  for (auto& page : *pages) {
    MBI_RETURN_IF_ERROR(parser->ReadU32(&page.used_bytes));
    MBI_RETURN_IF_ERROR(
        parser->ReadU32Vector(kMaxReasonableCount, &page.transaction_ids));
  }
  return Status::Ok();
}

/// The full cross-section invariant walk. Rejects, as kCorruption, every
/// condition that SignatureTable::Assemble, TransactionStore::FromParts, or
/// PageStore::FromPages would abort on, plus the referential checks (page
/// membership, id ranges) that would otherwise crash a later query. When
/// `database` is non-null the table must index exactly that database; a
/// sound file over different data is kInvalidArgument, not corruption.
Status ValidateParts(const std::string& path, const TableParts& parts,
                     const TransactionDatabase* database) {
  if (parts.cardinality == 0 ||
      parts.cardinality > SignaturePartition::kMaxCardinality) {
    return Status::Corruption(
        path + ": cardinality " + std::to_string(parts.cardinality) +
        " outside [1, " + std::to_string(SignaturePartition::kMaxCardinality) +
        "]");
  }
  if (parts.universe == 0) {
    return Status::Corruption(path + ": zero universe size");
  }
  if (parts.activation_threshold == 0) {
    return Status::Corruption(path + ": zero activation threshold");
  }
  if (parts.page_size < 64) {
    return Status::Corruption(path + ": page size " +
                              std::to_string(parts.page_size) +
                              " below the 64-byte minimum");
  }
  if (parts.num_transactions > kMaxReasonableCount) {
    return Status::Corruption(path + ": implausible transaction count");
  }
  if (database != nullptr && (parts.universe != database->universe_size() ||
                              parts.num_transactions != database->size())) {
    return Status::InvalidArgument(
        path + ": index is over " + std::to_string(parts.num_transactions) +
        " transactions / universe " + std::to_string(parts.universe) +
        ", database has " + std::to_string(database->size()) +
        " / universe " + std::to_string(database->universe_size()));
  }

  if (parts.signature_of_item.size() != parts.universe) {
    return Status::Corruption(path + ": partition covers " +
                              std::to_string(parts.signature_of_item.size()) +
                              " items, header declares " +
                              std::to_string(parts.universe));
  }
  for (uint32_t signature : parts.signature_of_item) {
    if (signature >= parts.cardinality) {
      return Status::Corruption(path + ": item assigned to signature " +
                                std::to_string(signature) +
                                " >= cardinality");
    }
  }

  const Supercoordinate coordinate_limit = Supercoordinate{1}
                                           << parts.cardinality;
  if (parts.coordinates.size() != parts.num_transactions) {
    return Status::Corruption(path + ": coordinate list covers " +
                              std::to_string(parts.coordinates.size()) +
                              " transactions, header declares " +
                              std::to_string(parts.num_transactions));
  }
  for (Supercoordinate coordinate : parts.coordinates) {
    if (coordinate >= coordinate_limit) {
      return Status::Corruption(path +
                                ": transaction coordinate outside [0, 2^K)");
    }
  }

  const uint64_t num_buckets = parts.buckets.size();
  const uint64_t num_pages = parts.pages.size();
  uint64_t entry_total = 0;
  for (size_t i = 0; i < parts.entries.size(); ++i) {
    const SignatureTable::Entry& entry = parts.entries[i];
    if (entry.coordinate >= coordinate_limit) {
      return Status::Corruption(path + ": directory coordinate outside "
                                       "[0, 2^K)");
    }
    if (i > 0 && parts.entries[i - 1].coordinate >= entry.coordinate) {
      return Status::Corruption(path + ": directory entries not strictly "
                                       "sorted by coordinate");
    }
    if (entry.bucket >= num_buckets) {
      return Status::Corruption(path + ": directory entry references bucket " +
                                std::to_string(entry.bucket) + " of " +
                                std::to_string(num_buckets));
    }
    entry_total += entry.transaction_count;
  }
  if (entry_total != parts.num_transactions) {
    return Status::Corruption(path + ": directory counts sum to " +
                              std::to_string(entry_total) + ", expected " +
                              std::to_string(parts.num_transactions));
  }

  for (const Page& page : parts.pages) {
    if (page.used_bytes > parts.page_size) {
      return Status::Corruption(path + ": page claims " +
                                std::to_string(page.used_bytes) +
                                " used bytes of a " +
                                std::to_string(parts.page_size) +
                                "-byte page");
    }
    for (TransactionId id : page.transaction_ids) {
      if (id >= parts.num_transactions) {
        return Status::Corruption(path + ": page lists transaction " +
                                  std::to_string(id) + " beyond the " +
                                  std::to_string(parts.num_transactions) +
                                  " indexed");
      }
    }
  }
  for (const auto& bucket : parts.buckets) {
    for (PageId page : bucket) {
      if (page >= num_pages) {
        return Status::Corruption(path + ": bucket references page " +
                                  std::to_string(page) + " of " +
                                  std::to_string(num_pages));
      }
    }
  }
  if (parts.page_of_transaction.size() != parts.num_transactions) {
    return Status::Corruption(path + ": page map covers " +
                              std::to_string(parts.page_of_transaction.size()) +
                              " transactions, header declares " +
                              std::to_string(parts.num_transactions));
  }
  for (TransactionId id = 0; id < parts.num_transactions; ++id) {
    const PageId page = parts.page_of_transaction[id];
    if (page >= num_pages) {
      return Status::Corruption(path + ": page map references page " +
                                std::to_string(page) + " of " +
                                std::to_string(num_pages));
    }
    // FromParts aborts unless every transaction really is on its mapped
    // page; replicate that membership check gracefully here.
    bool found = false;
    for (TransactionId resident : parts.pages[page].transaction_ids) {
      if (resident == id) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Corruption(path + ": transaction " + std::to_string(id) +
                                " is mapped to page " + std::to_string(page) +
                                " but the page does not hold it");
    }
  }
  return Status::Ok();
}

/// Loads and validates `path`, against `database` when non-null. The core of
/// both LoadSignatureTable and VerifySignatureTableFile.
StatusOr<SignatureTable> LoadTableImpl(const std::string& path,
                                       const TransactionDatabase* database,
                                       Env* env) {
  MBI_ASSIGN_OR_RETURN(ArtifactReader reader,
                       ArtifactReader::Open(env, path, kTableMagic));
  TableParts parts;

  if (reader.version() == kFormatVersionDurable) {
    MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> meta,
                         reader.ReadSection(kSectionMeta, "meta"));
    SectionParser meta_parser(meta, path + ": section 'meta'");
    MBI_RETURN_IF_ERROR(meta_parser.ReadU32(&parts.cardinality));
    MBI_RETURN_IF_ERROR(meta_parser.ReadU32(&parts.universe));
    MBI_RETURN_IF_ERROR(meta_parser.ReadU32(&parts.activation_threshold));
    MBI_RETURN_IF_ERROR(meta_parser.ReadU32(&parts.page_size));
    MBI_RETURN_IF_ERROR(meta_parser.ReadU64(&parts.num_transactions));
    MBI_RETURN_IF_ERROR(meta_parser.ExpectConsumed());

    MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> partition,
                         reader.ReadSection(kSectionPartition, "partition"));
    SectionParser partition_parser(partition, path + ": section 'partition'");
    MBI_RETURN_IF_ERROR(partition_parser.ReadU32Vector(
        parts.universe, &parts.signature_of_item));
    MBI_RETURN_IF_ERROR(partition_parser.ExpectConsumed());

    MBI_ASSIGN_OR_RETURN(
        std::vector<uint8_t> coordinates,
        reader.ReadSection(kSectionCoordinates, "coordinates"));
    SectionParser coordinate_parser(coordinates,
                                    path + ": section 'coordinates'");
    MBI_RETURN_IF_ERROR(coordinate_parser.ReadU32Vector(kMaxReasonableCount,
                                                        &parts.coordinates));
    MBI_RETURN_IF_ERROR(coordinate_parser.ExpectConsumed());

    MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> directory,
                         reader.ReadSection(kSectionDirectory, "directory"));
    SectionParser directory_parser(directory, path + ": section 'directory'");
    MBI_RETURN_IF_ERROR(ParseDirectory(&directory_parser,
                                       parts.num_transactions, &parts.entries));
    MBI_RETURN_IF_ERROR(directory_parser.ExpectConsumed());

    MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> buckets,
                         reader.ReadSection(kSectionBuckets, "buckets"));
    SectionParser bucket_parser(buckets, path + ": section 'buckets'");
    MBI_RETURN_IF_ERROR(
        ParseBuckets(&bucket_parser, parts.num_transactions, &parts.buckets));
    MBI_RETURN_IF_ERROR(bucket_parser.ExpectConsumed());

    MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> pages,
                         reader.ReadSection(kSectionPages, "pages"));
    SectionParser page_parser(pages, path + ": section 'pages'");
    MBI_RETURN_IF_ERROR(ParsePages(&page_parser, &parts.pages));
    MBI_RETURN_IF_ERROR(page_parser.ExpectConsumed());

    MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> page_map,
                         reader.ReadSection(kSectionPageMap, "page_map"));
    SectionParser page_map_parser(page_map, path + ": section 'page_map'");
    MBI_RETURN_IF_ERROR(page_map_parser.ReadU32Vector(
        kMaxReasonableCount, &parts.page_of_transaction));
    MBI_RETURN_IF_ERROR(page_map_parser.ExpectConsumed());
    MBI_RETURN_IF_ERROR(reader.ExpectEnd());
  } else {
    // Legacy v1: one unframed body, fields in the seed's order.
    MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> body, reader.ReadRemainder());
    SectionParser parser(body, path);
    MBI_RETURN_IF_ERROR(parser.ReadU32(&parts.cardinality));
    MBI_RETURN_IF_ERROR(parser.ReadU32(&parts.universe));
    MBI_RETURN_IF_ERROR(parser.ReadU32(&parts.activation_threshold));
    MBI_RETURN_IF_ERROR(parser.ReadU32(&parts.page_size));
    MBI_RETURN_IF_ERROR(
        parser.ReadU32Vector(parts.universe, &parts.signature_of_item));
    MBI_RETURN_IF_ERROR(parser.ReadU64(&parts.num_transactions));
    if (parts.num_transactions > kMaxReasonableCount) {
      return Status::Corruption(path + ": implausible transaction count");
    }
    if (parser.remaining() <
        parts.num_transactions * sizeof(Supercoordinate)) {
      return Status::Corruption(path + ": coordinate list truncated");
    }
    parts.coordinates.resize(static_cast<size_t>(parts.num_transactions));
    MBI_RETURN_IF_ERROR(
        parser.ReadBytes(parts.coordinates.data(),
                         parts.coordinates.size() * sizeof(Supercoordinate)));
    MBI_RETURN_IF_ERROR(
        ParseDirectory(&parser, parts.num_transactions, &parts.entries));
    MBI_RETURN_IF_ERROR(
        ParseBuckets(&parser, parts.num_transactions, &parts.buckets));
    MBI_RETURN_IF_ERROR(ParsePages(&parser, &parts.pages));
    MBI_RETURN_IF_ERROR(parser.ReadU32Vector(kMaxReasonableCount,
                                             &parts.page_of_transaction));
    MBI_RETURN_IF_ERROR(parser.ExpectConsumed());
  }

  MBI_RETURN_IF_ERROR(ValidateParts(path, parts, database));

  SignatureTableConfig config;
  config.activation_threshold = static_cast<int>(parts.activation_threshold);
  config.page_size_bytes = parts.page_size;
  return SignatureTable::Assemble(
      SignaturePartition(parts.cardinality, std::move(parts.signature_of_item)),
      config, std::move(parts.entries), std::move(parts.coordinates),
      TransactionStore::FromParts(
          PageStore::FromPages(parts.page_size, std::move(parts.pages)),
          std::move(parts.buckets), std::move(parts.page_of_transaction)));
}

}  // namespace

Status SaveSignatureTable(const SignatureTable& table, const std::string& path,
                          Env* env) {
  ArtifactWriter writer(env, path, kTableMagic);
  MBI_RETURN_IF_ERROR(writer.Open());

  const SignaturePartition& partition = table.partition();
  const uint64_t num_transactions = table.num_indexed_transactions();

  writer.BeginSection(kSectionMeta);
  writer.PutU32(partition.cardinality());
  writer.PutU32(partition.universe_size());
  writer.PutU32(static_cast<uint32_t>(table.activation_threshold()));
  writer.PutU32(table.page_size_bytes());
  writer.PutU64(num_transactions);
  MBI_RETURN_IF_ERROR(writer.EndSection());

  std::vector<uint32_t> signature_of_item(partition.universe_size());
  for (ItemId item = 0; item < partition.universe_size(); ++item) {
    signature_of_item[item] = partition.SignatureOf(item);
  }
  writer.BeginSection(kSectionPartition);
  writer.PutU32Span(signature_of_item.data(), signature_of_item.size());
  MBI_RETURN_IF_ERROR(writer.EndSection());

  std::vector<Supercoordinate> coordinates(
      static_cast<size_t>(num_transactions));
  for (TransactionId id = 0; id < num_transactions; ++id) {
    coordinates[id] = table.CoordinateOfTransaction(id);
  }
  writer.BeginSection(kSectionCoordinates);
  writer.PutU32Span(coordinates.data(), coordinates.size());
  MBI_RETURN_IF_ERROR(writer.EndSection());

  writer.BeginSection(kSectionDirectory);
  writer.PutU64(table.entries().size());
  for (const SignatureTable::Entry& entry : table.entries()) {
    writer.PutU32(entry.coordinate);
    writer.PutU32(entry.transaction_count);
    writer.PutU32(entry.bucket);
  }
  MBI_RETURN_IF_ERROR(writer.EndSection());

  const TransactionStore& store = table.store();
  writer.BeginSection(kSectionBuckets);
  writer.PutU64(store.num_buckets());
  for (uint32_t bucket = 0; bucket < store.num_buckets(); ++bucket) {
    const std::vector<PageId>& pages = store.PagesOfBucket(bucket);
    writer.PutU32Span(pages.data(), pages.size());
  }
  MBI_RETURN_IF_ERROR(writer.EndSection());

  const PageStore& pages = store.page_store();
  writer.BeginSection(kSectionPages);
  writer.PutU64(pages.size());
  for (const Page& page : pages.pages()) {
    writer.PutU32(page.used_bytes);
    writer.PutU32Span(page.transaction_ids.data(), page.transaction_ids.size());
  }
  MBI_RETURN_IF_ERROR(writer.EndSection());

  std::vector<uint32_t> page_of_transaction(
      static_cast<size_t>(num_transactions));
  for (TransactionId id = 0; id < num_transactions; ++id) {
    page_of_transaction[id] = store.PageOfTransaction(id);
  }
  writer.BeginSection(kSectionPageMap);
  writer.PutU32Span(page_of_transaction.data(), page_of_transaction.size());
  MBI_RETURN_IF_ERROR(writer.EndSection());

  return writer.Commit();
}

StatusOr<SignatureTable> LoadSignatureTable(
    const std::string& path, const TransactionDatabase& database, Env* env) {
  return LoadTableImpl(path, &database, env);
}

Status VerifySignatureTableFile(const std::string& path, Env* env) {
  StatusOr<SignatureTable> table = LoadTableImpl(path, nullptr, env);
  return table.ok() ? Status::Ok() : table.status();
}

}  // namespace mbi
