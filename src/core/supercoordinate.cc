#include "core/supercoordinate.h"

#include <bit>

#include "util/macros.h"

namespace mbi {

Supercoordinate ComputeSupercoordinate(const Transaction& transaction,
                                       const SignaturePartition& partition,
                                       int activation_threshold) {
  return SupercoordinateFromCounts(partition.CountsPerSignature(transaction),
                                   activation_threshold);
}

Supercoordinate SupercoordinateFromCounts(const std::vector<int>& counts,
                                          int activation_threshold) {
  MBI_CHECK(activation_threshold >= 1);
  MBI_CHECK(counts.size() <= SignaturePartition::kMaxCardinality);
  Supercoordinate coordinate = 0;
  for (size_t j = 0; j < counts.size(); ++j) {
    if (Activates(counts[j], activation_threshold)) {
      coordinate |= (Supercoordinate{1} << j);
    }
  }
  return coordinate;
}

int ActivatedCount(Supercoordinate coordinate) {
  return std::popcount(coordinate);
}

std::string SupercoordinateToString(Supercoordinate coordinate,
                                    uint32_t cardinality) {
  std::string out;
  out.reserve(cardinality);
  for (uint32_t j = 0; j < cardinality; ++j) {
    out.push_back((coordinate >> j) & 1u ? '1' : '0');
  }
  return out;
}

void SupercoordinateMatchAndHamming(Supercoordinate a, Supercoordinate b,
                                    int* match, int* hamming) {
  *match = std::popcount(a & b);
  *hamming = std::popcount(a ^ b);
}

}  // namespace mbi
