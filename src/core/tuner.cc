#include "core/tuner.h"

#include <algorithm>
#include <cstdio>

#include "core/branch_and_bound.h"
#include "util/macros.h"
#include "util/rng.h"

namespace mbi {
namespace {

/// Largest K whose 2^K pointer-sized directory fits the budget.
uint32_t MaxCardinalityForBudget(uint64_t budget_bytes) {
  uint32_t k = 0;
  while (k + 1 <= SignaturePartition::kMaxCardinality &&
         (uint64_t{1} << (k + 1)) * sizeof(void*) <= budget_bytes) {
    ++k;
  }
  return k;
}

}  // namespace

std::string TuningResult::ToString() const {
  std::string out = "trials:\n";
  for (const TuningTrial& trial : trials) {
    char line[128];
    std::snprintf(line, sizeof(line),
                  "  K=%-2u r=%d directory=%lluKiB pruning=%.2f%%\n",
                  trial.cardinality, trial.activation_threshold,
                  static_cast<unsigned long long>(trial.directory_bytes /
                                                  1024),
                  trial.pruning_efficiency);
    out += line;
  }
  char chosen[128];
  std::snprintf(chosen, sizeof(chosen), "recommended: K=%u r=%d",
                recommended.clustering.target_cardinality,
                recommended.table.activation_threshold);
  out += chosen;
  return out;
}

TuningResult TuneIndex(const TransactionDatabase& database,
                       const std::vector<Transaction>& probe_queries,
                       const SimilarityFamily& family,
                       const TunerConfig& config) {
  MBI_CHECK(!database.empty());
  MBI_CHECK(!probe_queries.empty());
  MBI_CHECK(!config.activation_thresholds.empty());

  const uint32_t max_k =
      MaxCardinalityForBudget(config.directory_memory_budget_bytes);
  MBI_CHECK_MSG(max_k >= config.min_cardinality,
                "memory budget below the minimum cardinality's directory");

  // Sample the database (prefix sampling after a shuffle of indices keeps
  // this O(sample); the generator's stream has no order bias anyway, but a
  // deployment's log might).
  uint64_t sample_size = std::min<uint64_t>(config.sample_size,
                                            database.size());
  TransactionDatabase sample(database.universe_size());
  {
    Rng rng(config.seed);
    if (sample_size == database.size()) {
      for (TransactionId id = 0; id < database.size(); ++id) {
        sample.Add(database.Get(id));
      }
    } else {
      for (uint64_t row :
           rng.SampleWithoutReplacement(database.size(), sample_size)) {
        sample.Add(database.Get(static_cast<TransactionId>(row)));
      }
    }
  }
  // The sample must still have at least min_cardinality distinct items for
  // clustering; the caller's database is assumed realistic (checked inside
  // the clustering otherwise).

  TuningResult result;
  const TuningTrial* best = nullptr;

  // Sweep K coarsely (every other value) up to the cap, always including the
  // cap itself, crossed with the activation thresholds.
  std::vector<uint32_t> cardinalities;
  for (uint32_t k = config.min_cardinality; k < max_k; k += 2) {
    cardinalities.push_back(k);
  }
  cardinalities.push_back(max_k);

  for (uint32_t k : cardinalities) {
    for (int r : config.activation_thresholds) {
      IndexBuildConfig build;
      build.clustering.target_cardinality = k;
      build.table.activation_threshold = r;
      SignatureTable table = BuildIndex(sample, build);
      BranchAndBoundEngine engine(&sample, &table);

      TuningTrial trial;
      trial.cardinality = k;
      trial.activation_threshold = r;
      trial.directory_bytes = table.MemoryFootprintBytes();
      double total = 0.0;
      for (const Transaction& target : probe_queries) {
        total +=
            engine.FindNearest(target, family).stats.PruningEfficiencyPercent();
      }
      trial.pruning_efficiency =
          total / static_cast<double>(probe_queries.size());
      result.trials.push_back(trial);
    }
  }

  // Pick the best pruning; ties within 0.25pp go to the smaller directory,
  // then to the smaller r (cheaper activation accounting).
  for (const TuningTrial& trial : result.trials) {
    if (best == nullptr) {
      best = &trial;
      continue;
    }
    double delta = trial.pruning_efficiency - best->pruning_efficiency;
    if (delta > 0.25 ||
        (delta > -0.25 && (trial.directory_bytes < best->directory_bytes ||
                           (trial.directory_bytes == best->directory_bytes &&
                            trial.activation_threshold <
                                best->activation_threshold)))) {
      best = &trial;
    }
  }
  MBI_CHECK(best != nullptr);
  result.recommended.clustering.target_cardinality = best->cardinality;
  result.recommended.table.activation_threshold = best->activation_threshold;
  return result;
}

}  // namespace mbi
