#ifndef MBI_CORE_QUERY_STATS_H_
#define MBI_CORE_QUERY_STATS_H_

#include <algorithm>
#include <cstdint>

#include "storage/io_stats.h"

namespace mbi {

/// Per-query accounting reported by the branch-and-bound engine.
struct QueryStats {
  /// Transactions in the database searched over.
  uint64_t database_size = 0;

  /// Occupied signature table entries the query considered.
  uint64_t entries_total = 0;

  /// Entries whose transaction lists were actually read from disk.
  uint64_t entries_scanned = 0;

  /// Entries eliminated by the optimistic-bound test.
  uint64_t entries_pruned = 0;

  /// Entries left unexplored because of early termination.
  uint64_t entries_unexplored = 0;

  /// Transactions fetched and evaluated against the target.
  uint64_t transactions_evaluated = 0;

  /// Simulated-disk I/O incurred by the query.
  IoStats io;

  /// Times this query was answered by the SequentialScanner fallback because
  /// the index was quarantined (SignatureTableEngine; 0 on the healthy
  /// path). Results are still exact — only the speed degrades.
  uint64_t sequential_fallbacks = 0;

  /// The paper's pruning-efficiency metric: the percentage of the database
  /// *not* accessed when the algorithm runs to completion. Clamped to
  /// [0, 100]: re-evaluation (a transaction indexed under several scanned
  /// entries, or a fallback rescan) can push `transactions_evaluated` past
  /// `database_size`, which must read as "no pruning", never as a negative
  /// percentage.
  double PruningEfficiencyPercent() const {
    return 100.0 * (1.0 - AccessedFraction());
  }

  /// Fraction of the database accessed, clamped to [0, 1] (see
  /// PruningEfficiencyPercent for why evaluations can exceed the database
  /// size).
  double AccessedFraction() const {
    if (database_size == 0) return 0.0;
    const double fraction = static_cast<double>(transactions_evaluated) /
                            static_cast<double>(database_size);
    return std::min(fraction, 1.0);
  }
};

}  // namespace mbi

#endif  // MBI_CORE_QUERY_STATS_H_
