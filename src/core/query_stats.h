#ifndef MBI_CORE_QUERY_STATS_H_
#define MBI_CORE_QUERY_STATS_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "storage/io_stats.h"

namespace mbi {

/// Why a query stopped scanning. Everything except kCompleted means the
/// answer may be degraded — consult `is_exact` / `certificate_bound`.
enum class QueryTermination : uint8_t {
  kCompleted = 0,      ///< Ran to completion (or proved optimality early).
  kAccessFraction,     ///< SearchOptions::max_access_fraction tripped.
  kEntryBudget,        ///< QueryBudget::max_entries tripped.
  kDeadline,           ///< QueryBudget::deadline_us expired.
  kCancelled,          ///< QueryBudget::cancel token was set.
};

inline const char* QueryTerminationName(QueryTermination t) {
  switch (t) {
    case QueryTermination::kCompleted: return "completed";
    case QueryTermination::kAccessFraction: return "access_fraction";
    case QueryTermination::kEntryBudget: return "entry_budget";
    case QueryTermination::kDeadline: return "deadline";
    case QueryTermination::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// Per-query accounting reported by the branch-and-bound engine.
struct QueryStats {
  /// Transactions in the database searched over.
  uint64_t database_size = 0;

  /// Occupied signature table entries the query considered.
  uint64_t entries_total = 0;

  /// Entries whose transaction lists were actually read from disk.
  uint64_t entries_scanned = 0;

  /// Entries eliminated by the optimistic-bound test.
  uint64_t entries_pruned = 0;

  /// Entries left unexplored because of early termination.
  uint64_t entries_unexplored = 0;

  /// Transactions fetched and evaluated against the target.
  uint64_t transactions_evaluated = 0;

  /// Simulated-disk I/O incurred by the query.
  IoStats io;

  /// Times this query was answered by the SequentialScanner fallback because
  /// the index was quarantined (SignatureTableEngine; 0 on the healthy
  /// path). Results are still exact — only the speed degrades.
  uint64_t sequential_fallbacks = 0;

  /// Why scanning stopped. Anything but kCompleted marks a potentially
  /// degraded answer; these three fields together are the paper-§4 quality
  /// certificate and must survive every result path (including the
  /// quarantine fallback — see SignatureTableEngine::SequentialKNearest).
  QueryTermination termination = QueryTermination::kCompleted;

  /// True iff the returned neighbors are provably the exact top-k (either
  /// everything was scanned, or Lemma 2.1 pruned the rest below the k-th
  /// best). Mirrors NearestNeighborResult::guaranteed_exact so it survives
  /// stats-only reporting paths.
  bool is_exact = true;

  /// Largest optimistic similarity bound over the entries left unexplored:
  /// no unreturned transaction can beat this. -inf when nothing was left
  /// unexplored. For a degraded answer this is the a-posteriori quality
  /// guarantee: certificate_bound >= true k-th similarity >= returned k-th.
  double certificate_bound = -std::numeric_limits<double>::infinity();

  /// The paper's pruning-efficiency metric: the percentage of the database
  /// *not* accessed when the algorithm runs to completion. Clamped to
  /// [0, 100]: re-evaluation (a transaction indexed under several scanned
  /// entries, or a fallback rescan) can push `transactions_evaluated` past
  /// `database_size`, which must read as "no pruning", never as a negative
  /// percentage.
  double PruningEfficiencyPercent() const {
    return 100.0 * (1.0 - AccessedFraction());
  }

  /// Fraction of the database accessed, clamped to [0, 1] (see
  /// PruningEfficiencyPercent for why evaluations can exceed the database
  /// size).
  double AccessedFraction() const {
    if (database_size == 0) return 0.0;
    const double fraction = static_cast<double>(transactions_evaluated) /
                            static_cast<double>(database_size);
    return std::min(fraction, 1.0);
  }
};

/// Severity order for merging terminations: a combined answer inherits the
/// *most* degraded component's reason. kCompleted < kAccessFraction <
/// kEntryBudget < kDeadline < kCancelled — the enum is declared in this
/// order, so the numeric max is the merge.
inline QueryTermination MergeTermination(QueryTermination a,
                                         QueryTermination b) {
  return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

/// Folds one component's (or one batch entry's) stats into an aggregate.
/// The aggregation rules are part of the §4 certificate contract and must
/// not be improvised per call site (engine batch paths, the dynamization
/// KnnMerger, and the CLI all share this):
///
///  * counters and I/O — sum (work is additive across components),
///  * `database_size` — sum (components partition the logical database;
///    callers aggregating *repeat* queries over the same data want averages,
///    not this),
///  * `is_exact` — logical AND (one degraded component degrades the whole),
///  * `certificate_bound` — max (the bound must dominate every component's
///    unexplored region; sum or last-writer would be unsound),
///  * `termination` — most severe (MergeTermination).
inline void MergeQueryStats(const QueryStats& component, QueryStats* agg) {
  agg->database_size += component.database_size;
  agg->entries_total += component.entries_total;
  agg->entries_scanned += component.entries_scanned;
  agg->entries_pruned += component.entries_pruned;
  agg->entries_unexplored += component.entries_unexplored;
  agg->transactions_evaluated += component.transactions_evaluated;
  agg->io += component.io;
  agg->sequential_fallbacks += component.sequential_fallbacks;
  agg->termination = MergeTermination(agg->termination, component.termination);
  agg->is_exact = agg->is_exact && component.is_exact;
  agg->certificate_bound =
      std::max(agg->certificate_bound, component.certificate_bound);
}

}  // namespace mbi

#endif  // MBI_CORE_QUERY_STATS_H_
