#include "core/clustering.h"

#include <algorithm>
#include <queue>
#include <tuple>
#include <vector>

#include "util/macros.h"

namespace mbi {
namespace {

/// Union-find over items tracking per-component support mass.
class DisjointSets {
 public:
  explicit DisjointSets(const SupportProvider& supports)
      : parent_(supports.universe_size()),
        rank_(supports.universe_size(), 0),
        mass_(supports.universe_size()) {
    for (uint32_t i = 0; i < parent_.size(); ++i) {
      parent_[i] = i;
      mass_[i] = supports.ItemSupport(i);
    }
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the components of a and b; returns the new root.
  uint32_t Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    MBI_CHECK(a != b);
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    mass_[a] += mass_[b];
    if (rank_[a] == rank_[b]) ++rank_[a];
    return a;
  }

  double MassOf(uint32_t root) const { return mass_[root]; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
  std::vector<double> mass_;
};

/// Packs `component_masses` into `bins` bins, heaviest component first into
/// the currently lightest bin. Returns the bin of each component.
std::vector<uint32_t> PackBalanced(const std::vector<double>& component_masses,
                                   uint32_t bins) {
  MBI_CHECK(bins > 0);
  std::vector<size_t> order(component_masses.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return component_masses[a] > component_masses[b];
  });

  // Min-heap of (mass, item count, bin id): prefer lighter bins, then bins
  // holding fewer components so zero-mass components still spread out.
  using BinState = std::tuple<double, uint64_t, uint32_t>;
  std::priority_queue<BinState, std::vector<BinState>, std::greater<BinState>>
      heap;
  for (uint32_t b = 0; b < bins; ++b) heap.push({0.0, 0, b});

  std::vector<uint32_t> bin_of(component_masses.size(), 0);
  for (size_t index : order) {
    auto [mass, count, bin] = heap.top();
    heap.pop();
    bin_of[index] = bin;
    heap.push({mass + component_masses[index], count + 1, bin});
  }
  return bin_of;
}

/// Ensures every signature is non-empty by moving single items out of the
/// most populous signatures into empty ones. Preconditions: `cardinality`
/// <= number of items.
void FillEmptySignatures(uint32_t cardinality,
                         std::vector<uint32_t>* signature_of_item) {
  std::vector<std::vector<ItemId>> members(cardinality);
  for (ItemId item = 0; item < signature_of_item->size(); ++item) {
    members[(*signature_of_item)[item]].push_back(item);
  }
  for (uint32_t empty = 0; empty < cardinality; ++empty) {
    if (!members[empty].empty()) continue;
    uint32_t donor = 0;
    for (uint32_t s = 1; s < cardinality; ++s) {
      if (members[s].size() > members[donor].size()) donor = s;
    }
    MBI_CHECK_MSG(members[donor].size() > 1,
                  "not enough items to populate every signature");
    ItemId moved = members[donor].back();
    members[donor].pop_back();
    members[empty].push_back(moved);
    (*signature_of_item)[moved] = empty;
  }
}

}  // namespace

SignaturePartition BuildSignaturesSingleLinkage(
    const SupportProvider& supports, const ClusteringConfig& config) {
  const uint32_t k = config.target_cardinality;
  MBI_CHECK(k >= 1 && k <= SignaturePartition::kMaxCardinality);
  const uint32_t n = supports.universe_size();
  MBI_CHECK_MSG(n >= k, "universe smaller than the signature cardinality");

  double total_mass = 0.0;
  for (uint32_t item = 0; item < n; ++item) {
    total_mass += supports.ItemSupport(item);
  }
  const double critical_mass = total_mass / static_cast<double>(k);

  // Edges above the minimum pair support, by decreasing support (increasing
  // inverse-support distance) — the greedy MST order of single linkage.
  const uint64_t min_count = static_cast<uint64_t>(
      config.min_pair_support * static_cast<double>(supports.num_transactions()));
  std::vector<SupportProvider::PairEntry> edges =
      supports.PairsWithMinCount(std::max<uint64_t>(1, min_count));
  std::sort(edges.begin(), edges.end(),
            [](const SupportProvider::PairEntry& a,
               const SupportProvider::PairEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.a != b.a) return a.a < b.a;  // Deterministic tie-break.
              return a.b < b.b;
            });

  DisjointSets dsu(supports);
  // sealed_signature_of_root[root] is the signature id assigned when the
  // component rooted at `root` reached critical mass; absent otherwise.
  std::vector<int32_t> sealed_of_root(n, -1);
  uint32_t sealed_count = 0;

  for (const auto& edge : edges) {
    if (sealed_count + 1 >= k) break;  // Keep >= 1 bin for the leftovers.
    uint32_t ra = dsu.Find(edge.a);
    uint32_t rb = dsu.Find(edge.b);
    if (ra == rb) continue;
    if (sealed_of_root[ra] >= 0 || sealed_of_root[rb] >= 0) {
      continue;  // Sealed components are removed from the graph.
    }
    uint32_t root = dsu.Union(ra, rb);
    if (dsu.MassOf(root) >= critical_mass) {
      sealed_of_root[root] = static_cast<int32_t>(sealed_count++);
    }
  }

  // Collect leftover (unsealed) components and pack them into the remaining
  // signature bins, balancing mass.
  std::vector<uint32_t> leftover_roots;
  std::vector<double> leftover_masses;
  std::vector<int32_t> leftover_index_of_root(n, -1);
  for (uint32_t item = 0; item < n; ++item) {
    uint32_t root = dsu.Find(item);
    if (sealed_of_root[root] >= 0) continue;
    if (leftover_index_of_root[root] < 0) {
      leftover_index_of_root[root] =
          static_cast<int32_t>(leftover_roots.size());
      leftover_roots.push_back(root);
      leftover_masses.push_back(dsu.MassOf(root));
    }
  }

  std::vector<uint32_t> signature_of_item(n, 0);
  if (!leftover_roots.empty()) {
    const uint32_t leftover_bins = k - sealed_count;
    std::vector<uint32_t> bin_of = PackBalanced(leftover_masses, leftover_bins);
    for (uint32_t item = 0; item < n; ++item) {
      uint32_t root = dsu.Find(item);
      if (sealed_of_root[root] >= 0) {
        signature_of_item[item] = static_cast<uint32_t>(sealed_of_root[root]);
      } else {
        signature_of_item[item] =
            sealed_count +
            bin_of[static_cast<size_t>(leftover_index_of_root[root])];
      }
    }
  } else {
    for (uint32_t item = 0; item < n; ++item) {
      signature_of_item[item] =
          static_cast<uint32_t>(sealed_of_root[dsu.Find(item)]);
    }
  }

  FillEmptySignatures(k, &signature_of_item);
  return SignaturePartition(k, std::move(signature_of_item));
}

SignaturePartition BuildSignaturesBalanced(const SupportProvider& supports,
                                           uint32_t target_cardinality) {
  MBI_CHECK(target_cardinality >= 1 &&
            target_cardinality <= SignaturePartition::kMaxCardinality);
  const uint32_t n = supports.universe_size();
  MBI_CHECK_MSG(n >= target_cardinality,
                "universe smaller than the signature cardinality");
  std::vector<double> masses(n);
  for (uint32_t item = 0; item < n; ++item) {
    masses[item] = supports.ItemSupport(item);
  }
  std::vector<uint32_t> signature_of_item = PackBalanced(masses,
                                                         target_cardinality);
  FillEmptySignatures(target_cardinality, &signature_of_item);
  return SignaturePartition(target_cardinality, std::move(signature_of_item));
}

}  // namespace mbi
