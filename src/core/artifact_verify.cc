#include "core/artifact_verify.h"

#include "core/partition_io.h"
#include "core/table_io.h"
#include "storage/format.h"
#include "storage/page_store.h"
#include "txn/database_io.h"

namespace mbi {
namespace {

const char* TypeName(uint32_t magic) {
  switch (magic) {
    case kDatabaseMagic: return "database";
    case kPartitionMagic: return "partition";
    case kTableMagic: return "signature table";
    case kPageSpillMagic: return "page spill";
    default: return "unknown";
  }
}

/// Human name for a (magic, section id) pair, matching the loaders' section
/// layouts. Unknown ids (possible on corrupt frames) print as "id <n>".
std::string SectionName(uint32_t magic, uint32_t id) {
  switch (magic) {
    case kDatabaseMagic:
      if (id == 1) return "meta";
      if (id == 2) return "transactions";
      break;
    case kPartitionMagic:
      if (id == 1) return "meta";
      if (id == 2) return "assignment";
      break;
    case kTableMagic:
      switch (id) {
        case 1: return "meta";
        case 2: return "partition";
        case 3: return "coordinates";
        case 4: return "directory";
        case 5: return "buckets";
        case 6: return "pages";
        case 7: return "page_map";
        default: break;
      }
      break;
    case kPageSpillMagic:
      if (id == 1) return "meta";
      if (id == 2) return "pages";
      break;
    default:
      break;
  }
  return "id " + std::to_string(id);
}

Status DeepCheck(const std::string& path, uint32_t magic, Env* env) {
  switch (magic) {
    case kDatabaseMagic: {
      StatusOr<TransactionDatabase> database = LoadDatabase(path, env);
      return database.ok() ? Status::Ok() : database.status();
    }
    case kPartitionMagic: {
      StatusOr<SignaturePartition> partition = LoadPartition(path, env);
      return partition.ok() ? Status::Ok() : partition.status();
    }
    case kTableMagic:
      return VerifySignatureTableFile(path, env);
    case kPageSpillMagic: {
      StatusOr<PageStore> store = PageStore::LoadSpillFile(path, env);
      return store.ok() ? Status::Ok() : store.status();
    }
    default:
      return Status::Corruption(path + ": unrecognized artifact magic");
  }
}

}  // namespace

Status ArtifactReport::Overall() const {
  for (const SectionReport& section : sections) {
    if (!section.crc_ok) {
      return Status::Corruption(path + ": section '" + section.name +
                                "': checksum mismatch");
    }
  }
  return deep_check;
}

StatusOr<ArtifactReport> VerifyArtifact(const std::string& path,
                                        bool checksums_only, Env* env) {
  MBI_ASSIGN_OR_RETURN(ArtifactReader reader,
                       ArtifactReader::Open(env, path, /*expected_magic=*/0));
  ArtifactReport report;
  report.path = path;
  report.magic = reader.magic();
  report.version = reader.version();
  report.file_size = reader.file_size();
  report.type_name = TypeName(reader.magic());

  if (reader.version() == kFormatVersionDurable) {
    while (reader.remaining() > 0) {
      MBI_ASSIGN_OR_RETURN(ArtifactReader::RawSection section,
                           reader.NextSection());
      SectionReport entry;
      entry.id = section.id;
      entry.name = SectionName(reader.magic(), section.id);
      entry.bytes = section.payload.size();
      entry.crc_ok = section.crc_ok;
      report.sections.push_back(std::move(entry));
    }
  }
  // Legacy v1 files carry no frames: nothing to checksum, the deep parse is
  // the only evidence of health.

  if (!checksums_only) {
    report.deep_check = DeepCheck(path, reader.magic(), env);
  }
  return report;
}

}  // namespace mbi
