#include "core/index_builder.h"

#include "mining/support_counter.h"

namespace mbi {

SignatureTable BuildIndex(const TransactionDatabase& database,
                          const IndexBuildConfig& config) {
  SupportCounter supports(database);
  SignaturePartition partition =
      config.use_balanced_partitioner
          ? BuildSignaturesBalanced(supports,
                                    config.clustering.target_cardinality)
          : BuildSignaturesSingleLinkage(supports, config.clustering);
  return SignatureTable::Build(database, std::move(partition), config.table);
}

}  // namespace mbi
