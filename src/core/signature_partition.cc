#include "core/signature_partition.h"

#include "util/macros.h"

namespace mbi {

SignaturePartition::SignaturePartition(uint32_t cardinality,
                                       std::vector<uint32_t> signature_of_item)
    : cardinality_(cardinality),
      signature_of_item_(std::move(signature_of_item)) {
  MBI_CHECK(cardinality_ > 0 && cardinality_ <= kMaxCardinality);
  MBI_CHECK(!signature_of_item_.empty());
  items_of_signature_.resize(cardinality_);
  for (ItemId item = 0; item < signature_of_item_.size(); ++item) {
    uint32_t s = signature_of_item_[item];
    MBI_CHECK_MSG(s < cardinality_, "item mapped to an out-of-range signature");
    items_of_signature_[s].push_back(item);
  }
}

uint32_t SignaturePartition::SignatureOf(ItemId item) const {
  MBI_CHECK(item < signature_of_item_.size());
  return signature_of_item_[item];
}

const std::vector<ItemId>& SignaturePartition::ItemsOf(uint32_t s) const {
  MBI_CHECK(s < cardinality_);
  return items_of_signature_[s];
}

std::vector<int> SignaturePartition::CountsPerSignature(
    const Transaction& transaction) const {
  std::vector<int> counts(cardinality_, 0);
  for (ItemId item : transaction.items()) {
    ++counts[SignatureOf(item)];
  }
  return counts;
}

std::string SignaturePartition::ToString() const {
  std::string out;
  for (uint32_t s = 0; s < cardinality_; ++s) {
    if (s > 0) out += " ";
    out += "S" + std::to_string(s) + "={";
    const auto& items = items_of_signature_[s];
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(items[i]);
    }
    out += "}";
  }
  return out;
}

}  // namespace mbi
