#include "core/signature_partition.h"

#include "util/macros.h"

namespace mbi {

SignaturePartition::SignaturePartition(uint32_t cardinality,
                                       std::vector<uint32_t> signature_of_item)
    : cardinality_(cardinality),
      signature_of_item_(std::move(signature_of_item)) {
  MBI_CHECK(cardinality_ > 0 && cardinality_ <= kMaxCardinality);
  MBI_CHECK(!signature_of_item_.empty());
  items_of_signature_.resize(cardinality_);
  for (ItemId item = 0; item < signature_of_item_.size(); ++item) {
    uint32_t s = signature_of_item_[item];
    MBI_CHECK_MSG(s < cardinality_, "item mapped to an out-of-range signature");
    items_of_signature_[s].push_back(item);
  }
}

uint32_t SignaturePartition::SignatureOf(ItemId item) const {
  MBI_CHECK(item < signature_of_item_.size());
  return signature_of_item_[item];
}

const std::vector<ItemId>& SignaturePartition::ItemsOf(uint32_t s) const {
  MBI_CHECK(s < cardinality_);
  return items_of_signature_[s];
}

std::vector<int> SignaturePartition::CountsPerSignature(
    const Transaction& transaction) const {
  std::vector<int> counts;
  CountsPerSignature(transaction, &counts);
  return counts;
}

MBI_HOT void SignaturePartition::CountsPerSignature(
    const Transaction& transaction, std::vector<int>* counts) const {
  counts->assign(cardinality_, 0);
  for (ItemId item : transaction.items()) {
    ++(*counts)[SignatureOf(item)];
  }
}

void SignaturePartition::CheckInvariants() const {
  MBI_CHECK_GE(cardinality_, 1u);
  MBI_CHECK_LE(cardinality_, kMaxCardinality);
  MBI_CHECK(!signature_of_item_.empty());
  MBI_CHECK_EQ(items_of_signature_.size(), cardinality_);

  // The inverted lists partition the universe: sorted, duplicate-free, and
  // consistent with the forward map.
  size_t total_items = 0;
  for (uint32_t s = 0; s < cardinality_; ++s) {
    const std::vector<ItemId>& items = items_of_signature_[s];
    total_items += items.size();
    for (size_t i = 0; i < items.size(); ++i) {
      MBI_CHECK_LT(items[i], signature_of_item_.size());
      if (i > 0) MBI_CHECK_LT(items[i - 1], items[i]);
      MBI_CHECK_EQ(signature_of_item_[items[i]], s);
    }
  }
  MBI_CHECK_EQ(total_items, signature_of_item_.size());
}

std::string SignaturePartition::ToString() const {
  std::string out;
  for (uint32_t s = 0; s < cardinality_; ++s) {
    if (s > 0) out += " ";
    // Plain appends, not `"S" + std::to_string(s) + ...`: the temporary
    // concatenation chain trips GCC 12's -Wrestrict false positive
    // (PR 105651) at -O3.
    out += "S";
    out += std::to_string(s);
    out += "={";
    const auto& items = items_of_signature_[s];
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(items[i]);
    }
    out += "}";
  }
  return out;
}

}  // namespace mbi
