#include "core/bounds.h"

#include <algorithm>

#include "kernel/dispatch.h"
#include "util/macros.h"

namespace mbi {

BoundCalculator::BoundCalculator(const std::vector<int>& target_counts,
                                 int activation_threshold) {
  Reset(target_counts, activation_threshold);
}

void BoundCalculator::Reset(const std::vector<int>& target_counts,
                            int activation_threshold) {
  MBI_CHECK(activation_threshold >= 1);
  MBI_CHECK(target_counts.size() <= SignaturePartition::kMaxCardinality);
  const int r = activation_threshold;
  const size_t k = target_counts.size();
  dist_if_zero_.resize(k);
  dist_if_one_.resize(k);
  match_if_zero_.resize(k);
  match_if_one_.resize(k);
  for (size_t j = 0; j < k; ++j) {
    const int rj = target_counts[j];
    MBI_CHECK(rj >= 0);
    dist_if_zero_[j] = std::max(0, rj - r + 1);
    dist_if_one_[j] = std::max(0, r - rj);
    match_if_zero_[j] = std::min(r - 1, rj);
    match_if_one_[j] = rj;
  }
}

MBI_HOT OptimisticBounds BoundCalculator::Compute(
    Supercoordinate coordinate) const {
  OptimisticBounds bounds;
  const size_t k = dist_if_zero_.size();
  for (size_t j = 0; j < k; ++j) {
    if ((coordinate >> j) & 1u) {
      bounds.dist_lower += dist_if_one_[j];
      bounds.match_upper += match_if_one_[j];
    } else {
      bounds.dist_lower += dist_if_zero_[j];
      bounds.match_upper += match_if_zero_[j];
    }
  }
  return bounds;
}

MBI_HOT void BoundCalculator::ComputeBatch(const Supercoordinate* coords,
                                           size_t count, int32_t* match_out,
                                           int32_t* dist_out) const {
  kernel::ActiveKernels().bounds_batch(
      coords, count, cardinality(), dist_if_zero_.data(), dist_if_one_.data(),
      match_if_zero_.data(), match_if_one_.data(), dist_out, match_out);
}

MBI_HOT double BoundCalculator::OptimisticSimilarity(
    Supercoordinate coordinate, const SimilarityFunction& similarity) const {
  OptimisticBounds bounds = Compute(coordinate);
  return similarity.Evaluate(bounds.match_upper, bounds.dist_lower);
}

}  // namespace mbi
