#ifndef MBI_CORE_CLUSTERING_H_
#define MBI_CORE_CLUSTERING_H_

#include <cstdint>

#include "core/signature_partition.h"
#include "mining/support_counter.h"

namespace mbi {

/// Parameters of signature construction (paper §3.1).
struct ClusteringConfig {
  /// Desired signature cardinality K. The critical mass is derived from it as
  /// `total_item_support_mass / target_cardinality`, matching the paper's
  /// observation that a lower critical mass yields a higher K (finer
  /// partitions) and vice versa. Must be in [1, 31].
  uint32_t target_cardinality = 15;

  /// Minimum fractional support for an item pair to contribute an edge to
  /// the item graph. Pairs below this support are treated as uncorrelated.
  double min_pair_support = 0.0005;
};

/// Builds the signature partition by single-linkage clustering of the item
/// co-occurrence graph (paper §3.1):
///
///  1. One graph node per item; the distance between two items is the inverse
///     of the support of the corresponding 2-itemset.
///  2. Greedy minimum-spanning-tree (Kruskal) order: edges are added by
///     increasing distance, i.e. decreasing pair support, so highly
///     correlated items merge first (this *is* single-linkage clustering —
///     the paper's reference [19], SLINK).
///  3. The *mass* of a connected component is the sum of the supports of its
///     items. Whenever a merge pushes a component's mass past the *critical
///     mass*, the component is removed from the graph and becomes one
///     signature.
///  4. When the edges are exhausted, the remaining components (including
///     items that never co-occurred above `min_pair_support`) are packed
///     into the remaining signatures with a balance heuristic (first-fit
///     decreasing by mass into the lightest open signature), honouring the
///     paper's goal of keeping the partition masses even.
///
/// The result has exactly `target_cardinality` signatures whenever the
/// universe has at least that many items (checked).
SignaturePartition BuildSignaturesSingleLinkage(const SupportProvider& supports,
                                                const ClusteringConfig& config);

/// Ablation baseline: ignores correlations entirely and distributes items
/// over K signatures balancing total support mass (greedy: heaviest item
/// first into the currently lightest signature). Used to quantify how much
/// the correlation-aware construction contributes to pruning performance
/// (paper §3.1 motivates correlated signatures; this partitioner is the
/// control).
SignaturePartition BuildSignaturesBalanced(const SupportProvider& supports,
                                           uint32_t target_cardinality);

}  // namespace mbi

#endif  // MBI_CORE_CLUSTERING_H_
