#ifndef MBI_CORE_TUNER_H_
#define MBI_CORE_TUNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/index_builder.h"
#include "core/similarity.h"
#include "txn/database.h"
#include "txn/transaction.h"

namespace mbi {

/// Parameters of the automatic index tuner.
struct TunerConfig {
  /// Main-memory budget for the 2^K directory, in bytes (the paper's
  /// "amount of available memory determines the value of the signature
  /// cardinality K"). The tuner never recommends a K whose directory would
  /// exceed it.
  uint64_t directory_memory_budget_bytes = 1 << 20;  // 1 MiB -> K <= 17.

  /// Activation thresholds to consider (paper §5 footnote 4: larger r can
  /// help for larger transaction sizes).
  std::vector<int> activation_thresholds = {1, 2};

  /// Transactions sampled from the database for the trial builds. Trials on
  /// a sample keep tuning cheap; pruning on the full database is better than
  /// on the sample (paper: pruning improves with size), so the measurement
  /// is conservative.
  uint64_t sample_size = 20'000;

  /// Candidate cardinalities are swept from this floor up to the budget cap.
  uint32_t min_cardinality = 8;

  /// Seed for the sampling.
  uint64_t seed = 1;
};

/// One trial's measurement.
struct TuningTrial {
  uint32_t cardinality = 0;
  int activation_threshold = 1;
  uint64_t directory_bytes = 0;
  /// Average pruning efficiency (%) on the sample, exact search.
  double pruning_efficiency = 0.0;
};

/// Tuner output: the recommended build configuration plus every trial, so
/// callers can inspect the trade-off curve.
struct TuningResult {
  IndexBuildConfig recommended;
  std::vector<TuningTrial> trials;
  std::string ToString() const;
};

/// Picks a signature cardinality K and activation threshold r for `database`
/// under a directory memory budget by measuring pruning efficiency of trial
/// tables built over a sample, probed with `probe_queries` under `family`.
/// Ties (within 0.25 percentage points) go to the smaller directory.
TuningResult TuneIndex(const TransactionDatabase& database,
                       const std::vector<Transaction>& probe_queries,
                       const SimilarityFamily& family,
                       const TunerConfig& config);

}  // namespace mbi

#endif  // MBI_CORE_TUNER_H_
