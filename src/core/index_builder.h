#ifndef MBI_CORE_INDEX_BUILDER_H_
#define MBI_CORE_INDEX_BUILDER_H_

#include "core/clustering.h"
#include "core/signature_table.h"
#include "txn/database.h"

namespace mbi {

/// End-to-end index construction parameters.
struct IndexBuildConfig {
  ClusteringConfig clustering;
  SignatureTableConfig table;

  /// When true, signatures are built with the correlation-blind balanced
  /// partitioner instead of single-linkage clustering (ablation control).
  bool use_balanced_partitioner = false;
};

/// Builds a complete signature table index over `database`:
/// mines item/pair supports, clusters items into signatures, and materializes
/// the table with its on-disk transaction lists. This is the one-call entry
/// point used by the examples; the individual phases remain available for
/// callers that want to reuse supports or persist partitions.
SignatureTable BuildIndex(const TransactionDatabase& database,
                          const IndexBuildConfig& config);

}  // namespace mbi

#endif  // MBI_CORE_INDEX_BUILDER_H_
