#ifndef MBI_CORE_SIGNATURE_TABLE_H_
#define MBI_CORE_SIGNATURE_TABLE_H_

#include <cstdint>
#include <vector>

#include "core/signature_partition.h"
#include "core/supercoordinate.h"
#include "storage/transaction_store.h"
#include "txn/database.h"
#include "util/hot_path.h"

namespace mbi {

/// Build-time parameters of the signature table.
struct SignatureTableConfig {
  /// Activation threshold r: a transaction activates signature S_j iff
  /// |T ∩ S_j| >= r. The paper fixes r = 1 in its main experiments and notes
  /// higher values help for larger transaction sizes (§5 footnote 4); the
  /// ablation bench sweeps it.
  int activation_threshold = 1;

  /// Simulated disk page size for the per-entry transaction lists.
  uint32_t page_size_bytes = 4096;
};

/// The signature table (paper §3, Figure 1): a main-memory directory of 2^K
/// entries — one per possible supercoordinate — each pointing to the on-disk
/// list of transactions that map to it.
///
/// Construction is *independent of the similarity function*: only the item
/// partition and activation threshold shape the table, so one table serves
/// hamming, match-ratio, cosine, and any user function at query time — the
/// property the paper's experiments demonstrate by reusing "exactly the same
/// signature table" for all three functions.
///
/// Only occupied entries are materialized (a dense 2^K array would waste
/// memory on empty entries whose optimistic bounds no algorithm needs —
/// an empty entry indexes no transactions and can never be scanned);
/// `MemoryFootprintBytes()` still reports the paper's 2^K directory cost so
/// experiments can reason about the memory-availability axis.
class SignatureTable {
 public:
  /// One occupied directory entry.
  struct Entry {
    Supercoordinate coordinate = 0;
    uint32_t transaction_count = 0;
    /// Bucket id in the backing TransactionStore. Build assigns buckets in
    /// coordinate order; dynamic inserts append new buckets at the end, so
    /// the bucket id is stable while `entries()` stays coordinate-sorted.
    uint32_t bucket = 0;
  };

  /// Table statistics for logs and the memory-availability experiments.
  struct Stats {
    uint32_t cardinality = 0;
    uint64_t directory_entries = 0;  // 2^K.
    uint64_t occupied_entries = 0;
    uint64_t num_transactions = 0;
    double avg_bucket_size = 0.0;
    uint64_t max_bucket_size = 0;
    uint64_t disk_pages = 0;
    uint64_t directory_bytes = 0;  // Paper's main-memory cost model.
  };

  /// Builds the table over `database` with the given partition.
  static SignatureTable Build(const TransactionDatabase& database,
                              SignaturePartition partition,
                              const SignatureTableConfig& config);

  /// Indexes one more transaction, which must already have been appended to
  /// the database this table was built over (`id` equal to the table's
  /// current transaction count, `transaction` the corresponding row).
  /// Computes the supercoordinate, creates a directory entry if the
  /// coordinate is new, and appends the row to the entry's disk bucket.
  /// O(|T| + log(occupied entries)) plus the page append.
  void InsertTransaction(TransactionId id, const Transaction& transaction);

  /// Number of transactions currently indexed.
  uint64_t num_indexed_transactions() const {
    return coordinate_of_transaction_.size();
  }

  const SignaturePartition& partition() const { return partition_; }
  int activation_threshold() const { return config_.activation_threshold; }
  uint32_t cardinality() const { return partition_.cardinality(); }

  /// Occupied entries, ascending by supercoordinate value.
  const std::vector<Entry>& entries() const { return entries_; }

  /// The entries' supercoordinates as a contiguous array parallel to
  /// `entries()` (coordinates()[i] == entries()[i].coordinate). The SIMD
  /// bounds kernel (BoundCalculator::ComputeBatch) wants a dense uint32
  /// stream; maintained alongside entries_ on insert.
  const std::vector<Supercoordinate>& coordinates() const {
    return coordinates_;
  }

  /// Supercoordinate the table assigned to a database transaction.
  Supercoordinate CoordinateOfTransaction(TransactionId id) const;

  /// Reads the transaction ids of entry `entry_index` (index into
  /// `entries()`) from the simulated disk, charging I/O to `stats`.
  std::vector<TransactionId> FetchEntryTransactions(size_t entry_index,
                                                    IoStats* stats) const;

  /// Scratch-output variant for the query hot path: clears `*ids` and fills
  /// it with the entry's transaction ids. A buffer reused across entry scans
  /// allocates nothing once grown to the largest bucket; ids and I/O
  /// accounting are identical to the returning overload.
  MBI_HOT void FetchEntryTransactions(size_t entry_index, IoStats* stats,
                                      std::vector<TransactionId>* ids) const;

  /// Pages backing one entry (for I/O-shape assertions in tests).
  const std::vector<PageId>& PagesOfEntry(size_t entry_index) const;

  Stats ComputeStats() const;

  /// Walks the whole index and aborts (via MBI_CHECK) on any structural
  /// corruption: directory entries strictly sorted by supercoordinate and
  /// within the 2^K range, bucket references valid and mutually disjoint,
  /// per-entry activation counts equal to the bucket contents, every indexed
  /// transaction present in exactly the bucket its supercoordinate selects.
  /// When `database` is non-null, additionally recomputes each transaction's
  /// supercoordinate from the item partition and activation threshold and
  /// verifies it matches the stored decomposition. O(N + occupied entries);
  /// meant for tests and the CLI's --check_invariants debug flag, not for
  /// query paths.
  void CheckInvariants(const TransactionDatabase* database = nullptr) const;

  /// Main-memory footprint of the full 2^K directory under the paper's cost
  /// model (one pointer-sized slot per possible supercoordinate).
  uint64_t MemoryFootprintBytes() const;

  /// Backing disk layout (serialization only).
  const TransactionStore& store() const { return store_; }

  /// Forwards to the backing store's set_metrics so physical page traffic
  /// for this table shows up under mbi.pagestore.*. nullptr disables.
  void set_metrics(MetricsRegistry* registry) { store_.set_metrics(registry); }

  /// Simulated page size used for the transaction lists.
  uint32_t page_size_bytes() const { return config_.page_size_bytes; }

  /// Reassembles a table from serialized parts (used by LoadSignatureTable);
  /// validates entry ordering, bucket references, and per-entry counts.
  static SignatureTable Assemble(
      SignaturePartition partition, SignatureTableConfig config,
      std::vector<Entry> entries,
      std::vector<Supercoordinate> coordinate_of_transaction,
      TransactionStore store);

 private:
  SignatureTable(SignaturePartition partition, SignatureTableConfig config,
                 std::vector<Entry> entries,
                 std::vector<Supercoordinate> coordinate_of_transaction,
                 TransactionStore store);

  SignaturePartition partition_;
  SignatureTableConfig config_;
  std::vector<Entry> entries_;
  std::vector<Supercoordinate> coordinates_;  // Parallel to entries_.
  std::vector<Supercoordinate> coordinate_of_transaction_;
  TransactionStore store_;
};

}  // namespace mbi

#endif  // MBI_CORE_SIGNATURE_TABLE_H_
