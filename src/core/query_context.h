#ifndef MBI_CORE_QUERY_CONTEXT_H_
#define MBI_CORE_QUERY_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bounds.h"
#include "core/branch_and_bound.h"
#include "core/similarity.h"
#include "txn/packed_target.h"
#include "txn/transaction.h"
#include "util/thread_pool.h"

namespace mbi {

/// Reusable per-query workspace for BranchAndBoundEngine.
///
/// The engine itself is stateless and read-only; everything a query needs at
/// runtime — bound-calculator tables, the entry-order heap, the candidate-id
/// scratch buffer, the k-nearest heap, the packed target bitmaps — lives
/// here. A caller that answers many queries (batch mode, benchmarks, the
/// `mbi query` CLI loop) constructs one context and passes it to every call;
/// after the first few queries have grown the buffers, the steady state
/// allocates nothing beyond the returned result vectors — and the
/// result-out FindKNearest overload eliminates those too: with a warm
/// (context, result) pair the whole query is allocation-free, which
/// query_context_test enforces at runtime with ScopedAllocationBan and
/// mbi-lint enforces statically via the MBI_HOT rules (util/hot_path.h).
/// Per-target similarity bindings reuse warm function objects through
/// SimilarityFamily::RebindTarget.
///
/// A context carries no semantic state between queries: every buffer is
/// rebound or cleared at query entry, so results are bit-identical to using
/// a fresh context (query_context_test.cc asserts this, including across
/// changes of target, k, similarity family, and sort order).
///
/// Not thread-safe: one context per concurrent query. FindKNearestBatch
/// keeps one per worker shard.
class QueryContext {
 public:
  QueryContext() = default;

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Optional caller-owned pool for parallel per-entry bound computation on
  /// large directories (deterministic chunking: identical bounds regardless
  /// of thread count). The pool must not be the pool executing the query
  /// itself — a worker waiting on its own pool deadlocks — so batch mode
  /// leaves this unset on its per-shard contexts.
  void set_bound_pool(ThreadPool* pool) { bound_pool_ = pool; }
  ThreadPool* bound_pool() const { return bound_pool_; }

  /// Directory size at which bound computation fans out to bound_pool();
  /// below it the fork/join overhead beats the O(entries · K) loop.
  /// Tunable mostly so tests can force the parallel path on small tables.
  void set_parallel_bound_min_entries(size_t n) {
    parallel_bound_min_entries_ = n;
  }
  size_t parallel_bound_min_entries() const {
    return parallel_bound_min_entries_;
  }

  /// Entries per chunk when bounds are computed in parallel. Chunks map to
  /// disjoint output slots, so the values are deterministic by construction.
  void set_parallel_bound_chunk(size_t n) { parallel_bound_chunk_ = n; }
  size_t parallel_bound_chunk() const { return parallel_bound_chunk_; }

  static constexpr size_t kDefaultParallelBoundMinEntries = 4096;
  static constexpr size_t kDefaultParallelBoundChunk = 1024;

  /// Session-wide budget default: merged tightest-wins with
  /// SearchOptions::budget on every query through this context. The
  /// admission controller uses this to tighten deadlines on queued batches
  /// without touching each caller's options.
  void set_budget(const QueryBudget& budget) { budget_ = budget; }
  const QueryBudget& budget() const { return budget_; }

 private:
  friend class BranchAndBoundEngine;

  // --- Per-target bindings (rebound at query entry). ---
  std::vector<std::unique_ptr<SimilarityFunction>> functions_;
  std::vector<BoundCalculator> calculators_;
  std::vector<PackedTarget> packed_targets_;
  std::vector<int> counts_scratch_;  // r_j scratch for calculator rebinding.

  // --- Entry ordering (lazy max-heap over entry indices). ---
  std::vector<uint32_t> entry_heap_;
  std::vector<double> optimistic_;  // Optimistic bound per entry index.
  std::vector<double> order_keys_;  // Sort keys for the alternative order.
  // SIMD bounds-kernel output, t-major: slot t * num_entries + i holds
  // target t's M_opt / D_opt for entry i. Parallel bound chunks write
  // disjoint column ranges of every row, so no synchronization is needed.
  std::vector<int32_t> bound_match_;
  std::vector<int32_t> bound_dist_;

  // --- Candidate evaluation scratch. ---
  std::vector<TransactionId> candidate_ids_;
  // SIMD match-kernel output for one entry's candidate batch, plus the
  // per-candidate similarity accumulator across targets.
  std::vector<uint32_t> match_scratch_;
  std::vector<uint32_t> hamming_scratch_;
  std::vector<double> score_scratch_;
  std::vector<Neighbor> knn_heap_;

  ThreadPool* bound_pool_ = nullptr;
  size_t parallel_bound_min_entries_ = kDefaultParallelBoundMinEntries;
  size_t parallel_bound_chunk_ = kDefaultParallelBoundChunk;
  QueryBudget budget_;
};

}  // namespace mbi

#endif  // MBI_CORE_QUERY_CONTEXT_H_
