#include "core/similarity.h"

#include <cmath>
#include <limits>

#include "util/macros.h"

namespace mbi {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace

double InverseHammingSimilarity::Evaluate(int matches, int hamming) const {
  MBI_CHECK(matches >= 0 && hamming >= 0);
  (void)matches;  // f depends on the Hamming distance alone.
  if (hamming == 0) return kInfinity;
  return 1.0 / static_cast<double>(hamming);
}

double MatchRatioSimilarity::Evaluate(int matches, int hamming) const {
  MBI_CHECK(matches >= 0 && hamming >= 0);
  if (hamming == 0) return matches > 0 ? kInfinity : 0.0;
  return static_cast<double>(matches) / static_cast<double>(hamming);
}

CosineSimilarity::CosineSimilarity(size_t target_size)
    : target_size_(static_cast<double>(target_size)) {}

double CosineSimilarity::Evaluate(int matches, int hamming) const {
  MBI_CHECK(matches >= 0 && hamming >= 0);
  if (matches == 0 || target_size_ == 0.0) return 0.0;
  double x = static_cast<double>(matches);
  double y = static_cast<double>(hamming);
  // |S| = 2x + y - |T| on feasible pairs; clamp to >= x so the function stays
  // monotone on infeasible bound pairs (clamp is a no-op on feasible input,
  // where |S| >= x always holds).
  double other_size = std::max(2.0 * x + y - target_size_, x);
  return x / (std::sqrt(other_size) * std::sqrt(target_size_));
}

double JaccardSimilarity::Evaluate(int matches, int hamming) const {
  MBI_CHECK(matches >= 0 && hamming >= 0);
  if (matches + hamming == 0) return 1.0;
  return static_cast<double>(matches) /
         static_cast<double>(matches + hamming);
}

CustomSimilarity::CustomSimilarity(std::string name,
                                   std::function<double(int, int)> fn)
    : name_(std::move(name)), fn_(std::move(fn)) {
  MBI_CHECK(fn_ != nullptr);
}

double CustomSimilarity::Evaluate(int matches, int hamming) const {
  MBI_CHECK(matches >= 0 && hamming >= 0);
  return fn_(matches, hamming);
}

void SimilarityFamily::RebindTarget(
    const Transaction& target,
    std::unique_ptr<SimilarityFunction>* slot) const {
  *slot = ForTarget(target);
}

std::unique_ptr<SimilarityFunction> InverseHammingFamily::ForTarget(
    const Transaction& target) const {
  (void)target;
  return std::make_unique<InverseHammingSimilarity>();
}

void InverseHammingFamily::RebindTarget(
    const Transaction& target,
    std::unique_ptr<SimilarityFunction>* slot) const {
  // Target-independent: a warm InverseHammingSimilarity is already bound.
  // The function classes are final, so the dynamic_cast is an exact type
  // test, not an is-a approximation.
  if (dynamic_cast<InverseHammingSimilarity*>(slot->get()) != nullptr) return;
  *slot = ForTarget(target);
}

std::unique_ptr<SimilarityFunction> MatchRatioFamily::ForTarget(
    const Transaction& target) const {
  (void)target;
  return std::make_unique<MatchRatioSimilarity>();
}

void MatchRatioFamily::RebindTarget(
    const Transaction& target,
    std::unique_ptr<SimilarityFunction>* slot) const {
  if (dynamic_cast<MatchRatioSimilarity*>(slot->get()) != nullptr) return;
  *slot = ForTarget(target);
}

std::unique_ptr<SimilarityFunction> CosineFamily::ForTarget(
    const Transaction& target) const {
  return std::make_unique<CosineSimilarity>(target.size());
}

void CosineFamily::RebindTarget(
    const Transaction& target,
    std::unique_ptr<SimilarityFunction>* slot) const {
  auto* cosine = dynamic_cast<CosineSimilarity*>(slot->get());
  if (cosine != nullptr) {
    cosine->set_target_size(target.size());
    return;
  }
  *slot = ForTarget(target);
}

std::unique_ptr<SimilarityFunction> JaccardFamily::ForTarget(
    const Transaction& target) const {
  (void)target;
  return std::make_unique<JaccardSimilarity>();
}

void JaccardFamily::RebindTarget(
    const Transaction& target,
    std::unique_ptr<SimilarityFunction>* slot) const {
  if (dynamic_cast<JaccardSimilarity*>(slot->get()) != nullptr) return;
  *slot = ForTarget(target);
}

CustomFamily::CustomFamily(std::string name,
                           std::function<double(int, int)> fn)
    : name_(std::move(name)), fn_(std::move(fn)) {
  MBI_CHECK(fn_ != nullptr);
}

std::unique_ptr<SimilarityFunction> CustomFamily::ForTarget(
    const Transaction& target) const {
  (void)target;
  return std::make_unique<CustomSimilarity>(name_, fn_);
}

std::string AdmissibilityReport::ToString() const {
  if (admissible) return "admissible";
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "%s monotonicity violated at (x=%d, y=%d)",
                match_monotonicity_violated ? "match" : "hamming", x, y);
  return buffer;
}

AdmissibilityReport CheckAdmissibility(const SimilarityFunction& similarity,
                                       int max_matches, int max_hamming) {
  MBI_CHECK(max_matches >= 0 && max_hamming >= 0);
  AdmissibilityReport report;
  for (int x = 0; x <= max_matches; ++x) {
    for (int y = 0; y <= max_hamming; ++y) {
      double here = similarity.Evaluate(x, y);
      if (x < max_matches && similarity.Evaluate(x + 1, y) < here) {
        report.admissible = false;
        report.match_monotonicity_violated = true;
        report.x = x;
        report.y = y;
        return report;
      }
      if (y < max_hamming && similarity.Evaluate(x, y + 1) > here) {
        report.admissible = false;
        report.match_monotonicity_violated = false;
        report.x = x;
        report.y = y;
        return report;
      }
    }
  }
  return report;
}

std::unique_ptr<SimilarityFamily> MakeSimilarityFamily(
    const std::string& name) {
  if (name == "hamming") return std::make_unique<InverseHammingFamily>();
  if (name == "match_ratio") return std::make_unique<MatchRatioFamily>();
  if (name == "cosine") return std::make_unique<CosineFamily>();
  if (name == "jaccard") return std::make_unique<JaccardFamily>();
  MBI_CHECK_MSG(false, "unknown similarity family name");
  return nullptr;
}

}  // namespace mbi
