#ifndef MBI_CORE_SUPERCOORDINATE_H_
#define MBI_CORE_SUPERCOORDINATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/signature_partition.h"
#include "txn/transaction.h"

namespace mbi {

/// A supercoordinate: K activation bits, bit j set iff the transaction
/// activates signature S_j (paper §3). Bit j of the integer corresponds to
/// signature j.
using Supercoordinate = uint32_t;

/// True iff a transaction with `count` items in signature j activates it at
/// activation threshold `r` (|T ∩ S_j| >= r).
inline bool Activates(int count, int activation_threshold) {
  return count >= activation_threshold;
}

/// Computes the supercoordinate of `transaction` under `partition` at the
/// given activation threshold (>= 1).
Supercoordinate ComputeSupercoordinate(const Transaction& transaction,
                                       const SignaturePartition& partition,
                                       int activation_threshold);

/// Computes the supercoordinate from precomputed per-signature counts r_j.
Supercoordinate SupercoordinateFromCounts(const std::vector<int>& counts,
                                          int activation_threshold);

/// Number of activated signatures (population count).
int ActivatedCount(Supercoordinate coordinate);

/// Renders the low `cardinality` bits as a 0/1 string, signature 0 first,
/// e.g. "1010" for a 4-signature table with S0 and S2 active.
std::string SupercoordinateToString(Supercoordinate coordinate,
                                    uint32_t cardinality);

/// Similarity between two supercoordinates viewed as K-bit transactions:
/// matches = |a AND b| and hamming = |a XOR b|, fed into an arbitrary
/// similarity functor. Used by the alternative entry-sorting strategy of
/// §4 ("sort the entries ... based on the similarity function between the
/// respective supercoordinates").
void SupercoordinateMatchAndHamming(Supercoordinate a, Supercoordinate b,
                                    int* match, int* hamming);

}  // namespace mbi

#endif  // MBI_CORE_SUPERCOORDINATE_H_
