#ifndef MBI_CORE_ARTIFACT_VERIFY_H_
#define MBI_CORE_ARTIFACT_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/status.h"

namespace mbi {

/// Per-section health of one artifact, as reported by `mbi verify`.
struct SectionReport {
  uint32_t id = 0;
  std::string name;
  uint64_t bytes = 0;
  bool crc_ok = false;
};

/// Everything VerifyArtifact learned about a file.
struct ArtifactReport {
  std::string path;
  /// "database" / "partition" / "signature table" / "page spill".
  std::string type_name;
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t file_size = 0;
  /// One entry per section walked (empty for legacy v1 artifacts, which
  /// carry no section frames or checksums).
  std::vector<SectionReport> sections;
  /// Result of fully parsing and structurally validating the artifact with
  /// its real loader (contents, cross-references, invariants) — strictly
  /// stronger than the checksum walk. Skipped (OK) in checksums-only mode.
  Status deep_check;

  /// First failure, if any: a section with a bad checksum wins over the deep
  /// check so the diagnostic names the corrupt section.
  Status Overall() const;
};

/// Inspects the artifact at `path`: identifies its type by magic, walks the
/// section frames verifying each CRC32C, and (unless `checksums_only`)
/// re-parses it with the type's loader for full structural validation.
/// Returns a report even when sections are corrupt; returns an error Status
/// only when the file cannot be walked at all (missing, bad magic, torn
/// framing).
StatusOr<ArtifactReport> VerifyArtifact(const std::string& path,
                                        bool checksums_only = false,
                                        Env* env = Env::Default());

}  // namespace mbi

#endif  // MBI_CORE_ARTIFACT_VERIFY_H_
