#ifndef MBI_CORE_SIGNATURE_PARTITION_H_
#define MBI_CORE_SIGNATURE_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "txn/transaction.h"
#include "util/hot_path.h"

namespace mbi {

/// A partition of the universal item set U into K signatures (paper §3).
///
/// A *signature* is a set of items — "a small category of items from the
/// universal set" — and every item belongs to exactly one signature. K is the
/// paper's *signature cardinality*; it is capped at 31 so a supercoordinate
/// fits in a uint32_t (the paper's own experiments use K = 13..15, limited by
/// the 2^K in-memory table).
class SignaturePartition {
 public:
  /// Maximum supported signature cardinality.
  static constexpr uint32_t kMaxCardinality = 31;

  /// Builds a partition from per-item signature indices.
  /// `signature_of_item[i]` in `[0, cardinality)` for every item i.
  SignaturePartition(uint32_t cardinality,
                     std::vector<uint32_t> signature_of_item);

  /// Signature index of an item.
  uint32_t SignatureOf(ItemId item) const;

  /// Items of signature `s`, ascending.
  const std::vector<ItemId>& ItemsOf(uint32_t s) const;

  /// K, the signature cardinality.
  uint32_t cardinality() const { return cardinality_; }

  /// |U|.
  uint32_t universe_size() const {
    return static_cast<uint32_t>(signature_of_item_.size());
  }

  /// Counts |T ∩ S_j| for every signature j — the r_j values of the paper's
  /// bound computation. O(|T|).
  std::vector<int> CountsPerSignature(const Transaction& transaction) const;

  /// Scratch-output variant for per-query reuse: resizes `*counts` to the
  /// cardinality and overwrites it (no allocation once the buffer has grown
  /// to K). Result is identical to the returning overload.
  MBI_HOT void CountsPerSignature(const Transaction& transaction,
                                  std::vector<int>* counts) const;

  /// Renders as "S0={1,4} S1={2,3}" for diagnostics.
  std::string ToString() const;

  /// Walks the structure and aborts (via MBI_CHECK) unless the partition is
  /// internally consistent: every item belongs to exactly one signature, the
  /// per-signature item lists are sorted ascending with no duplicates, and
  /// the forward map (`SignatureOf`) agrees with the inverted lists
  /// (`ItemsOf`). O(|U|).
  void CheckInvariants() const;

 private:
  uint32_t cardinality_;
  std::vector<uint32_t> signature_of_item_;
  std::vector<std::vector<ItemId>> items_of_signature_;
};

}  // namespace mbi

#endif  // MBI_CORE_SIGNATURE_PARTITION_H_
