#include "core/batch_query.h"

#include <algorithm>
#include <atomic>
#include <latch>
#include <optional>
#include <thread>

#include "core/query_context.h"

namespace mbi {

std::vector<NearestNeighborResult> FindKNearestBatch(
    const BranchAndBoundEngine& engine,
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    size_t k, const SearchOptions& options, size_t num_threads,
    ThreadPool* pool) {
  BatchQueryWorkspace workspace;
  std::vector<NearestNeighborResult> results;
  FindKNearestBatch(engine, targets, family, k, options, num_threads, pool,
                    &workspace, &results);
  return results;
}

void FindKNearestBatch(const BranchAndBoundEngine& engine,
                       const std::vector<Transaction>& targets,
                       const SimilarityFamily& family, size_t k,
                       const SearchOptions& options, size_t num_threads,
                       ThreadPool* pool, BatchQueryWorkspace* workspace,
                       std::vector<NearestNeighborResult>* results) {
  results->resize(targets.size());
  if (targets.empty()) return;

  size_t shards;
  if (pool != nullptr) {
    shards = pool->num_threads();
    if (num_threads != 0) shards = std::min(shards, num_threads);
  } else if (num_threads != 0) {
    shards = num_threads;
  } else {
    shards = std::max(1u, std::thread::hardware_concurrency());
  }
  shards = std::min(shards, targets.size());
  while (workspace->contexts.size() < shards) workspace->contexts.emplace_back();

  if (shards == 1) {
    QueryContext& context = workspace->contexts.front();
    for (size_t i = 0; i < targets.size(); ++i) {
      engine.FindKNearest(targets[i], family, k, options, &context,
                          &(*results)[i]);
    }
    return;
  }

  // Fall back to a call-local pool only when the caller didn't provide one.
  std::optional<ThreadPool> owned_pool;
  if (pool == nullptr) {
    owned_pool.emplace(shards);
    pool = &*owned_pool;
  }

  // One reusable context per shard; targets are claimed off a shared cursor
  // so uneven query costs balance dynamically. A std::latch (rather than
  // ThreadPool::Wait) scopes the wait to this batch's own tasks, so a pool
  // shared between concurrent batches works.
  // No mutex here by design (and none to annotate): every shard writes a
  // disjoint results[i] slice claimed off the atomic cursor, per-shard
  // QueryContexts are never shared, and the latch supplies the final
  // happens-before edge back to this thread.
  std::atomic<size_t> cursor{0};
  std::latch done(static_cast<std::ptrdiff_t>(shards));
  for (size_t s = 0; s < shards; ++s) {
    pool->Submit([&, s] {
      QueryContext& context = workspace->contexts[s];
      while (true) {
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= targets.size()) break;
        engine.FindKNearest(targets[i], family, k, options, &context,
                            &(*results)[i]);
      }
      done.count_down();
    });
  }
  done.wait();
}

QueryStats AggregateBatchStats(
    const std::vector<NearestNeighborResult>& results) {
  QueryStats agg;
  uint64_t max_database_size = 0;
  for (const NearestNeighborResult& result : results) {
    MergeQueryStats(result.stats, &agg);
    max_database_size = std::max(max_database_size, result.stats.database_size);
  }
  agg.database_size = max_database_size;
  return agg;
}

}  // namespace mbi
