#include "core/batch_query.h"

#include <algorithm>
#include <thread>

#include "util/thread_pool.h"

namespace mbi {

std::vector<NearestNeighborResult> FindKNearestBatch(
    const BranchAndBoundEngine& engine,
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    size_t k, const SearchOptions& options, size_t num_threads) {
  std::vector<NearestNeighborResult> results(targets.size());
  if (targets.empty()) return results;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, targets.size());

  if (num_threads == 1) {
    for (size_t i = 0; i < targets.size(); ++i) {
      results[i] = engine.FindKNearest(targets[i], family, k, options);
    }
    return results;
  }

  ThreadPool pool(num_threads);
  pool.ParallelFor(targets.size(), [&](size_t i) {
    results[i] = engine.FindKNearest(targets[i], family, k, options);
  });
  return results;
}

}  // namespace mbi
