#ifndef MBI_CORE_TABLE_IO_H_
#define MBI_CORE_TABLE_IO_H_

#include <string>

#include "core/signature_table.h"
#include "storage/env.h"
#include "txn/database.h"
#include "util/status.h"

namespace mbi {

/// Persists a fully built signature table — partition, directory entries,
/// per-transaction supercoordinates, and the complete on-disk page layout —
/// so an index over a large database can be reopened without re-mining
/// supports, re-clustering, or re-bucketing. Written in the durable artifact
/// container (magic "MBST", per-section CRC32C, atomic rename — see
/// storage/format.h).
///
/// The transaction *contents* are not duplicated into the index file; pair a
/// table file with the database file (SaveDatabase / LoadDatabase) or with
/// whatever system owns the rows.
[[nodiscard]] Status SaveSignatureTable(const SignatureTable& table,
                                        const std::string& path,
                                        Env* env = Env::Default());

/// Loads a table written by SaveSignatureTable (v2 container or the unframed
/// v1 seed format) and validates it against `database` (universe size and
/// transaction count must match — the table indexes exactly that database).
/// Errors: kNotFound, kCorruption (checksum / truncation / any structural
/// invariant the assembled table would violate), kInvalidArgument (the file
/// is sound but indexes a different database), kIoError.
[[nodiscard]] StatusOr<SignatureTable> LoadSignatureTable(
    const std::string& path, const TransactionDatabase& database,
    Env* env = Env::Default());

/// Structural verification without a database: parses, checksums, and
/// cross-checks every section of a table file, then discards the result.
/// Used by `mbi verify`, where only the artifact is at hand.
[[nodiscard]] Status VerifySignatureTableFile(const std::string& path,
                                              Env* env = Env::Default());

}  // namespace mbi

#endif  // MBI_CORE_TABLE_IO_H_
