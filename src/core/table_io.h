#ifndef MBI_CORE_TABLE_IO_H_
#define MBI_CORE_TABLE_IO_H_

#include <optional>
#include <string>

#include "core/signature_table.h"
#include "txn/database.h"

namespace mbi {

/// Persists a fully built signature table — partition, directory entries,
/// per-transaction supercoordinates, and the complete on-disk page layout —
/// so an index over a large database can be reopened without re-mining
/// supports, re-clustering, or re-bucketing. Returns false on I/O failure.
///
/// The transaction *contents* are not duplicated into the index file; pair a
/// table file with the database file (SaveDatabase / LoadDatabase) or with
/// whatever system owns the rows.
bool SaveSignatureTable(const SignatureTable& table, const std::string& path);

/// Loads a table written by SaveSignatureTable and validates it against
/// `database` (universe size and transaction count must match — the table
/// indexes exactly that database). Returns nullopt on I/O failure, malformed
/// input, or a database mismatch.
std::optional<SignatureTable> LoadSignatureTable(
    const std::string& path, const TransactionDatabase& database);

}  // namespace mbi

#endif  // MBI_CORE_TABLE_IO_H_
