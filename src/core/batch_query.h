#ifndef MBI_CORE_BATCH_QUERY_H_
#define MBI_CORE_BATCH_QUERY_H_

#include <cstddef>
#include <vector>

#include "core/branch_and_bound.h"
#include "util/thread_pool.h"

namespace mbi {

/// Answers many independent k-NN queries against one engine concurrently.
///
/// Queries against a built SignatureTable are read-only (the engine keeps no
/// per-query state and the simulated disk reads are const), so a batch can
/// fan out across a thread pool without any locking. Results are returned in
/// target order and are identical to running each query alone.
///
/// Each worker shard reuses one QueryContext across all the queries it
/// answers, so the steady state of a large batch allocates only the result
/// vectors.
///
/// Threading: when `pool` is non-null the batch runs on that caller-owned
/// pool — construct it once and pass it to every call; nothing is spawned
/// per batch. `num_threads` then only caps the shard count (0 = use every
/// pool worker). When `pool` is null a temporary pool of `num_threads`
/// workers (0 = hardware concurrency) is created for the call. A shared pool
/// may serve concurrent batches; each call returns when its own queries are
/// done.
std::vector<NearestNeighborResult> FindKNearestBatch(
    const BranchAndBoundEngine& engine,
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    size_t k, const SearchOptions& options = {}, size_t num_threads = 0,
    ThreadPool* pool = nullptr);

}  // namespace mbi

#endif  // MBI_CORE_BATCH_QUERY_H_
