#ifndef MBI_CORE_BATCH_QUERY_H_
#define MBI_CORE_BATCH_QUERY_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "core/branch_and_bound.h"
#include "core/query_context.h"
#include "util/thread_pool.h"

namespace mbi {

/// Reusable scratch for FindKNearestBatch: the per-shard QueryContexts.
/// A caller running batches in a loop (benchmarks, a serving loop) keeps
/// one workspace per concurrent batch; warm contexts make the single-shard
/// steady state allocation-free (see the result-out overload below).
/// A deque because QueryContext is pinned (non-copyable, non-movable):
/// growing for a larger batch never relocates the warm contexts.
struct BatchQueryWorkspace {
  std::deque<QueryContext> contexts;
};

/// Answers many independent k-NN queries against one engine concurrently.
///
/// Queries against a built SignatureTable are read-only (the engine keeps no
/// per-query state and the simulated disk reads are const), so a batch can
/// fan out across a thread pool without any locking. Results are returned in
/// target order and are identical to running each query alone.
///
/// Each worker shard reuses one QueryContext across all the queries it
/// answers, so the steady state of a large batch allocates only the result
/// vectors.
///
/// Threading: when `pool` is non-null the batch runs on that caller-owned
/// pool — construct it once and pass it to every call; nothing is spawned
/// per batch. `num_threads` then only caps the shard count (0 = use every
/// pool worker). When `pool` is null a temporary pool of `num_threads`
/// workers (0 = hardware concurrency) is created for the call. A shared pool
/// may serve concurrent batches; each call returns when its own queries are
/// done.
std::vector<NearestNeighborResult> FindKNearestBatch(
    const BranchAndBoundEngine& engine,
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    size_t k, const SearchOptions& options = {}, size_t num_threads = 0,
    ThreadPool* pool = nullptr);

/// Fully reusable variant: shard contexts come from `workspace` and results
/// are written into `*results` (resized to targets.size(); element capacity
/// kept). Identical output to the returning overload. With one shard —
/// `num_threads == 1`, or a single target — a warm (workspace, results)
/// pair answers the whole batch without allocating (the steady state
/// query_context_test pins under ScopedAllocationBan). Multi-shard batches
/// still allocate the per-shard task closures they submit to the pool.
void FindKNearestBatch(const BranchAndBoundEngine& engine,
                       const std::vector<Transaction>& targets,
                       const SimilarityFamily& family, size_t k,
                       const SearchOptions& options, size_t num_threads,
                       ThreadPool* pool, BatchQueryWorkspace* workspace,
                       std::vector<NearestNeighborResult>* results);

/// Folds a batch's per-target stats into one QueryStats under the shared
/// MergeQueryStats rules — certificate_bound as max, is_exact as AND,
/// termination as most-severe, counters as sums — except `database_size`,
/// which stays the per-query maximum: every batch entry queried the same
/// database, so summing (the rule for *partitioned* components) would
/// inflate it by the batch size. Callers reporting batch-level quality
/// (CLI, benchmarks) must use this instead of improvising: last-writer or
/// summed certificates are unsound.
QueryStats AggregateBatchStats(const std::vector<NearestNeighborResult>& results);

}  // namespace mbi

#endif  // MBI_CORE_BATCH_QUERY_H_
