#ifndef MBI_CORE_BATCH_QUERY_H_
#define MBI_CORE_BATCH_QUERY_H_

#include <cstddef>
#include <vector>

#include "core/branch_and_bound.h"

namespace mbi {

/// Answers many independent k-NN queries against one engine concurrently.
///
/// Queries against a built SignatureTable are read-only (the engine keeps no
/// per-query state and the simulated disk reads are const), so a batch can
/// fan out across a thread pool without any locking. Results are returned in
/// target order. `num_threads` of 0 uses the hardware concurrency.
std::vector<NearestNeighborResult> FindKNearestBatch(
    const BranchAndBoundEngine& engine,
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    size_t k, const SearchOptions& options = {}, size_t num_threads = 0);

}  // namespace mbi

#endif  // MBI_CORE_BATCH_QUERY_H_
