#include "txn/transaction.h"

#include <algorithm>
#include <cmath>

namespace mbi {

Transaction::Transaction(std::vector<ItemId> items) : items_(std::move(items)) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
}

Transaction::Transaction(std::initializer_list<ItemId> items)
    : Transaction(std::vector<ItemId>(items)) {}

bool Transaction::Contains(ItemId item) const {
  return std::binary_search(items_.begin(), items_.end(), item);
}

bool Transaction::ContainsAll(const Transaction& other) const {
  return std::includes(items_.begin(), items_.end(), other.items_.begin(),
                       other.items_.end());
}

std::string Transaction::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(items_[i]);
  }
  out += "}";
  return out;
}

size_t MatchCount(const Transaction& a, const Transaction& b) {
  const auto& x = a.items();
  const auto& y = b.items();
  size_t i = 0, j = 0, matches = 0;
  while (i < x.size() && j < y.size()) {
    if (x[i] < y[j]) {
      ++i;
    } else if (x[i] > y[j]) {
      ++j;
    } else {
      ++matches;
      ++i;
      ++j;
    }
  }
  return matches;
}

size_t HammingDistance(const Transaction& a, const Transaction& b) {
  size_t matches = MatchCount(a, b);
  return a.size() + b.size() - 2 * matches;
}

void MatchAndHamming(const Transaction& a, const Transaction& b, size_t* match,
                     size_t* hamming) {
  *match = MatchCount(a, b);
  *hamming = a.size() + b.size() - 2 * *match;
}

Transaction Intersect(const Transaction& a, const Transaction& b) {
  std::vector<ItemId> out;
  std::set_intersection(a.items().begin(), a.items().end(), b.items().begin(),
                        b.items().end(), std::back_inserter(out));
  return Transaction(std::move(out));
}

Transaction Union(const Transaction& a, const Transaction& b) {
  std::vector<ItemId> out;
  std::set_union(a.items().begin(), a.items().end(), b.items().begin(),
                 b.items().end(), std::back_inserter(out));
  return Transaction(std::move(out));
}

Transaction Difference(const Transaction& a, const Transaction& b) {
  std::vector<ItemId> out;
  std::set_difference(a.items().begin(), a.items().end(), b.items().begin(),
                      b.items().end(), std::back_inserter(out));
  return Transaction(std::move(out));
}

double CosineBetween(const Transaction& a, const Transaction& b) {
  if (a.empty() || b.empty()) return 0.0;
  double matches = static_cast<double>(MatchCount(a, b));
  return matches / (std::sqrt(static_cast<double>(a.size())) *
                    std::sqrt(static_cast<double>(b.size())));
}

}  // namespace mbi
