#ifndef MBI_TXN_DATABASE_IO_H_
#define MBI_TXN_DATABASE_IO_H_

#include <optional>
#include <string>

#include "txn/database.h"

namespace mbi {

/// Writes `database` to `path` in the library's binary format (little-endian,
/// magic-tagged, versioned). Returns false on I/O failure.
bool SaveDatabase(const TransactionDatabase& database, const std::string& path);

/// Reads a database previously written by SaveDatabase. Returns nullopt on
/// I/O failure or malformed input (bad magic, truncated payload, items out of
/// the declared universe).
std::optional<TransactionDatabase> LoadDatabase(const std::string& path);

}  // namespace mbi

#endif  // MBI_TXN_DATABASE_IO_H_
