#ifndef MBI_TXN_DATABASE_IO_H_
#define MBI_TXN_DATABASE_IO_H_

#include <string>

#include "storage/env.h"
#include "txn/database.h"
#include "util/status.h"

namespace mbi {

/// Writes `database` to `path` in the durable artifact container
/// (storage/format.h): magic "MBID", per-section CRC32C, write-temp →
/// flush → atomic-rename. A crash mid-save leaves the previous file intact.
[[nodiscard]] Status SaveDatabase(const TransactionDatabase& database,
                                  const std::string& path,
                                  Env* env = Env::Default());

/// Reads a database written by SaveDatabase — the current checksummed v2
/// container or the unframed v1 seed format. Errors: kNotFound (missing
/// file), kCorruption (bad magic, failed checksum, truncation, items outside
/// the declared universe), kIoError (the OS refused the read).
[[nodiscard]] StatusOr<TransactionDatabase> LoadDatabase(
    const std::string& path, Env* env = Env::Default());

}  // namespace mbi

#endif  // MBI_TXN_DATABASE_IO_H_
