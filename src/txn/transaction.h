#ifndef MBI_TXN_TRANSACTION_H_
#define MBI_TXN_TRANSACTION_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace mbi {

/// Identifier of an item in the universal item set U. Items are dense
/// integers `0 .. universe_size-1`.
using ItemId = uint32_t;

/// Identifier of a transaction within a TransactionDatabase.
using TransactionId = uint32_t;

/// Sentinel for "no transaction" (e.g., nearest-neighbour search over an
/// empty candidate set).
inline constexpr TransactionId kInvalidTransactionId = UINT32_MAX;

/// A market-basket transaction: the set of items bought together, stored as a
/// sorted vector of unique ItemIds.
///
/// The class maintains the sorted-unique invariant on construction so that
/// the match / Hamming primitives can run as linear merges. Transactions are
/// cheap to copy (a vector of 4-byte ids; typical size 5-15 per the paper).
class Transaction {
 public:
  /// Empty transaction.
  Transaction() = default;

  /// Builds from arbitrary item ids; sorts and deduplicates.
  explicit Transaction(std::vector<ItemId> items);

  /// Convenience literal construction: Transaction({1, 5, 9}).
  Transaction(std::initializer_list<ItemId> items);

  /// The items, sorted ascending, no duplicates.
  const std::vector<ItemId>& items() const { return items_; }

  /// Number of items (|T|). The paper writes this #T.
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Membership test (binary search).
  bool Contains(ItemId item) const;

  /// True if every item of `other` is contained in this transaction.
  bool ContainsAll(const Transaction& other) const;

  /// Renders as "{1, 5, 9}" for logs and examples.
  std::string ToString() const;

  friend bool operator==(const Transaction& a, const Transaction& b) {
    return a.items_ == b.items_;
  }

 private:
  std::vector<ItemId> items_;
};

/// Number of matches x = |a ∩ b| (the paper's match function).
size_t MatchCount(const Transaction& a, const Transaction& b);

/// Hamming distance y = |a △ b| = |a - b| + |b - a|.
size_t HammingDistance(const Transaction& a, const Transaction& b);

/// Computes x and y in a single merge pass (queries need both).
void MatchAndHamming(const Transaction& a, const Transaction& b,
                     size_t* match, size_t* hamming);

/// Set intersection a ∩ b.
Transaction Intersect(const Transaction& a, const Transaction& b);

/// Set union a ∪ b.
Transaction Union(const Transaction& a, const Transaction& b);

/// Set difference a - b.
Transaction Difference(const Transaction& a, const Transaction& b);

/// Cosine between the transactions viewed as 0/1 vectors:
/// x / (sqrt(#a) * sqrt(#b)). Returns 0 when either side is empty.
double CosineBetween(const Transaction& a, const Transaction& b);

}  // namespace mbi

#endif  // MBI_TXN_TRANSACTION_H_
