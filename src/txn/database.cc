#include "txn/database.h"

#include "util/macros.h"

namespace mbi {

TransactionDatabase::TransactionDatabase(uint32_t universe_size)
    : universe_size_(universe_size) {
  MBI_CHECK(universe_size > 0);
}

TransactionId TransactionDatabase::Add(Transaction transaction) {
  if (!transaction.empty()) {
    MBI_CHECK_MSG(transaction.items().back() < universe_size_,
                  "transaction contains an item outside the universe");
  }
  transactions_.push_back(std::move(transaction));
  MBI_CHECK_MSG(transactions_.size() <= kInvalidTransactionId,
                "database exceeds the TransactionId range");
  return static_cast<TransactionId>(transactions_.size() - 1);
}

void TransactionDatabase::AddAll(std::vector<Transaction> transactions) {
  for (auto& transaction : transactions) Add(std::move(transaction));
}

const Transaction& TransactionDatabase::Get(TransactionId id) const {
  MBI_CHECK(id < transactions_.size());
  return transactions_[id];
}

double TransactionDatabase::AverageTransactionSize() const {
  if (transactions_.empty()) return 0.0;
  return static_cast<double>(TotalItemOccurrences()) /
         static_cast<double>(transactions_.size());
}

uint64_t TransactionDatabase::TotalItemOccurrences() const {
  uint64_t total = 0;
  for (const auto& transaction : transactions_) total += transaction.size();
  return total;
}

std::string DatasetName(int avg_transaction_size, int avg_itemset_size,
                        uint64_t num_transactions) {
  std::string size_text;
  if (num_transactions % 1'000'000 == 0 && num_transactions > 0) {
    size_text = std::to_string(num_transactions / 1'000'000) + "M";
  } else if (num_transactions % 1'000 == 0 && num_transactions > 0) {
    size_text = std::to_string(num_transactions / 1'000) + "K";
  } else {
    size_text = std::to_string(num_transactions);
  }
  // Built with plain appends, not a `"T" + ... + ...` chain: the temporary
  // concatenations trip GCC 12's -Wrestrict false positive (PR 105651) at -O2+.
  std::string name = "T";
  name += std::to_string(avg_transaction_size);
  name += ".I";
  name += std::to_string(avg_itemset_size);
  name += ".D";
  name += size_text;
  return name;
}

}  // namespace mbi
