#ifndef MBI_TXN_PACKED_TARGET_H_
#define MBI_TXN_PACKED_TARGET_H_

#include <cstddef>

#include "txn/transaction.h"
#include "util/bitset.h"
#include "util/hot_path.h"

namespace mbi {

/// Word-packed representation of a query target for the candidate-evaluation
/// hot path.
///
/// A similarity query evaluates one fixed target against many candidate
/// transactions. The merge-scan `MatchAndHamming` walks both sorted item
/// vectors (O(|target| + |candidate|) with a data-dependent branch per step);
/// packing the *target* once into a dense bitmap over the item universe turns
/// each candidate evaluation into a sparse probe: every candidate item costs
/// one word load, shift, and mask (O(|candidate|), branch-free). The Hamming
/// distance then falls out of the match count via
///
///     y = (|target| - x) + (|candidate| - x)
///
/// because both sides are sets. All quantities are exact integers, so the
/// result is bit-identical to the merge scan — the equivalence is verified
/// exhaustively in transaction_test.cc, and the merge scan remains the
/// reference implementation.
///
/// The hybrid is sparse-probe-into-dense-bitmap rather than AND/popcount of
/// two bitmaps: candidates stay in their sparse sorted-vector form (packing
/// every candidate would cost O(universe/64) per candidate, which loses for
/// the short, skewed transactions of market-basket data).
///
/// `Assign` reuses the bitmap allocation across queries, so a PackedTarget
/// held in a reusable QueryContext allocates nothing on the steady state.
class PackedTarget {
 public:
  PackedTarget() = default;

  /// Binds the target: (re)sizes the bitmap to `universe_size` bits, clears
  /// it, and sets the target's item bits. Items must be < universe_size.
  /// Reallocates only when the universe size changes.
  MBI_HOT void Assign(const Transaction& target, size_t universe_size);

  /// |target| of the bound target.
  size_t target_size() const { return target_size_; }

  /// True once Assign has been called (bitmap sized to some universe).
  bool bound() const { return bound_; }

  /// Match count x = |target ∩ candidate| and Hamming distance
  /// y = |target △ candidate|, bit-identical to
  /// mbi::MatchAndHamming(target, candidate, ...).
  MBI_HOT void MatchAndHamming(const Transaction& candidate, size_t* match,
                               size_t* hamming) const {
    size_t x = 0;
    for (ItemId item : candidate.items()) {
      x += bits_.GetUnchecked(item) ? size_t{1} : size_t{0};
    }
    *match = x;
    *hamming = (target_size_ - x) + (candidate.size() - x);
  }

 private:
  Bitset bits_;
  size_t target_size_ = 0;
  bool bound_ = false;
};

}  // namespace mbi

#endif  // MBI_TXN_PACKED_TARGET_H_
