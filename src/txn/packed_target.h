#ifndef MBI_TXN_PACKED_TARGET_H_
#define MBI_TXN_PACKED_TARGET_H_

#include <cstddef>
#include <cstdint>

#include "kernel/aligned_buffer.h"
#include "txn/candidate_layout.h"
#include "txn/transaction.h"
#include "util/bitset.h"
#include "util/hot_path.h"

namespace mbi {

/// Word-packed representation of a query target for the candidate-evaluation
/// hot path.
///
/// A similarity query evaluates one fixed target against many candidate
/// transactions. The merge-scan `MatchAndHamming` walks both sorted item
/// vectors (O(|target| + |candidate|) with a data-dependent branch per step);
/// packing the *target* once into a dense bitmap over the item universe turns
/// each candidate evaluation into a sparse probe: every candidate item costs
/// one word load, shift, and mask (O(|candidate|), branch-free). The Hamming
/// distance then falls out of the match count via
///
///     y = (|target| - x) + (|candidate| - x)
///
/// because both sides are sets. All quantities are exact integers, so the
/// result is bit-identical to the merge scan — the equivalence is verified
/// exhaustively in transaction_test.cc, and the merge scan remains the
/// reference implementation.
///
/// Two candidate-side forms coexist:
///
///   * the per-candidate sparse probe above (`MatchAndHamming`), used when
///     no blocked layout covers the candidate — candidates stay in their
///     sparse sorted-vector form;
///   * the batch form (`MatchAndHammingBatch` / `MatchAndHammingRows`),
///     which runs the runtime-dispatched AND+popcount SIMD kernel
///     (kernel/dispatch.h) over a prebuilt `CandidateLayout`'s dense
///     frequent-item rows and finishes each candidate's infrequent tail
///     with the same sparse probe. Also bit-identical — all integer — and
///     proven so in kernel_test.cc across every ISA.
///
/// `Assign` reuses all allocations across queries, so a PackedTarget held in
/// a reusable QueryContext allocates nothing on the steady state.
class PackedTarget {
 public:
  PackedTarget() = default;

  /// Binds the target: (re)sizes the bitmap to `universe_size` bits, clears
  /// it, and sets the target's item bits. Items must be < universe_size.
  /// Reallocates only when the universe size changes. Drops any previously
  /// bound layout (probe-only form).
  MBI_HOT void Assign(const Transaction& target, size_t universe_size);

  /// Batch-capable form: additionally packs the target's frequent-item bits
  /// into a 64-byte-aligned dense row shaped like `layout`'s rows, enabling
  /// the Batch/Rows kernels below for candidate ids the layout covers.
  /// `layout` must outlive this binding. A null layout degrades to the
  /// two-argument form.
  MBI_HOT void Assign(const Transaction& target, size_t universe_size,
                      const CandidateLayout* layout);

  /// |target| of the bound target.
  size_t target_size() const { return target_size_; }

  /// True once Assign has been called (bitmap sized to some universe).
  bool bound() const { return bound_; }

  /// True when the batch kernels below may be used (layout-bound Assign).
  bool has_layout() const { return layout_ != nullptr; }
  const CandidateLayout* layout() const { return layout_; }

  /// Match count x = |target ∩ candidate| and Hamming distance
  /// y = |target △ candidate|, bit-identical to
  /// mbi::MatchAndHamming(target, candidate, ...).
  MBI_HOT void MatchAndHamming(const Transaction& candidate, size_t* match,
                               size_t* hamming) const {
    size_t x = 0;
    for (ItemId item : candidate.items()) {
      x += bits_.GetUnchecked(item) ? size_t{1} : size_t{0};
    }
    *match = x;
    *hamming = (target_size_ - x) + (candidate.size() - x);
  }

  /// Gather-form batch: match/Hamming against layout rows `ids[0..count)`.
  /// Every id must be < layout()->num_rows(). Requires has_layout().
  MBI_HOT void MatchAndHammingBatch(const TransactionId* ids, size_t count,
                                    uint32_t* match_out,
                                    uint32_t* hamming_out) const;

  /// Streaming-form batch: rows `first_row .. first_row+count`, in order.
  /// Requires has_layout().
  MBI_HOT void MatchAndHammingRows(TransactionId first_row, size_t count,
                                   uint32_t* match_out,
                                   uint32_t* hamming_out) const;

 private:
  /// Adds each row's sparse-tail matches to the dense kernel counts and
  /// derives Hamming. `row_of(i)` maps batch position to layout row.
  template <typename RowOf>
  MBI_HOT void FinishBatch(RowOf row_of, size_t count, uint32_t* match_out,
                           uint32_t* hamming_out) const;

  Bitset bits_;
  kernel::AlignedWordBuffer target_row_;
  const CandidateLayout* layout_ = nullptr;
  size_t target_size_ = 0;
  bool bound_ = false;
};

}  // namespace mbi

#endif  // MBI_TXN_PACKED_TARGET_H_
