#include "txn/packed_target.h"

#include <algorithm>

#include "kernel/dispatch.h"
#include "util/macros.h"

namespace mbi {

MBI_HOT void PackedTarget::Assign(const Transaction& target,
                                  size_t universe_size) {
  Assign(target, universe_size, nullptr);
}

MBI_HOT void PackedTarget::Assign(const Transaction& target,
                                  size_t universe_size,
                                  const CandidateLayout* layout) {
  bits_.ResizeAndClear(universe_size);  // capacity-keeping: no heap when warm
  for (ItemId item : target.items()) {
    MBI_CHECK(item < universe_size);
    bits_.Set(item);
  }
  target_size_ = target.size();
  bound_ = true;
  layout_ = layout;
  if (layout_ == nullptr) return;

  // Pack the target's frequent-item bits into one layout-shaped dense row.
  const kernel::BlockedLayout& blocked = layout_->blocked();
  const size_t words = blocked.words_per_row();
  if (target_row_.size() != words) {
    target_row_.Reset(words);  // Grow-only in steady state: layouts are
                               // rebuilt rarely, per database snapshot.
  } else {
    std::fill_n(target_row_.data(), words, uint64_t{0});
  }
  const kernel::ItemBandMap& band = blocked.band_map();
  for (ItemId item : target.items()) {
    const uint32_t slot = band.DenseSlot(item);
    if (slot != kernel::ItemBandMap::kNotDense) {
      target_row_.data()[slot / 64] |= uint64_t{1} << (slot % 64);
    }
  }
}

template <typename RowOf>
MBI_HOT void PackedTarget::FinishBatch(RowOf row_of, size_t count,
                                       uint32_t* match_out,
                                       uint32_t* hamming_out) const {
  const kernel::BlockedLayout& blocked = layout_->blocked();
  const auto target_size = static_cast<uint32_t>(target_size_);
  for (size_t i = 0; i < count; ++i) {
    const size_t row = row_of(i);
    uint32_t x = match_out[i];
    const auto [tail, tail_count] = blocked.tail(row);
    for (size_t k = 0; k < tail_count; ++k) {
      x += bits_.GetUnchecked(tail[k]) ? 1u : 0u;
    }
    match_out[i] = x;
    hamming_out[i] = (target_size - x) + (blocked.row_size(row) - x);
  }
}

MBI_HOT void PackedTarget::MatchAndHammingBatch(const TransactionId* ids,
                                                size_t count,
                                                uint32_t* match_out,
                                                uint32_t* hamming_out) const {
  MBI_CHECK(layout_ != nullptr);
  const kernel::BlockedLayout& blocked = layout_->blocked();
  kernel::ActiveKernels().match_rows(target_row_.data(), blocked.rows(),
                                     blocked.stride_words(),
                                     blocked.words_per_row(), ids, count,
                                     match_out);
  FinishBatch([ids](size_t i) { return size_t{ids[i]}; }, count, match_out,
              hamming_out);
}

MBI_HOT void PackedTarget::MatchAndHammingRows(TransactionId first_row,
                                               size_t count,
                                               uint32_t* match_out,
                                               uint32_t* hamming_out) const {
  MBI_CHECK(layout_ != nullptr);
  const kernel::BlockedLayout& blocked = layout_->blocked();
  kernel::ActiveKernels().match_rows(target_row_.data(),
                                     blocked.row(first_row),
                                     blocked.stride_words(),
                                     blocked.words_per_row(),
                                     /*ids=*/nullptr, count, match_out);
  FinishBatch([first_row](size_t i) { return size_t{first_row} + i; }, count,
              match_out, hamming_out);
}

}  // namespace mbi
