#include "txn/packed_target.h"

#include "util/macros.h"

namespace mbi {

MBI_HOT void PackedTarget::Assign(const Transaction& target,
                                  size_t universe_size) {
  if (bits_.size() != universe_size) {
    bits_ = Bitset(universe_size);
  } else {
    bits_.ClearAll();
  }
  for (ItemId item : target.items()) {
    MBI_CHECK(item < universe_size);
    bits_.Set(item);
  }
  target_size_ = target.size();
  bound_ = true;
}

}  // namespace mbi
