#include "txn/database_io.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace mbi {
namespace {

constexpr uint32_t kMagic = 0x4D424944;  // "MBID"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(FILE* file) const {
    if (file != nullptr) std::fclose(file);
  }
};
using FileHandle = std::unique_ptr<FILE, FileCloser>;

bool WriteU32(FILE* file, uint32_t value) {
  return std::fwrite(&value, sizeof(value), 1, file) == 1;
}

bool WriteU64(FILE* file, uint64_t value) {
  return std::fwrite(&value, sizeof(value), 1, file) == 1;
}

bool ReadU32(FILE* file, uint32_t* value) {
  return std::fread(value, sizeof(*value), 1, file) == 1;
}

bool ReadU64(FILE* file, uint64_t* value) {
  return std::fread(value, sizeof(*value), 1, file) == 1;
}

}  // namespace

bool SaveDatabase(const TransactionDatabase& database,
                  const std::string& path) {
  FileHandle file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) return false;
  if (!WriteU32(file.get(), kMagic) || !WriteU32(file.get(), kVersion) ||
      !WriteU32(file.get(), database.universe_size()) ||
      !WriteU64(file.get(), database.size())) {
    return false;
  }
  for (const Transaction& transaction : database.transactions()) {
    if (!WriteU32(file.get(), static_cast<uint32_t>(transaction.size()))) {
      return false;
    }
    const auto& items = transaction.items();
    if (!items.empty() &&
        std::fwrite(items.data(), sizeof(ItemId), items.size(), file.get()) !=
            items.size()) {
      return false;
    }
  }
  return std::fflush(file.get()) == 0;
}

std::optional<TransactionDatabase> LoadDatabase(const std::string& path) {
  FileHandle file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) return std::nullopt;
  uint32_t magic = 0, version = 0, universe = 0;
  uint64_t count = 0;
  if (!ReadU32(file.get(), &magic) || magic != kMagic ||
      !ReadU32(file.get(), &version) || version != kVersion ||
      !ReadU32(file.get(), &universe) || universe == 0 ||
      !ReadU64(file.get(), &count)) {
    return std::nullopt;
  }
  TransactionDatabase database(universe);
  for (uint64_t t = 0; t < count; ++t) {
    uint32_t size = 0;
    if (!ReadU32(file.get(), &size)) return std::nullopt;
    std::vector<ItemId> items(size);
    if (size > 0 &&
        std::fread(items.data(), sizeof(ItemId), size, file.get()) != size) {
      return std::nullopt;
    }
    for (ItemId item : items) {
      if (item >= universe) return std::nullopt;
    }
    database.Add(Transaction(std::move(items)));
  }
  return database;
}

}  // namespace mbi
