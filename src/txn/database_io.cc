#include "txn/database_io.h"

#include <cstdint>
#include <vector>

#include "storage/format.h"

namespace mbi {
namespace {

// v2 section ids.
constexpr uint32_t kSectionMeta = 1;          // universe u32, count u64
constexpr uint32_t kSectionTransactions = 2;  // per tx: size u32, raw ItemIds

constexpr uint64_t kMaxReasonableCount = 1ULL << 33;

/// Parses the transaction list (shared by the v2 section payload and the v1
/// body tail — the byte layout is identical) into `database`, validating
/// every item against the declared universe.
Status ParseTransactions(SectionParser* parser, uint32_t universe,
                         uint64_t count, TransactionDatabase* database) {
  for (uint64_t t = 0; t < count; ++t) {
    uint32_t size = 0;
    MBI_RETURN_IF_ERROR(parser->ReadU32(&size));
    if (parser->remaining() < uint64_t{size} * sizeof(ItemId)) {
      return Status::Corruption("transaction " + std::to_string(t) +
                                " declares " + std::to_string(size) +
                                " items but the payload is shorter");
    }
    std::vector<ItemId> items(size);
    MBI_RETURN_IF_ERROR(
        parser->ReadBytes(items.data(), size * sizeof(ItemId)));
    for (ItemId item : items) {
      if (item >= universe) {
        return Status::Corruption("transaction " + std::to_string(t) +
                                  " holds item " + std::to_string(item) +
                                  " outside the universe [0, " +
                                  std::to_string(universe) + ")");
      }
    }
    database->Add(Transaction(std::move(items)));
  }
  return parser->ExpectConsumed();
}

Status ValidateHeader(const std::string& path, uint32_t universe,
                      uint64_t count) {
  if (universe == 0) {
    return Status::Corruption(path + ": zero universe size");
  }
  if (count > kMaxReasonableCount) {
    return Status::Corruption(path + ": implausible transaction count " +
                              std::to_string(count));
  }
  return Status::Ok();
}

}  // namespace

Status SaveDatabase(const TransactionDatabase& database,
                    const std::string& path, Env* env) {
  ArtifactWriter writer(env, path, kDatabaseMagic);
  MBI_RETURN_IF_ERROR(writer.Open());

  writer.BeginSection(kSectionMeta);
  writer.PutU32(database.universe_size());
  writer.PutU64(database.size());
  MBI_RETURN_IF_ERROR(writer.EndSection());

  writer.BeginSection(kSectionTransactions);
  for (const Transaction& transaction : database.transactions()) {
    writer.PutU32(static_cast<uint32_t>(transaction.size()));
    const auto& items = transaction.items();
    writer.PutBytes(items.data(), items.size() * sizeof(ItemId));
  }
  MBI_RETURN_IF_ERROR(writer.EndSection());

  return writer.Commit();
}

StatusOr<TransactionDatabase> LoadDatabase(const std::string& path, Env* env) {
  MBI_ASSIGN_OR_RETURN(ArtifactReader reader,
                       ArtifactReader::Open(env, path, kDatabaseMagic));

  if (reader.version() == kFormatVersionDurable) {
    MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> meta,
                         reader.ReadSection(kSectionMeta, "meta"));
    SectionParser meta_parser(meta, path + ": section 'meta'");
    uint32_t universe = 0;
    uint64_t count = 0;
    MBI_RETURN_IF_ERROR(meta_parser.ReadU32(&universe));
    MBI_RETURN_IF_ERROR(meta_parser.ReadU64(&count));
    MBI_RETURN_IF_ERROR(meta_parser.ExpectConsumed());
    MBI_RETURN_IF_ERROR(ValidateHeader(path, universe, count));

    MBI_ASSIGN_OR_RETURN(
        std::vector<uint8_t> body,
        reader.ReadSection(kSectionTransactions, "transactions"));
    MBI_RETURN_IF_ERROR(reader.ExpectEnd());
    SectionParser parser(body, path + ": section 'transactions'");
    TransactionDatabase database(universe);
    MBI_RETURN_IF_ERROR(
        ParseTransactions(&parser, universe, count, &database));
    return database;
  }

  // Legacy v1: unframed body — universe u32, count u64, then transactions in
  // the same shape as the v2 section. No checksums to verify; every field is
  // still bounds-checked.
  MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> body, reader.ReadRemainder());
  SectionParser parser(body, path);
  uint32_t universe = 0;
  uint64_t count = 0;
  MBI_RETURN_IF_ERROR(parser.ReadU32(&universe));
  MBI_RETURN_IF_ERROR(parser.ReadU64(&count));
  MBI_RETURN_IF_ERROR(ValidateHeader(path, universe, count));
  TransactionDatabase database(universe);
  MBI_RETURN_IF_ERROR(ParseTransactions(&parser, universe, count, &database));
  return database;
}

}  // namespace mbi
