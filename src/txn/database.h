#ifndef MBI_TXN_DATABASE_H_
#define MBI_TXN_DATABASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "txn/transaction.h"

namespace mbi {

/// An in-memory collection of transactions over a fixed item universe.
///
/// This is the logical database the index is built over. The physical,
/// page-oriented layout lives in `storage/TransactionStore`; keeping the two
/// separate lets the query engines account for simulated disk I/O while tests
/// and examples work directly against the logical view.
class TransactionDatabase {
 public:
  /// Creates an empty database over items `0 .. universe_size-1`.
  explicit TransactionDatabase(uint32_t universe_size);

  /// Appends a transaction and returns its id. Items must be within the
  /// universe (checked).
  TransactionId Add(Transaction transaction);

  /// Appends many transactions.
  void AddAll(std::vector<Transaction> transactions);

  const Transaction& Get(TransactionId id) const;
  size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }
  uint32_t universe_size() const { return universe_size_; }

  const std::vector<Transaction>& transactions() const { return transactions_; }

  /// Average number of items per transaction; 0 for an empty database.
  double AverageTransactionSize() const;

  /// Total number of item occurrences across all transactions.
  uint64_t TotalItemOccurrences() const;

 private:
  uint32_t universe_size_;
  std::vector<Transaction> transactions_;
};

/// Formats the paper's dataset naming convention: average transaction size T,
/// mean maximal potentially-large itemset size I, and database size D, e.g.
/// DatasetName(10, 6, 800'000) == "T10.I6.D800K".
std::string DatasetName(int avg_transaction_size, int avg_itemset_size,
                        uint64_t num_transactions);

}  // namespace mbi

#endif  // MBI_TXN_DATABASE_H_
