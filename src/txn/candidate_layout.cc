#include "txn/candidate_layout.h"

#include <utility>
#include <vector>

namespace mbi {

CandidateLayout CandidateLayout::Build(const TransactionDatabase& database,
                                       const CandidateLayoutConfig& config) {
  std::vector<uint64_t> item_frequency(database.universe_size(), 0);
  size_t total_items = 0;
  for (const Transaction& txn : database.transactions()) {
    for (ItemId item : txn.items()) ++item_frequency[item];
    total_items += txn.size();
  }

  kernel::ItemBandMap band_map =
      kernel::ItemBandMap::Build(item_frequency, config.max_dense_bits);
  kernel::BlockedLayout::Builder builder(std::move(band_map), database.size(),
                                         total_items);
  for (const Transaction& txn : database.transactions()) {
    builder.AddRow(txn.items().data(), txn.size());
  }

  CandidateLayout layout;
  layout.blocked_ = std::move(builder).Build();
  layout.universe_size_ = database.universe_size();
  return layout;
}

}  // namespace mbi
