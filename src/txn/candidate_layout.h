#ifndef MBI_TXN_CANDIDATE_LAYOUT_H_
#define MBI_TXN_CANDIDATE_LAYOUT_H_

#include <cstddef>
#include <cstdint>

#include "kernel/blocked_layout.h"
#include "txn/database.h"

namespace mbi {

struct CandidateLayoutConfig {
  /// Upper bound on the dense (frequent-item) band width in bits; rounded
  /// down to a multiple of 64. Items beyond the `max_dense_bits` most
  /// frequent take the sparse-probe tail path. The default covers the whole
  /// universe for the datasets in bench/ (universe 1000), so the tail only
  /// activates on genuinely wide universes.
  uint32_t max_dense_bits = 1024;
};

/// Database-wide blocked candidate bitmap (kernel/blocked_layout.h) keyed by
/// TransactionId: row i is transaction i's dense frequent-item bits, tail i
/// its infrequent items. Immutable snapshot — engines check
/// `num_rows() >= database.size()` per query and fall back to the legacy
/// sparse probe for transactions appended after the build.
class CandidateLayout {
 public:
  CandidateLayout() = default;

  static CandidateLayout Build(const TransactionDatabase& database,
                               const CandidateLayoutConfig& config = {});

  /// Number of transactions covered (ids [0, num_rows) are valid rows).
  size_t num_rows() const { return blocked_.num_rows(); }
  uint32_t universe_size() const { return universe_size_; }
  const kernel::BlockedLayout& blocked() const { return blocked_; }

 private:
  kernel::BlockedLayout blocked_;
  uint32_t universe_size_ = 0;
};

}  // namespace mbi

#endif  // MBI_TXN_CANDIDATE_LAYOUT_H_
