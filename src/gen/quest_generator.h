#ifndef MBI_GEN_QUEST_GENERATOR_H_
#define MBI_GEN_QUEST_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "txn/database.h"
#include "txn/transaction.h"
#include "util/alias_sampler.h"
#include "util/rng.h"

namespace mbi {

/// Parameters of the synthetic market-basket generator described in Section 5
/// of Aggarwal, Wolf & Yu (SIGMOD 1999), which follows the IBM Quest method of
/// Agrawal & Srikant (VLDB 1994).
///
/// Datasets are named by the paper's convention `T<t>.I<i>.D<n>`:
/// `avg_transaction_size` = T, `avg_itemset_size` = I, and the count passed to
/// GenerateDatabase() = D.
struct QuestGeneratorConfig {
  /// Size of the universal item set U.
  uint32_t universe_size = 1000;

  /// Number L of maximal potentially large itemsets ("consumer tendencies").
  /// The paper uses L = 2000.
  uint32_t num_large_itemsets = 2000;

  /// Mean of the Poisson from which each maximal itemset's size is drawn
  /// (the paper's I). Sizes are clamped to [1, universe_size].
  double avg_itemset_size = 6.0;

  /// Fraction of each successive itemset's items inherited from the previous
  /// itemset ("half of its items from the current itemset" => 0.5).
  double correlation_fraction = 0.5;

  /// Mean of the Poisson from which each transaction's size is drawn
  /// (the paper's T). Sizes are clamped to at least 1.
  double avg_transaction_size = 10.0;

  /// Mean of the normal distribution for per-itemset noise levels
  /// (paper: 0.5) and its variance (paper: 0.1). The noise level is the
  /// success probability of the geometric variable that decides how many
  /// items are dropped from an itemset instance; it is clamped to (0, 1).
  double noise_mean = 0.5;
  double noise_variance = 0.1;

  /// Probability that an itemset which does not fit in the remaining room of
  /// the current transaction is assigned to it anyway ("half of the time").
  double spill_probability = 0.5;

  /// Seed for all randomness of this generator.
  uint64_t seed = 42;
};

/// Synthetic market-basket data generator (paper Section 5).
///
/// Construction builds the pool of maximal potentially large itemsets:
///   * each size ~ Poisson(avg_itemset_size), at least 1;
///   * each successive itemset inherits `correlation_fraction` of its items
///     from the previous itemset and draws the rest uniformly, so that the
///     potentially large itemsets "often have common items";
///   * each itemset has weight ~ Exp(1), forming an L-sided weighted die;
///   * each itemset has a noise level ~ N(noise_mean, noise_variance).
///
/// NextTransaction() then draws a target size ~ Poisson(avg_transaction_size)
/// and assigns noisy itemset instances in succession: a geometric number of
/// items (capped at the itemset size) is dropped from each instance, and an
/// instance that does not fit the remaining room is either force-assigned
/// (probability `spill_probability`) or carried over to start the next
/// transaction, exactly as described in the paper.
class QuestGenerator {
 public:
  explicit QuestGenerator(const QuestGeneratorConfig& config);

  /// Generates the next transaction of the stream.
  Transaction NextTransaction();

  /// Generates `count` transactions into a fresh database over the
  /// configured universe.
  TransactionDatabase GenerateDatabase(uint64_t count);

  /// Generates `count` query targets. Targets come from the same stream as
  /// database transactions (fresh draws, not copies of database rows), which
  /// matches the paper's setting of searching for peers of a new basket.
  std::vector<Transaction> GenerateQueries(uint64_t count);

  const QuestGeneratorConfig& config() const { return config_; }

  /// The maximal potentially large itemsets (exposed for tests and for the
  /// mining substrate's ground-truth checks).
  const std::vector<Transaction>& large_itemsets() const {
    return large_itemsets_;
  }

  /// Noise level assigned to large itemset `index`.
  double noise_level(size_t index) const;

 private:
  /// Builds the pool of maximal potentially large itemsets.
  void BuildLargeItemsets();

  /// Draws an itemset instance with noise applied: a copy of large itemset
  /// `index` with min(G, size) random items dropped, G ~ Geometric(noise).
  std::vector<ItemId> NoisyInstance(size_t index);

  QuestGeneratorConfig config_;
  Rng rng_;
  std::vector<Transaction> large_itemsets_;
  std::vector<double> noise_levels_;
  std::unique_ptr<AliasSampler> die_;

  /// Itemset instance carried over when it did not fit the prior transaction.
  std::vector<ItemId> carryover_;
  bool has_carryover_ = false;
};

/// Summary statistics of a database, used by tests and benchmark logs.
struct CorpusStats {
  uint64_t num_transactions = 0;
  double avg_transaction_size = 0.0;
  size_t max_transaction_size = 0;
  uint32_t distinct_items = 0;
  /// Fraction of (transaction, item) cells that are 1 — the data density the
  /// paper's inverted-index discussion hinges on.
  double density = 0.0;
};

CorpusStats ComputeCorpusStats(const TransactionDatabase& database);

}  // namespace mbi

#endif  // MBI_GEN_QUEST_GENERATOR_H_
