#include "gen/quest_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/macros.h"

namespace mbi {

QuestGenerator::QuestGenerator(const QuestGeneratorConfig& config)
    : config_(config), rng_(config.seed) {
  MBI_CHECK(config_.universe_size > 0);
  MBI_CHECK(config_.num_large_itemsets > 0);
  MBI_CHECK(config_.avg_itemset_size > 0.0);
  MBI_CHECK(config_.avg_transaction_size > 0.0);
  MBI_CHECK(config_.correlation_fraction >= 0.0 &&
            config_.correlation_fraction <= 1.0);
  MBI_CHECK(config_.spill_probability >= 0.0 &&
            config_.spill_probability <= 1.0);
  BuildLargeItemsets();
}

void QuestGenerator::BuildLargeItemsets() {
  large_itemsets_.reserve(config_.num_large_itemsets);
  noise_levels_.reserve(config_.num_large_itemsets);
  std::vector<double> weights;
  weights.reserve(config_.num_large_itemsets);

  const double noise_stddev = std::sqrt(config_.noise_variance);
  std::vector<ItemId> previous;

  for (uint32_t i = 0; i < config_.num_large_itemsets; ++i) {
    int size = std::max(1, rng_.Poisson(config_.avg_itemset_size));
    size = std::min<int>(size, static_cast<int>(config_.universe_size));

    std::unordered_set<ItemId> chosen;
    if (!previous.empty()) {
      // Inherit a fraction of the previous itemset's items so that successive
      // potentially large itemsets share items (paper: "picking half of its
      // items from the current itemset").
      int inherit =
          std::min<int>(static_cast<int>(std::lround(
                            config_.correlation_fraction * size)),
                        static_cast<int>(previous.size()));
      std::vector<ItemId> pool = previous;
      rng_.Shuffle(&pool);
      for (size_t j = 0; j < static_cast<size_t>(inherit); ++j) {
        chosen.insert(pool[j]);
      }
    }
    // Fill the remainder with uniform random items.
    while (static_cast<int>(chosen.size()) < size) {
      chosen.insert(
          static_cast<ItemId>(rng_.UniformUint64(config_.universe_size)));
    }

    std::vector<ItemId> items(chosen.begin(), chosen.end());
    large_itemsets_.emplace_back(std::move(items));
    previous = large_itemsets_.back().items();

    weights.push_back(rng_.Exponential(1.0));

    // Noise level ~ N(0.5, 0.1), clamped into (0, 1) so the geometric draw is
    // always well defined.
    double noise = rng_.Normal(config_.noise_mean, noise_stddev);
    noise = std::clamp(noise, 0.01, 0.99);
    noise_levels_.push_back(noise);
  }

  die_ = std::make_unique<AliasSampler>(weights);
}

std::vector<ItemId> QuestGenerator::NoisyInstance(size_t index) {
  const auto& items = large_itemsets_[index].items();
  std::vector<ItemId> instance = items;
  int drops = rng_.Geometric(noise_levels_[index]);
  drops = std::min<int>(drops, static_cast<int>(instance.size()));
  for (int d = 0; d < drops; ++d) {
    size_t victim = static_cast<size_t>(rng_.UniformUint64(instance.size()));
    instance[victim] = instance.back();
    instance.pop_back();
  }
  return instance;
}

Transaction QuestGenerator::NextTransaction() {
  const int target_size =
      std::max(1, rng_.Poisson(config_.avg_transaction_size));

  std::unordered_set<ItemId> basket;
  // Degenerate configurations (itemset pool whose union is smaller than the
  // target size) can stop the basket from ever growing; bail out once a run
  // of instances adds nothing instead of looping forever.
  int stalled_iterations = 0;
  constexpr int kMaxStalledIterations = 32;
  while (static_cast<int>(basket.size()) < target_size) {
    std::vector<ItemId> instance;
    if (has_carryover_) {
      instance = std::move(carryover_);
      has_carryover_ = false;
    } else {
      instance = NoisyInstance(die_->Sample(&rng_));
    }
    size_t size_before = basket.size();
    if (instance.empty()) {  // Noise dropped the whole itemset.
      if (!basket.empty() && ++stalled_iterations >= kMaxStalledIterations) {
        break;
      }
      continue;
    }

    const int room = target_size - static_cast<int>(basket.size());
    if (static_cast<int>(instance.size()) <= room) {
      basket.insert(instance.begin(), instance.end());
      if (basket.size() == size_before) {
        if (++stalled_iterations >= kMaxStalledIterations) break;
      } else {
        stalled_iterations = 0;
      }
      continue;
    }
    // The instance does not fit: half of the time assign it to the current
    // transaction anyway; otherwise carry it over to the next transaction.
    // An empty basket always takes the instance — carrying it over would
    // emit an empty transaction, which the model does not produce.
    if (basket.empty() || rng_.Bernoulli(config_.spill_probability)) {
      basket.insert(instance.begin(), instance.end());
    } else {
      carryover_ = std::move(instance);
      has_carryover_ = true;
    }
    break;
  }

  return Transaction(std::vector<ItemId>(basket.begin(), basket.end()));
}

TransactionDatabase QuestGenerator::GenerateDatabase(uint64_t count) {
  TransactionDatabase database(config_.universe_size);
  for (uint64_t i = 0; i < count; ++i) database.Add(NextTransaction());
  return database;
}

std::vector<Transaction> QuestGenerator::GenerateQueries(uint64_t count) {
  std::vector<Transaction> queries;
  queries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) queries.push_back(NextTransaction());
  return queries;
}

double QuestGenerator::noise_level(size_t index) const {
  MBI_CHECK(index < noise_levels_.size());
  return noise_levels_[index];
}

CorpusStats ComputeCorpusStats(const TransactionDatabase& database) {
  CorpusStats stats;
  stats.num_transactions = database.size();
  std::vector<bool> seen(database.universe_size(), false);
  uint64_t total_items = 0;
  for (const auto& transaction : database.transactions()) {
    total_items += transaction.size();
    stats.max_transaction_size =
        std::max(stats.max_transaction_size, transaction.size());
    for (ItemId item : transaction.items()) seen[item] = true;
  }
  stats.distinct_items =
      static_cast<uint32_t>(std::count(seen.begin(), seen.end(), true));
  if (database.size() > 0) {
    stats.avg_transaction_size =
        static_cast<double>(total_items) / static_cast<double>(database.size());
    stats.density = stats.avg_transaction_size /
                    static_cast<double>(database.universe_size());
  }
  return stats;
}

}  // namespace mbi
