#include "dyn/dynamic_index.h"

#include <algorithm>
#include <atomic>
#include <latch>
#include <memory>
#include <string>
#include <utility>

#include "core/batch_query.h"
#include "util/macros.h"

namespace mbi {

namespace {

/// Rows-per-budget-check granularity for the buffer scan, matching the
/// scanner paths' chunk discipline (DESIGN.md §13.4). Buffers are usually
/// smaller than one chunk, so in practice the whole buffer scans atomically
/// under the min-one-chunk rule.
constexpr size_t kBufferScanChunk = SequentialScanner::kScanChunk;

double PointwiseBound(const SimilarityFunction& similarity,
                      size_t target_size) {
  // f(|target|, 0) dominates f(x, y) for every admissible f: matches cannot
  // exceed the target size and the Hamming distance cannot go below zero.
  return similarity.Evaluate(static_cast<int>(target_size), 0);
}

}  // namespace

// --- DynComponent -----------------------------------------------------------

std::shared_ptr<const DynComponent> DynComponent::Create(
    int level, std::vector<TransactionId> gids, TransactionDatabase rows,
    const IndexBuildConfig& build, bool quarantine) {
  MBI_CHECK(gids.size() == rows.size());
  MBI_CHECK(!rows.empty());
  MBI_CHECK(std::is_sorted(gids.begin(), gids.end()));
  auto component = std::make_shared<DynComponent>(std::move(rows));
  component->level = level;
  component->gids = std::move(gids);
  component->layout = CandidateLayout::Build(component->rows);
  component->quarantined = quarantine;
  if (!quarantine) {
    component->table.emplace(BuildIndex(component->rows, build));
    component->engine.emplace(&component->rows, &component->table.value(),
                              &component->layout);
  }
  component->scanner.emplace(&component->rows, &component->layout);
  return component;
}

std::shared_ptr<const DynComponent> DynComponent::CreateFromLoaded(
    int level, std::vector<TransactionId> gids, TransactionDatabase rows,
    std::optional<SignatureTable> table) {
  MBI_CHECK(gids.size() == rows.size());
  MBI_CHECK(!rows.empty());
  MBI_CHECK(std::is_sorted(gids.begin(), gids.end()));
  auto component = std::make_shared<DynComponent>(std::move(rows));
  component->level = level;
  component->gids = std::move(gids);
  component->layout = CandidateLayout::Build(component->rows);
  if (table.has_value()) {
    component->table.emplace(std::move(*table));
    component->engine.emplace(&component->rows, &component->table.value(),
                              &component->layout);
  } else {
    component->quarantined = true;
  }
  component->scanner.emplace(&component->rows, &component->layout);
  return component;
}

// --- DynamicIndex: lifecycle ------------------------------------------------

DynamicIndex::DynamicIndex(size_t universe_size,
                           const DynamicIndexOptions& options)
    : universe_size_(universe_size),
      options_(options),
      scheduler_(options.pool, options.merge_deadline_ms),
      metrics_(MakeMetrics(options.metrics)) {
  MBI_CHECK(universe_size_ >= 1);
  MBI_CHECK(options_.buffer_capacity >= 1);
  MBI_CHECK(options_.level_fanout >= 2);
  MBI_CHECK(options_.max_l0_components >= 1);
  MutexLock lock(&mu_);
  state_.buffer = std::make_shared<MutableBuffer>(options_.buffer_capacity);
  state_.tombstones = std::make_shared<const std::vector<TransactionId>>();
  UpdateGaugesLocked();
}

DynamicIndex::~DynamicIndex() {
  // Abandon pending reconstructions: RunMerge observes the cancellation at
  // its next phase boundary and returns without publishing.
  scheduler_.RequestStop();
  scheduler_.Drain();
}

DynamicIndex::Metrics DynamicIndex::MakeMetrics(MetricsRegistry* registry) {
  Metrics m;
  if (registry == nullptr) return m;
  m.inserts = registry->GetCounter("mbi.dyn.inserts", "rows", "Rows inserted");
  m.deletes =
      registry->GetCounter("mbi.dyn.deletes", "rows", "Rows tombstoned");
  m.spills = registry->GetCounter("mbi.dyn.spills", "spills",
                                  "Buffer spills into level 0");
  m.merges = registry->GetCounter("mbi.dyn.merges", "merges",
                                  "Level merges published");
  m.merges_abandoned =
      registry->GetCounter("mbi.dyn.merges_abandoned", "merges",
                           "Level merges abandoned (budget/shutdown)");
  m.backpressure =
      registry->GetCounter("mbi.dyn.backpressure", "rejections",
                           "Inserts rejected by admission control");
  m.queries = registry->GetCounter("mbi.dyn.queries", "queries",
                                   "Fan-out k-NN queries answered");
  m.components = registry->GetGauge("mbi.dyn.components", "components",
                                    "Published static components");
  m.tombstones = registry->GetGauge("mbi.dyn.tombstones", "rows",
                                    "Unpurged tombstones");
  m.buffer_fill = registry->GetGauge("mbi.dyn.buffer_fill", "rows",
                                     "Rows in the mutable buffer");
  m.live_rows =
      registry->GetGauge("mbi.dyn.live_rows", "rows", "Live (queryable) rows");
  m.merge_latency = registry->GetHistogram(
      "mbi.dyn.merge_latency", "us", "Background reconstruction latency");
  return m;
}

void DynamicIndex::UpdateGaugesLocked() {
  if (options_.metrics == nullptr) return;
  metrics_.components->Set(static_cast<double>(state_.components.size()));
  metrics_.tombstones->Set(static_cast<double>(state_.tombstones->size()));
  metrics_.buffer_fill->Set(static_cast<double>(state_.buffer->size()));
  metrics_.live_rows->Set(static_cast<double>(live_rows_));
}

// --- Writes -----------------------------------------------------------------

StatusOr<TransactionId> DynamicIndex::Insert(const Transaction& txn) {
  std::optional<MergePlan> plan;
  TransactionId gid;
  {
    MutexLock lock(&mu_);
    if (state_.buffer->full()) {
      // The eager spill below was blocked by backpressure on an earlier
      // insert; re-check admission before accepting more rows.
      if (merge_in_flight_ &&
          CountAtLevelLocked(0) >= options_.max_l0_components) {
        if (metrics_.backpressure != nullptr) {
          metrics_.backpressure->Increment();
        }
        return Status::Unavailable(
            "dynamic index overloaded: level 0 at capacity behind an "
            "in-flight merge; retry_after_ms=" +
            std::to_string(options_.admission_retry_after_ms));
      }
      SpillLocked();
      plan = MaybeStartMergeLocked();
    }
    gid = next_gid_++;
    MBI_CHECK(state_.buffer->Append(gid, txn));
    ++live_rows_;
    // Eager spill: freeze the buffer the moment it fills so buffer_capacity
    // bounds the un-indexed scan prefix. Skipped while backpressured (L0
    // saturated behind a merge) — the next insert re-checks admission above.
    if (state_.buffer->full() &&
        !(merge_in_flight_ &&
          CountAtLevelLocked(0) >= options_.max_l0_components)) {
      SpillLocked();
      if (!plan.has_value()) plan = MaybeStartMergeLocked();
    }
    if (metrics_.inserts != nullptr) metrics_.inserts->Increment();
    UpdateGaugesLocked();
  }
  // Outside mu_: the inline (null-pool) scheduler runs the merge right here
  // on the inserting thread, and its publish phase re-acquires mu_.
  if (plan.has_value()) SubmitMerge(std::move(*plan));
  return gid;
}

Status DynamicIndex::AppendRowLocked(TransactionId gid,
                                     const Transaction& txn) {
  // Load path: replays persisted rows with their original gids, spilling as
  // the (possibly reconfigured) buffer capacity dictates. No admission
  // control — a load must either fully succeed or fail.
  MBI_CHECK(state_.buffer->Append(gid, txn));
  ++live_rows_;
  if (state_.buffer->full()) SpillLocked();
  return Status::Ok();
}

void DynamicIndex::SpillLocked() {
  const MutableBuffer& buffer = *state_.buffer;
  const size_t n = buffer.size();
  MBI_CHECK(n >= 1);
  const std::vector<TransactionId>& tombstones = *state_.tombstones;

  // Freeze the live prefix; tombstoned buffer rows die here and their
  // tombstones are purged (the row never reaches a component).
  std::vector<TransactionId> gids;
  std::vector<TransactionId> applied;
  TransactionDatabase rows(static_cast<uint32_t>(universe_size_));
  gids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const BufferedRow& row = buffer.row(i);
    if (std::binary_search(tombstones.begin(), tombstones.end(), row.gid)) {
      applied.push_back(row.gid);
      continue;
    }
    gids.push_back(row.gid);
    rows.Add(row.txn);
  }
  if (!gids.empty()) {
    state_.components.push_back(DynComponent::Create(
        /*level=*/0, std::move(gids), std::move(rows), options_.build));
  }
  if (!applied.empty()) {
    auto remaining = std::make_shared<std::vector<TransactionId>>();
    std::set_difference(tombstones.begin(), tombstones.end(), applied.begin(),
                        applied.end(), std::back_inserter(*remaining));
    state_.tombstones = std::move(remaining);
  }
  state_.buffer = std::make_shared<MutableBuffer>(options_.buffer_capacity);
  if (metrics_.spills != nullptr) metrics_.spills->Increment();
}

Status DynamicIndex::Delete(TransactionId gid) {
  MutexLock lock(&mu_);
  if (gid >= next_gid_) {
    return Status::NotFound("gid was never assigned");
  }
  const std::vector<TransactionId>& tombstones = *state_.tombstones;
  if (std::binary_search(tombstones.begin(), tombstones.end(), gid)) {
    return Status::NotFound("row already deleted");
  }
  bool present = false;
  for (const auto& component : state_.components) {
    if (std::binary_search(component->gids.begin(), component->gids.end(),
                           gid)) {
      present = true;
      break;
    }
  }
  if (!present) {
    const size_t n = state_.buffer->size();
    for (size_t i = 0; i < n && !present; ++i) {
      present = state_.buffer->row(i).gid == gid;
    }
  }
  if (!present) {
    return Status::NotFound("row already deleted and purged");
  }
  // Copy-on-write: queries hold the old vector via their snapshot.
  auto updated = std::make_shared<std::vector<TransactionId>>(tombstones);
  updated->insert(
      std::upper_bound(updated->begin(), updated->end(), gid), gid);
  state_.tombstones = std::move(updated);
  --live_rows_;
  if (metrics_.deletes != nullptr) metrics_.deletes->Increment();
  UpdateGaugesLocked();
  return Status::Ok();
}

// --- Merging ----------------------------------------------------------------

size_t DynamicIndex::CountAtLevelLocked(int level) const {
  size_t count = 0;
  for (const auto& component : state_.components) {
    if (component->level == level) ++count;
  }
  return count;
}

std::optional<DynamicIndex::MergePlan> DynamicIndex::MaybeStartMergeLocked() {
  if (merge_in_flight_ || scheduler_.stopping()) return std::nullopt;
  int max_level = -1;
  for (const auto& component : state_.components) {
    max_level = std::max(max_level, component->level);
  }
  // One merge in flight at a time, lowest overflowing level first; cascades
  // re-check at publish.
  for (int level = 0; level <= max_level; ++level) {
    if (CountAtLevelLocked(level) < options_.level_fanout) continue;
    MergePlan plan;
    plan.out_level = level + 1;
    plan.tombstones = state_.tombstones;
    for (const auto& component : state_.components) {
      if (component->level == level) plan.victims.push_back(component);
    }
    merge_in_flight_ = true;
    return plan;
  }
  return std::nullopt;
}

void DynamicIndex::SubmitMerge(MergePlan plan) {
  const bool accepted = scheduler_.Submit(
      [this, plan = std::move(plan)](const QueryBudget& budget) {
        RunMerge(plan, budget);
      });
  if (!accepted) {
    // Shutting down: the claim must be unwound or writers wedge forever.
    MutexLock lock(&mu_);
    AbandonMergeLocked();
  }
}

void DynamicIndex::RunMerge(const MergePlan& plan, const QueryBudget& budget) {
  ScopedTimer timer(metrics_.merge_latency);
  // Phase 1: gather. Victims are immutable, so no lock is needed; the plan's
  // tombstone snapshot decides which rows die (later deletes stay tombstoned
  // against the merged component).
  if (budget.cancelled() || budget.deadline_expired()) {
    MutexLock lock(&mu_);
    AbandonMergeLocked();
    return;
  }
  struct GatheredRow {
    TransactionId gid;
    const Transaction* txn;
  };
  std::vector<GatheredRow> gathered;
  std::vector<TransactionId> applied;
  const std::vector<TransactionId>& tombstones = *plan.tombstones;
  for (const auto& victim : plan.victims) {
    for (size_t i = 0; i < victim->gids.size(); ++i) {
      const TransactionId gid = victim->gids[i];
      if (std::binary_search(tombstones.begin(), tombstones.end(), gid)) {
        applied.push_back(gid);
        continue;
      }
      gathered.push_back({gid, &victim->rows.Get(static_cast<TransactionId>(i))});
    }
  }
  std::sort(gathered.begin(), gathered.end(),
            [](const GatheredRow& a, const GatheredRow& b) {
              return a.gid < b.gid;
            });
  std::sort(applied.begin(), applied.end());

  // Phase 2: build — the expensive re-mining pass, entirely off-lock.
  if (budget.cancelled() || budget.deadline_expired()) {
    MutexLock lock(&mu_);
    AbandonMergeLocked();
    return;
  }
  std::shared_ptr<const DynComponent> merged;
  if (!gathered.empty()) {
    std::vector<TransactionId> gids;
    gids.reserve(gathered.size());
    TransactionDatabase rows(static_cast<uint32_t>(universe_size_));
    for (const GatheredRow& row : gathered) {
      gids.push_back(row.gid);
      rows.Add(*row.txn);
    }
    merged = DynComponent::Create(plan.out_level, std::move(gids),
                                  std::move(rows), options_.build);
  }

  // Phase 3: publish. A cancellation here still abandons — the built
  // component is simply dropped; victims remain authoritative.
  std::optional<MergePlan> cascade;
  {
    MutexLock lock(&mu_);
    if (budget.cancelled()) {
      AbandonMergeLocked();
      return;
    }
    cascade = PublishMergeLocked(plan, std::move(merged), applied);
  }
  if (cascade.has_value()) SubmitMerge(std::move(*cascade));
}

std::optional<DynamicIndex::MergePlan> DynamicIndex::PublishMergeLocked(
    const MergePlan& plan, std::shared_ptr<const DynComponent> merged,
    const std::vector<TransactionId>& applied) {
  auto is_victim = [&plan](const std::shared_ptr<const DynComponent>& c) {
    for (const auto& victim : plan.victims) {
      if (victim.get() == c.get()) return true;
    }
    return false;
  };
  size_t removed = 0;
  auto& components = state_.components;
  for (size_t i = 0; i < components.size();) {
    if (is_victim(components[i])) {
      components.erase(components.begin() + static_cast<ptrdiff_t>(i));
      ++removed;
    } else {
      ++i;
    }
  }
  MBI_CHECK(removed == plan.victims.size());
  if (merged != nullptr) components.push_back(std::move(merged));
  if (!applied.empty()) {
    auto remaining = std::make_shared<std::vector<TransactionId>>();
    const std::vector<TransactionId>& current = *state_.tombstones;
    std::set_difference(current.begin(), current.end(), applied.begin(),
                        applied.end(), std::back_inserter(*remaining));
    state_.tombstones = std::move(remaining);
  }
  merge_in_flight_ = false;
  if (metrics_.merges != nullptr) metrics_.merges->Increment();
  UpdateGaugesLocked();
  // Cascade: the merged run may overflow its destination level.
  return MaybeStartMergeLocked();
}

void DynamicIndex::AbandonMergeLocked() {
  merge_in_flight_ = false;
  if (metrics_.merges_abandoned != nullptr) {
    metrics_.merges_abandoned->Increment();
  }
}

Status DynamicIndex::Compact() {
  MergePlan plan;
  for (;;) {
    // Wait out any background merge so victim sets cannot overlap, then
    // re-check under the lock (a publish may have cascaded a new one).
    scheduler_.Drain();
    MutexLock lock(&mu_);
    if (merge_in_flight_) continue;
    if (state_.buffer->size() > 0) SpillLocked();
    if (state_.components.size() <= 1 && state_.tombstones->empty()) {
      return Status::Ok();  // Already fully compacted.
    }
    plan.victims = state_.components;
    plan.tombstones = state_.tombstones;
    int max_level = 0;
    for (const auto& component : state_.components) {
      max_level = std::max(max_level, component->level);
    }
    plan.out_level = max_level + 1;
    merge_in_flight_ = true;
    break;
  }
  // Unlimited budget: a compaction requested by the caller runs to
  // completion on the calling thread (never dropped by a stopping
  // scheduler — Compact is a foreground operation).
  RunMerge(plan, QueryBudget{});
  return Status::Ok();
}

void DynamicIndex::WaitForMaintenance() const { scheduler_.Drain(); }

// --- Queries ----------------------------------------------------------------

uint64_t DynamicIndex::QueryComponent(const DynComponent& component,
                                      const Transaction& target,
                                      const SimilarityFamily& family,
                                      size_t k_component,
                                      const SearchOptions& options,
                                      DynQueryContext* context) const {
  NearestNeighborResult* out = &context->component_result;
  if (component.quarantined) {
    component.scanner->FindKNearest(target, family, k_component,
                                    options.budget, out);
    out->stats.sequential_fallbacks = 1;
  } else {
    component.engine->FindKNearest(target, family, k_component, options,
                                   &context->context, out);
  }
  // Map component-local ids to global ids before the merge sees them.
  for (Neighbor& neighbor : out->neighbors) {
    neighbor.id = component.gids[neighbor.id];
  }
  return out->stats.entries_scanned;
}

void DynamicIndex::FindKNearest(const Transaction& target,
                                const SimilarityFamily& family, size_t k,
                                const SearchOptions& options,
                                DynQueryContext* context,
                                NearestNeighborResult* result) const {
  MBI_CHECK(k >= 1);
  State snapshot;
  {
    MutexLock lock(&mu_);
    snapshot = state_;
  }
  if (metrics_.queries != nullptr) metrics_.queries->Increment();

  // The tombstone vector must outlive the merge even if a concurrent delete
  // republishes state_.tombstones, so pin a copy in the context (reused
  // capacity; typically tiny).
  context->tombstone_snapshot.assign(snapshot.tombstones->begin(),
                                     snapshot.tombstones->end());
  context->merger.Reset(k, &context->tombstone_snapshot);

  const QueryBudget budget =
      QueryBudget::Tightest(options.budget, context->context.budget());
  family.RebindTarget(target, &context->similarity);
  const SimilarityFunction& similarity = *context->similarity;
  const double optimistic = PointwiseBound(similarity, target.size());

  // --- Buffer scan: exact, row units, chunked budget checks. ---
  context->packed.Assign(target, universe_size_);
  const size_t buffered = snapshot.buffer->size();
  uint64_t charged = 0;
  QueryStats buffer_stats;
  buffer_stats.database_size = buffered;
  buffer_stats.entries_total = buffered;
  if (buffered > 0) {
    size_t scanned = 0;
    bool expired = false;
    while (scanned < buffered) {
      // Min-one-chunk rule: the first chunk always scans; later chunks check
      // deadline/cancel/entry-cap first (DESIGN.md §13.4).
      if (scanned > 0 && budget.limited()) {
        if (budget.cancelled()) {
          buffer_stats.termination = QueryTermination::kCancelled;
          expired = true;
          break;
        }
        if (budget.deadline_expired()) {
          buffer_stats.termination = QueryTermination::kDeadline;
          expired = true;
          break;
        }
        if (scanned >= budget.max_entries) {
          buffer_stats.termination = QueryTermination::kEntryBudget;
          expired = true;
          break;
        }
      }
      const size_t end = std::min(buffered, scanned + kBufferScanChunk);
      for (; scanned < end; ++scanned) {
        const BufferedRow& row = snapshot.buffer->row(scanned);
        size_t match = 0;
        size_t hamming = 0;
        context->packed.MatchAndHamming(row.txn, &match, &hamming);
        context->merger.AddCandidate(
            row.gid, similarity.Evaluate(static_cast<int>(match),
                                         static_cast<int>(hamming)));
      }
    }
    buffer_stats.entries_scanned = scanned;
    buffer_stats.transactions_evaluated = scanned;
    buffer_stats.entries_unexplored = buffered - scanned;
    if (expired) {
      buffer_stats.is_exact = false;
      buffer_stats.certificate_bound = optimistic;
    }
    charged += scanned;
  }
  context->merger.AddStats(buffer_stats);

  // --- Component fan-out. ---
  // Each component is asked for k + |tombstones| so the merge stays sound
  // (KnnMerger invariants); the budget's entry cap is split across the
  // fan-out by charging each component's scan units as they accrue.
  const size_t k_component = k + context->tombstone_snapshot.size();
  for (const auto& component : snapshot.components) {
    QueryTermination skip_cause = QueryTermination::kCompleted;
    if (budget.cancelled()) {
      skip_cause = QueryTermination::kCancelled;
    } else if (budget.deadline_expired()) {
      skip_cause = QueryTermination::kDeadline;
    } else if (charged >= budget.max_entries) {
      skip_cause = QueryTermination::kEntryBudget;
    }
    if (skip_cause != QueryTermination::kCompleted && charged > 0) {
      // Budget exhausted mid-fanout: this component's rows are certified
      // unexplored under the pointwise bound (the min-one rule already ran
      // at least one probe somewhere).
      QueryStats skipped;
      skipped.database_size = component->size();
      skipped.entries_total = component->size();
      skipped.entries_unexplored = component->size();
      skipped.termination = skip_cause;
      skipped.is_exact = false;
      skipped.certificate_bound = optimistic;
      context->merger.AddStats(skipped);
      continue;
    }
    SearchOptions component_options = options;
    component_options.budget = budget;
    if (budget.max_entries != std::numeric_limits<uint64_t>::max()) {
      const uint64_t remaining =
          budget.max_entries > charged ? budget.max_entries - charged : 0;
      // The component's own min-one rule guarantees progress even at 0.
      component_options.budget.max_entries = remaining;
    }
    const size_t capped_k = std::min(k_component, component->size());
    charged += QueryComponent(*component, target, family,
                              std::max<size_t>(capped_k, 1),
                              component_options, context);
    context->merger.AddComponent(context->component_result);
  }

  context->merger.Finish(result);
}

NearestNeighborResult DynamicIndex::FindKNearest(
    const Transaction& target, const SimilarityFamily& family, size_t k,
    const SearchOptions& options) const {
  DynQueryContext context;
  NearestNeighborResult result;
  FindKNearest(target, family, k, options, &context, &result);
  return result;
}

void DynamicIndex::FindKNearestBatch(
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    size_t k, const SearchOptions& options, size_t num_threads,
    ThreadPool* pool, DynBatchWorkspace* workspace,
    std::vector<NearestNeighborResult>* results) const {
  results->resize(targets.size());
  if (targets.empty()) return;

  size_t shards = pool != nullptr ? pool->num_threads()
                  : num_threads > 0
                      ? num_threads
                      : static_cast<size_t>(1);
  shards = std::min(shards, targets.size());
  while (workspace->contexts.size() < std::max<size_t>(shards, 1)) {
    workspace->contexts.emplace_back();
  }

  if (shards <= 1) {
    DynQueryContext& context = workspace->contexts.front();
    for (size_t i = 0; i < targets.size(); ++i) {
      FindKNearest(targets[i], family, k, options, &context, &(*results)[i]);
    }
    return;
  }

  // Same dynamic sharding as mbi::FindKNearestBatch: one context per shard,
  // an atomic cursor over targets, results written to disjoint slots.
  std::atomic<size_t> cursor{0};
  std::latch done(static_cast<ptrdiff_t>(shards));
  auto worker = [&, this](size_t shard) {
    DynQueryContext& context = workspace->contexts[shard];
    for (;;) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= targets.size()) break;
      FindKNearest(targets[i], family, k, options, &context, &(*results)[i]);
    }
    done.count_down();
  };
  if (pool != nullptr) {
    for (size_t shard = 0; shard < shards; ++shard) {
      pool->Submit([&worker, shard] { worker(shard); });
    }
    done.wait();
  } else {
    ThreadPool local(shards);
    for (size_t shard = 0; shard < shards; ++shard) {
      local.Submit([&worker, shard] { worker(shard); });
    }
    done.wait();
  }
}

// --- Introspection ----------------------------------------------------------

size_t DynamicIndex::live_size() const {
  MutexLock lock(&mu_);
  return live_rows_;
}

size_t DynamicIndex::num_components() const {
  MutexLock lock(&mu_);
  return state_.components.size();
}

size_t DynamicIndex::buffered_rows() const {
  MutexLock lock(&mu_);
  return state_.buffer->size();
}

size_t DynamicIndex::tombstone_count() const {
  MutexLock lock(&mu_);
  return state_.tombstones->size();
}

TransactionId DynamicIndex::next_gid() const {
  MutexLock lock(&mu_);
  return next_gid_;
}

std::vector<DynamicIndex::LevelInfo> DynamicIndex::LevelBreakdown() const {
  MutexLock lock(&mu_);
  std::vector<LevelInfo> breakdown;
  for (const auto& component : state_.components) {
    LevelInfo* info = nullptr;
    for (LevelInfo& existing : breakdown) {
      if (existing.level == component->level) {
        info = &existing;
        break;
      }
    }
    if (info == nullptr) {
      breakdown.push_back({component->level, 0, 0});
      info = &breakdown.back();
    }
    ++info->components;
    info->rows += component->size();
  }
  std::sort(breakdown.begin(), breakdown.end(),
            [](const LevelInfo& a, const LevelInfo& b) {
              return a.level < b.level;
            });
  return breakdown;
}

Status DynamicIndex::CheckInvariants() const {
  State snapshot;
  TransactionId next_gid;
  size_t live_rows;
  {
    MutexLock lock(&mu_);
    snapshot = state_;
    next_gid = next_gid_;
    live_rows = live_rows_;
  }
  std::vector<TransactionId> all_gids;
  for (const auto& component : snapshot.components) {
    if (component->gids.size() != component->rows.size()) {
      return Status::Corruption("component gid map size mismatch");
    }
    if (!std::is_sorted(component->gids.begin(), component->gids.end())) {
      return Status::Corruption("component gids not sorted");
    }
    if (!component->quarantined && !component->table.has_value()) {
      return Status::Corruption("healthy component without a table");
    }
    all_gids.insert(all_gids.end(), component->gids.begin(),
                    component->gids.end());
  }
  const size_t buffered = snapshot.buffer->size();
  for (size_t i = 0; i < buffered; ++i) {
    all_gids.push_back(snapshot.buffer->row(i).gid);
  }
  std::sort(all_gids.begin(), all_gids.end());
  if (std::adjacent_find(all_gids.begin(), all_gids.end()) !=
      all_gids.end()) {
    return Status::Corruption("gid owned by more than one component");
  }
  if (!all_gids.empty() && all_gids.back() >= next_gid) {
    return Status::Corruption("gid beyond the allocation watermark");
  }
  const std::vector<TransactionId>& tombstones = *snapshot.tombstones;
  if (!std::is_sorted(tombstones.begin(), tombstones.end())) {
    return Status::Corruption("tombstones not sorted");
  }
  for (const TransactionId gid : tombstones) {
    if (!std::binary_search(all_gids.begin(), all_gids.end(), gid)) {
      return Status::Corruption("tombstone references a purged row");
    }
  }
  if (all_gids.size() - tombstones.size() != live_rows) {
    return Status::Corruption("live-row accounting drifted");
  }
  return Status::Ok();
}

}  // namespace mbi
