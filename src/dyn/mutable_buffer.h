#ifndef MBI_DYN_MUTABLE_BUFFER_H_
#define MBI_DYN_MUTABLE_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "txn/transaction.h"
#include "util/macros.h"

namespace mbi {

/// One row absorbed by the write path before it reaches a static component:
/// the global id the row keeps for life, plus its items.
struct BufferedRow {
  TransactionId gid = kInvalidTransactionId;
  Transaction txn;
};

/// The Bentley–Saxe write buffer: a fixed-capacity append-only array of
/// rows, filled by the (externally serialized) write path and scanned
/// exactly by concurrent readers.
///
/// Concurrency contract — single writer, many readers, no locks on the read
/// side:
///
///  * `rows_` is sized to `capacity` at construction and NEVER reallocates,
///    so a reader's pointer into it stays valid for the buffer's lifetime.
///  * The writer fills slot `n` completely, then publishes it with
///    `size_.store(n + 1, release)`. Readers `acquire`-load `size()` once
///    and scan only that prefix: every row below the loaded size is fully
///    constructed (release/acquire pairing), rows at or above it are simply
///    not visible yet. There is no tearing window and nothing for TSan to
///    flag.
///  * Writers are serialized by the owning DynamicIndex's mutex; this class
///    does not defend against two concurrent Append calls.
///
/// A full buffer is never reset in place — DynamicIndex spills it into a
/// static component and swaps in a fresh buffer, while readers holding the
/// old snapshot keep scanning the (now immutable) old buffer.
class MutableBuffer {
 public:
  explicit MutableBuffer(size_t capacity) : rows_(capacity) {
    MBI_CHECK(capacity >= 1);
  }

  MutableBuffer(const MutableBuffer&) = delete;
  MutableBuffer& operator=(const MutableBuffer&) = delete;

  /// Appends a row. Returns false (and stores nothing) when full — the
  /// caller spills and retries against the fresh buffer.
  bool Append(TransactionId gid, Transaction txn) {
    const size_t n = size_.load(std::memory_order_relaxed);  // single writer
    if (n >= rows_.size()) return false;
    rows_[n].gid = gid;
    rows_[n].txn = std::move(txn);
    size_.store(n + 1, std::memory_order_release);
    return true;
  }

  /// Published row count. Readers scan rows [0, size()).
  size_t size() const { return size_.load(std::memory_order_acquire); }

  size_t capacity() const { return rows_.size(); }
  bool full() const { return size() >= rows_.size(); }

  /// Row `i`, which must be below a previously loaded size().
  const BufferedRow& row(size_t i) const { return rows_[i]; }

 private:
  std::vector<BufferedRow> rows_;
  std::atomic<size_t> size_{0};
};

}  // namespace mbi

#endif  // MBI_DYN_MUTABLE_BUFFER_H_
