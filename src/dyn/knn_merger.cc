#include "dyn/knn_merger.h"

#include <algorithm>

namespace mbi {

void KnnMerger::Reset(size_t k, const std::vector<TransactionId>* tombstones) {
  k_ = k;
  tombstones_ = tombstones;
  candidates_.clear();
  stats_ = QueryStats{};
}

bool KnnMerger::Tombstoned(TransactionId gid) const {
  if (tombstones_ == nullptr) return false;
  return std::binary_search(tombstones_->begin(), tombstones_->end(), gid);
}

void KnnMerger::AddComponent(const NearestNeighborResult& component) {
  for (const Neighbor& neighbor : component.neighbors) {
    if (Tombstoned(neighbor.id)) continue;
    candidates_.push_back(neighbor);
  }
  MergeQueryStats(component.stats, &stats_);
}

void KnnMerger::AddCandidate(TransactionId gid, double similarity) {
  if (Tombstoned(gid)) return;
  candidates_.push_back({gid, similarity});
}

void KnnMerger::AddStats(const QueryStats& stats) {
  MergeQueryStats(stats, &stats_);
}

void KnnMerger::Finish(NearestNeighborResult* result) {
  std::sort(candidates_.begin(), candidates_.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.id < b.id;
            });
  if (candidates_.size() > k_) candidates_.resize(k_);
  result->neighbors.assign(candidates_.begin(), candidates_.end());
  result->trace.clear();
  result->stats = stats_;
  result->guaranteed_exact = stats_.is_exact;
  result->unexplored_optimistic_bound = stats_.certificate_bound;
  result->best_unscanned_bound = stats_.certificate_bound;
}

}  // namespace mbi
