#ifndef MBI_DYN_DYN_IO_H_
#define MBI_DYN_DYN_IO_H_

#include <memory>
#include <string>

#include "dyn/dynamic_index.h"
#include "storage/env.h"
#include "util/status.h"

namespace mbi {

/// Persistence for the dynamized index, sharded so durability damage
/// degrades one level, not the engine (DESIGN.md §13.5).
///
/// Env has no directory primitives, so an index is a *path-prefix family*:
///
///   <prefix>            manifest (v2 container, magic "MBDX"): universe,
///                       gid watermark, tombstones, per-component level +
///                       gid map, and the buffered rows verbatim
///   <prefix>.c<i>.rows  component i's rows   (SaveDatabase, "MBID")
///   <prefix>.c<i>.table component i's table  (SaveSignatureTable, "MBST")
///
/// Every artifact commits via write-temp → fsync → atomic-rename, and the
/// manifest is written LAST, so a crash mid-save leaves the old manifest
/// pointing at the old family (component files are content-complete before
/// the manifest names them; orphaned .c files from a wider old family are
/// best-effort removed after commit).
///
/// Load policy — rows are the source of truth, tables are derived:
///   * manifest or any .rows file corrupt → the load FAILS (kCorruption);
///   * a .table file corrupt/missing → that component alone is QUARANTINED
///     (exact sequential scan, no pruning) and the next merge that consumes
///     it rebuilds the table, clearing the quarantine.
struct DynIo {
  /// Persists a consistent snapshot of `index` under `prefix`. Safe to call
  /// while queries run; concurrent writes land in the snapshot or don't,
  /// atomically.
  [[nodiscard]] static Status Save(const DynamicIndex& index,
                                   const std::string& prefix,
                                   Env* env = Env::Default());

  /// Restores an index saved under `prefix`. `options` is NOT serialized —
  /// the caller configures build/pool/metrics anew; a smaller
  /// buffer_capacity than at save time spills the excess on load.
  [[nodiscard]] static StatusOr<std::unique_ptr<DynamicIndex>> Load(
      const std::string& prefix, const DynamicIndexOptions& options = {},
      Env* env = Env::Default());

  /// Path helpers (exposed for tests that corrupt individual shards).
  static std::string RowsPath(const std::string& prefix, size_t i);
  static std::string TablePath(const std::string& prefix, size_t i);
};

}  // namespace mbi

#endif  // MBI_DYN_DYN_IO_H_
