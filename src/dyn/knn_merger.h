#ifndef MBI_DYN_KNN_MERGER_H_
#define MBI_DYN_KNN_MERGER_H_

#include <cstddef>
#include <vector>

#include "core/branch_and_bound.h"
#include "core/query_stats.h"
#include "txn/transaction.h"

namespace mbi {

/// Combines per-component top-k results into one answer under the paper's
/// optimistic-bound semantics (DESIGN.md §13.3). Reusable: one merger per
/// DynQueryContext, Reset() per query, scratch vectors keep their capacity.
///
/// Soundness of the merge (the invariants dyn_differential_test gates):
///
///  * Every component is asked for k' = k + |tombstones| neighbors, so even
///    if every tombstoned row of a component lands in its top-k', at least
///    k live candidates survive — no live global top-k row can hide below a
///    component's cutoff.
///  * `certificate_bound` merges as MAX over components (MergeQueryStats):
///    the combined bound must dominate every component's unexplored region;
///    last-writer or sum would be unsound.
///  * `is_exact` merges as AND; `termination` as most-severe.
///  * Global ids are unique across components (a row lives in exactly one
///    component or the buffer), so dedup reduces to dropping tombstoned
///    gids — which this merger does, making deletes invisible to callers.
///  * Cutoff ties: the final sort is (similarity desc, gid asc), so the
///    *merge* is deterministic; within a component the usual caveat stands
///    (NearestNeighborResult::neighbors) — tie-group ids at a component's
///    k'-th similarity are unspecified, values are exact.
class KnnMerger {
 public:
  /// Starts a new merge for a top-`k` query over `tombstones` (borrowed,
  /// sorted ascending; must outlive the merge).
  void Reset(size_t k, const std::vector<TransactionId>* tombstones);

  /// Folds one component's result. Neighbor ids must already be GLOBAL.
  void AddComponent(const NearestNeighborResult& component);

  /// Folds one scored candidate (the buffer scan path). Tombstoned gids are
  /// dropped here like everywhere else.
  void AddCandidate(TransactionId gid, double similarity);

  /// Folds stats only — for the buffer scan (whose candidates arrive via
  /// AddCandidate) and for components that were *skipped* under an
  /// exhausted budget: a skipped component's rows count as unexplored and
  /// its best-possible score must still be dominated by the certificate.
  void AddStats(const QueryStats& stats);

  /// Sorts, truncates to k, and fills `*result` (neighbors + merged stats +
  /// certificate fields). The merger can be Reset() and reused afterwards.
  void Finish(NearestNeighborResult* result);

  /// Rows folded so far that survived the tombstone filter (for tests).
  size_t candidate_count() const { return candidates_.size(); }

 private:
  bool Tombstoned(TransactionId gid) const;

  size_t k_ = 0;
  const std::vector<TransactionId>* tombstones_ = nullptr;
  std::vector<Neighbor> candidates_;
  QueryStats stats_;
};

}  // namespace mbi

#endif  // MBI_DYN_KNN_MERGER_H_
