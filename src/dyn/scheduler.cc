#include "dyn/scheduler.h"

#include <utility>

namespace mbi {

Scheduler::Scheduler(ThreadPool* pool, double job_deadline_ms)
    : pool_(pool), job_deadline_ms_(job_deadline_ms) {}

Scheduler::~Scheduler() {
  RequestStop();
  Drain();
}

bool Scheduler::Submit(std::function<void(const QueryBudget&)> job) {
  if (stopping()) return false;
  {
    MutexLock lock(&mu_);
    ++in_flight_;
  }
  if (pool_ == nullptr) {
    Run(job);
    return true;
  }
  // The closure copies the job; `this` must outlive the pool's queue, which
  // the destructor's RequestStop + Drain guarantees.
  pool_->Submit([this, job = std::move(job)] { Run(job); });
  return true;
}

void Scheduler::Run(const std::function<void(const QueryBudget&)>& job) {
  QueryBudget budget;
  if (job_deadline_ms_ != std::numeric_limits<double>::infinity()) {
    budget = QueryBudget::WithDeadlineAfterMs(job_deadline_ms_);
  }
  budget.cancel = &cancel_;
  // A stop requested between Submit and Run still counts as "ran": the job
  // itself polls budget.cancelled() at its first phase boundary and exits.
  job(budget);
  Finish();
}

void Scheduler::Finish() {
  MutexLock lock(&mu_);
  if (--in_flight_ == 0) idle_.NotifyAll();
}

void Scheduler::Drain() {
  MutexLock lock(&mu_);
  while (in_flight_ > 0) idle_.Wait(&mu_);
}

void Scheduler::RequestStop() {
  cancel_.store(true, std::memory_order_release);
}

size_t Scheduler::in_flight() const {
  MutexLock lock(&mu_);
  return in_flight_;
}

}  // namespace mbi
