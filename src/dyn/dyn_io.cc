#include "dyn/dyn_io.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "core/table_io.h"
#include "storage/format.h"
#include "txn/database_io.h"
#include "util/macros.h"

namespace mbi {

namespace {

// Manifest section ids. One kSectionComponent per component, in the same
// order as the .c<i> shard files; kSectionBuffer last.
constexpr uint32_t kSectionMeta = 1;
constexpr uint32_t kSectionTombstones = 2;
constexpr uint32_t kSectionComponent = 3;
constexpr uint32_t kSectionBuffer = 4;

// A manifest claiming more components/rows than this is corrupt, not big.
constexpr uint64_t kMaxComponents = 1u << 20;
constexpr uint64_t kMaxRows = 1u << 28;

/// Removes `.c<i>` shards at indices >= `first` left over from a previous,
/// wider save. Best-effort: failures leave garbage files, never a bad index
/// (the manifest no longer names them).
void RemoveOrphanShards(Env* env, const std::string& prefix, size_t first) {
  for (size_t i = first;; ++i) {
    bool any = false;
    const std::string rows = DynIo::RowsPath(prefix, i);
    const std::string table = DynIo::TablePath(prefix, i);
    if (env->FileExists(rows)) {
      env->RemoveFile(rows).IgnoreError();
      any = true;
    }
    if (env->FileExists(table)) {
      env->RemoveFile(table).IgnoreError();
      any = true;
    }
    if (!any) return;
  }
}

}  // namespace

std::string DynIo::RowsPath(const std::string& prefix, size_t i) {
  return prefix + ".c" + std::to_string(i) + ".rows";
}

std::string DynIo::TablePath(const std::string& prefix, size_t i) {
  return prefix + ".c" + std::to_string(i) + ".table";
}

Status DynIo::Save(const DynamicIndex& index, const std::string& prefix,
                   Env* env) {
  // One consistent snapshot; everything below works off immutable state.
  DynamicIndex::State snapshot;
  TransactionId next_gid;
  {
    MutexLock lock(&index.mu_);
    snapshot = index.state_;
    next_gid = index.next_gid_;
  }

  // Shards first, manifest last: the manifest is the commit point.
  for (size_t i = 0; i < snapshot.components.size(); ++i) {
    const DynComponent& component = *snapshot.components[i];
    MBI_RETURN_IF_ERROR(SaveDatabase(component.rows, RowsPath(prefix, i), env));
    if (!component.quarantined) {
      MBI_RETURN_IF_ERROR(
          SaveSignatureTable(*component.table, TablePath(prefix, i), env));
    } else if (env->FileExists(TablePath(prefix, i))) {
      // A stale table from an older family must not be re-adopted for this
      // component's rows on load.
      env->RemoveFile(TablePath(prefix, i)).IgnoreError();
    }
  }

  ArtifactWriter writer(env, prefix, kDynIndexMagic);
  MBI_RETURN_IF_ERROR(writer.Open());

  writer.BeginSection(kSectionMeta);
  writer.PutU32(static_cast<uint32_t>(index.universe_size()));
  writer.PutU64(next_gid);
  writer.PutU64(snapshot.components.size());
  MBI_RETURN_IF_ERROR(writer.EndSection());

  writer.BeginSection(kSectionTombstones);
  writer.PutU32Span(snapshot.tombstones->data(), snapshot.tombstones->size());
  MBI_RETURN_IF_ERROR(writer.EndSection());

  for (const auto& component : snapshot.components) {
    writer.BeginSection(kSectionComponent);
    writer.PutU32(static_cast<uint32_t>(component->level));
    writer.PutU32Span(component->gids.data(), component->gids.size());
    MBI_RETURN_IF_ERROR(writer.EndSection());
  }

  // Buffered rows ride in the manifest verbatim: the buffer is small by
  // construction and gets no derived artifacts.
  const MutableBuffer& buffer = *snapshot.buffer;
  const size_t buffered = buffer.size();
  writer.BeginSection(kSectionBuffer);
  writer.PutU64(buffered);
  for (size_t i = 0; i < buffered; ++i) {
    const BufferedRow& row = buffer.row(i);
    writer.PutU32(row.gid);
    writer.PutU32Span(row.txn.items().data(), row.txn.items().size());
  }
  MBI_RETURN_IF_ERROR(writer.EndSection());

  MBI_RETURN_IF_ERROR(writer.Commit());
  RemoveOrphanShards(env, prefix, snapshot.components.size());
  return Status::Ok();
}

StatusOr<std::unique_ptr<DynamicIndex>> DynIo::Load(
    const std::string& prefix, const DynamicIndexOptions& options, Env* env) {
  MBI_ASSIGN_OR_RETURN(ArtifactReader reader,
                       ArtifactReader::Open(env, prefix, kDynIndexMagic));

  MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> meta,
                       reader.ReadSection(kSectionMeta, "dyn meta"));
  uint32_t universe = 0;
  uint64_t next_gid = 0;
  uint64_t num_components = 0;
  {
    SectionParser parser(meta, prefix + " dyn meta");
    MBI_RETURN_IF_ERROR(parser.ReadU32(&universe));
    MBI_RETURN_IF_ERROR(parser.ReadU64(&next_gid));
    MBI_RETURN_IF_ERROR(parser.ReadU64(&num_components));
    MBI_RETURN_IF_ERROR(parser.ExpectConsumed());
  }
  if (universe == 0 || num_components > kMaxComponents) {
    return Status::Corruption(prefix + ": implausible dyn meta");
  }

  MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> tombstone_payload,
                       reader.ReadSection(kSectionTombstones, "tombstones"));
  std::vector<TransactionId> tombstones;
  {
    SectionParser parser(tombstone_payload, prefix + " tombstones");
    MBI_RETURN_IF_ERROR(parser.ReadU32Vector(kMaxRows, &tombstones));
    MBI_RETURN_IF_ERROR(parser.ExpectConsumed());
  }

  auto index = std::make_unique<DynamicIndex>(universe, options);

  struct LoadedComponent {
    int level = 0;
    std::vector<TransactionId> gids;
  };
  std::vector<LoadedComponent> manifests;
  manifests.reserve(num_components);
  for (uint64_t i = 0; i < num_components; ++i) {
    MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                         reader.ReadSection(kSectionComponent, "component"));
    SectionParser parser(payload, prefix + " component");
    uint32_t level = 0;
    LoadedComponent loaded;
    MBI_RETURN_IF_ERROR(parser.ReadU32(&level));
    MBI_RETURN_IF_ERROR(parser.ReadU32Vector(kMaxRows, &loaded.gids));
    MBI_RETURN_IF_ERROR(parser.ExpectConsumed());
    loaded.level = static_cast<int>(level);
    manifests.push_back(std::move(loaded));
  }

  MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> buffer_payload,
                       reader.ReadSection(kSectionBuffer, "buffer"));
  MBI_RETURN_IF_ERROR(reader.ExpectEnd());

  // Shards. Rows are the source of truth: any rows failure fails the load.
  // A table failure quarantines that one component (exact scan, no pruning).
  for (size_t i = 0; i < manifests.size(); ++i) {
    MBI_ASSIGN_OR_RETURN(TransactionDatabase rows,
                         LoadDatabase(RowsPath(prefix, i), env));
    LoadedComponent& manifest = manifests[i];
    if (rows.size() != manifest.gids.size() ||
        rows.universe_size() != universe ||
        !std::is_sorted(manifest.gids.begin(), manifest.gids.end())) {
      return Status::Corruption(RowsPath(prefix, i) +
                                ": rows disagree with the dyn manifest");
    }
    std::optional<SignatureTable> table;
    StatusOr<SignatureTable> loaded_table =
        LoadSignatureTable(TablePath(prefix, i), rows, env);
    if (loaded_table.ok()) table.emplace(std::move(loaded_table).value());
    MutexLock lock(&index->mu_);
    index->state_.components.push_back(DynComponent::CreateFromLoaded(
        manifest.level, std::move(manifest.gids), std::move(rows),
        std::move(table)));
  }

  std::optional<DynamicIndex::MergePlan> plan;
  {
    MutexLock lock(&index->mu_);
    index->state_.tombstones =
        std::make_shared<const std::vector<TransactionId>>(
            std::move(tombstones));
    index->next_gid_ = static_cast<TransactionId>(next_gid);

    // Replay buffered rows under their original gids; a smaller configured
    // buffer capacity spills the overflow into fresh level-0 components.
    SectionParser parser(buffer_payload, prefix + " buffer");
    uint64_t buffered = 0;
    MBI_RETURN_IF_ERROR(parser.ReadU64(&buffered));
    if (buffered > kMaxRows) {
      return Status::Corruption(prefix + ": implausible buffer row count");
    }
    std::vector<uint32_t> items;
    for (uint64_t i = 0; i < buffered; ++i) {
      uint32_t gid = 0;
      MBI_RETURN_IF_ERROR(parser.ReadU32(&gid));
      MBI_RETURN_IF_ERROR(parser.ReadU32Vector(universe, &items));
      MBI_RETURN_IF_ERROR(
          index->AppendRowLocked(gid, Transaction(std::move(items))));
      items.clear();
    }
    MBI_RETURN_IF_ERROR(parser.ExpectConsumed());

    // live_rows_ was bumped per buffer replay only; rebuild it from scratch
    // (AppendRowLocked's spill already purged buffer-row tombstones).
    size_t total = index->state_.buffer->size();
    for (const auto& component : index->state_.components) {
      total += component->size();
    }
    index->live_rows_ = total - index->state_.tombstones->size();
    index->UpdateGaugesLocked();
    plan = index->MaybeStartMergeLocked();
  }
  if (plan.has_value()) index->SubmitMerge(std::move(*plan));

  MBI_RETURN_IF_ERROR(index->CheckInvariants());
  return index;
}

}  // namespace mbi
