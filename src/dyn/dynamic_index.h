#ifndef MBI_DYN_DYNAMIC_INDEX_H_
#define MBI_DYN_DYNAMIC_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "baseline/sequential_scan.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "core/query_context.h"
#include "core/signature_table.h"
#include "dyn/knn_merger.h"
#include "dyn/mutable_buffer.h"
#include "dyn/scheduler.h"
#include "txn/candidate_layout.h"
#include "txn/database.h"
#include "txn/packed_target.h"
#include "txn/transaction.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mbi {

/// One immutable run of the dynamized index: a static signature table over a
/// frozen set of rows, plus the local→global id map. Published as
/// shared_ptr<const DynComponent>; queries pin a component with a snapshot
/// and never observe it change, so level reconstructions need no read locks.
///
/// A component whose persisted table failed verification on load is
/// *quarantined*: its rows (the source of truth) are intact and it answers
/// queries exactly via SequentialScanner, just without pruning — durability
/// damage degrades one level, not the engine (DESIGN.md §13.5). The next
/// merge that consumes the component rebuilds its table and clears the
/// quarantine naturally.
struct DynComponent {
  /// TransactionDatabase has no default state; Create/CreateFromLoaded are
  /// the real constructors.
  explicit DynComponent(TransactionDatabase r) : rows(std::move(r)) {}

  /// Bentley–Saxe level. Level 0 holds fresh buffer spills; a merge of
  /// level-L components publishes at level L+1.
  int level = 0;

  /// Global transaction ids, ascending. Local row i of `rows` is global row
  /// gids[i]; components partition the live gid space (plus tombstoned rows
  /// not yet purged by a merge).
  std::vector<TransactionId> gids;

  /// The component's rows under *local* ids [0, rows.size()).
  TransactionDatabase rows;

  CandidateLayout layout;
  std::optional<SignatureTable> table;

  /// True when `table` could not be built/loaded soundly; queries fall back
  /// to `scanner` (exact, unpruned) for this component only.
  bool quarantined = false;

  /// Engines borrow rows/table/layout, so they are emplaced last and the
  /// component must never be moved after Create() — hence shared_ptr<const>.
  std::optional<BranchAndBoundEngine> engine;
  std::optional<SequentialScanner> scanner;

  /// Builds a component from `(gid, row)` pairs sorted by gid: runs the full
  /// mining/clustering pass (BuildIndex) so signatures track the merged
  /// rows' correlation structure, then wires layout/engine/scanner. With
  /// `quarantine` set, skips the table build (load path for damaged tables).
  static std::shared_ptr<const DynComponent> Create(
      int level, std::vector<TransactionId> gids, TransactionDatabase rows,
      const IndexBuildConfig& build, bool quarantine = false);

  /// Load path: adopts an already-persisted table instead of re-mining;
  /// nullopt means the table shard was damaged → quarantined component.
  static std::shared_ptr<const DynComponent> CreateFromLoaded(
      int level, std::vector<TransactionId> gids, TransactionDatabase rows,
      std::optional<SignatureTable> table);

  size_t size() const { return rows.size(); }
};

/// Reusable per-query workspace for DynamicIndex::FindKNearest — the dyn
/// analogue of QueryContext (one per concurrent query; steady state
/// allocates nothing beyond result growth).
struct DynQueryContext {
  QueryContext context;
  NearestNeighborResult component_result;
  KnnMerger merger;
  PackedTarget packed;
  std::unique_ptr<SimilarityFunction> similarity;
  std::vector<TransactionId> tombstone_snapshot;
};

/// Per-batch workspace: per-shard contexts and results live here so repeated
/// batches through a warm workspace reuse every buffer (deque: growth never
/// moves an in-use context).
struct DynBatchWorkspace {
  std::deque<DynQueryContext> contexts;
};

struct DynamicIndexOptions {
  /// Rows the mutable buffer absorbs before spilling into a level-0
  /// component.
  size_t buffer_capacity = 256;

  /// Components a level may hold before they all merge one level up.
  /// Geometric by count: level L holds runs of roughly
  /// buffer_capacity * fanout^L rows.
  size_t level_fanout = 4;

  /// Admission control: when the buffer is full, a merge is already in
  /// flight, and level 0 holds this many components, Insert returns
  /// kUnavailable with a retry_after_ms hint instead of letting level 0 grow
  /// without bound.
  size_t max_l0_components = 8;

  /// Mining/clustering/table configuration re-run on every spill and merge.
  IndexBuildConfig build;

  /// Hint attached to backpressure kUnavailable statuses (util/retry parses
  /// it; the clamped-to-deadline sleep is tested in status_test.cc).
  double admission_retry_after_ms = 5.0;

  /// Budget for one background reconstruction; on expiry the merge is
  /// abandoned (victims stay queryable) and counted, never half-published.
  double merge_deadline_ms = std::numeric_limits<double>::infinity();

  /// Pool for background merges; null runs every reconstruction inline on
  /// the inserting thread (deterministic, still correct).
  ThreadPool* pool = nullptr;

  /// Optional sink for mbi.dyn.* metrics.
  MetricsRegistry* metrics = nullptr;
};

/// Bentley–Saxe dynamization of the paper's static signature-table index
/// (DESIGN.md §13).
///
/// Writes land in a MutableBuffer (exact scan path); a full buffer spills
/// into a level-0 static component built by the same mining/clustering pass
/// as the offline index. When a level accumulates `level_fanout` components
/// they merge — re-mining the union so signatures track correlation drift —
/// into one component a level up, on a background Scheduler off the query
/// path. Deletes are tombstones, filtered at query time and purged by the
/// first merge that consumes the row.
///
/// Queries fan out across buffer + every component and merge under the
/// paper's optimistic-bound semantics (KnnMerger): values and cutoff-tie
/// behaviour are bit-identical to one SequentialScanner over the live union
/// (dyn_differential_test gates this), certificates merge as max, and a
/// budget that expires mid-fanout skips remaining components with their rows
/// certified unexplored.
///
/// Thread safety: any number of concurrent readers (each with its own
/// DynQueryContext) against one writer; Insert/Delete/Compact serialize on
/// the internal mutex. Reads copy a snapshot under the mutex and run
/// lock-free afterwards.
class DynamicIndex {
 public:
  explicit DynamicIndex(size_t universe_size,
                        const DynamicIndexOptions& options = {});
  ~DynamicIndex();

  DynamicIndex(const DynamicIndex&) = delete;
  DynamicIndex& operator=(const DynamicIndex&) = delete;

  /// Absorbs one row; returns its global id. Fails kUnavailable (with a
  /// retry_after_ms hint) under backpressure — see
  /// DynamicIndexOptions::max_l0_components.
  StatusOr<TransactionId> Insert(const Transaction& txn);

  /// Tombstones a live row. kNotFound when `gid` was never assigned, is
  /// already deleted, or was purged by a merge after deletion.
  Status Delete(TransactionId gid);

  /// Top-k across buffer + all components, deletes applied. `k >= 1`.
  /// Budget semantics: SearchOptions::budget (merged tightest-wins with the
  /// context's session budget) spans the *whole* fan-out — max_entries is
  /// charged across components in each path's scan unit (DESIGN.md §13.4)
  /// and the first probe always runs (min-one rule); components skipped on
  /// an exhausted budget are folded into the certificate as unexplored.
  void FindKNearest(const Transaction& target, const SimilarityFamily& family,
                    size_t k, const SearchOptions& options,
                    DynQueryContext* context,
                    NearestNeighborResult* result) const;

  /// Convenience allocating form.
  NearestNeighborResult FindKNearest(const Transaction& target,
                                     const SimilarityFamily& family, size_t k,
                                     const SearchOptions& options = {}) const;

  /// Batch fan-out sharded over `pool` (or `num_threads` internal threads;
  /// both 0/null → serial). Mirrors mbi::FindKNearestBatch: results are
  /// bit-identical to the serial loop regardless of sharding.
  void FindKNearestBatch(const std::vector<Transaction>& targets,
                         const SimilarityFamily& family, size_t k,
                         const SearchOptions& options, size_t num_threads,
                         ThreadPool* pool, DynBatchWorkspace* workspace,
                         std::vector<NearestNeighborResult>* results) const;

  /// Merges everything (buffer + all levels) into a single component on the
  /// calling thread and purges all applied tombstones. Concurrent queries
  /// keep answering throughout; concurrent inserts are admitted.
  Status Compact();

  /// Blocks until no background reconstruction is running.
  void WaitForMaintenance() const;

  /// Structural self-check (gid partition, tombstone validity, sorted
  /// invariants, live-row accounting). For tests and `mbi compact`.
  Status CheckInvariants() const;

  size_t universe_size() const { return universe_size_; }
  const DynamicIndexOptions& options() const { return options_; }

  /// Rows inserted and not deleted. (Tombstoned rows still occupy space in
  /// their component until a merge purges them.)
  size_t live_size() const;

  /// Published components, buffer fill, tombstone count — for tests, tools,
  /// and metrics.
  size_t num_components() const;
  size_t buffered_rows() const;
  size_t tombstone_count() const;
  TransactionId next_gid() const;

  struct LevelInfo {
    int level = 0;
    size_t components = 0;
    size_t rows = 0;
  };
  std::vector<LevelInfo> LevelBreakdown() const;

 private:
  friend struct DynIo;  // Persistence (dyn/dyn_io.h) rebuilds state directly.

  /// The queryable state, swapped atomically under mu_. Queries copy the
  /// shared_ptrs and drop the lock; old buffers/components/tombstone vectors
  /// stay alive for as long as any in-flight query pins them.
  struct State {
    /// Non-const only for the Append path (serialized under mu_); query
    /// snapshots touch const methods exclusively.
    std::shared_ptr<MutableBuffer> buffer;
    std::vector<std::shared_ptr<const DynComponent>> components;
    std::shared_ptr<const std::vector<TransactionId>> tombstones;
  };

  /// A planned reconstruction: consume `victims`, publish one component at
  /// `out_level`. Tombstones in `tombstones` (the snapshot at plan time)
  /// that hit a victim row are applied (row dropped) and purged at publish.
  struct MergePlan {
    std::vector<std::shared_ptr<const DynComponent>> victims;
    std::shared_ptr<const std::vector<TransactionId>> tombstones;
    int out_level = 0;
  };

  Status AppendRowLocked(TransactionId gid, const Transaction& txn)
      MBI_REQUIRES(mu_);
  /// Freezes the buffer into a level-0 component (dropping tombstoned rows,
  /// purging their tombstones) and installs a fresh buffer.
  void SpillLocked() MBI_REQUIRES(mu_);
  /// Claims the lowest overflowing level's merge (setting merge_in_flight_)
  /// and returns its plan, or nullopt when nothing overflows or a merge is
  /// already running. The caller MUST release mu_ and pass the plan to
  /// SubmitMerge — submitting under mu_ deadlocks the inline (null-pool)
  /// scheduler, whose job re-acquires mu_ to publish.
  std::optional<MergePlan> MaybeStartMergeLocked() MBI_REQUIRES(mu_);
  /// Hands a claimed plan to the scheduler; unwinds merge_in_flight_ if the
  /// scheduler is stopping. Must be called WITHOUT mu_ held.
  void SubmitMerge(MergePlan plan);
  size_t CountAtLevelLocked(int level) const
      MBI_REQUIRES(mu_);
  /// The three-phase background job: gather (drop tombstoned victims' rows),
  /// build (re-mine the union), publish. Polls `budget` between phases and
  /// abandons — leaving victims queryable — on expiry or cancellation.
  void RunMerge(const MergePlan& plan, const QueryBudget& budget);
  /// Swaps victims for the merged run, purges applied tombstones, and
  /// returns the cascade plan when the destination level now overflows.
  std::optional<MergePlan> PublishMergeLocked(
      const MergePlan& plan, std::shared_ptr<const DynComponent> merged,
      const std::vector<TransactionId>& applied) MBI_REQUIRES(mu_);
  void AbandonMergeLocked() MBI_REQUIRES(mu_);
  void UpdateGaugesLocked() MBI_REQUIRES(mu_);

  /// One component's contribution to the fan-out. Returns entries charged
  /// (in the component path's unit) so the caller can split max_entries.
  uint64_t QueryComponent(const DynComponent& component,
                          const Transaction& target,
                          const SimilarityFamily& family, size_t k_component,
                          const SearchOptions& options,
                          DynQueryContext* context) const;

  const size_t universe_size_;
  const DynamicIndexOptions options_;

  mutable Mutex mu_;
  State state_ MBI_GUARDED_BY(mu_);
  TransactionId next_gid_ MBI_GUARDED_BY(mu_) = 0;
  size_t live_rows_ MBI_GUARDED_BY(mu_) = 0;
  bool merge_in_flight_ MBI_GUARDED_BY(mu_) = false;

  mutable Scheduler scheduler_;

  struct Metrics {
    Counter* inserts = nullptr;
    Counter* deletes = nullptr;
    Counter* spills = nullptr;
    Counter* merges = nullptr;
    Counter* merges_abandoned = nullptr;
    Counter* backpressure = nullptr;
    Counter* queries = nullptr;
    Gauge* components = nullptr;
    Gauge* tombstones = nullptr;
    Gauge* buffer_fill = nullptr;
    Gauge* live_rows = nullptr;
    LatencyHistogram* merge_latency = nullptr;
  };
  static Metrics MakeMetrics(MetricsRegistry* registry);

  // Immutable after construction; the Counter/Gauge/Histogram objects it
  // points at are internally synchronized, so no mu_ annotation is needed.
  const Metrics metrics_;
};

}  // namespace mbi

#endif  // MBI_DYN_DYNAMIC_INDEX_H_
