#ifndef MBI_DYN_SCHEDULER_H_
#define MBI_DYN_SCHEDULER_H_

#include <atomic>
#include <functional>
#include <limits>

#include "core/query_budget.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace mbi {

/// Runs index maintenance (level merges, compactions) off the query path.
///
/// A thin in-flight tracker over a borrowed ThreadPool: DynamicIndex submits
/// reconstruction jobs here instead of spawning threads (the no-raw-thread
/// rule — only ThreadPool owns threads). Each job receives a QueryBudget
/// carrying the scheduler's cancellation token (and an optional deadline),
/// and is expected to poll it between phases — gather, build, publish — so
/// shutdown and budget expiry abandon a merge instead of blocking it.
///
/// With a null pool, jobs run inline on the submitting thread (synchronous
/// mode: deterministic tests, no background concurrency).
class Scheduler {
 public:
  /// `pool` is borrowed and may be shared with query batches; null runs
  /// every job inline. `job_deadline_ms` bounds each job's budget (relative
  /// to submission; +inf = no deadline).
  explicit Scheduler(ThreadPool* pool,
                     double job_deadline_ms =
                         std::numeric_limits<double>::infinity());

  /// Stops (cancelling the budget of any running job) and drains.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Submits one maintenance job. After RequestStop(), jobs are dropped
  /// (the index is shutting down; pending work is abandoned by design) and
  /// Submit returns false so the caller can unwind its bookkeeping.
  bool Submit(std::function<void(const QueryBudget&)> job);

  /// Blocks until every submitted job has finished (or been dropped).
  void Drain();

  /// Flips the cancellation token: running jobs see budget.cancelled() at
  /// their next phase boundary, future Submits are dropped.
  void RequestStop();

  bool stopping() const { return cancel_.load(std::memory_order_acquire); }

  /// Jobs submitted but not yet finished.
  size_t in_flight() const;

 private:
  void Run(const std::function<void(const QueryBudget&)>& job);
  void Finish();

  ThreadPool* const pool_;
  const double job_deadline_ms_;
  std::atomic<bool> cancel_{false};

  mutable Mutex mu_;
  CondVar idle_;
  size_t in_flight_ MBI_GUARDED_BY(mu_) = 0;
};

}  // namespace mbi

#endif  // MBI_DYN_SCHEDULER_H_
