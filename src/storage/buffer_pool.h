#ifndef MBI_STORAGE_BUFFER_POOL_H_
#define MBI_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/page_store.h"

namespace mbi {

/// LRU buffer pool in front of a PageStore.
///
/// Queries that revisit pages (e.g., the inverted-index baseline fetching
/// scattered transactions) only pay a physical read on a miss; hits are
/// tallied as `pages_cached` in the ledger. The pool holds page ids, not page
/// copies — the underlying store is immutable once built, so a "cached" page
/// is simply served without charging physical I/O.
class BufferPool {
 public:
  /// `capacity_pages` of 0 disables caching (every read is physical).
  BufferPool(const PageStore* store, size_t capacity_pages);

  /// Reads a page through the cache, updating `stats` (miss: physical read;
  /// hit: pages_cached).
  const Page& Read(PageId page, IoStats* stats);

  /// Drops all cached pages.
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t cached_pages() const { return lookup_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  const PageStore* store_;
  size_t capacity_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;

  /// Most-recently-used at front.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> lookup_;
};

}  // namespace mbi

#endif  // MBI_STORAGE_BUFFER_POOL_H_
