#ifndef MBI_STORAGE_BUFFER_POOL_H_
#define MBI_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/page_store.h"

namespace mbi {

/// LRU buffer pool in front of a PageStore.
///
/// Queries that revisit pages (e.g., the inverted-index baseline fetching
/// scattered transactions) only pay a physical read on a miss; hits are
/// tallied as `pages_cached` in the ledger. The pool holds page ids, not page
/// copies — the underlying store is immutable once built, so a "cached" page
/// is simply served without charging physical I/O.
///
/// Pages can be *pinned* while a caller copies records out of them: a pinned
/// page is never evicted, so the reference stays valid even if interleaved
/// reads would otherwise push it off the LRU tail. Pins are counted, must be
/// balanced by `Unpin`, and `CheckInvariants()` verifies the balance — an
/// unbalanced pin is a leak that would eventually pin the whole pool.
class BufferPool {
 public:
  /// `capacity_pages` of 0 disables caching (every read is physical).
  BufferPool(const PageStore* store, size_t capacity_pages);

  /// Reads a page through the cache, updating `stats` (miss: physical read;
  /// hit: pages_cached).
  const Page& Read(PageId page, IoStats* stats);

  /// Enables hit/miss counters (mbi.bufferpool.*) in `registry`; nullptr
  /// disables. The hit ratio is derived from the two counters at export time.
  void set_metrics(MetricsRegistry* registry);

  /// Pins `page` so it cannot be evicted until every pin is released. The
  /// page must be cached (i.e. Pin must follow a Read of the same page while
  /// it is still resident); with caching disabled (capacity 0) pins are
  /// tracked but no eviction exists to prevent. Pins nest.
  void Pin(PageId page);

  /// Releases one pin on `page`; aborts if the page is not pinned.
  void Unpin(PageId page);

  /// Drops all cached pages. No page may be pinned.
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t cached_pages() const { return lookup_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  /// Outstanding pin count summed over all pages (0 when every Pin has been
  /// balanced by an Unpin).
  uint64_t total_pins() const { return total_pins_; }

  /// Aborts (via MBI_CHECK) unless the pool is internally consistent: the
  /// LRU list and the lookup map are a bijection, the unpinned resident
  /// pages fit in `capacity`, every pinned page is resident (when caching is
  /// enabled) with a positive pin count, and the pin total matches the
  /// per-page counts. O(cached pages).
  void CheckInvariants() const;

 private:
  const PageStore* store_;
  size_t capacity_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t total_pins_ = 0;
  Counter* hits_metric_ = nullptr;
  Counter* misses_metric_ = nullptr;

  /// Most-recently-used at front.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> lookup_;
  /// Outstanding pins per page; entries are erased when they reach zero.
  std::unordered_map<PageId, uint32_t> pins_;
};

/// RAII pin: holds one pin on a page for the guard's lifetime. Used by
/// readers that keep a `const Page&` across further pool traffic.
class PinGuard {
 public:
  PinGuard(BufferPool* pool, PageId page) : pool_(pool), page_(page) {
    pool_->Pin(page_);
  }
  ~PinGuard() { pool_->Unpin(page_); }

  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;

 private:
  BufferPool* pool_;
  PageId page_;
};

}  // namespace mbi

#endif  // MBI_STORAGE_BUFFER_POOL_H_
