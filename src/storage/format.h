#ifndef MBI_STORAGE_FORMAT_H_
#define MBI_STORAGE_FORMAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/status.h"

namespace mbi {

/// \file
/// The durable artifact container shared by every on-disk format (database,
/// partition, signature table, PageStore spill):
///
///   offset 0:  magic   u32   artifact type tag ("MBID"/"MBSP"/"MBST"/"MBPG")
///   offset 4:  version u32   container version (2 = this framed format)
///   then, repeated until end of file, length-prefixed sections:
///     id      u32   section tag, artifact-specific
///     length  u64   payload bytes
///     crc32c  u32   checksum of the payload (util/crc32c.h)
///     payload length bytes
///
/// Saves go through ArtifactWriter: write `path + ".tmp"`, Flush (fflush +
/// fsync), Close, atomic rename onto `path`. A crash or injected fault at
/// any write point leaves either the complete old artifact or the complete
/// new one — never a torn hybrid (tests/durability_test.cc walks every write
/// point and proves it).
///
/// Version 1 is the seed's unframed layout (magic + version, then raw
/// fields, no checksums). Readers still accept it: ArtifactReader hands the
/// remainder of a v1 file to the caller, which parses it with the same
/// bounds-checked SectionParser it uses for v2 payloads.

/// Artifact magics (also the dispatch key for `mbi verify`).
constexpr uint32_t kDatabaseMagic = 0x4D424944;   // "MBID"
constexpr uint32_t kPartitionMagic = 0x4D425350;  // "MBSP"
constexpr uint32_t kTableMagic = 0x4D425354;      // "MBST"
constexpr uint32_t kPageSpillMagic = 0x4D425047;  // "MBPG"
constexpr uint32_t kDynIndexMagic = 0x4D424458;   // "MBDX" (dyn manifest)

/// Container versions accepted by ArtifactReader.
constexpr uint32_t kFormatVersionLegacy = 1;
constexpr uint32_t kFormatVersionDurable = 2;

/// Streams one artifact to `path` via write-temp → flush → atomic-rename.
/// Sections are buffered in memory until EndSection, so each section costs
/// exactly two Env writes (16-byte header, then the payload) and its CRC is
/// computed over the final bytes.
///
/// Usage:
///   ArtifactWriter writer(env, path, kDatabaseMagic);
///   MBI_RETURN_IF_ERROR(writer.Open());
///   writer.BeginSection(kSectionMeta);
///   writer.PutU32(...); writer.PutU64(...);
///   MBI_RETURN_IF_ERROR(writer.EndSection());
///   ...more sections...
///   return writer.Commit();
///
/// On any failure (or if Commit is never reached) the destructor removes the
/// temp file; the previous artifact at `path` is untouched.
class ArtifactWriter {
 public:
  ArtifactWriter(Env* env, std::string path, uint32_t magic);
  ~ArtifactWriter();
  ArtifactWriter(const ArtifactWriter&) = delete;
  ArtifactWriter& operator=(const ArtifactWriter&) = delete;

  /// Creates the temp file and writes the magic + version header.
  Status Open();

  void BeginSection(uint32_t id);
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  void PutBytes(const void* data, size_t size);
  /// u64 count followed by `count` raw u32 values — the one repeated shape
  /// in every artifact (signature maps, page ids, coordinates).
  void PutU32Span(const uint32_t* values, size_t count);
  /// Writes the buffered section (header + payload) to the temp file.
  Status EndSection();

  /// Flush + fsync + close + rename onto the final path. After an OK Commit
  /// the artifact at `path` is the complete new version.
  Status Commit();

  const std::string& temp_path() const { return temp_path_; }

 private:
  Env* env_;
  std::string path_;
  std::string temp_path_;
  uint32_t magic_;
  std::unique_ptr<WritableFile> file_;
  uint32_t section_id_ = 0;
  bool in_section_ = false;
  bool committed_ = false;
  std::vector<uint8_t> section_;
  Status status_;  // Sticky: first failure wins, later calls are no-ops.
};

/// Bounds-checked cursor over one section payload (or, for legacy v1 files,
/// over the whole unframed body). Every overrun or over-long count is
/// kCorruption with `context` (artifact path + section name) in the message;
/// nothing here can read outside the buffer, which is what makes the
/// corruption fuzz tests' "never crash" guarantee hold.
class SectionParser {
 public:
  SectionParser(const std::vector<uint8_t>& payload, std::string context);

  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadBytes(void* out, size_t size);
  /// Reads a u64 count (rejected above `max_count`) then that many raw u32s.
  Status ReadU32Vector(uint64_t max_count, std::vector<uint32_t>* out);

  size_t remaining() const { return payload_->size() - position_; }
  /// kCorruption unless the payload was consumed exactly.
  Status ExpectConsumed() const;

 private:
  Status Overrun(size_t want) const;

  const std::vector<uint8_t>* payload_;
  size_t position_ = 0;
  std::string context_;
};

/// Reads an artifact header and iterates its sections. CRC mismatches,
/// framing overruns, and unexpected section ids all surface as kCorruption
/// naming the section; the `mbi verify` walk uses NextSection to report
/// per-section health instead of stopping at the first failure.
class ArtifactReader {
 public:
  /// Opens `path` and validates magic (unless `expected_magic` is 0, which
  /// accepts any known magic — used by `mbi verify`) and version.
  static StatusOr<ArtifactReader> Open(Env* env, const std::string& path,
                                       uint32_t expected_magic);

  ArtifactReader(ArtifactReader&&) = default;
  ArtifactReader& operator=(ArtifactReader&&) = default;

  uint32_t magic() const { return magic_; }
  uint32_t version() const { return version_; }
  uint64_t file_size() const { return file_size_; }
  uint64_t remaining() const { return file_size_ - consumed_; }
  const std::string& path() const { return path_; }

  struct RawSection {
    uint32_t id = 0;
    bool crc_ok = false;
    std::vector<uint8_t> payload;
  };

  /// Next section with its CRC verdict recorded (framing errors are still
  /// kCorruption — past a bad length field the stream is unwalkable).
  StatusOr<RawSection> NextSection();

  /// Next section, required to be `expected_id` with a valid CRC; `name`
  /// labels the section in error messages.
  StatusOr<std::vector<uint8_t>> ReadSection(uint32_t expected_id,
                                             const char* name);

  /// Everything after the header, for legacy v1 bodies.
  StatusOr<std::vector<uint8_t>> ReadRemainder();

  /// kCorruption if any bytes follow the last expected section.
  Status ExpectEnd() const;

 private:
  ArtifactReader(std::string path, std::unique_ptr<SequentialFile> file,
                 uint32_t magic, uint32_t version, uint64_t file_size);

  std::string path_;
  std::unique_ptr<SequentialFile> file_;
  uint32_t magic_;
  uint32_t version_;
  uint64_t file_size_;
  uint64_t consumed_;
};

}  // namespace mbi

#endif  // MBI_STORAGE_FORMAT_H_
