#include "storage/format.h"

#include <cstring>

#include "util/crc32c.h"
#include "util/macros.h"

namespace mbi {
namespace {

void AppendRaw(std::vector<uint8_t>* buffer, const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  buffer->insert(buffer->end(), bytes, bytes + size);
}

/// Hard cap against corrupt length fields allocating absurd buffers before
/// the CRC gets a chance to reject them.
constexpr uint64_t kMaxSectionBytes = 1ULL << 36;  // 64 GiB

}  // namespace

// --- ArtifactWriter ---

ArtifactWriter::ArtifactWriter(Env* env, std::string path, uint32_t magic)
    : env_(env),
      path_(std::move(path)),
      temp_path_(path_ + ".tmp"),
      magic_(magic) {}

ArtifactWriter::~ArtifactWriter() {
  if (file_ != nullptr) file_->Close().IgnoreError();
  if (!committed_ && env_->FileExists(temp_path_)) {
    env_->RemoveFile(temp_path_).IgnoreError();
  }
}

Status ArtifactWriter::Open() {
  MBI_CHECK_MSG(file_ == nullptr, "ArtifactWriter::Open called twice");
  MBI_ASSIGN_OR_RETURN(file_, env_->NewWritableFile(temp_path_));
  uint8_t header[8];
  std::memcpy(header, &magic_, 4);
  std::memcpy(header + 4, &kFormatVersionDurable, 4);
  status_ = file_->Append(header, sizeof(header));
  return status_;
}

void ArtifactWriter::BeginSection(uint32_t id) {
  MBI_CHECK_MSG(!in_section_, "BeginSection inside an open section");
  in_section_ = true;
  section_id_ = id;
  section_.clear();
}

void ArtifactWriter::PutU32(uint32_t value) {
  AppendRaw(&section_, &value, sizeof(value));
}

void ArtifactWriter::PutU64(uint64_t value) {
  AppendRaw(&section_, &value, sizeof(value));
}

void ArtifactWriter::PutBytes(const void* data, size_t size) {
  AppendRaw(&section_, data, size);
}

void ArtifactWriter::PutU32Span(const uint32_t* values, size_t count) {
  PutU64(count);
  if (count > 0) AppendRaw(&section_, values, count * sizeof(uint32_t));
}

Status ArtifactWriter::EndSection() {
  MBI_CHECK_MSG(in_section_, "EndSection without BeginSection");
  in_section_ = false;
  if (!status_.ok()) return status_;
  uint8_t header[16];
  const uint64_t length = section_.size();
  const uint32_t crc = Crc32c(section_.data(), section_.size());
  std::memcpy(header, &section_id_, 4);
  std::memcpy(header + 4, &length, 8);
  std::memcpy(header + 12, &crc, 4);
  status_ = file_->Append(header, sizeof(header));
  if (status_.ok() && !section_.empty()) {
    status_ = file_->Append(section_.data(), section_.size());
  }
  return status_;
}

Status ArtifactWriter::Commit() {
  MBI_CHECK_MSG(!in_section_, "Commit inside an open section");
  if (status_.ok()) status_ = file_->Flush();
  if (status_.ok()) status_ = file_->Close();
  if (status_.ok()) status_ = env_->RenameFile(temp_path_, path_);
  if (status_.ok()) {
    committed_ = true;
  } else {
    // Leave the previous artifact at path_ untouched; drop the partial temp.
    file_->Close().IgnoreError();
    if (env_->FileExists(temp_path_)) {
      env_->RemoveFile(temp_path_).IgnoreError();
    }
  }
  return status_;
}

// --- SectionParser ---

SectionParser::SectionParser(const std::vector<uint8_t>& payload,
                             std::string context)
    : payload_(&payload), context_(std::move(context)) {}

Status SectionParser::Overrun(size_t want) const {
  return Status::Corruption(context_ + ": truncated (need " +
                            std::to_string(want) + " bytes, have " +
                            std::to_string(remaining()) + ")");
}

Status SectionParser::ReadU32(uint32_t* out) {
  if (remaining() < sizeof(uint32_t)) return Overrun(sizeof(uint32_t));
  std::memcpy(out, payload_->data() + position_, sizeof(uint32_t));
  position_ += sizeof(uint32_t);
  return Status::Ok();
}

Status SectionParser::ReadU64(uint64_t* out) {
  if (remaining() < sizeof(uint64_t)) return Overrun(sizeof(uint64_t));
  std::memcpy(out, payload_->data() + position_, sizeof(uint64_t));
  position_ += sizeof(uint64_t);
  return Status::Ok();
}

Status SectionParser::ReadBytes(void* out, size_t size) {
  if (remaining() < size) return Overrun(size);
  if (size > 0) std::memcpy(out, payload_->data() + position_, size);
  position_ += size;
  return Status::Ok();
}

Status SectionParser::ReadU32Vector(uint64_t max_count,
                                    std::vector<uint32_t>* out) {
  uint64_t count = 0;
  MBI_RETURN_IF_ERROR(ReadU64(&count));
  if (count > max_count) {
    return Status::Corruption(context_ + ": count " + std::to_string(count) +
                              " exceeds limit " + std::to_string(max_count));
  }
  const uint64_t bytes = count * sizeof(uint32_t);
  if (remaining() < bytes) return Overrun(static_cast<size_t>(bytes));
  out->resize(static_cast<size_t>(count));
  if (count > 0) {
    std::memcpy(out->data(), payload_->data() + position_,
                static_cast<size_t>(bytes));
  }
  position_ += static_cast<size_t>(bytes);
  return Status::Ok();
}

Status SectionParser::ExpectConsumed() const {
  if (remaining() != 0) {
    return Status::Corruption(context_ + ": " + std::to_string(remaining()) +
                              " trailing bytes");
  }
  return Status::Ok();
}

// --- ArtifactReader ---

ArtifactReader::ArtifactReader(std::string path,
                               std::unique_ptr<SequentialFile> file,
                               uint32_t magic, uint32_t version,
                               uint64_t file_size)
    : path_(std::move(path)),
      file_(std::move(file)),
      magic_(magic),
      version_(version),
      file_size_(file_size),
      consumed_(8) {}

StatusOr<ArtifactReader> ArtifactReader::Open(Env* env,
                                              const std::string& path,
                                              uint32_t expected_magic) {
  MBI_ASSIGN_OR_RETURN(uint64_t file_size, env->FileSize(path));
  MBI_ASSIGN_OR_RETURN(auto file, env->NewSequentialFile(path));
  uint8_t header[8];
  MBI_RETURN_IF_ERROR(file->ReadExact(header, sizeof(header)));
  uint32_t magic = 0, version = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&version, header + 4, 4);
  if (expected_magic != 0 && magic != expected_magic) {
    return Status::Corruption(path + ": bad magic (not the expected artifact "
                                     "type, or the header is corrupt)");
  }
  if (expected_magic == 0 && magic != kDatabaseMagic &&
      magic != kPartitionMagic && magic != kTableMagic &&
      magic != kPageSpillMagic) {
    return Status::Corruption(path + ": unrecognized artifact magic");
  }
  if (version != kFormatVersionLegacy && version != kFormatVersionDurable) {
    return Status::Corruption(path + ": unsupported format version " +
                              std::to_string(version));
  }
  return ArtifactReader(path, std::move(file), magic, version, file_size);
}

StatusOr<ArtifactReader::RawSection> ArtifactReader::NextSection() {
  if (remaining() < 16) {
    return Status::Corruption(path_ + ": truncated section header at offset " +
                              std::to_string(consumed_));
  }
  uint8_t header[16];
  MBI_RETURN_IF_ERROR(file_->ReadExact(header, sizeof(header)));
  consumed_ += sizeof(header);
  RawSection section;
  uint64_t length = 0;
  uint32_t crc = 0;
  std::memcpy(&section.id, header, 4);
  std::memcpy(&length, header + 4, 8);
  std::memcpy(&crc, header + 12, 4);
  if (length > remaining() || length > kMaxSectionBytes) {
    return Status::Corruption(path_ + ": section length " +
                              std::to_string(length) +
                              " exceeds the bytes left in the file");
  }
  section.payload.resize(static_cast<size_t>(length));
  MBI_RETURN_IF_ERROR(
      file_->ReadExact(section.payload.data(), section.payload.size()));
  consumed_ += length;
  section.crc_ok = Crc32c(section.payload.data(), section.payload.size()) == crc;
  return section;
}

StatusOr<std::vector<uint8_t>> ArtifactReader::ReadSection(
    uint32_t expected_id, const char* name) {
  MBI_ASSIGN_OR_RETURN(RawSection section, NextSection());
  if (section.id != expected_id) {
    return Status::Corruption(path_ + ": expected section '" +
                              std::string(name) + "' (id " +
                              std::to_string(expected_id) + "), found id " +
                              std::to_string(section.id));
  }
  if (!section.crc_ok) {
    return Status::Corruption(path_ + ": section '" + std::string(name) +
                              "': checksum mismatch");
  }
  return std::move(section.payload);
}

StatusOr<std::vector<uint8_t>> ArtifactReader::ReadRemainder() {
  std::vector<uint8_t> body(static_cast<size_t>(remaining()));
  MBI_RETURN_IF_ERROR(file_->ReadExact(body.data(), body.size()));
  consumed_ += body.size();
  return body;
}

Status ArtifactReader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::Corruption(path_ + ": " + std::to_string(remaining()) +
                              " trailing bytes after the last section");
  }
  return Status::Ok();
}

}  // namespace mbi
