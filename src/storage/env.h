#ifndef MBI_STORAGE_ENV_H_
#define MBI_STORAGE_ENV_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "util/metrics.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"

namespace mbi {

class Env;
class FaultInjector;

/// Append-only file handle opened by Env::NewWritableFile. All bytes flow
/// through the owning Env's fault injector (when one is installed), and
/// transient (kUnavailable) faults are retried in-place with the Env's
/// bounded-exponential-backoff policy — callers only ever see a transient
/// failure after the retry budget is exhausted.
class WritableFile {
 public:
  ~WritableFile();
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  Status Append(const void* data, size_t size);

  /// Pushes buffered bytes to the OS and fsyncs, so the data is durable
  /// before the commit rename. Must precede Close() in the save protocol.
  Status Flush();

  Status Close();

  /// Bytes successfully appended so far (the absolute file offset).
  uint64_t offset() const { return offset_; }
  const std::string& path() const { return path_; }

 private:
  friend class Env;
  WritableFile(Env* env, std::string path, std::FILE* file);

  /// One write attempt: consults the fault injector, applies scheduled bit
  /// flips / torn prefixes, and maps OS errors to Status.
  Status AppendOnce(const uint8_t* data, size_t size);

  Env* env_;
  std::string path_;
  std::FILE* file_;
  uint64_t offset_ = 0;
};

/// Read-only sequential file handle.
class SequentialFile {
 public:
  ~SequentialFile();
  SequentialFile(const SequentialFile&) = delete;
  SequentialFile& operator=(const SequentialFile&) = delete;

  /// Reads exactly `size` bytes into `out`. A short read (end of file) is
  /// kCorruption — in this format every read is length-prefixed, so hitting
  /// EOF early always means a truncated artifact, not a benign end.
  Status ReadExact(void* out, size_t size);

  uint64_t offset() const { return offset_; }
  const std::string& path() const { return path_; }

 private:
  friend class Env;
  SequentialFile(std::string path, std::FILE* file);

  std::string path_;
  std::FILE* file_;
  uint64_t offset_ = 0;
};

/// Thin filesystem abstraction in front of every artifact read and write
/// (table/partition/database IO, the PageStore spill path). Exists so a
/// FaultInjector can sit between the serializers and the OS: production code
/// uses Env::Default() with no injector and pays one indirect call, tests
/// and the MBI_FAULT_INJECT CLI hook install a deterministic fault schedule.
class Env {
 public:
  Env() = default;
  explicit Env(uint64_t jitter_seed) : rng_(jitter_seed) {}
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// Process-wide default instance (no faults, default retry policy).
  static Env* Default();

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path);
  StatusOr<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path);
  StatusOr<uint64_t> FileSize(const std::string& path);
  Status RenameFile(const std::string& from, const std::string& to);
  Status RemoveFile(const std::string& path);
  bool FileExists(const std::string& path) const;

  /// Installs a fault schedule; `injector` must outlive all subsequent I/O
  /// through this Env. Pass nullptr to uninstall.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Backoff policy for transient write faults.
  void set_retry_options(RetryOptions options) {
    retry_options_ = std::move(options);
  }
  const RetryOptions& retry_options() const { return retry_options_; }

  /// Seeded jitter source for the backoff schedule.
  Rng* jitter_rng() { return &rng_; }

  /// Enables fault/retry counters (mbi.env.*) in `registry`; nullptr
  /// disables. Counts transient faults observed, retried attempts, and the
  /// total backoff delay the retry schedule imposed (in microseconds — the
  /// delay as computed, whether slept for real or through the test seam).
  void set_metrics(MetricsRegistry* registry);

  /// Folds one RetryTransient outcome into the mbi.env.* counters. Called by
  /// the retrying I/O paths (WritableFile::Append, NewWritableFile,
  /// RenameFile); no-op while metrics are disabled.
  void RecordRetryMetrics(const RetryStats& stats, const Status& status);

 private:
  FaultInjector* injector_ = nullptr;
  RetryOptions retry_options_{};
  Rng rng_{0x5EEDF00DULL};
  Counter* faults_metric_ = nullptr;
  Counter* retries_metric_ = nullptr;
  Counter* backoff_metric_ = nullptr;
};

/// Maps an errno value to the Status taxonomy: ENOENT → kNotFound,
/// ENOSPC → kNoSpace, EAGAIN/EINTR → kUnavailable, anything else →
/// kIoError. `context` (usually the path) prefixes the message.
Status ErrnoToStatus(int error_number, const std::string& context);

}  // namespace mbi

#endif  // MBI_STORAGE_ENV_H_
