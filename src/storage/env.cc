#include "storage/env.h"

#include <cerrno>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "storage/fault_injector.h"

namespace mbi {

Status ErrnoToStatus(int error_number, const std::string& context) {
  const std::string message = context + ": " + std::strerror(error_number);
  switch (error_number) {
    case ENOENT:
      return Status::NotFound(message);
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return Status::NoSpace(message);
    case EAGAIN:
    case EINTR:
      return Status::Unavailable(message);
    default:
      return Status::IoError(message);
  }
}

// --- WritableFile ---

WritableFile::WritableFile(Env* env, std::string path, std::FILE* file)
    : env_(env), path_(std::move(path)), file_(file) {}

WritableFile::~WritableFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WritableFile::AppendOnce(const uint8_t* data, size_t size) {
  const uint8_t* bytes = data;
  size_t persist = size;
  Status injected;
  std::vector<uint8_t> mutated;
  if (env_->fault_injector() != nullptr) {
    FaultInjector::WriteOutcome outcome =
        env_->fault_injector()->OnWrite(path_, offset_, data, size);
    if (!outcome.status.ok() &&
        outcome.status.code() == StatusCode::kUnavailable) {
      return outcome.status;  // Transient: nothing touched the file.
    }
    if (!outcome.flips.empty()) {
      mutated.assign(data, data + size);
      for (const auto& [flip_offset, mask] : outcome.flips) {
        mutated[flip_offset] ^= mask;
      }
      bytes = mutated.data();
    }
    persist = outcome.prefix;
    injected = outcome.status;
  }
  if (persist > 0 && std::fwrite(bytes, 1, persist, file_) != persist) {
    return ErrnoToStatus(errno, path_);
  }
  offset_ += persist;
  if (!injected.ok()) {
    // A torn or failed write simulates a crash mid-save: make sure the torn
    // prefix actually reaches the file the way a real crash would leave it.
    std::fflush(file_);
    return injected;
  }
  return Status::Ok();
}

Status WritableFile::Append(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  RetryStats retry_stats;
  Status status =
      RetryTransient(env_->retry_options(), env_->jitter_rng(),
                     [&] { return AppendOnce(bytes, size); }, &retry_stats);
  env_->RecordRetryMetrics(retry_stats, status);
  return status;
}

Status WritableFile::Flush() {
  if (std::fflush(file_) != 0) return ErrnoToStatus(errno, path_);
  if (::fsync(::fileno(file_)) != 0) return ErrnoToStatus(errno, path_);
  return Status::Ok();
}

Status WritableFile::Close() {
  if (file_ == nullptr) return Status::Ok();
  std::FILE* file = file_;
  file_ = nullptr;
  if (std::fclose(file) != 0) return ErrnoToStatus(errno, path_);
  return Status::Ok();
}

// --- SequentialFile ---

SequentialFile::SequentialFile(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

SequentialFile::~SequentialFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SequentialFile::ReadExact(void* out, size_t size) {
  if (size == 0) return Status::Ok();
  const size_t read = std::fread(out, 1, size, file_);
  offset_ += read;
  if (read == size) return Status::Ok();
  if (std::feof(file_) != 0) {
    return Status::Corruption(path_ + ": unexpected end of file at offset " +
                              std::to_string(offset_));
  }
  return ErrnoToStatus(errno, path_);
}

// --- Env ---

Env* Env::Default() {
  // Leaked singleton: immortal by design (no destruction-order hazards).
  static Env* instance = new Env();  // mbi-lint: allow(no-naked-new)
  return instance;
}

StatusOr<std::unique_ptr<WritableFile>> Env::NewWritableFile(
    const std::string& path) {
  if (injector_ != nullptr) {
    RetryStats retry_stats;
    Status injected =
        RetryTransient(retry_options_, &rng_,
                       [&] { return injector_->OnOpenWrite(path); },
                       &retry_stats);
    RecordRetryMetrics(retry_stats, injected);
    MBI_RETURN_IF_ERROR(injected);
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return ErrnoToStatus(errno, path);
  // WritableFile's constructor is private (files only exist via Env), so
  // std::make_unique cannot reach it.
  return std::unique_ptr<WritableFile>(
      new WritableFile(this, path, file));  // mbi-lint: allow(no-naked-new)
}

StatusOr<std::unique_ptr<SequentialFile>> Env::NewSequentialFile(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return ErrnoToStatus(errno, path);
  // Private constructor, same as NewWritableFile above.
  return std::unique_ptr<SequentialFile>(
      new SequentialFile(path, file));  // mbi-lint: allow(no-naked-new)
}

StatusOr<uint64_t> Env::FileSize(const std::string& path) {
  struct ::stat info {};
  if (::stat(path.c_str(), &info) != 0) return ErrnoToStatus(errno, path);
  return static_cast<uint64_t>(info.st_size);
}

Status Env::RenameFile(const std::string& from, const std::string& to) {
  if (injector_ != nullptr) {
    RetryStats retry_stats;
    Status injected =
        RetryTransient(retry_options_, &rng_,
                       [&] { return injector_->OnRename(from, to); },
                       &retry_stats);
    RecordRetryMetrics(retry_stats, injected);
    MBI_RETURN_IF_ERROR(injected);
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoToStatus(errno, from + " -> " + to);
  }
  return Status::Ok();
}

Status Env::RemoveFile(const std::string& path) {
  if (std::remove(path.c_str()) != 0) return ErrnoToStatus(errno, path);
  return Status::Ok();
}

bool Env::FileExists(const std::string& path) const {
  struct ::stat info {};
  return ::stat(path.c_str(), &info) == 0;
}

void Env::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    faults_metric_ = nullptr;
    retries_metric_ = nullptr;
    backoff_metric_ = nullptr;
    return;
  }
  faults_metric_ = registry->GetCounter("mbi.env.fault.injected", "faults",
                                        "transient write faults observed");
  retries_metric_ =
      registry->GetCounter("mbi.env.write.retries", "attempts",
                           "write attempts retried after transient faults");
  backoff_metric_ = registry->GetCounter(
      "mbi.env.write.backoff", "us",
      "total backoff delay scheduled between retry attempts");
}

void Env::RecordRetryMetrics(const RetryStats& stats, const Status& status) {
  if (faults_metric_ == nullptr) return;
  const uint64_t retried =
      stats.attempts > 1 ? static_cast<uint64_t>(stats.attempts - 1) : 0;
  // Every retried attempt was provoked by a transient fault; if the final
  // status is still transient, the last attempt saw one more.
  uint64_t faults = retried;
  if (!status.ok() && status.code() == StatusCode::kUnavailable) ++faults;
  if (faults > 0) faults_metric_->Increment(faults);
  if (retried > 0) retries_metric_->Increment(retried);
  if (stats.backoff_ms > 0.0) {
    backoff_metric_->Increment(static_cast<uint64_t>(stats.backoff_ms * 1e3));
  }
}

}  // namespace mbi
