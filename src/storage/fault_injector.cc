#include "storage/fault_injector.h"

#include <cstdlib>

namespace mbi {

void FaultInjector::FailWrite(uint64_t nth, StatusCode code) {
  MutexLock lock(&mutex_);
  write_faults_[nth] = WriteFault{code, /*torn=*/false, /*keep_bytes=*/0};
}

void FaultInjector::TornWrite(uint64_t nth, uint64_t keep_bytes) {
  MutexLock lock(&mutex_);
  write_faults_[nth] =
      WriteFault{StatusCode::kIoError, /*torn=*/true, keep_bytes};
}

void FaultInjector::FlipBit(uint64_t file_byte_offset, uint32_t bit) {
  MutexLock lock(&mutex_);
  bit_flips_.emplace_back(file_byte_offset, bit & 7u);
}

void FaultInjector::TransientWrites(uint64_t nth, uint32_t failures) {
  MutexLock lock(&mutex_);
  transient_remaining_[nth] = failures;
}

void FaultInjector::FailOpen(uint64_t nth, StatusCode code) {
  MutexLock lock(&mutex_);
  open_faults_[nth] = code;
}

void FaultInjector::FailRename(StatusCode code) {
  MutexLock lock(&mutex_);
  rename_fault_ = code;
}

Status FaultInjector::OnOpenWrite(const std::string& path) {
  MutexLock lock(&mutex_);
  const uint64_t index = open_index_++;
  auto fault = open_faults_.find(index);
  if (fault != open_faults_.end()) {
    return Status::FromCode(fault->second,
                            path + ": injected open fault (open #" +
                                std::to_string(index) + ")");
  }
  return Status::Ok();
}

FaultInjector::WriteOutcome FaultInjector::OnWrite(const std::string& path,
                                                   uint64_t file_offset,
                                                   const void* /*data*/,
                                                   size_t size) {
  MutexLock lock(&mutex_);
  WriteOutcome outcome;
  outcome.prefix = size;

  // Transient rejections come first and do not consume a write index — the
  // retried write must land on the same schedule slot it was aimed at.
  auto transient = transient_remaining_.find(write_index_);
  if (transient != transient_remaining_.end() && transient->second > 0) {
    --transient->second;
    outcome.status = Status::Unavailable(
        path + ": injected transient write fault (write #" +
        std::to_string(write_index_) + ")");
    outcome.prefix = 0;
    return outcome;
  }

  const uint64_t index = write_index_++;
  for (const auto& [flip_offset, bit] : bit_flips_) {
    if (flip_offset >= file_offset && flip_offset < file_offset + size) {
      outcome.flips.emplace_back(static_cast<size_t>(flip_offset - file_offset),
                                 static_cast<uint8_t>(1u << bit));
    }
  }
  auto fault = write_faults_.find(index);
  if (fault != write_faults_.end()) {
    const WriteFault& spec = fault->second;
    if (spec.torn) {
      outcome.prefix = static_cast<size_t>(
          spec.keep_bytes < size ? spec.keep_bytes : size);
      outcome.status = Status::FromCode(
          spec.code, path + ": injected torn write (write #" +
                         std::to_string(index) + ", kept " +
                         std::to_string(outcome.prefix) + " bytes)");
    } else {
      outcome.prefix = 0;
      outcome.status = Status::FromCode(
          spec.code,
          path + ": injected write fault (write #" + std::to_string(index) +
              ")");
    }
  }
  return outcome;
}

Status FaultInjector::OnRename(const std::string& /*from*/,
                               const std::string& to) {
  MutexLock lock(&mutex_);
  if (rename_fault_.has_value()) {
    return Status::FromCode(*rename_fault_, to + ": injected rename fault");
  }
  return Status::Ok();
}

uint64_t FaultInjector::writes_seen() const {
  MutexLock lock(&mutex_);
  return write_index_;
}

uint64_t FaultInjector::opens_seen() const {
  MutexLock lock(&mutex_);
  return open_index_;
}

void FaultInjector::Reset() {
  MutexLock lock(&mutex_);
  write_index_ = 0;
  open_index_ = 0;
  write_faults_.clear();
  transient_remaining_.clear();
  bit_flips_.clear();
  open_faults_.clear();
  rename_fault_.reset();
}

namespace {

/// Parses an unsigned decimal; returns false on anything else.
bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

/// Splits "N:K" into two unsigned fields.
bool ParsePair(const std::string& text, uint64_t* first, uint64_t* second) {
  const size_t colon = text.find(':');
  if (colon == std::string::npos) return false;
  return ParseU64(text.substr(0, colon), first) &&
         ParseU64(text.substr(colon + 1), second);
}

}  // namespace

StatusOr<std::unique_ptr<FaultInjector>> FaultInjector::FromSpec(
    const std::string& spec) {
  uint64_t seed = 1;
  auto injector = std::make_unique<FaultInjector>(seed);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string token = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    const std::string key = token.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : token.substr(eq + 1);
    uint64_t a = 0, b = 0;
    if (key == "fail_write" && ParseU64(value, &a)) {
      injector->FailWrite(a, StatusCode::kIoError);
    } else if (key == "nospace_write" && ParseU64(value, &a)) {
      injector->FailWrite(a, StatusCode::kNoSpace);
    } else if (key == "torn_write" && ParsePair(value, &a, &b)) {
      injector->TornWrite(a, b);
    } else if (key == "flip_bit" && ParsePair(value, &a, &b)) {
      injector->FlipBit(a, static_cast<uint32_t>(b));
    } else if (key == "transient_write" && ParsePair(value, &a, &b)) {
      injector->TransientWrites(a, static_cast<uint32_t>(b));
    } else if (key == "fail_open" && ParseU64(value, &a)) {
      injector->FailOpen(a, StatusCode::kIoError);
    } else if (key == "fail_rename") {
      injector->FailRename(StatusCode::kIoError);
    } else if (key == "seed" && ParseU64(value, &a)) {
      injector->seed_ = a;
    } else {
      return Status::InvalidArgument("bad fault spec token '" + token + "'");
    }
  }
  return injector;
}

}  // namespace mbi
