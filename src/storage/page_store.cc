#include "storage/page_store.h"

#include "util/macros.h"

namespace mbi {

PageStore::PageStore(uint32_t page_size_bytes)
    : page_size_bytes_(page_size_bytes) {
  MBI_CHECK_MSG(page_size_bytes >= 64, "page size too small to be useful");
}

uint32_t PageStore::SerializedSize(const Transaction& transaction) {
  return 4 + 4 * static_cast<uint32_t>(transaction.size());
}

PageId PageStore::Append(TransactionId id, uint32_t serialized_size) {
  MBI_CHECK_MSG(serialized_size <= page_size_bytes_,
                "transaction larger than a page");
  if (pages_.empty() ||
      pages_.back().used_bytes + serialized_size > page_size_bytes_) {
    pages_.emplace_back();
  }
  Page& tail = pages_.back();
  tail.transaction_ids.push_back(id);
  tail.used_bytes += serialized_size;
  return static_cast<PageId>(pages_.size() - 1);
}

void PageStore::SealCurrentPage() {
  if (!pages_.empty() && !pages_.back().transaction_ids.empty()) {
    pages_.back().used_bytes = page_size_bytes_;
  }
}

bool PageStore::TryAppendToPage(PageId page, TransactionId id,
                                uint32_t serialized_size) {
  MBI_CHECK(page < pages_.size());
  MBI_CHECK_MSG(serialized_size <= page_size_bytes_,
                "transaction larger than a page");
  Page& target = pages_[page];
  if (target.used_bytes + serialized_size > page_size_bytes_) return false;
  target.transaction_ids.push_back(id);
  target.used_bytes += serialized_size;
  return true;
}

PageId PageStore::AppendToFreshPage(TransactionId id,
                                    uint32_t serialized_size) {
  MBI_CHECK_MSG(serialized_size <= page_size_bytes_,
                "transaction larger than a page");
  pages_.emplace_back();
  Page& fresh = pages_.back();
  fresh.transaction_ids.push_back(id);
  fresh.used_bytes = serialized_size;
  return static_cast<PageId>(pages_.size() - 1);
}

PageStore PageStore::FromPages(uint32_t page_size_bytes,
                               std::vector<Page> pages) {
  PageStore store(page_size_bytes);
  for (const Page& page : pages) {
    MBI_CHECK_MSG(page.used_bytes <= page_size_bytes,
                  "serialized page exceeds the page size");
  }
  store.pages_ = std::move(pages);
  return store;
}

const Page& PageStore::Read(PageId page, IoStats* stats) const {
  MBI_CHECK(page < pages_.size());
  if (stats != nullptr) {
    ++stats->pages_read;
    stats->bytes_read += page_size_bytes_;
  }
  return pages_[page];
}

}  // namespace mbi
