#include "storage/page_store.h"

#include "storage/format.h"
#include "util/macros.h"

namespace mbi {
namespace {

// Spill-artifact section ids.
constexpr uint32_t kSectionMeta = 1;   // page_size u32, num_pages u64
constexpr uint32_t kSectionPages = 2;  // per page: used u32 + u32 span of ids

constexpr uint64_t kMaxReasonablePages = 1ULL << 33;

}  // namespace

PageStore::PageStore(uint32_t page_size_bytes)
    : page_size_bytes_(page_size_bytes) {
  MBI_CHECK_MSG(page_size_bytes >= 64, "page size too small to be useful");
}

uint32_t PageStore::SerializedSize(const Transaction& transaction) {
  return 4 + 4 * static_cast<uint32_t>(transaction.size());
}

PageId PageStore::Append(TransactionId id, uint32_t serialized_size) {
  MBI_CHECK_MSG(serialized_size <= page_size_bytes_,
                "transaction larger than a page");
  if (pages_.empty() ||
      pages_.back().used_bytes + serialized_size > page_size_bytes_) {
    pages_.emplace_back();
    if (pages_written_metric_ != nullptr) pages_written_metric_->Increment();
  }
  Page& tail = pages_.back();
  tail.transaction_ids.push_back(id);
  tail.used_bytes += serialized_size;
  return static_cast<PageId>(pages_.size() - 1);
}

void PageStore::SealCurrentPage() {
  if (!pages_.empty() && !pages_.back().transaction_ids.empty()) {
    pages_.back().used_bytes = page_size_bytes_;
  }
}

bool PageStore::TryAppendToPage(PageId page, TransactionId id,
                                uint32_t serialized_size) {
  MBI_CHECK(page < pages_.size());
  MBI_CHECK_MSG(serialized_size <= page_size_bytes_,
                "transaction larger than a page");
  Page& target = pages_[page];
  if (target.used_bytes + serialized_size > page_size_bytes_) return false;
  target.transaction_ids.push_back(id);
  target.used_bytes += serialized_size;
  return true;
}

PageId PageStore::AppendToFreshPage(TransactionId id,
                                    uint32_t serialized_size) {
  MBI_CHECK_MSG(serialized_size <= page_size_bytes_,
                "transaction larger than a page");
  pages_.emplace_back();
  if (pages_written_metric_ != nullptr) pages_written_metric_->Increment();
  Page& fresh = pages_.back();
  fresh.transaction_ids.push_back(id);
  fresh.used_bytes = serialized_size;
  return static_cast<PageId>(pages_.size() - 1);
}

PageStore PageStore::FromPages(uint32_t page_size_bytes,
                               std::vector<Page> pages) {
  PageStore store(page_size_bytes);
  for (const Page& page : pages) {
    MBI_CHECK_MSG(page.used_bytes <= page_size_bytes,
                  "serialized page exceeds the page size");
  }
  store.pages_ = std::move(pages);
  return store;
}

Status PageStore::SpillToFile(const std::string& path, Env* env) const {
  ArtifactWriter writer(env, path, kPageSpillMagic);
  MBI_RETURN_IF_ERROR(writer.Open());

  writer.BeginSection(kSectionMeta);
  writer.PutU32(page_size_bytes_);
  writer.PutU64(pages_.size());
  MBI_RETURN_IF_ERROR(writer.EndSection());

  writer.BeginSection(kSectionPages);
  for (const Page& page : pages_) {
    writer.PutU32(page.used_bytes);
    writer.PutU32Span(page.transaction_ids.data(), page.transaction_ids.size());
  }
  MBI_RETURN_IF_ERROR(writer.EndSection());

  return writer.Commit();
}

StatusOr<PageStore> PageStore::LoadSpillFile(const std::string& path,
                                             Env* env) {
  MBI_ASSIGN_OR_RETURN(ArtifactReader reader,
                       ArtifactReader::Open(env, path, kPageSpillMagic));
  if (reader.version() != kFormatVersionDurable) {
    // Spills never existed before the durable container; a v1 header here is
    // not a legacy artifact, it is damage.
    return Status::Corruption(path + ": page spills have no legacy format");
  }

  MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> meta,
                       reader.ReadSection(kSectionMeta, "meta"));
  SectionParser meta_parser(meta, path + ": section 'meta'");
  uint32_t page_size = 0;
  uint64_t num_pages = 0;
  MBI_RETURN_IF_ERROR(meta_parser.ReadU32(&page_size));
  MBI_RETURN_IF_ERROR(meta_parser.ReadU64(&num_pages));
  MBI_RETURN_IF_ERROR(meta_parser.ExpectConsumed());
  if (page_size < 64) {
    return Status::Corruption(path + ": page size below the 64-byte minimum");
  }
  if (num_pages > kMaxReasonablePages) {
    return Status::Corruption(path + ": implausible page count");
  }

  MBI_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                       reader.ReadSection(kSectionPages, "pages"));
  MBI_RETURN_IF_ERROR(reader.ExpectEnd());
  SectionParser parser(body, path + ": section 'pages'");
  std::vector<Page> pages(static_cast<size_t>(num_pages));
  for (Page& page : pages) {
    MBI_RETURN_IF_ERROR(parser.ReadU32(&page.used_bytes));
    MBI_RETURN_IF_ERROR(
        parser.ReadU32Vector(kMaxReasonablePages, &page.transaction_ids));
    if (page.used_bytes > page_size) {
      return Status::Corruption(path + ": page claims " +
                                std::to_string(page.used_bytes) +
                                " used bytes of a " +
                                std::to_string(page_size) + "-byte page");
    }
  }
  MBI_RETURN_IF_ERROR(parser.ExpectConsumed());
  return FromPages(page_size, std::move(pages));
}

const Page& PageStore::Read(PageId page, IoStats* stats) const {
  MBI_CHECK(page < pages_.size());
  if (stats != nullptr) {
    ++stats->pages_read;
    stats->bytes_read += page_size_bytes_;
  }
  if (pages_read_metric_ != nullptr) pages_read_metric_->Increment();
  return pages_[page];
}

void PageStore::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    pages_read_metric_ = nullptr;
    pages_written_metric_ = nullptr;
    return;
  }
  pages_read_metric_ = registry->GetCounter(
      "mbi.pagestore.pages_read", "pages", "physical page reads");
  pages_written_metric_ = registry->GetCounter(
      "mbi.pagestore.pages_written", "pages", "pages opened for writing");
}

}  // namespace mbi
