#ifndef MBI_STORAGE_TRANSACTION_STORE_H_
#define MBI_STORAGE_TRANSACTION_STORE_H_

#include <cstdint>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/page_store.h"
#include "txn/database.h"
#include "txn/transaction.h"

namespace mbi {

/// Physical layout of a transaction database on the simulated disk.
///
/// Two layouts are supported:
///
///  * **Bucketed** (`BuildBucketed`): transactions are grouped by a caller-
///    supplied bucket id (the signature table uses the supercoordinate entry
///    index) and written contiguously, each bucket starting on a fresh page.
///    This is the paper's Figure 1 layout — each in-memory table entry points
///    to a run of disk pages. Scanning one bucket touches only its pages.
///
///  * **Sequential** (`BuildSequential`): transactions are written in arrival
///    order with no grouping. This models both the raw database a sequential
///    scan reads and the page-scattering behaviour of the inverted-index
///    baseline: similar transactions are spread across unrelated pages, so
///    fetching a candidate set touches many pages ("even if 5% of the
///    transactions need to be accessed, it may be required to access almost
///    the entire database", §5.1).
class TransactionStore {
 public:
  /// Builds a bucketed layout. `bucket_of[t]` is the bucket of transaction t;
  /// `num_buckets` bounds the bucket ids.
  static TransactionStore BuildBucketed(const TransactionDatabase& database,
                                        const std::vector<uint32_t>& bucket_of,
                                        uint32_t num_buckets,
                                        uint32_t page_size_bytes = 4096);

  /// Builds a sequential (arrival-order) layout.
  static TransactionStore BuildSequential(const TransactionDatabase& database,
                                          uint32_t page_size_bytes = 4096);

  /// Pages backing `bucket`, in layout order (bucketed layout only; for
  /// sequential layout all pages belong to bucket 0).
  const std::vector<PageId>& PagesOfBucket(uint32_t bucket) const;

  /// Reads all of `bucket`'s transactions, charging page reads and
  /// transaction fetches to `stats`. Returns ids in layout order.
  std::vector<TransactionId> FetchBucket(uint32_t bucket,
                                         IoStats* stats) const;

  /// Scratch-output variant: clears `*ids` and fills it with the bucket's
  /// transaction ids in layout order. Repeated scans through a reused buffer
  /// allocate nothing once the buffer has grown to the largest bucket.
  /// I/O accounting and contents are identical to the returning overload.
  void FetchBucket(uint32_t bucket, IoStats* stats,
                   std::vector<TransactionId>* ids) const;

  /// Reads the page holding one transaction (point fetch; models the random
  /// access of the inverted-index baseline). Charges one page read — or a
  /// cache hit when `pool` is non-null — plus one transaction fetch.
  void FetchTransaction(TransactionId id, BufferPool* pool,
                        IoStats* stats) const;

  /// The page a transaction lives on.
  PageId PageOfTransaction(TransactionId id) const;

  /// Registers a new (empty) bucket and returns its id. Used by dynamic
  /// inserts when a transaction maps to a previously unseen supercoordinate.
  uint32_t AddBucket();

  /// Appends transaction `id` to `bucket`, extending the bucket's last page
  /// when it has room and opening a fresh page otherwise (buckets never share
  /// pages). `id` must be the next transaction id in sequence — the store
  /// mirrors the append-only database.
  void AppendToBucket(uint32_t bucket, TransactionId id,
                      uint32_t serialized_size);

  const PageStore& page_store() const { return page_store_; }

  /// Forwards to the backing PageStore's set_metrics (mbi.pagestore.*).
  void set_metrics(MetricsRegistry* registry) {
    page_store_.set_metrics(registry);
  }
  uint32_t num_buckets() const {
    return static_cast<uint32_t>(bucket_pages_.size());
  }
  uint64_t num_transactions() const { return page_of_transaction_.size(); }

  /// Reassembles a store from serialized parts (deserialization only).
  /// Validates that every referenced page exists and that
  /// `page_of_transaction` is consistent with the pages' contents.
  static TransactionStore FromParts(PageStore page_store,
                                    std::vector<std::vector<PageId>> buckets,
                                    std::vector<PageId> page_of_transaction);

 private:
  explicit TransactionStore(uint32_t page_size_bytes);

  PageStore page_store_;
  std::vector<std::vector<PageId>> bucket_pages_;
  std::vector<PageId> page_of_transaction_;
};

}  // namespace mbi

#endif  // MBI_STORAGE_TRANSACTION_STORE_H_
