#include "storage/buffer_pool.h"

#include <iterator>

#include "util/macros.h"

namespace mbi {

BufferPool::BufferPool(const PageStore* store, size_t capacity_pages)
    : store_(store), capacity_(capacity_pages) {
  MBI_CHECK(store != nullptr);
}

const Page& BufferPool::Read(PageId page, IoStats* stats) {
  if (capacity_ == 0) {
    ++misses_;
    if (misses_metric_ != nullptr) misses_metric_->Increment();
    return store_->Read(page, stats);
  }
  auto it = lookup_.find(page);
  if (it != lookup_.end()) {
    ++hits_;
    if (hits_metric_ != nullptr) hits_metric_->Increment();
    if (stats != nullptr) ++stats->pages_cached;
    lru_.splice(lru_.begin(), lru_, it->second);
    return store_->Read(page, nullptr);  // Served from cache: no charge.
  }
  ++misses_;
  if (misses_metric_ != nullptr) misses_metric_->Increment();
  const Page& loaded = store_->Read(page, stats);
  lru_.push_front(page);
  lookup_[page] = lru_.begin();
  // Evict the least-recently-used *unpinned* page. Pinned pages may keep the
  // pool transiently over capacity; they rejoin the eviction candidates once
  // unpinned.
  if (lru_.size() > capacity_) {
    for (auto victim = std::prev(lru_.end());; --victim) {
      if (pins_.find(*victim) == pins_.end()) {
        lookup_.erase(*victim);
        lru_.erase(victim);
        break;
      }
      if (victim == lru_.begin()) break;  // Everything pinned: overflow.
    }
  }
  return loaded;
}

void BufferPool::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    hits_metric_ = nullptr;
    misses_metric_ = nullptr;
    return;
  }
  hits_metric_ = registry->GetCounter("mbi.bufferpool.hit", "pages",
                                      "buffer pool cache hits");
  misses_metric_ = registry->GetCounter("mbi.bufferpool.miss", "pages",
                                        "buffer pool cache misses");
}

void BufferPool::Pin(PageId page) {
  if (capacity_ > 0) {
    MBI_CHECK_MSG(lookup_.find(page) != lookup_.end(),
                  "cannot pin a page that is not resident");
  }
  ++pins_[page];
  ++total_pins_;
}

void BufferPool::Unpin(PageId page) {
  auto it = pins_.find(page);
  MBI_CHECK_MSG(it != pins_.end(), "unpin of a page with no outstanding pin");
  MBI_CHECK_GT(total_pins_, 0u);
  --total_pins_;
  if (--it->second == 0) pins_.erase(it);
}

void BufferPool::Clear() {
  MBI_CHECK_MSG(pins_.empty(), "cannot clear a pool with pinned pages");
  lru_.clear();
  lookup_.clear();
}

void BufferPool::CheckInvariants() const {
  MBI_CHECK_EQ(lru_.size(), lookup_.size());

  // LRU list and lookup map are a bijection: every listed page maps back to
  // its own list position (which also rules out duplicates in the list).
  size_t unpinned_resident = 0;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    auto found = lookup_.find(*it);
    MBI_CHECK_MSG(found != lookup_.end(), "LRU page missing from lookup map");
    MBI_CHECK_MSG(found->second == it, "lookup map points at the wrong node");
    if (pins_.find(*it) == pins_.end()) ++unpinned_resident;
  }

  // Only pinned pages may hold the pool over capacity.
  if (capacity_ > 0) {
    MBI_CHECK_LE(unpinned_resident, capacity_);
  } else {
    MBI_CHECK_EQ(lru_.size(), 0u);
  }

  // Pin balance: per-page counts are positive, sum to the running total,
  // and (when caching is enabled) every pinned page is resident.
  uint64_t pin_sum = 0;
  for (const auto& [page, count] : pins_) {
    MBI_CHECK_GT(count, 0u);
    pin_sum += count;
    if (capacity_ > 0) {
      MBI_CHECK_MSG(lookup_.find(page) != lookup_.end(),
                    "pinned page is not resident");
    }
  }
  MBI_CHECK_EQ(pin_sum, total_pins_);
}

}  // namespace mbi
