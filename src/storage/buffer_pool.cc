#include "storage/buffer_pool.h"

#include "util/macros.h"

namespace mbi {

BufferPool::BufferPool(const PageStore* store, size_t capacity_pages)
    : store_(store), capacity_(capacity_pages) {
  MBI_CHECK(store != nullptr);
}

const Page& BufferPool::Read(PageId page, IoStats* stats) {
  if (capacity_ == 0) {
    ++misses_;
    return store_->Read(page, stats);
  }
  auto it = lookup_.find(page);
  if (it != lookup_.end()) {
    ++hits_;
    if (stats != nullptr) ++stats->pages_cached;
    lru_.splice(lru_.begin(), lru_, it->second);
    return store_->Read(page, nullptr);  // Served from cache: no charge.
  }
  ++misses_;
  const Page& loaded = store_->Read(page, stats);
  lru_.push_front(page);
  lookup_[page] = lru_.begin();
  if (lru_.size() > capacity_) {
    lookup_.erase(lru_.back());
    lru_.pop_back();
  }
  return loaded;
}

void BufferPool::Clear() {
  lru_.clear();
  lookup_.clear();
}

}  // namespace mbi
