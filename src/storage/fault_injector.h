#ifndef MBI_STORAGE_FAULT_INJECTOR_H_
#define MBI_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mbi {

/// Deterministic fault schedule for artifact I/O, installed on an Env
/// (Env::set_fault_injector). Every write that flows through the Env is
/// assigned a global 0-based index in issue order; faults are scheduled
/// against those indices, so a given (schedule, save sequence) pair always
/// fails at exactly the same byte — the crash-point matrix in
/// tests/durability_test.cc walks every index and must be reproducible.
///
/// Fault kinds:
///  - FailWrite(n):        the n-th write fails cleanly, persisting nothing.
///  - TornWrite(n, k):     the n-th write persists only its first k bytes,
///                         then fails (a crash mid-write).
///  - FlipBit(byte, bit):  silent bit rot — the write covering absolute file
///                         offset `byte` lands with that bit inverted and
///                         *reports success*. Only checksums can catch it.
///  - TransientWrites(n, r): the n-th write returns kUnavailable `r` times
///                         before succeeding (EAGAIN-style; the Env retries
///                         these with backoff). Transient rejections do not
///                         consume a write index.
///  - FailOpen(n) / FailRename(): fail the n-th file-open-for-write, or
///                         every rename (the commit point of atomic saves).
///
/// The CLI installs one from the MBI_FAULT_INJECT environment variable (see
/// FromSpec) so cli_test can drive out-of-space and torn-write paths through
/// the real binary.
class FaultInjector {
 public:
  /// What the Env should do with one write call.
  struct WriteOutcome {
    /// OK, or the injected failure to report to the caller.
    Status status;
    /// Bytes of the buffer to persist before reporting `status`. Equal to
    /// the full size for clean writes, 0 for clean failures, a prefix for
    /// torn writes.
    size_t prefix = 0;
    /// Bit flips to apply to the persisted bytes: (offset into this buffer,
    /// XOR mask).
    std::vector<std::pair<size_t, uint8_t>> flips;
  };

  explicit FaultInjector(uint64_t seed = 1) : seed_(seed) {}

  // --- schedule (indices are 0-based, global across all files) ---
  void FailWrite(uint64_t nth, StatusCode code = StatusCode::kIoError);
  void TornWrite(uint64_t nth, uint64_t keep_bytes);
  void FlipBit(uint64_t file_byte_offset, uint32_t bit);
  void TransientWrites(uint64_t nth, uint32_t failures);
  void FailOpen(uint64_t nth, StatusCode code = StatusCode::kIoError);
  void FailRename(StatusCode code = StatusCode::kIoError);

  // --- hooks, called by Env ---
  Status OnOpenWrite(const std::string& path);
  WriteOutcome OnWrite(const std::string& path, uint64_t file_offset,
                       const void* data, size_t size);
  Status OnRename(const std::string& from, const std::string& to);

  /// Completed (non-transient-rejected) writes observed so far. Run a save
  /// once against a fresh injector to learn how many write points it has,
  /// then schedule faults at each index in turn.
  uint64_t writes_seen() const;
  uint64_t opens_seen() const;

  /// Clears the schedule and the counters.
  void Reset();

  uint64_t seed() const { return seed_; }

  /// Parses a semicolon-separated spec, e.g. "nospace_write=2;seed=7":
  ///   fail_write=N        FailWrite(N, kIoError)
  ///   nospace_write=N     FailWrite(N, kNoSpace)
  ///   torn_write=N:K      TornWrite(N, K)
  ///   flip_bit=BYTE:BIT   FlipBit(BYTE, BIT)
  ///   transient_write=N:R TransientWrites(N, R)
  ///   fail_open=N         FailOpen(N)
  ///   fail_rename=1       FailRename()
  ///   seed=S              injector seed (recorded, reported by seed())
  /// Returns kInvalidArgument on an unknown key or malformed value.
  static StatusOr<std::unique_ptr<FaultInjector>> FromSpec(
      const std::string& spec);

 private:
  struct WriteFault {
    StatusCode code = StatusCode::kIoError;
    bool torn = false;
    uint64_t keep_bytes = 0;
  };

  mutable Mutex mutex_;
  /// Written only during construction / FromSpec, before the injector is
  /// installed on an Env; immutable afterwards, so unguarded.
  uint64_t seed_;
  uint64_t write_index_ MBI_GUARDED_BY(mutex_) = 0;
  uint64_t open_index_ MBI_GUARDED_BY(mutex_) = 0;
  std::map<uint64_t, WriteFault> write_faults_ MBI_GUARDED_BY(mutex_);
  std::map<uint64_t, uint32_t> transient_remaining_ MBI_GUARDED_BY(mutex_);
  std::vector<std::pair<uint64_t, uint32_t>> bit_flips_
      MBI_GUARDED_BY(mutex_);
  std::map<uint64_t, StatusCode> open_faults_ MBI_GUARDED_BY(mutex_);
  std::optional<StatusCode> rename_fault_ MBI_GUARDED_BY(mutex_);
};

}  // namespace mbi

#endif  // MBI_STORAGE_FAULT_INJECTOR_H_
