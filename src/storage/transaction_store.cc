#include "storage/transaction_store.h"

#include <algorithm>
#include <numeric>

#include "util/macros.h"

namespace mbi {

TransactionStore::TransactionStore(uint32_t page_size_bytes)
    : page_store_(page_size_bytes) {}

TransactionStore TransactionStore::BuildBucketed(
    const TransactionDatabase& database, const std::vector<uint32_t>& bucket_of,
    uint32_t num_buckets, uint32_t page_size_bytes) {
  MBI_CHECK(bucket_of.size() == database.size());
  TransactionStore store(page_size_bytes);
  store.bucket_pages_.resize(num_buckets);
  store.page_of_transaction_.resize(database.size());

  // Group transaction ids by bucket (counting sort keeps this O(n)).
  std::vector<uint32_t> bucket_sizes(num_buckets, 0);
  for (uint32_t bucket : bucket_of) {
    MBI_CHECK(bucket < num_buckets);
    ++bucket_sizes[bucket];
  }
  std::vector<uint64_t> offsets(num_buckets + 1, 0);
  for (uint32_t b = 0; b < num_buckets; ++b) {
    offsets[b + 1] = offsets[b] + bucket_sizes[b];
  }
  std::vector<TransactionId> ordered(database.size());
  {
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (TransactionId id = 0; id < database.size(); ++id) {
      ordered[cursor[bucket_of[id]]++] = id;
    }
  }

  for (uint32_t bucket = 0; bucket < num_buckets; ++bucket) {
    if (bucket_sizes[bucket] == 0) continue;
    store.page_store_.SealCurrentPage();
    for (uint64_t pos = offsets[bucket]; pos < offsets[bucket + 1]; ++pos) {
      TransactionId id = ordered[pos];
      PageId page = store.page_store_.Append(
          id, PageStore::SerializedSize(database.Get(id)));
      store.page_of_transaction_[id] = page;
      if (store.bucket_pages_[bucket].empty() ||
          store.bucket_pages_[bucket].back() != page) {
        store.bucket_pages_[bucket].push_back(page);
      }
    }
  }
  return store;
}

TransactionStore TransactionStore::BuildSequential(
    const TransactionDatabase& database, uint32_t page_size_bytes) {
  TransactionStore store(page_size_bytes);
  store.bucket_pages_.resize(1);
  store.page_of_transaction_.resize(database.size());
  for (TransactionId id = 0; id < database.size(); ++id) {
    PageId page = store.page_store_.Append(
        id, PageStore::SerializedSize(database.Get(id)));
    store.page_of_transaction_[id] = page;
    if (store.bucket_pages_[0].empty() ||
        store.bucket_pages_[0].back() != page) {
      store.bucket_pages_[0].push_back(page);
    }
  }
  return store;
}

const std::vector<PageId>& TransactionStore::PagesOfBucket(
    uint32_t bucket) const {
  MBI_CHECK(bucket < bucket_pages_.size());
  return bucket_pages_[bucket];
}

std::vector<TransactionId> TransactionStore::FetchBucket(
    uint32_t bucket, IoStats* stats) const {
  std::vector<TransactionId> ids;
  FetchBucket(bucket, stats, &ids);
  return ids;
}

void TransactionStore::FetchBucket(uint32_t bucket, IoStats* stats,
                                   std::vector<TransactionId>* ids) const {
  ids->clear();
  for (PageId page : PagesOfBucket(bucket)) {
    const Page& loaded = page_store_.Read(page, stats);
    ids->insert(ids->end(), loaded.transaction_ids.begin(),
                loaded.transaction_ids.end());
  }
  if (stats != nullptr) stats->transactions_fetched += ids->size();
}

void TransactionStore::FetchTransaction(TransactionId id, BufferPool* pool,
                                        IoStats* stats) const {
  PageId page = PageOfTransaction(id);
  if (pool != nullptr) {
    pool->Read(page, stats);
    // Hold the page while the record is copied out of it, so the frame
    // cannot be evicted mid-copy once reads become concurrent.
    PinGuard guard(pool, page);
    if (stats != nullptr) ++stats->transactions_fetched;
    return;
  }
  page_store_.Read(page, stats);
  if (stats != nullptr) ++stats->transactions_fetched;
}

PageId TransactionStore::PageOfTransaction(TransactionId id) const {
  MBI_CHECK(id < page_of_transaction_.size());
  return page_of_transaction_[id];
}

TransactionStore TransactionStore::FromParts(
    PageStore page_store, std::vector<std::vector<PageId>> buckets,
    std::vector<PageId> page_of_transaction) {
  TransactionStore store(page_store.page_size_bytes());
  const size_t num_pages = page_store.size();
  for (const auto& bucket : buckets) {
    for (PageId page : bucket) {
      MBI_CHECK_MSG(page < num_pages, "bucket references a missing page");
    }
  }
  for (TransactionId id = 0; id < page_of_transaction.size(); ++id) {
    PageId page = page_of_transaction[id];
    MBI_CHECK_MSG(page < num_pages, "transaction mapped to a missing page");
    const auto& ids = page_store.pages()[page].transaction_ids;
    MBI_CHECK_MSG(std::find(ids.begin(), ids.end(), id) != ids.end(),
                  "transaction not present on its mapped page");
  }
  store.page_store_ = std::move(page_store);
  store.bucket_pages_ = std::move(buckets);
  store.page_of_transaction_ = std::move(page_of_transaction);
  return store;
}

uint32_t TransactionStore::AddBucket() {
  bucket_pages_.emplace_back();
  return static_cast<uint32_t>(bucket_pages_.size() - 1);
}

void TransactionStore::AppendToBucket(uint32_t bucket, TransactionId id,
                                      uint32_t serialized_size) {
  MBI_CHECK(bucket < bucket_pages_.size());
  MBI_CHECK_MSG(id == page_of_transaction_.size(),
                "transactions must be appended in id order");
  std::vector<PageId>& pages = bucket_pages_[bucket];
  if (!pages.empty() &&
      page_store_.TryAppendToPage(pages.back(), id, serialized_size)) {
    page_of_transaction_.push_back(pages.back());
    return;
  }
  PageId fresh = page_store_.AppendToFreshPage(id, serialized_size);
  pages.push_back(fresh);
  page_of_transaction_.push_back(fresh);
}

}  // namespace mbi
