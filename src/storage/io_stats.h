#ifndef MBI_STORAGE_IO_STATS_H_
#define MBI_STORAGE_IO_STATS_H_

#include <cstdint>

namespace mbi {

/// I/O accounting for the simulated disk.
///
/// The paper's evaluation metrics (pruning efficiency, percentage of
/// transactions accessed) are counting metrics over the disk-resident part of
/// the index; this struct is the ledger those counts flow through, so query
/// engines can report both logical (transactions fetched) and physical
/// (pages read, with and without buffering) costs.
struct IoStats {
  /// Physical page reads issued to the page store (buffer-pool misses when a
  /// pool is in front of the store, all reads otherwise).
  uint64_t pages_read = 0;

  /// Page reads that were absorbed by a buffer pool.
  uint64_t pages_cached = 0;

  /// Pages appended.
  uint64_t pages_written = 0;

  /// Logical transaction fetches (each transaction materialized from a page).
  uint64_t transactions_fetched = 0;

  /// Bytes transferred from "disk" (page-size granular).
  uint64_t bytes_read = 0;

  void Reset() { *this = IoStats(); }

  IoStats& operator+=(const IoStats& other) {
    pages_read += other.pages_read;
    pages_cached += other.pages_cached;
    pages_written += other.pages_written;
    transactions_fetched += other.transactions_fetched;
    bytes_read += other.bytes_read;
    return *this;
  }
};

}  // namespace mbi

#endif  // MBI_STORAGE_IO_STATS_H_
