#ifndef MBI_STORAGE_PAGE_STORE_H_
#define MBI_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/env.h"
#include "storage/io_stats.h"
#include "txn/transaction.h"
#include "util/metrics.h"
#include "util/status.h"

namespace mbi {

/// Identifier of a page within a PageStore.
using PageId = uint32_t;

/// A disk page holding whole serialized transactions.
///
/// Transactions are never split across pages (a basket of 5–15 items is tiny
/// next to a 4 KiB page), so a page is simply the list of transaction ids it
/// holds plus the byte accounting used to decide when it is full.
struct Page {
  std::vector<TransactionId> transaction_ids;
  uint32_t used_bytes = 0;
};

/// Append-only simulated disk of fixed-size pages.
///
/// The signature table keeps its 2^K entries in main memory but stores the
/// transaction lists on disk (paper Figure 1); this class is that disk. Every
/// read is tallied in an IoStats ledger so experiments can report physical
/// I/O. A serialized transaction costs `4 + 4 * |items|` bytes (length prefix
/// plus one 32-bit id per item).
class PageStore {
 public:
  /// `page_size_bytes` must be large enough for at least one small
  /// transaction; 4096 mimics a classic disk page.
  explicit PageStore(uint32_t page_size_bytes = 4096);

  /// Serialized size of a transaction in bytes.
  static uint32_t SerializedSize(const Transaction& transaction);

  /// Appends `id` to the current tail page, opening a new page when the tail
  /// is full. Returns the page the transaction landed on.
  PageId Append(TransactionId id, uint32_t serialized_size);

  /// Forces subsequent appends onto a fresh page (used to align bucket
  /// boundaries so one bucket never shares a page with another).
  void SealCurrentPage();

  /// Appends `id` to an existing page if it still has room; returns false
  /// (and leaves the page untouched) when it does not fit. Used by dynamic
  /// inserts to extend a bucket's last page.
  bool TryAppendToPage(PageId page, TransactionId id,
                       uint32_t serialized_size);

  /// Opens a brand-new page holding only `id` (never extends the tail page —
  /// the tail may belong to a different bucket). Returns the new page.
  PageId AppendToFreshPage(TransactionId id, uint32_t serialized_size);

  /// Reads a page, charging one physical page read to `stats` (if non-null)
  /// and to the mbi.pagestore.pages_read counter when metrics are wired.
  const Page& Read(PageId page, IoStats* stats) const;

  /// Enables physical-I/O counters (mbi.pagestore.*) in `registry`; nullptr
  /// disables. Reads and page openings after this call are counted; the
  /// handles survive copies of the store.
  void set_metrics(MetricsRegistry* registry);

  /// Page count.
  size_t size() const { return pages_.size(); }

  uint32_t page_size_bytes() const { return page_size_bytes_; }

  /// All pages, for serialization. Bypasses I/O accounting — never use this
  /// on a query path.
  const std::vector<Page>& pages() const { return pages_; }

  /// Reassembles a store from serialized pages (deserialization only).
  static PageStore FromPages(uint32_t page_size_bytes,
                             std::vector<Page> pages);

  /// Spills the whole simulated disk to `path` as a standalone durable
  /// artifact (magic "MBPG", checksummed sections, atomic rename — see
  /// storage/format.h). Lets a long-running build checkpoint its page image
  /// independently of the directory that references it.
  [[nodiscard]] Status SpillToFile(const std::string& path,
                                   Env* env = Env::Default()) const;

  /// Reloads a spill written by SpillToFile. Errors: kNotFound, kCorruption
  /// (checksum / truncation / page accounting violations), kIoError.
  [[nodiscard]] static StatusOr<PageStore> LoadSpillFile(
      const std::string& path, Env* env = Env::Default());

 private:
  uint32_t page_size_bytes_;
  std::vector<Page> pages_;
  Counter* pages_read_metric_ = nullptr;
  Counter* pages_written_metric_ = nullptr;
};

}  // namespace mbi

#endif  // MBI_STORAGE_PAGE_STORE_H_
