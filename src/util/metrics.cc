#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>

#include "util/macros.h"

namespace mbi {
namespace {

/// Atomic add on a double via CAS (std::atomic<double>::fetch_add is C++20
/// but not universally lock-free-optimized; the loop is equivalent).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double expected = target->load(std::memory_order_relaxed);
  while (expected < value &&
         !target->compare_exchange_weak(expected, value,
                                        std::memory_order_relaxed)) {
  }
}

bool ValidMetricName(const std::string& name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_';
    if (!ok) return false;
  }
  return name.find("..") == std::string::npos;
}

/// Shortest %g form that is still stable across runs of the same build.
std::string JsonNumber(double value) {
  if (std::isinf(value)) return value > 0 ? "\"+inf\"" : "\"-inf\"";
  if (std::isnan(value)) return "\"nan\"";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void Gauge::Add(double delta) { AtomicAdd(&value_, delta); }

// --- LatencyHistogram ---

size_t LatencyHistogram::BucketIndex(double value) {
  if (!(value > 1.0)) return 0;  // Also catches NaN.
  const double ceiling = std::ceil(value);
  if (ceiling >= std::ldexp(1.0, static_cast<int>(kFiniteBuckets))) {
    return kFiniteBuckets;  // Overflow bucket.
  }
  const auto v = static_cast<uint64_t>(ceiling);
  const size_t index = static_cast<size_t>(std::bit_width(v - 1));
  return std::min(index, kFiniteBuckets);
}

void LatencyHistogram::Record(double value) {
  const double clamped = value > 0.0 ? value : 0.0;  // NaN/negative -> 0.
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, clamped);
  AtomicMax(&max_, clamped);
}

double LatencyHistogram::Snapshot::BucketUpperBound(size_t i) {
  MBI_CHECK_LT(i, kNumBuckets);
  if (i == kFiniteBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i));
}

double LatencyHistogram::Snapshot::Quantile(double q) const {
  MBI_CHECK(q >= 0.0 && q <= 1.0);
  if (count == 0) return 0.0;
  const auto rank = static_cast<uint64_t>(std::ceil(
      q * static_cast<double>(count)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      return i == kFiniteBuckets ? max : BucketUpperBound(i);
    }
  }
  return max;
}

LatencyHistogram::Snapshot LatencyHistogram::GetSnapshot() const {
  Snapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

// --- QueryTrace / ScopedTimer ---

QueryTrace::QueryTrace() : epoch_us_(SteadyNowUs()) {}

void QueryTrace::Clear() {
  spans_.clear();
  epoch_us_ = SteadyNowUs();
}

void QueryTrace::Record(const char* name, double start_us, double end_us) {
  TraceSpan span;
  span.name = name;
  span.start_us = start_us - epoch_us_;
  span.duration_us = end_us - start_us;
  spans_.push_back(std::move(span));
}

std::string QueryTrace::ToString() const {
  std::string out;
  char line[160];
  for (const TraceSpan& span : spans_) {
    std::snprintf(line, sizeof(line), "span=%s start=%.1fus dur=%.1fus\n",
                  span.name.c_str(), span.start_us, span.duration_us);
    out += line;
  }
  return out;
}

ScopedTimer::~ScopedTimer() {
  const double end_us = SteadyNowUs();
  if (histogram_ != nullptr) {
    histogram_->Record(end_us - start_us_);
  }
  if (trace_ != nullptr && span_name_ != nullptr) {
    trace_->Record(span_name_, start_us_, end_us);
  }
}

double ScopedTimer::ElapsedUs() const { return SteadyNowUs() - start_us_; }

// --- MetricsRegistry ---

MetricsRegistry* MetricsRegistry::Global() {
  // Leaked singleton: metrics outlive every static destructor.
  static MetricsRegistry* instance =
      new MetricsRegistry();  // mbi-lint: allow(no-naked-new)
  return instance;
}

template <typename Metric, typename Map>
Metric* MetricsRegistry::Register(Map* target, const std::string& name,
                                  const std::string& unit,
                                  const std::string& help,
                                  bool taken_elsewhere) {
  MBI_CHECK_MSG(ValidMetricName(name), "invalid metric name");
  auto it = target->find(name);
  if (it != target->end()) {
    MBI_CHECK_MSG(it->second.unit == unit,
                  "metric re-registered with a different unit");
    return it->second.metric.get();
  }
  MBI_CHECK_MSG(!taken_elsewhere,
                "metric name already registered with a different kind");
  auto& entry = (*target)[name];
  entry.unit = unit;
  entry.help = help;
  // Metric constructors are private (instances only exist inside the
  // registry), which puts make_unique out of reach.
  entry.metric.reset(new Metric());  // mbi-lint: allow(no-naked-new)
  return entry.metric.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& unit,
                                     const std::string& help) {
  MutexLock lock(&mu_);
  return Register<Counter>(&counters_, name, unit, help,
                           gauges_.count(name) != 0 ||
                               histograms_.count(name) != 0);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& unit,
                                 const std::string& help) {
  MutexLock lock(&mu_);
  return Register<Gauge>(&gauges_, name, unit, help,
                         counters_.count(name) != 0 ||
                             histograms_.count(name) != 0);
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& unit,
                                                const std::string& help) {
  MutexLock lock(&mu_);
  return Register<LatencyHistogram>(&histograms_, name, unit, help,
                                    counters_.count(name) != 0 ||
                                        gauges_.count(name) != 0);
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.metric.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.metric.get();
}

const LatencyHistogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.metric.get();
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, entry] : counters_) {
    entry.metric->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, entry] : gauges_) {
    entry.metric->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, entry] : histograms_) {
    LatencyHistogram* histogram = entry.metric.get();
    for (auto& bucket : histogram->buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    histogram->count_.store(0, std::memory_order_relaxed);
    histogram->sum_.store(0.0, std::memory_order_relaxed);
    histogram->max_.store(0.0, std::memory_order_relaxed);
  }
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\n  \"schema\": \"mbi.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, entry] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    \"%s\": {\"unit\": \"%s\", \"value\": %llu}",
                  JsonEscape(name).c_str(), JsonEscape(entry.unit).c_str(),
                  static_cast<unsigned long long>(entry.metric->value()));
    out += line;
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, entry] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": {\"unit\": \"" +
           JsonEscape(entry.unit) +
           "\", \"value\": " + JsonNumber(entry.metric->value()) + "}";
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, entry] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    const LatencyHistogram::Snapshot snapshot = entry.metric->GetSnapshot();
    char head[256];
    std::snprintf(head, sizeof(head),
                  "    \"%s\": {\"unit\": \"%s\", \"count\": %llu, "
                  "\"sum\": %s, \"max\": %s, \"buckets\": [",
                  JsonEscape(name).c_str(), JsonEscape(entry.unit).c_str(),
                  static_cast<unsigned long long>(snapshot.count),
                  JsonNumber(snapshot.sum).c_str(),
                  JsonNumber(snapshot.max).c_str());
    out += head;
    for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      if (i > 0) out += ", ";
      char bucket[96];
      std::snprintf(
          bucket, sizeof(bucket), "{\"le\": %s, \"count\": %llu}",
          JsonNumber(LatencyHistogram::Snapshot::BucketUpperBound(i)).c_str(),
          static_cast<unsigned long long>(snapshot.buckets[i]));
      out += bucket;
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

}  // namespace mbi
