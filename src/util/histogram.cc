#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/macros.h"

namespace mbi {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sorted_valid_ = false;
}

void Histogram::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::Min() const {
  MBI_CHECK(!samples_.empty());
  EnsureSorted();
  return sorted_.front();
}

double Histogram::Max() const {
  MBI_CHECK(!samples_.empty());
  EnsureSorted();
  return sorted_.back();
}

double Histogram::Mean() const {
  MBI_CHECK(!samples_.empty());
  double sum = 0.0;
  for (double value : samples_) sum += value;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::StdDev() const {
  MBI_CHECK(!samples_.empty());
  double mean = Mean();
  double sum_sq = 0.0;
  for (double value : samples_) sum_sq += (value - mean) * (value - mean);
  return std::sqrt(sum_sq / static_cast<double>(samples_.size()));
}

double Histogram::Quantile(double q) const {
  MBI_CHECK(!samples_.empty());
  MBI_CHECK(q >= 0.0 && q <= 1.0);
  EnsureSorted();
  if (sorted_.size() == 1) return sorted_[0];
  double position = q * static_cast<double>(sorted_.size() - 1);
  size_t low = static_cast<size_t>(position);
  if (low + 1 >= sorted_.size()) return sorted_.back();
  double fraction = position - static_cast<double>(low);
  return sorted_[low] * (1.0 - fraction) + sorted_[low + 1] * fraction;
}

std::string Histogram::Summary(const std::string& unit) const {
  if (samples_.empty()) return "count=0";
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "count=%zu mean=%.3g%s p50=%.3g%s p95=%.3g%s p99=%.3g%s "
                "max=%.3g%s",
                count(), Mean(), unit.c_str(), Quantile(0.5), unit.c_str(),
                Quantile(0.95), unit.c_str(), Quantile(0.99), unit.c_str(),
                Max(), unit.c_str());
  return buffer;
}

}  // namespace mbi
