#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/macros.h"

namespace mbi {

Histogram::Histogram(const Histogram& other) {
  MutexLock lock(&other.mu_);
  samples_ = other.samples_;
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  std::vector<double> copied;
  {
    MutexLock lock(&other.mu_);
    copied = other.samples_;
  }
  MutexLock lock(&mu_);
  samples_ = std::move(copied);
  sorted_valid_ = false;
  return *this;
}

void Histogram::Add(double value) {
  MutexLock lock(&mu_);
  samples_.push_back(value);
  sorted_valid_ = false;
}

size_t Histogram::count() const {
  MutexLock lock(&mu_);
  return samples_.size();
}

bool Histogram::empty() const {
  MutexLock lock(&mu_);
  return samples_.empty();
}

void Histogram::EnsureSortedLocked() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::Min() const {
  MutexLock lock(&mu_);
  MBI_CHECK(!samples_.empty());
  EnsureSortedLocked();
  return sorted_.front();
}

double Histogram::Max() const {
  MutexLock lock(&mu_);
  MBI_CHECK(!samples_.empty());
  EnsureSortedLocked();
  return sorted_.back();
}

double Histogram::MeanLocked() const {
  MBI_CHECK(!samples_.empty());
  double sum = 0.0;
  for (double value : samples_) sum += value;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::Mean() const {
  MutexLock lock(&mu_);
  return MeanLocked();
}

double Histogram::StdDev() const {
  MutexLock lock(&mu_);
  MBI_CHECK(!samples_.empty());
  const double mean = MeanLocked();
  double sum_sq = 0.0;
  for (double value : samples_) sum_sq += (value - mean) * (value - mean);
  return std::sqrt(sum_sq / static_cast<double>(samples_.size()));
}

double Histogram::QuantileLocked(double q) const {
  MBI_CHECK(!samples_.empty());
  MBI_CHECK(q >= 0.0 && q <= 1.0);
  EnsureSortedLocked();
  if (sorted_.size() == 1) return sorted_[0];
  const double position = q * static_cast<double>(sorted_.size() - 1);
  const size_t low = static_cast<size_t>(position);
  if (low + 1 >= sorted_.size()) return sorted_.back();
  const double fraction = position - static_cast<double>(low);
  return sorted_[low] * (1.0 - fraction) + sorted_[low + 1] * fraction;
}

double Histogram::Quantile(double q) const {
  MutexLock lock(&mu_);
  return QuantileLocked(q);
}

std::string Histogram::Summary(const std::string& unit) const {
  MutexLock lock(&mu_);
  if (samples_.empty()) return "count=0";
  EnsureSortedLocked();
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "count=%zu mean=%.3g%s p50=%.3g%s p95=%.3g%s p99=%.3g%s "
                "max=%.3g%s",
                samples_.size(), MeanLocked(), unit.c_str(),
                QuantileLocked(0.5), unit.c_str(), QuantileLocked(0.95),
                unit.c_str(), QuantileLocked(0.99), unit.c_str(),
                sorted_.back(), unit.c_str());
  return buffer;
}

}  // namespace mbi
