#include "util/table_printer.h"

#include <algorithm>
#include <cinttypes>

#include "util/macros.h"

namespace mbi {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  MBI_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  MBI_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Format(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TablePrinter::Format(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  return buffer;
}

void TablePrinter::Print(FILE* out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  std::string rule(total, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace mbi
