#ifndef MBI_UTIL_RNG_H_
#define MBI_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mbi {

/// Deterministic pseudo-random number generator (xoshiro256** seeded through
/// splitmix64) with the sampling primitives needed by the synthetic data
/// generator of Aggarwal, Wolf & Yu (SIGMOD 1999), Section 5.
///
/// All randomness in this repository flows through this class so that every
/// experiment is reproducible bit-for-bit from its seed. The generator is
/// copyable: copying forks the stream (both copies produce the same future
/// values), which tests use to replay sequences.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Any seed value is acceptable;
  /// splitmix64 whitens it into the full 256-bit state.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextUint64();

  /// Returns a uniform integer in `[0, bound)`. `bound` must be positive.
  /// Uses rejection sampling, so the result is exactly uniform.
  uint64_t UniformUint64(uint64_t bound);

  /// Returns a uniform integer in `[lo, hi]` (inclusive). Requires `lo <= hi`.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in `[0, 1)` with 53 bits of precision.
  double UniformDouble();

  /// Returns true with probability `p` (clamped to `[0, 1]`).
  bool Bernoulli(double p);

  /// Samples a Poisson random variable with the given mean (`mean > 0`).
  /// Uses Knuth's product method for small means and PTRS transformed
  /// rejection for large means, so it is safe for any mean the generator uses.
  int Poisson(double mean);

  /// Samples an exponential random variable with the given mean (`mean > 0`).
  double Exponential(double mean);

  /// Samples a geometric random variable counting the number of failures
  /// before the first success, success probability `p` in (0, 1]. Returns 0
  /// when `p == 1`.
  int Geometric(double p);

  /// Samples a standard normal via Box-Muller (no state caching, both values
  /// derived on demand).
  double StandardNormal();

  /// Samples a normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Draws `count` distinct values uniformly from `[0, population)` using
  /// Floyd's algorithm; result is in ascending order.
  /// Requires `count <= population`.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t population,
                                                 uint64_t count);

 private:
  uint64_t state_[4];
};

}  // namespace mbi

#endif  // MBI_UTIL_RNG_H_
