#ifndef MBI_UTIL_FLAGS_H_
#define MBI_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mbi {

/// Minimal command-line flag parser for the example and benchmark binaries.
///
/// Accepts `--name=value` and `--name value` forms plus bare `--name` for
/// booleans. Unknown flags abort with a usage message listing registered
/// flags, so typos in experiment parameters fail loudly instead of silently
/// running the default configuration.
class FlagParser {
 public:
  /// `description` is printed at the top of `--help` output.
  explicit FlagParser(std::string description);

  /// Registers flags. Each returns a pointer whose pointee is updated by
  /// Parse(); the pointee keeps `default_value` if the flag is absent.
  void AddInt64(const std::string& name, int64_t default_value,
                const std::string& help, int64_t* out);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help, double* out);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help, std::string* out);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help, bool* out);

  /// Parses argv. On `--help` prints usage and returns false (caller should
  /// exit 0). Aborts on malformed or unknown flags.
  bool Parse(int argc, char** argv);

 private:
  enum class Type { kInt64, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string default_text;
    void* target;
  };

  void PrintUsage() const;
  void SetValue(const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, Flag> flags_;
};

}  // namespace mbi

#endif  // MBI_UTIL_FLAGS_H_
