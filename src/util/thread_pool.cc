#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/macros.h"

namespace mbi {

ThreadPool::ThreadPool(size_t num_threads) {
  MBI_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  MBI_CHECK(task != nullptr);
  {
    MutexLock lock(&mutex_);
    MBI_CHECK_MSG(!shutting_down_, "submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mutex_);
  while (in_flight_ != 0) all_done_.Wait(&mutex_);
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                             size_t chunk) {
  if (count == 0) return;
  if (chunk == 0) {
    // Default: ~8 grabs per worker, so dynamic balancing survives uneven
    // costs but one-index-per-grab lock traffic never dominates tiny bodies.
    chunk = std::max<size_t>(1, count / (workers_.size() * 8));
  }
  // Shard by an atomic cursor so uneven task costs balance dynamically; each
  // grab claims `chunk` consecutive indices. The cursor lives on this frame:
  // Wait() below outlives every worker lambda, and keeping it off the heap
  // keeps the multi-target query path allocation-free.
  std::atomic<size_t> cursor{0};
  const size_t shards = std::min((count + chunk - 1) / chunk, workers_.size());
  for (size_t s = 0; s < shards; ++s) {
    Submit([&cursor, count, chunk, &fn] {
      while (true) {
        const size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= count) break;
        const size_t end = std::min(count, begin + chunk);
        for (size_t index = begin; index < end; ++index) fn(index);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutting_down_ && tasks_.empty()) work_available_.Wait(&mutex_);
      if (tasks_.empty()) return;  // Shutting down and drained.
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(&mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace mbi
