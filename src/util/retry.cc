#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace mbi {

double BackoffDelayMs(const RetryOptions& options, int next_attempt, Rng* rng) {
  double delay = options.initial_backoff_ms;
  for (int i = 1; i < next_attempt && delay < options.max_backoff_ms; ++i) {
    delay *= 2.0;
  }
  delay = std::min(delay, options.max_backoff_ms);
  if (rng != nullptr && options.jitter > 0.0) {
    const double factor =
        1.0 + options.jitter * (2.0 * rng->UniformDouble() - 1.0);
    delay *= factor;
  }
  return std::max(delay, 0.0);
}

void SleepForMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace mbi
