#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

namespace mbi {

double BackoffDelayMs(const RetryOptions& options, int next_attempt, Rng* rng) {
  double delay = options.initial_backoff_ms;
  for (int i = 1; i < next_attempt && delay < options.max_backoff_ms; ++i) {
    delay *= 2.0;
  }
  delay = std::min(delay, options.max_backoff_ms);
  if (rng != nullptr && options.jitter > 0.0) {
    const double factor =
        1.0 + options.jitter * (2.0 * rng->UniformDouble() - 1.0);
    delay *= factor;
  }
  return std::max(delay, 0.0);
}

void SleepForMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

double RetryAfterHintMs(const Status& status) {
  static constexpr char kKey[] = "retry_after_ms=";
  const std::string& message = status.message();
  const size_t pos = message.rfind(kKey);
  if (pos == std::string::npos) return 0.0;
  const char* begin = message.c_str() + pos + sizeof(kKey) - 1;
  char* end = nullptr;
  const double hint = std::strtod(begin, &end);
  // A malformed or negative hint reads as "no hint" — never let a mangled
  // message turn into a surprise multi-second sleep.
  if (end == begin || !(hint > 0.0) || hint > 60'000.0) return 0.0;
  return hint;
}

}  // namespace mbi
