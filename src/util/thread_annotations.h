#ifndef MBI_UTIL_THREAD_ANNOTATIONS_H_
#define MBI_UTIL_THREAD_ANNOTATIONS_H_

/// \file
/// Clang thread-safety-analysis attribute macros (no-ops on other
/// compilers). Annotating the lock discipline turns data races into build
/// breaks: `clang++ -Wthread-safety -Werror` proves at compile time that
/// every access to an `MBI_GUARDED_BY(mu)` field happens with `mu` held,
/// instead of hoping TSan schedules the racing interleaving at test time.
///
/// The annotations attach to `mbi::Mutex` / `mbi::MutexLock` (util/mutex.h),
/// the repo-wide capability wrapper over std::mutex. Usage:
///
///   class Registry {
///    public:
///     void Add(Item item) {
///       MutexLock lock(&mu_);
///       items_.push_back(std::move(item));     // OK: mu_ is held.
///     }
///    private:
///     mutable Mutex mu_;
///     std::vector<Item> items_ MBI_GUARDED_BY(mu_);
///   };
///
/// Reading `items_` without the lock is then a compile error under Clang.
/// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the
/// analysis rules; the macro names follow the convention used there (and in
/// abseil), prefixed MBI_ to stay inside this project's namespace.
///
/// CI runs a dedicated `thread-safety` job (Clang, -Wthread-safety -Werror)
/// plus a negative-compile check (tools/check_thread_safety.sh) proving the
/// analysis actually fires on an unguarded access.

#if defined(__clang__) && (!defined(SWIG))
#define MBI_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define MBI_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a type to be a capability (lockable); `name` appears in
/// diagnostics ("mutex", "shared_mutex", ...).
#define MBI_CAPABILITY(name) \
  MBI_THREAD_ANNOTATION_ATTRIBUTE(capability(name))

/// Declares an RAII type whose lifetime scopes a capability acquisition.
#define MBI_SCOPED_CAPABILITY \
  MBI_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member is protected by the given capability: reads require the
/// capability held (shared or exclusive), writes require it exclusive.
#define MBI_GUARDED_BY(x) MBI_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define MBI_PT_GUARDED_BY(x) MBI_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the listed capabilities held exclusively on entry (and
/// does not release them).
#define MBI_REQUIRES(...) \
  MBI_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities held at least shared.
#define MBI_REQUIRES_SHARED(...) \
  MBI_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively and holds it on return.
#define MBI_ACQUIRE(...) \
  MBI_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared.
#define MBI_ACQUIRE_SHARED(...) \
  MBI_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive or shared).
#define MBI_RELEASE(...) \
  MBI_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define MBI_RELEASE_SHARED(...) \
  MBI_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function attempts acquisition; holds the capability iff the return value
/// equals `ret` (first argument).
#define MBI_TRY_ACQUIRE(...) \
  MBI_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (deadlock
/// prevention: it acquires them itself).
#define MBI_EXCLUDES(...) \
  MBI_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the given capability
/// (for accessors exposing a member mutex).
#define MBI_RETURN_CAPABILITY(x) \
  MBI_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Asserts (at runtime, from the analysis' point of view) that the calling
/// thread already holds the capability.
#define MBI_ASSERT_CAPABILITY(x) \
  MBI_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the discipline cannot be expressed.
#define MBI_NO_THREAD_SAFETY_ANALYSIS \
  MBI_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // MBI_UTIL_THREAD_ANNOTATIONS_H_
