#ifndef MBI_UTIL_MUTEX_H_
#define MBI_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace mbi {

/// Annotated mutual-exclusion capability over std::mutex.
///
/// Every lock in src/ is one of these (policy enforced by the CI
/// thread-safety job): pairing the lock with MBI_GUARDED_BY field
/// annotations lets `clang++ -Wthread-safety -Werror` prove the lock
/// discipline at compile time, so an unguarded access to shared state is a
/// build break instead of a flaky TSan reproduction. The wrapper is
/// zero-cost: all members are inline forwards and the only data member is
/// the std::mutex itself.
///
/// Prefer the RAII MutexLock; Lock()/Unlock() exist for the rare
/// conditional-release shapes and for CondVar's internals.
class MBI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MBI_ACQUIRE() { mu_.lock(); }
  void Unlock() MBI_RELEASE() { mu_.unlock(); }
  bool TryLock() MBI_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Analysis-only assertion that the calling thread holds this mutex; use
  /// in helpers that are documented "caller must hold mu_" but are reached
  /// through a pointer the analysis cannot follow. No runtime effect.
  void AssertHeld() const MBI_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped acquisition of a Mutex (the std::lock_guard shape, carrying
/// the MBI_SCOPED_CAPABILITY annotation so the analysis tracks the scope).
class MBI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MBI_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() MBI_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable bound to mbi::Mutex.
///
/// Wait() is annotated MBI_REQUIRES(mu): the analysis models it as "mutex
/// held across the call", which matches the caller-visible contract (Wait
/// atomically releases while blocked and always reacquires before
/// returning). Use the classic predicate loop:
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(&mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). Caller must hold `mu`;
  /// returns with `mu` held.
  void Wait(Mutex* mu) MBI_REQUIRES(mu) {
    // Adopt the caller's hold so std::condition_variable can do its atomic
    // unlock-wait-relock, then release the unique_lock's ownership claim
    // without unlocking — the caller still holds the mutex afterwards.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Like Wait() but gives up after `timeout_ms` (relative, so no raw clock
  /// is consulted here — time stays mockable everywhere else). Returns false
  /// on timeout, true when notified (or spuriously woken) in time. Same
  /// contract: caller holds `mu`, returns with `mu` held. Callers must
  /// re-check their predicate either way.
  bool WaitFor(Mutex* mu, double timeout_ms) MBI_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                               timeout_ms < 0.0 ? 0.0 : timeout_ms));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mbi

#endif  // MBI_UTIL_MUTEX_H_
