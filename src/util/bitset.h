#ifndef MBI_UTIL_BITSET_H_
#define MBI_UTIL_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/macros.h"

namespace mbi {

/// Fixed-size dynamic bitset with the bulk boolean-count operations the
/// binary R-tree baseline needs (its minimum bounding "rectangles" over
/// {0,1}^d are pairs of bitsets, and MINDIST reduces to popcounts of
/// AND-NOT combinations).
class Bitset {
 public:
  /// All-zeros bitset of `size` bits.
  explicit Bitset(size_t size = 0)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  bool Get(size_t index) const {
    MBI_CHECK(index < size_);
    return (words_[index >> 6] >> (index & 63)) & 1u;
  }

  /// Get() without the range check (debug builds still assert). For probe
  /// loops on query hot paths where the caller already guarantees the index
  /// is in range (e.g. item ids validated at database insert time).
  bool GetUnchecked(size_t index) const {
    MBI_DCHECK(index < size_);
    return (words_[index >> 6] >> (index & 63)) & 1u;
  }

  void Set(size_t index) {
    MBI_CHECK(index < size_);
    words_[index >> 6] |= uint64_t{1} << (index & 63);
  }

  void Clear(size_t index) {
    MBI_CHECK(index < size_);
    words_[index >> 6] &= ~(uint64_t{1} << (index & 63));
  }

  void SetAll() {
    for (uint64_t& word : words_) word = ~uint64_t{0};
    TrimTail();
  }

  void ClearAll() {
    for (uint64_t& word : words_) word = 0;
  }

  /// Resizes to `size` bits, all zero. Keeps the word vector's capacity when
  /// the new size fits, so warm per-target reuse never touches the heap.
  void ResizeAndClear(size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
  }

  /// Number of set bits.
  size_t Count() const {
    size_t count = 0;
    for (uint64_t word : words_) {
      count += static_cast<size_t>(std::popcount(word));
    }
    return count;
  }

  /// In-place union / intersection (sizes must match).
  Bitset& operator|=(const Bitset& other);
  Bitset& operator&=(const Bitset& other);

  /// popcount(a & b).
  static size_t AndCount(const Bitset& a, const Bitset& b);

  /// popcount(a & ~b) — "bits of a missing from b".
  static size_t AndNotCount(const Bitset& a, const Bitset& b);

  /// popcount(a ^ b).
  static size_t XorCount(const Bitset& a, const Bitset& b);

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  void TrimTail() {
    size_t tail_bits = size_ & 63;
    if (tail_bits != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail_bits) - 1;
    }
  }

  size_t size_;
  std::vector<uint64_t> words_;
};

inline Bitset& Bitset::operator|=(const Bitset& other) {
  MBI_CHECK(size_ == other.size_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

inline Bitset& Bitset::operator&=(const Bitset& other) {
  MBI_CHECK(size_ == other.size_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

inline size_t Bitset::AndCount(const Bitset& a, const Bitset& b) {
  MBI_CHECK(a.size_ == b.size_);
  size_t count = 0;
  for (size_t w = 0; w < a.words_.size(); ++w) {
    count += static_cast<size_t>(std::popcount(a.words_[w] & b.words_[w]));
  }
  return count;
}

inline size_t Bitset::AndNotCount(const Bitset& a, const Bitset& b) {
  MBI_CHECK(a.size_ == b.size_);
  size_t count = 0;
  for (size_t w = 0; w < a.words_.size(); ++w) {
    count += static_cast<size_t>(std::popcount(a.words_[w] & ~b.words_[w]));
  }
  return count;
}

inline size_t Bitset::XorCount(const Bitset& a, const Bitset& b) {
  MBI_CHECK(a.size_ == b.size_);
  size_t count = 0;
  for (size_t w = 0; w < a.words_.size(); ++w) {
    count += static_cast<size_t>(std::popcount(a.words_[w] ^ b.words_[w]));
  }
  return count;
}

}  // namespace mbi

#endif  // MBI_UTIL_BITSET_H_
