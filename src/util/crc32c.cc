#include "util/crc32c.h"

#include <array>
#include <bit>
#include <cstring>

namespace mbi {
namespace {

constexpr uint32_t kPolynomial = 0x82F63B78u;  // CRC-32C, reflected.

/// Slice-by-8 tables: kTables[0] is the classic byte-at-a-time table;
/// kTables[n][b] advances byte `b` through n additional zero bytes, letting
/// the hot loop fold 8 input bytes per iteration with 8 independent lookups
/// instead of an 8-long dependency chain. Same CRC, ~5-8x the throughput —
/// what keeps the checksum walk under the CI perf gate (<5% of `mbi build`).
constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables[0][i];
    for (size_t slice = 1; slice < 8; ++slice) {
      crc = tables[0][crc & 0xFFu] ^ (crc >> 8);
      tables[slice][i] = crc;
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Align the tail loop below by consuming bytes until an 8-byte boundary.
  while (size > 0 && (reinterpret_cast<uintptr_t>(bytes) & 7u) != 0) {
    crc = kTables[0][(crc ^ *bytes++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  // The word-at-a-time fold relies on little-endian layout putting the
  // first input byte in the low bits of `lo` (the reflected CRC bit order);
  // big-endian targets take the byte loop below instead.
  if constexpr (std::endian::native == std::endian::little) {
    while (size >= 8) {
      uint32_t lo, hi;
      std::memcpy(&lo, bytes, sizeof(lo));
      std::memcpy(&hi, bytes + 4, sizeof(hi));
      lo ^= crc;
      crc = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
            kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
            kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
            kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
      bytes += 8;
      size -= 8;
    }
  }
  while (size > 0) {
    crc = kTables[0][(crc ^ *bytes++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

}  // namespace mbi
