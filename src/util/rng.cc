#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/macros.h"

namespace mbi {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  MBI_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of `bound` that fits.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t value = NextUint64();
    if (value >= threshold) return value % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MBI_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

int Rng::Poisson(double mean) {
  MBI_CHECK(mean > 0.0);
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    double product = 1.0;
    int count = -1;
    do {
      ++count;
      product *= UniformDouble();
    } while (product > limit);
    return count;
  }
  // Large mean: normal approximation with continuity correction is adequate
  // for the generator's use (transaction / itemset sizes), clamped at zero.
  double value = Normal(mean, std::sqrt(mean));
  return value < 0.0 ? 0 : static_cast<int>(value + 0.5);
}

double Rng::Exponential(double mean) {
  MBI_CHECK(mean > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

int Rng::Geometric(double p) {
  MBI_CHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return static_cast<int>(std::floor(std::log(u) / std::log1p(-p)));
}

double Rng::StandardNormal() {
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * StandardNormal();
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t population,
                                                    uint64_t count) {
  MBI_CHECK(count <= population);
  // Floyd's algorithm: O(count) draws, exact uniformity.
  std::set<uint64_t> chosen;
  for (uint64_t j = population - count; j < population; ++j) {
    uint64_t t = UniformUint64(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return std::vector<uint64_t>(chosen.begin(), chosen.end());
}

}  // namespace mbi
