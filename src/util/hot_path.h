// MBI_HOT: the query hot-path annotation.
//
// A function marked MBI_HOT is part of the steady-state-zero-allocation
// query path (DESIGN.md §6, §10). The contract:
//
//   * It may GROW caller-owned reusable buffers (QueryContext members,
//     caller scratch vectors) — growth amortizes to zero once the context
//     is warm, and the dynamic gate (util/alloc_guard.h) verifies exactly
//     that: after a warm-up query, repeat queries perform zero heap
//     allocations.
//   * It may NOT allocate per call: no new-expressions, no
//     make_unique/make_shared, no malloc, no std::to_string, and no local
//     owning containers (a local std::vector allocates every call the
//     moment it holds anything).
//
// Enforcement is two-sided and cross-checking:
//   * statically, tools/mbi_lint.py rules `no-alloc-in-hot` and
//     `no-unbounded-container-in-hot` scan MBI_HOT function bodies
//     (including lambdas defined inside them);
//   * dynamically, ScopedAllocationBan in query_context_test asserts the
//     warm steady state allocates nothing at all — catching allocations
//     the linter can't see (inside callees, inside libstdc++).
//
// The macro itself expands to the `hot` attribute so the annotation also
// feeds the optimizer (block placement / inlining heuristics); the lint
// engine keys on the literal token `MBI_HOT`, so the annotation must not
// be spelled through another macro.

#ifndef MBI_UTIL_HOT_PATH_H_
#define MBI_UTIL_HOT_PATH_H_

#if defined(__GNUC__) || defined(__clang__)
#define MBI_HOT __attribute__((hot))
#else
#define MBI_HOT
#endif

#endif  // MBI_UTIL_HOT_PATH_H_
