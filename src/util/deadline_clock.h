#ifndef MBI_UTIL_DEADLINE_CLOCK_H_
#define MBI_UTIL_DEADLINE_CLOCK_H_

// The time seam for query deadlines, mirroring the storage `Env` seam: all
// wall-clock reads in the query stack flow through a DeadlineClock so tests
// can expire budgets deterministically (ManualClock) instead of sleeping.
//
// This file is also the *only* place allowed to call
// std::chrono::steady_clock::now() directly (mbi-lint rule `no-raw-clock`);
// everything else — metrics timers, stopwatches, admission queues — reads
// time through SteadyNowUs() or a DeadlineClock*. Keeping the raw clock
// confined here is what makes every time-dependent behavior mockable.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mbi {

/// Monotonic wall-clock microseconds since an arbitrary process-local epoch.
/// The single sanctioned raw-clock read; inline so hot-path timers
/// (ScopedTimer, Stopwatch) pay exactly one clock read and no virtual call.
inline double SteadyNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Mockable monotonic clock. Budget expiry checks call NowUs() through this
/// interface; production code uses Real() (a thin wrapper over
/// SteadyNowUs()), tests inject a ManualClock to script expiry.
///
/// Implementations must be thread-safe: batch queries share one clock across
/// worker threads.
class DeadlineClock {
 public:
  virtual ~DeadlineClock() = default;

  /// Monotonic microseconds. Must never decrease.
  virtual double NowUs() const = 0;

  /// The process-wide real clock (never null, never deleted).
  static const DeadlineClock* Real();
};

/// Deterministic test clock: time advances only when told to (Advance) or,
/// optionally, by a fixed amount per NowUs() read (auto-advance), which lets
/// a single-threaded test walk a query into its deadline after an exact
/// number of budget checks. Thread-safe via a single atomic counter.
class ManualClock : public DeadlineClock {
 public:
  explicit ManualClock(double start_us = 0.0,
                       double auto_advance_us = 0.0)
      : now_half_us_(static_cast<int64_t>(start_us * 2.0)),
        auto_advance_half_us_(static_cast<int64_t>(auto_advance_us * 2.0)) {}

  double NowUs() const override {
    // fetch_add even when auto-advance is zero: one atomic RMW keeps the
    // "read then advance" step indivisible under TSan.
    const int64_t before =
        now_half_us_.fetch_add(auto_advance_half_us_, std::memory_order_relaxed);
    return static_cast<double>(before) / 2.0;
  }

  void AdvanceUs(double delta_us) {
    now_half_us_.fetch_add(static_cast<int64_t>(delta_us * 2.0),
                           std::memory_order_relaxed);
  }

 private:
  // Half-microsecond integer ticks: atomic<double> has no fetch_add until
  // C++20 library support is universal, and half-ticks keep 0.5us
  // auto-advance steps exact.
  mutable std::atomic<int64_t> now_half_us_;
  const int64_t auto_advance_half_us_;
};

}  // namespace mbi

#endif  // MBI_UTIL_DEADLINE_CLOCK_H_
