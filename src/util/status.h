#ifndef MBI_UTIL_STATUS_H_
#define MBI_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/macros.h"

namespace mbi {

/// Canonical error space for every fallible operation in the storage and
/// persistence layer. The codes are deliberately coarse — callers branch on
/// *category* (retry? quarantine? report and exit?), not on the exact cause,
/// which lives in the human-readable message.
enum class StatusCode : int {
  kOk = 0,
  /// The caller passed something unusable (e.g. an index that does not match
  /// the database it is opened against). Retrying cannot help.
  kInvalidArgument = 1,
  /// The artifact does not exist.
  kNotFound = 2,
  /// The artifact exists but its bytes are wrong: bad magic, failed
  /// checksum, truncation, or a structural invariant violation. Loaders must
  /// return this (never crash, never succeed) for arbitrary corrupt input.
  kCorruption = 3,
  /// The operating system refused the I/O for a non-specific reason.
  kIoError = 4,
  /// The device is full (ENOSPC and friends).
  kNoSpace = 5,
  /// A transient condition (EAGAIN-style); retrying with backoff may
  /// succeed. This is the only code util/retry.h retries.
  kUnavailable = 6,
};

/// Short lowercase name for a code, used by Status::ToString().
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid argument";
    case StatusCode::kNotFound: return "not found";
    case StatusCode::kCorruption: return "corruption";
    case StatusCode::kIoError: return "io error";
    case StatusCode::kNoSpace: return "no space";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

/// Result of a fallible operation: a code plus a one-line message naming the
/// artifact and the failure ("corruption: /x/index.mbst: section 'pages':
/// checksum mismatch"). `[[nodiscard]]` on the class makes ignoring any
/// Status-returning call a compile warning — the seed's silent-`bool` era is
/// over.
class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is success.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status NoSpace(std::string message) {
    return Status(StatusCode::kNoSpace, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  /// For call sites that pick the code at runtime (fault injector, errno
  /// mapping). `code` must not be kOk.
  static Status FromCode(StatusCode code, std::string message) {
    MBI_CHECK_MSG(code != StatusCode::kOk,
                  "FromCode requires a non-OK status code");
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok", or "<code name>: <message>" — already a complete one-line
  /// diagnostic (messages carry the artifact path).
  std::string ToString() const {
    if (ok()) return "ok";
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  /// Explicit opt-out of [[nodiscard]] for the rare best-effort call
  /// (e.g. removing a temp file while already failing).
  void IgnoreError() const {}

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or the Status explaining why there is none. Storage is a
/// std::optional so move-only payloads (SignatureTable, file handles) work.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from an error Status (so `return Status::Corruption(...)`
  /// works in a StatusOr-returning function). Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    MBI_CHECK_MSG(!status_.ok(),
                  "StatusOr constructed from an OK status without a value");
  }
  /// Implicit from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }

  /// OK when a value is present; the construction error otherwise.
  const Status& status() const { return status_; }

  const T& value() const& {
    MBI_CHECK_MSG(ok(), "StatusOr::value() called on an error StatusOr");
    return *value_;
  }
  T& value() & {
    MBI_CHECK_MSG(ok(), "StatusOr::value() called on an error StatusOr");
    return *value_;
  }
  T&& value() && {
    MBI_CHECK_MSG(ok(), "StatusOr::value() called on an error StatusOr");
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK exactly when value_ holds a value.
  std::optional<T> value_;
};

}  // namespace mbi

/// Propagates a non-OK Status to the caller: `MBI_RETURN_IF_ERROR(file->
/// Append(...))`. The enclosing function must return Status (or StatusOr).
#define MBI_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::mbi::Status mbi_status_macro_ = (expr);     \
    if (!mbi_status_macro_.ok()) {                \
      return mbi_status_macro_;                   \
    }                                             \
  } while (0)

#define MBI_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define MBI_STATUS_MACRO_CONCAT_(x, y) MBI_STATUS_MACRO_CONCAT_INNER_(x, y)

/// Unwraps a StatusOr into `lhs` (which may declare a new variable),
/// propagating the error: `MBI_ASSIGN_OR_RETURN(auto file,
/// env->NewSequentialFile(path));`.
#define MBI_ASSIGN_OR_RETURN(lhs, expr)                                  \
  MBI_ASSIGN_OR_RETURN_IMPL_(                                            \
      MBI_STATUS_MACRO_CONCAT_(mbi_statusor_, __LINE__), lhs, expr)

#define MBI_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, expr) \
  auto statusor = (expr);                               \
  if (!statusor.ok()) {                                 \
    return statusor.status();                           \
  }                                                     \
  lhs = std::move(statusor).value()

#endif  // MBI_UTIL_STATUS_H_
