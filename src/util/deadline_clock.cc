#include "util/deadline_clock.h"

namespace mbi {

namespace {

class RealClock final : public DeadlineClock {
 public:
  double NowUs() const override { return SteadyNowUs(); }
};

}  // namespace

const DeadlineClock* DeadlineClock::Real() {
  // Intentionally leaked singleton: queries may hold the pointer past any
  // static-destruction order. mbi-lint: allow(no-naked-new)
  static const RealClock* real = new RealClock();
  return real;
}

}  // namespace mbi
