#ifndef MBI_UTIL_TABLE_PRINTER_H_
#define MBI_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace mbi {

/// Prints fixed-width aligned tables to a FILE*, used by the figure/table
/// benchmark harnesses to emit the same rows/series the paper reports.
///
/// Usage:
///   TablePrinter table({"DB size", "K=13", "K=14", "K=15"});
///   table.AddRow({"100000", "93.1", "95.2", "96.8"});
///   table.Print(stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` decimal places.
  static std::string Format(double value, int precision = 2);

  /// Convenience: formats an integer.
  static std::string Format(int64_t value);

  /// Renders the header, a separator, and all rows.
  void Print(FILE* out) const;

  /// Renders the table as comma-separated values (for downstream plotting).
  void PrintCsv(FILE* out) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mbi

#endif  // MBI_UTIL_TABLE_PRINTER_H_
