#ifndef MBI_UTIL_STOPWATCH_H_
#define MBI_UTIL_STOPWATCH_H_

#include "util/deadline_clock.h"

namespace mbi {

/// Wall-clock stopwatch used by the benchmark harnesses. Built on
/// SteadyNowUs() so the benchmark code never touches std::chrono clocks
/// directly (mbi-lint's no-raw-clock rule).
class Stopwatch {
 public:
  Stopwatch() : start_us_(SteadyNowUs()) {}

  /// Restarts timing from now.
  void Reset() { start_us_ = SteadyNowUs(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const { return (SteadyNowUs() - start_us_) / 1e6; }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  double start_us_;
};

}  // namespace mbi

#endif  // MBI_UTIL_STOPWATCH_H_
