#ifndef MBI_UTIL_THREAD_POOL_H_
#define MBI_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mbi {

/// Fixed-size worker pool used to run independent queries concurrently
/// (queries against a built SignatureTable are read-only, so a batch can be
/// answered in parallel without locking the index).
///
/// Lock discipline (proved by -Wthread-safety): `mutex_` guards the task
/// queue and the in-flight/shutdown state; tasks themselves always run with
/// the mutex released.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; pass std::thread::hardware_
  /// concurrency() for one per core).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task) MBI_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished.
  void Wait() MBI_EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }

  /// Runs `count` index-addressed tasks across the pool and waits:
  /// `fn(i)` is invoked exactly once for each i in [0, count).
  ///
  /// The range is dispatched in chunks (a shared atomic cursor advanced by
  /// `chunk` indices at a time) so small per-index bodies aren't dominated
  /// by atomic/queue traffic, while uneven per-index costs still balance
  /// dynamically. `chunk` of 0 picks a default that gives every worker
  /// several grabs. Must not be called from inside one of this pool's own
  /// tasks (the final wait would deadlock on the caller's unfinished task).
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                   size_t chunk = 0) MBI_EXCLUDES(mutex_);

 private:
  void WorkerLoop() MBI_EXCLUDES(mutex_);

  /// Immutable after the constructor returns (the vector is fully built
  /// before any caller can touch the pool), so unguarded.
  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ MBI_GUARDED_BY(mutex_);
  size_t in_flight_ MBI_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ MBI_GUARDED_BY(mutex_) = false;
};

}  // namespace mbi

#endif  // MBI_UTIL_THREAD_POOL_H_
