#ifndef MBI_UTIL_CRC32C_H_
#define MBI_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace mbi {

/// CRC-32C (Castagnoli polynomial 0x1EDC6A41, reflected 0x82F63B78) — the
/// checksum guarding every section of the durable artifact format
/// (storage/format.h). Chosen over plain CRC-32 for its better burst-error
/// detection; this is the same polynomial iSCSI, ext4, and LevelDB use, so
/// test vectors are abundant (Crc32c("123456789") == 0xE3069283).
///
/// Table-driven software implementation, byte at a time. Checksumming is a
/// negligible share of artifact save cost (the CI perf-smoke job gates it at
/// <5% of `mbi build` wall time), so no hardware CRC intrinsics are needed.
uint32_t Crc32c(const void* data, size_t size);

/// Extends a running checksum: Crc32cExtend(Crc32c(a, n), b, m) equals
/// Crc32c(ab, n + m). Seed a fresh stream with crc == 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

}  // namespace mbi

#endif  // MBI_UTIL_CRC32C_H_
