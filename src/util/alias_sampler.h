#ifndef MBI_UTIL_ALIAS_SAMPLER_H_
#define MBI_UTIL_ALIAS_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace mbi {

/// Samples indices `0..n-1` proportionally to fixed non-negative weights in
/// O(1) per draw (Walker/Vose alias method).
///
/// The synthetic data generator of the paper rolls an "L-sided weighted die"
/// (one side per potentially large itemset, weight drawn from Exp(1)) once or
/// more per generated transaction; with L = 2000 itemsets and hundreds of
/// thousands of transactions the O(1) draw matters.
class AliasSampler {
 public:
  /// Builds the alias table. `weights` must be non-empty and contain at least
  /// one strictly positive entry; negative weights are rejected.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in `[0, size())` with probability proportional to its
  /// weight.
  size_t Sample(Rng* rng) const;

  /// Number of sides of the die.
  size_t size() const { return probability_.size(); }

  /// Probability mass assigned to index `i` (normalized weight). Exposed for
  /// testing the table construction.
  double ProbabilityOf(size_t i) const;

 private:
  std::vector<double> probability_;  // Acceptance threshold per bucket.
  std::vector<uint32_t> alias_;      // Fallback index per bucket.
  std::vector<double> normalized_;   // Normalized input weights (for tests).
};

}  // namespace mbi

#endif  // MBI_UTIL_ALIAS_SAMPLER_H_
