#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/macros.h"

namespace mbi {

FlagParser::FlagParser(std::string description)
    : description_(std::move(description)) {}

void FlagParser::AddInt64(const std::string& name, int64_t default_value,
                          const std::string& help, int64_t* out) {
  *out = default_value;
  flags_[name] = {Type::kInt64, help, std::to_string(default_value), out};
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help, double* out) {
  *out = default_value;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", default_value);
  flags_[name] = {Type::kDouble, help, buffer, out};
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help, std::string* out) {
  *out = default_value;
  flags_[name] = {Type::kString, help, default_value, out};
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help, bool* out) {
  *out = default_value;
  flags_[name] = {Type::kBool, help, default_value ? "true" : "false", out};
}

void FlagParser::PrintUsage() const {
  std::fprintf(stderr, "%s\n\nFlags:\n", description_.c_str());
  for (const auto& [name, flag] : flags_) {
    std::fprintf(stderr, "  --%s (default %s)\n      %s\n", name.c_str(),
                 flag.default_text.c_str(), flag.help.c_str());
  }
}

void FlagParser::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    std::fprintf(stderr, "Unknown flag --%s\n\n", name.c_str());
    PrintUsage();
    std::exit(2);
  }
  Flag& flag = it->second;
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt64: {
      int64_t parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "Flag --%s expects an integer, got '%s'\n",
                     name.c_str(), value.c_str());
        std::exit(2);
      }
      *static_cast<int64_t*>(flag.target) = parsed;
      break;
    }
    case Type::kDouble: {
      double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        std::fprintf(stderr, "Flag --%s expects a number, got '%s'\n",
                     name.c_str(), value.c_str());
        std::exit(2);
      }
      *static_cast<double*>(flag.target) = parsed;
      break;
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      break;
    case Type::kBool: {
      bool parsed;
      if (value == "true" || value == "1" || value.empty()) {
        parsed = true;
      } else if (value == "false" || value == "0") {
        parsed = false;
      } else {
        std::fprintf(stderr, "Flag --%s expects true/false, got '%s'\n",
                     name.c_str(), value.c_str());
        std::exit(2);
      }
      *static_cast<bool*>(flag.target) = parsed;
      break;
    }
  }
}

bool FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "Unexpected positional argument '%s'\n\n",
                   arg.c_str());
      PrintUsage();
      std::exit(2);
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      SetValue(body.substr(0, eq), body.substr(eq + 1));
      continue;
    }
    // `--name value` form, or bare boolean `--name`.
    auto it = flags_.find(body);
    if (it != flags_.end() && it->second.type == Type::kBool) {
      SetValue(body, "true");
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "Flag --%s is missing a value\n\n", body.c_str());
      PrintUsage();
      std::exit(2);
    }
    SetValue(body, argv[++i]);
  }
  return true;
}

}  // namespace mbi
