#ifndef MBI_UTIL_MACROS_H_
#define MBI_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Lightweight runtime-check macros.
///
/// The library does not throw exceptions across its public API; programmer
/// errors (precondition violations) abort with a diagnostic instead. These
/// checks are active in all build modes: the costs are negligible next to the
/// index operations they guard, and silent corruption of an index is far more
/// expensive than the branch.

/// Aborts the process with a formatted message if `condition` is false.
#define MBI_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "MBI_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// Aborts with `message` if `condition` is false. `message` must be a
/// C string literal or expression convertible to `const char*`.
#define MBI_CHECK_MSG(condition, message)                                    \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "MBI_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #condition, static_cast<const char*>(message)); \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // MBI_UTIL_MACROS_H_
