#ifndef MBI_UTIL_MACROS_H_
#define MBI_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

/// \file
/// Lightweight runtime-check macros.
///
/// The library does not throw exceptions across its public API; programmer
/// errors (precondition violations) abort with a diagnostic instead.
///
/// Two tiers:
///
///  * `MBI_CHECK*` — active in all build modes. The costs are negligible next
///    to the index operations they guard, and silent corruption of an index
///    is far more expensive than the branch.
///  * `MBI_DCHECK*` — debug-only (compiled out under NDEBUG unless
///    MBI_FORCE_DCHECKS is defined). For checks on hot paths or O(n) walks —
///    notably the `CheckInvariants()` sweeps — whose cost is not negligible.
///    Sanitizer builds re-enable them (cmake/Sanitizers.cmake passes
///    -UNDEBUG) so instrumented CI runs get both the sanitizer and the
///    structural checks.
///
/// The comparison forms (`MBI_CHECK_EQ(a, b)` etc.) print both operand
/// values on failure, which turns "check failed" into an actionable message
/// when an invariant sweep trips deep inside a structure walk.

namespace mbi::internal {

/// Renders a failed comparison's operands, e.g. "(3 vs. 7)". Works for any
/// ostream-printable type; used only on the failure path.
template <typename A, typename B>
std::string FormatCheckOperands(const A& a, const B& b) {
  std::ostringstream out;
  out << "(" << a << " vs. " << b << ")";
  return out.str();
}

}  // namespace mbi::internal

/// Aborts the process with a formatted message if `condition` is false.
#define MBI_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "MBI_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// Aborts with `message` if `condition` is false. `message` must be a
/// C string literal or expression convertible to `const char*`.
#define MBI_CHECK_MSG(condition, message)                                    \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "MBI_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #condition, static_cast<const char*>(message)); \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Binary comparison check that prints both operand values on failure.
/// Operands are evaluated exactly once.
#define MBI_CHECK_OP(op, a, b)                                              \
  do {                                                                      \
    const auto& mbi_check_a_ = (a);                                         \
    const auto& mbi_check_b_ = (b);                                         \
    if (!(mbi_check_a_ op mbi_check_b_)) {                                  \
      std::fprintf(stderr, "MBI_CHECK failed at %s:%d: %s %s %s %s\n",      \
                   __FILE__, __LINE__, #a, #op, #b,                         \
                   ::mbi::internal::FormatCheckOperands(mbi_check_a_,       \
                                                        mbi_check_b_)       \
                       .c_str());                                           \
      std::abort();                                                        \
    }                                                                       \
  } while (0)

#define MBI_CHECK_EQ(a, b) MBI_CHECK_OP(==, a, b)
#define MBI_CHECK_NE(a, b) MBI_CHECK_OP(!=, a, b)
#define MBI_CHECK_LT(a, b) MBI_CHECK_OP(<, a, b)
#define MBI_CHECK_LE(a, b) MBI_CHECK_OP(<=, a, b)
#define MBI_CHECK_GT(a, b) MBI_CHECK_OP(>, a, b)
#define MBI_CHECK_GE(a, b) MBI_CHECK_OP(>=, a, b)

/// Debug checks: compiled out under NDEBUG (unless MBI_FORCE_DCHECKS) so
/// expensive structure walks can live on hot paths.
#if !defined(NDEBUG) || defined(MBI_FORCE_DCHECKS)
#define MBI_DCHECKS_ENABLED 1
#else
#define MBI_DCHECKS_ENABLED 0
#endif

#if MBI_DCHECKS_ENABLED
#define MBI_DCHECK(condition) MBI_CHECK(condition)
#define MBI_DCHECK_MSG(condition, message) MBI_CHECK_MSG(condition, message)
#define MBI_DCHECK_EQ(a, b) MBI_CHECK_EQ(a, b)
#define MBI_DCHECK_NE(a, b) MBI_CHECK_NE(a, b)
#define MBI_DCHECK_LT(a, b) MBI_CHECK_LT(a, b)
#define MBI_DCHECK_LE(a, b) MBI_CHECK_LE(a, b)
#define MBI_DCHECK_GT(a, b) MBI_CHECK_GT(a, b)
#define MBI_DCHECK_GE(a, b) MBI_CHECK_GE(a, b)
#else
// Swallow the condition unevaluated but keep it compiled (sizeof) so dead
// debug checks cannot rot.
#define MBI_DCHECK(condition) \
  do {                        \
    if (false) {              \
      (void)(condition);      \
    }                         \
  } while (0)
#define MBI_DCHECK_MSG(condition, message) \
  do {                                     \
    if (false) {                           \
      (void)(condition);                   \
      (void)(message);                     \
    }                                      \
  } while (0)
#define MBI_DCHECK_EQ(a, b) MBI_DCHECK((a) == (b))
#define MBI_DCHECK_NE(a, b) MBI_DCHECK((a) != (b))
#define MBI_DCHECK_LT(a, b) MBI_DCHECK((a) < (b))
#define MBI_DCHECK_LE(a, b) MBI_DCHECK((a) <= (b))
#define MBI_DCHECK_GT(a, b) MBI_DCHECK((a) > (b))
#define MBI_DCHECK_GE(a, b) MBI_DCHECK((a) >= (b))
#endif

#endif  // MBI_UTIL_MACROS_H_
