#ifndef MBI_UTIL_HISTOGRAM_H_
#define MBI_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace mbi {

/// Accumulates scalar samples (latencies, access fractions, ...) and reports
/// order statistics. Used by the workload-replay tooling; not thread-safe.
class Histogram {
 public:
  void Add(double value);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  double StdDev() const;

  /// Quantile in [0, 1] by linear interpolation between order statistics
  /// (q = 0.5 is the median). Requires at least one sample.
  double Quantile(double q) const;

  /// "count=... mean=... p50=... p95=... p99=... max=..." one-liner with the
  /// given unit suffix.
  std::string Summary(const std::string& unit) const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace mbi

#endif  // MBI_UTIL_HISTOGRAM_H_
