#ifndef MBI_UTIL_HISTOGRAM_H_
#define MBI_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mbi {

/// Accumulates scalar samples (latencies, access fractions, ...) and reports
/// order statistics. Used by the workload-replay tooling.
///
/// Thread-safety: all members lock an internal mutex, so concurrent Add and
/// concurrent const accessors are safe. In particular the lazily sorted
/// order-statistics cache is rebuilt under the lock — two threads calling
/// Quantile() at once used to race on the mutable cache (both sorting
/// `sorted_` in place); guarding every accessor fixes that. For lock-free
/// hot-path aggregation use LatencyHistogram (util/metrics.h) instead; this
/// class keeps exact samples and serves offline reporting.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Add(double value);

  size_t count() const;
  bool empty() const;

  double Min() const;
  double Max() const;
  double Mean() const;
  double StdDev() const;

  /// Quantile in [0, 1] by linear interpolation between order statistics
  /// (q = 0.5 is the median). Requires at least one sample.
  double Quantile(double q) const;

  /// "count=... mean=... p50=... p95=... p99=... max=..." one-liner with the
  /// given unit suffix.
  std::string Summary(const std::string& unit) const;

 private:
  /// Rebuilds the sorted cache; caller must hold `mu_`.
  void EnsureSortedLocked() const MBI_REQUIRES(mu_);
  double QuantileLocked(double q) const MBI_REQUIRES(mu_);
  double MeanLocked() const MBI_REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<double> samples_ MBI_GUARDED_BY(mu_);
  mutable std::vector<double> sorted_ MBI_GUARDED_BY(mu_);
  mutable bool sorted_valid_ MBI_GUARDED_BY(mu_) = false;
};

}  // namespace mbi

#endif  // MBI_UTIL_HISTOGRAM_H_
