// Debug-build allocation interposer: the dynamic half of the MBI_HOT
// zero-steady-state-allocation contract (util/hot_path.h holds the static
// half; DESIGN.md §10 describes how they cross-check).
//
// In debug builds (NDEBUG undefined — which includes the sanitizer CI
// configurations, whose cache flags force -UNDEBUG) the library replaces
// the global operator new/delete with counting versions. While a
// ScopedAllocationBan is live on a thread, every allocation on that thread
// increments a violation counter instead of aborting — tests assert the
// counter's delta is zero, which keeps the mechanism safe even if some
// library internal allocates lazily. In release builds the replacement
// operators are not compiled at all: zero overhead, AllocGuardEnabled()
// returns false, and the ban is an inert token.
//
// The ban is a thread-local depth counter, so bans nest (reentrancy-safe)
// and never observe other threads' allocations — a worker pool allocating
// on its own threads does not trip a ban on the caller's thread.
//
// Usage (see tests/alloc_guard_test.cc, tests/query_context_test.cc):
//
//   engine.FindKNearest(q, family, k, options, &ctx);   // warm-up
//   uint64_t before = AllocGuardViolations();
//   {
//     ScopedAllocationBan ban("steady-state FindKNearest");
//     engine.FindKNearest(q, family, k, options, &ctx, &result);
//   }
//   EXPECT_EQ(AllocGuardViolations(), before);
//
// All functions are defined out-of-line in alloc_guard.cc on purpose: the
// active/inert decision is baked into the mbi_util library's own NDEBUG
// setting, so a test compiled with different flags cannot end up with a
// mixed (ODR-violating) view of the guard.

#ifndef MBI_UTIL_ALLOC_GUARD_H_
#define MBI_UTIL_ALLOC_GUARD_H_

#include <cstdint>

namespace mbi {

/// True when the counting operator new/delete replacements are compiled in
/// (debug builds of mbi_util). When false, bans are inert and
/// AllocGuardViolations() is permanently zero.
bool AllocGuardEnabled();

/// Number of allocations observed on the CALLING thread while a ban was
/// live on it. Monotonic per thread; assert on deltas, not absolutes.
uint64_t AllocGuardViolations();

/// While alive, heap allocations on this thread count as violations.
/// Nestable; the ban lifts when the outermost instance is destroyed.
class ScopedAllocationBan {
 public:
  /// `what` names the banned region in debug logging; it must outlive the
  /// ban (string literals only). The constructor itself must not allocate.
  explicit ScopedAllocationBan(const char* what);
  ~ScopedAllocationBan();

  ScopedAllocationBan(const ScopedAllocationBan&) = delete;
  ScopedAllocationBan& operator=(const ScopedAllocationBan&) = delete;

 private:
  const char* what_;
};

}  // namespace mbi

#endif  // MBI_UTIL_ALLOC_GUARD_H_
