#ifndef MBI_UTIL_METRICS_H_
#define MBI_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/deadline_clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mbi {

class MetricsRegistry;

/// Monotonically increasing event count. Increments are a single relaxed
/// atomic add, so counters can sit on query hot paths shared across threads;
/// reads are a relaxed load (a snapshot may be mid-update with respect to
/// *other* metrics, but each counter value is itself consistent).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// Last-written scalar (quarantine state, pool capacity, ...). Set is an
/// atomic store; Add is a CAS loop (gauges are not hot-path metrics).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram for latencies (or any non-negative scalar).
///
/// Bucket upper bounds are the powers of two 1, 2, 4, ..., 2^26 in the
/// metric's unit (with microseconds that spans 1 us to ~67 s), plus one
/// overflow bucket. Recording is lock-free: one relaxed add into the bucket,
/// count, and sum, plus a CAS max — cheap enough to record every query.
/// Readers take a Snapshot; concurrent records may tear *across* fields
/// (count vs sum) but never corrupt them.
class LatencyHistogram {
 public:
  static constexpr size_t kFiniteBuckets = 27;  // le 2^0 .. 2^26.
  static constexpr size_t kNumBuckets = kFiniteBuckets + 1;  // + overflow.

  /// Records one sample. Negative and NaN samples land in the first bucket
  /// and count toward `count` but clamp to 0 in the sum.
  void Record(double value);

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    /// buckets[i] counts samples with value <= BucketUpperBound(i) that were
    /// not captured by an earlier bucket.
    std::array<uint64_t, kNumBuckets> buckets{};

    /// Upper bound of bucket `i` (+infinity for the overflow bucket).
    static double BucketUpperBound(size_t i);

    /// Quantile estimate in [0, 1]: the upper bound of the bucket holding
    /// the q-th sample (the recorded max for the overflow bucket). 0 when
    /// empty.
    double Quantile(double q) const;
  };

  Snapshot GetSnapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  LatencyHistogram() = default;
  static size_t BucketIndex(double value);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// One timed region of a query, relative to the owning trace's epoch.
struct TraceSpan {
  std::string name;
  double start_us = 0.0;
  double duration_us = 0.0;
};

/// Per-query trace: an ordered list of named spans recorded by ScopedTimer.
/// Owned by one request at a time (not thread-safe); Clear() between queries
/// reuses the span storage.
class QueryTrace {
 public:
  QueryTrace();

  /// Drops all spans and restarts the epoch at now.
  void Clear();

  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// "span=load_db start=12.3us dur=450.1us" lines, one per span.
  std::string ToString() const;

 private:
  friend class ScopedTimer;
  void Record(const char* name, double start_us, double end_us);

  /// SteadyNowUs() timestamp taken at construction / the last Clear().
  double epoch_us_;
  std::vector<TraceSpan> spans_;
};

/// RAII timer: on destruction records the elapsed microseconds into a
/// histogram (when non-null) and appends a span to a trace (when both the
/// trace and a span name are given). Either sink may be null, so one timer
/// serves "histogram only", "trace only", and "both" call sites.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* histogram,
                       QueryTrace* trace = nullptr,
                       const char* span_name = nullptr)
      : histogram_(histogram),
        trace_(trace),
        span_name_(span_name),
        start_us_(SteadyNowUs()) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedUs() const;

 private:
  LatencyHistogram* histogram_;
  QueryTrace* trace_;
  const char* span_name_;
  double start_us_;
};

/// Thread-safe registry of named metrics.
///
/// Registration (Get*) takes a mutex and interns the metric; the returned
/// handle is valid for the registry's lifetime and all mutation through it
/// is lock-free, so instrumented components resolve their handles once (at
/// set_metrics time) and pay only atomic ops per event. Names are
/// dot-separated lowercase ("mbi.engine.query.knn"); re-registering a name
/// must use the same kind and unit (aborts otherwise — a name collision is
/// a schema bug, not a runtime condition).
///
/// The exported JSON (ToJson) is stable: objects keyed by metric name in
/// sorted order with fixed fields, schema "mbi.metrics.v1" — see DESIGN.md
/// §8 for the metric catalogue and tools/check_metrics_json.py for the CI
/// validator.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide instance used by the CLI; tests prefer their own local
  /// registries for isolation.
  static MetricsRegistry* Global();

  Counter* GetCounter(const std::string& name, const std::string& unit,
                      const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& unit,
                  const std::string& help);
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& unit,
                                 const std::string& help);

  /// Lookup without registering; nullptr when absent. For tests and
  /// exporters.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const LatencyHistogram* FindHistogram(const std::string& name) const;

  /// Zeroes every metric value (handles stay valid). Not safe concurrently
  /// with writers; meant for tests and between benchmark phases.
  void Reset();

  /// Stable JSON snapshot of every registered metric.
  std::string ToJson() const;

 private:
  template <typename Metric>
  struct Entry {
    std::string unit;
    std::string help;
    std::unique_ptr<Metric> metric;
  };

  /// Shared registration logic: intern into `target`, check the name is not
  /// claimed by another kind, and enforce unit stability on re-registration.
  /// Caller holds mu_ (static, so the requirement is on the call sites; the
  /// maps themselves carry MBI_GUARDED_BY below).
  template <typename Metric, typename Map>
  static Metric* Register(Map* target, const std::string& name,
                          const std::string& unit, const std::string& help,
                          bool taken_elsewhere);

  mutable Mutex mu_;
  std::map<std::string, Entry<Counter>> counters_ MBI_GUARDED_BY(mu_);
  std::map<std::string, Entry<Gauge>> gauges_ MBI_GUARDED_BY(mu_);
  std::map<std::string, Entry<LatencyHistogram>> histograms_
      MBI_GUARDED_BY(mu_);
};

}  // namespace mbi

#endif  // MBI_UTIL_METRICS_H_
