#include "util/alias_sampler.h"

#include <numeric>

#include "util/macros.h"

namespace mbi {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  MBI_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    MBI_CHECK_MSG(w >= 0.0, "alias sampler weights must be non-negative");
    total += w;
  }
  MBI_CHECK_MSG(total > 0.0, "alias sampler needs a positive total weight");

  const size_t n = weights.size();
  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's O(n) construction: split buckets into those whose scaled mass is
  // below 1 (small) and at least 1 (large); each small bucket borrows the
  // remainder from a large one.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Remaining buckets have mass exactly 1 up to floating point error.
  for (uint32_t l : large) probability_[l] = 1.0;
  for (uint32_t s : small) probability_[s] = 1.0;
}

size_t AliasSampler::Sample(Rng* rng) const {
  size_t bucket = static_cast<size_t>(rng->UniformUint64(probability_.size()));
  return rng->UniformDouble() < probability_[bucket] ? bucket : alias_[bucket];
}

double AliasSampler::ProbabilityOf(size_t i) const {
  MBI_CHECK(i < normalized_.size());
  return normalized_[i];
}

}  // namespace mbi
