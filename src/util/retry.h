#ifndef MBI_UTIL_RETRY_H_
#define MBI_UTIL_RETRY_H_

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

#include "util/deadline_clock.h"
#include "util/rng.h"
#include "util/status.h"

namespace mbi {

/// Policy for retrying transient (kUnavailable) failures with bounded
/// exponential backoff. Delays double per attempt from `initial_backoff_ms`
/// up to `max_backoff_ms`, then get a multiplicative jitter drawn from the
/// caller's seeded Rng — so a whole retry schedule is reproducible
/// bit-for-bit from the seed, which the durability tests rely on.
struct RetryOptions {
  /// Total tries, including the first one. 1 disables retrying.
  int max_attempts = 6;
  double initial_backoff_ms = 0.2;
  double max_backoff_ms = 20.0;
  /// Delay is scaled by a uniform factor in [1 - jitter, 1 + jitter].
  double jitter = 0.5;
  /// Test seam: when set, called with the computed delay instead of actually
  /// sleeping (durability tests run a whole backoff schedule in microseconds
  /// and assert on the delays it would have used).
  std::function<void(double)> sleep_ms;
  /// Absolute give-up point on the DeadlineClock timeline (microseconds),
  /// mirroring QueryBudget::deadline_us (util cannot see core's QueryBudget,
  /// so callers copy the field: `retry.deadline_us = budget.deadline_us`).
  /// Every backoff sleep — including a server-supplied retry_after_ms hint —
  /// is clamped to the time remaining, and once the deadline has passed no
  /// further attempt is made: a retry must never sleep past the budget that
  /// is paying for it. +inf (the default) disables the clamp.
  double deadline_us = std::numeric_limits<double>::infinity();
  /// Clock the deadline is measured against. Null means the process-wide
  /// real clock; tests inject a ManualClock to script expiry.
  const DeadlineClock* clock = nullptr;
};

/// Computed delay before attempt `next_attempt` (1-based: the delay between
/// the first failure and the second try has next_attempt == 1). Draws one
/// value from `rng` for the jitter; `rng` may be null for the deterministic
/// un-jittered delay.
double BackoffDelayMs(const RetryOptions& options, int next_attempt, Rng* rng);

/// Blocks the calling thread for `ms` milliseconds.
void SleepForMs(double ms);

/// Parses a server-supplied retry-after hint out of a status message. By
/// convention an overloaded component rejects with kUnavailable and appends
/// "retry_after_ms=<float>" to the message (the AdmissionController does);
/// this returns that value, or 0 when the status carries no hint (so callers
/// can always take max(backoff, hint)).
double RetryAfterHintMs(const Status& status);

/// What one RetryTransient call did, for instrumentation: how many times the
/// body ran and how long the schedule (would have) slept. The Env layer
/// aggregates these into the mbi.env.* metrics.
struct RetryStats {
  /// Times `fn` was invoked (1 = first try succeeded or failed terminally).
  int attempts = 0;
  /// Total backoff delay between attempts, in milliseconds (the computed
  /// schedule, whether slept for real or through the test seam).
  double backoff_ms = 0.0;
};

/// Runs `fn` (returning Status) up to `options.max_attempts` times, sleeping
/// between attempts, until it returns anything other than kUnavailable.
/// Every other code — success, corruption, ENOSPC — is returned immediately:
/// only transient faults are worth paying latency for. When the kUnavailable
/// status carries a retry_after_ms hint (RetryAfterHintMs), the delay before
/// the next attempt is max(backoff, hint): the server knows how long its
/// queue is, the client knows how often it has already failed. Both the
/// backoff and the hint are then clamped to what remains of
/// `options.deadline_us` — an overloaded server may ask for a 5-second
/// nap, but a caller with 10ms of budget left sleeps 10ms and, if the
/// retry still fails, gives up rather than queueing behind a deadline it
/// has already blown. When `stats` is non-null it is overwritten with this
/// call's attempt/backoff accounting.
template <typename Fn>
Status RetryTransient(const RetryOptions& options, Rng* rng, Fn&& fn,
                      RetryStats* stats = nullptr) {
  if (stats != nullptr) *stats = RetryStats{};
  const bool deadline_limited =
      options.deadline_us != std::numeric_limits<double>::infinity();
  const DeadlineClock* clock =
      options.clock != nullptr ? options.clock : DeadlineClock::Real();
  Status status = fn();
  if (stats != nullptr) ++stats->attempts;
  for (int attempt = 1;
       !status.ok() && status.code() == StatusCode::kUnavailable &&
       attempt < options.max_attempts;
       ++attempt) {
    double delay_ms = std::max(BackoffDelayMs(options, attempt, rng),
                               RetryAfterHintMs(status));
    if (deadline_limited) {
      const double remaining_ms =
          (options.deadline_us - clock->NowUs()) / 1000.0;
      // Deadline already blown: another attempt could not be served in
      // time, so surface the transient failure instead of retrying late.
      if (remaining_ms <= 0.0) return status;
      delay_ms = std::min(delay_ms, remaining_ms);
    }
    if (stats != nullptr) stats->backoff_ms += delay_ms;
    if (options.sleep_ms) {
      options.sleep_ms(delay_ms);
    } else {
      SleepForMs(delay_ms);
    }
    status = fn();
    if (stats != nullptr) ++stats->attempts;
  }
  return status;
}

}  // namespace mbi

#endif  // MBI_UTIL_RETRY_H_
