#include "util/alloc_guard.h"

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <new>

// Active only in debug builds. The sanitizer CI configurations compile with
// -UNDEBUG (cmake/Sanitizers.cmake), so ASan/UBSan/TSan runs exercise the
// counting operators too; plain Release builds compile the inert branch.
#if !defined(NDEBUG) && !defined(MBI_NO_ALLOC_GUARD)
#define MBI_ALLOC_GUARD_ACTIVE 1
#else
#define MBI_ALLOC_GUARD_ACTIVE 0
#endif

namespace mbi {
namespace {

#if MBI_ALLOC_GUARD_ACTIVE
// POD thread-locals with constant initialization: their access never
// allocates, which matters because operator new reads them. (A non-trivial
// thread_local would need a dynamic guard and could recurse into new.)
thread_local int ban_depth = 0;
thread_local const char* ban_what = nullptr;
thread_local uint64_t violation_count = 0;

void NoteAllocation(std::size_t size) {
  if (ban_depth <= 0) return;
  ++violation_count;
  // Diagnose to stderr (no allocation: fprintf with a static format). The
  // test asserts on the counter; the message is for humans reading logs.
  std::fprintf(stderr,
               "[alloc_guard] %zu-byte allocation under ban \"%s\" "
               "(violation #%llu on this thread)\n",
               size, ban_what != nullptr ? ban_what : "?",
               static_cast<unsigned long long>(violation_count));
}
#endif  // MBI_ALLOC_GUARD_ACTIVE

}  // namespace

bool AllocGuardEnabled() { return MBI_ALLOC_GUARD_ACTIVE != 0; }

uint64_t AllocGuardViolations() {
#if MBI_ALLOC_GUARD_ACTIVE
  return violation_count;
#else
  return 0;
#endif
}

ScopedAllocationBan::ScopedAllocationBan(const char* what) : what_(what) {
#if MBI_ALLOC_GUARD_ACTIVE
  if (ban_depth == 0) ban_what = what_;
  ++ban_depth;
#endif
}

ScopedAllocationBan::~ScopedAllocationBan() {
#if MBI_ALLOC_GUARD_ACTIVE
  --ban_depth;
  if (ban_depth == 0) ban_what = nullptr;
#else
  (void)what_;
#endif
}

}  // namespace mbi

#if MBI_ALLOC_GUARD_ACTIVE

// Replaceable global allocation functions ([new.delete.single] /
// [new.delete.array]): malloc-backed, counting allocations made under a
// ban. Sized deletes forward to the unsized forms; alignment is handled
// with aligned_alloc. This file is the one sanctioned home for raw
// malloc/free in the codebase (mbi-lint allowlists it for no-naked-new).

namespace {

void* GuardedAlloc(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  mbi::NoteAllocation(size);
  void* ptr;
  if (align > alignof(std::max_align_t)) {
    // aligned_alloc requires size to be a multiple of the alignment.
    std::size_t rounded = (size + align - 1) / align * align;
    ptr = std::aligned_alloc(align, rounded);
  } else {
    ptr = std::malloc(size);
  }
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) {
  void* ptr = GuardedAlloc(size, 0);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = GuardedAlloc(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return GuardedAlloc(size, 0);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return GuardedAlloc(size, 0);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return GuardedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return GuardedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

#endif  // MBI_ALLOC_GUARD_ACTIVE
