#include "baseline/inverted_index.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "txn/packed_target.h"
#include "util/macros.h"

namespace mbi {

InvertedIndex::InvertedIndex(const TransactionDatabase* database,
                             uint32_t page_size_bytes,
                             size_t buffer_pool_pages, bool compress_postings)
    : database_(database),
      compress_postings_(compress_postings),
      postings_(compress_postings ? 0 : database->universe_size()),
      compressed_postings_(compress_postings ? database->universe_size() : 0),
      sequential_store_(
          TransactionStore::BuildSequential(*database, page_size_bytes)),
      layout_(CandidateLayout::Build(*database)),
      buffer_pool_pages_(buffer_pool_pages) {
  MBI_CHECK(database != nullptr);
  for (TransactionId id = 0; id < database_->size(); ++id) {
    for (ItemId item : database_->Get(id).items()) {
      if (compress_postings_) {
        compressed_postings_[item].Append(id);  // Ids arrive ascending.
      } else {
        postings_[item].push_back(id);
      }
    }
  }
}

void InvertedIndex::set_metrics(MetricsRegistry* registry) {
  metrics_registry_ = registry;
  if (registry == nullptr) {
    metrics_ = MetricHandles{};
    sequential_store_.set_metrics(nullptr);
    return;
  }
  metrics_.queries = registry->GetCounter(
      "mbi.inverted.query.knn", "queries", "inverted-index k-NN queries");
  metrics_.candidates =
      registry->GetCounter("mbi.inverted.candidates", "transactions",
                           "phase-1 candidates fetched and scored");
  metrics_.latency = registry->GetHistogram(
      "mbi.inverted.latency", "us", "inverted-index query latency");
  sequential_store_.set_metrics(registry);
}

std::vector<TransactionId> InvertedIndex::Candidates(
    const Transaction& target) const {
  if (compress_postings_) {
    std::vector<const CompressedPostingList*> lists;
    lists.reserve(target.size());
    for (ItemId item : target.items()) {
      MBI_CHECK(item < compressed_postings_.size());
      lists.push_back(&compressed_postings_[item]);
    }
    return UnionPostings(lists);
  }
  // Flatten + sort of the (already sorted) posting lists; target
  // transactions have few items, so this stays cheap.
  std::vector<TransactionId> merged;
  for (ItemId item : target.items()) {
    MBI_CHECK(item < postings_.size());
    merged.insert(merged.end(), postings_[item].begin(), postings_[item].end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

InvertedIndex::Result InvertedIndex::FindKNearest(
    const Transaction& target, const SimilarityFamily& family, size_t k,
    const QueryBudget& budget) const {
  MBI_CHECK(k >= 1);
  ScopedTimer timer(nullptr);
  Result result;
  std::unique_ptr<SimilarityFunction> similarity = family.ForTarget(target);

  std::vector<TransactionId> candidates = Candidates(target);
  result.candidates = candidates.size();
  result.accessed_fraction =
      database_->empty() ? 0.0
                         : static_cast<double>(candidates.size()) /
                               static_cast<double>(database_->size());

  // Zero-match transactions can only be safely ignored if f(0, y) can never
  // exceed the similarity of some candidate. That holds for the families
  // whose f vanishes at x = 0 (match ratio, cosine) as long as at least one
  // candidate exists; inverse Hamming violates it structurally.
  result.candidates_complete =
      !candidates.empty() && similarity->Evaluate(0, 1) == 0.0 &&
      similarity->Evaluate(0, 0) == 0.0;

  // Phase 2: fetch candidates in id order through an optional buffer pool,
  // tracking the distinct pages the scattered fetches touch. Re-ranking
  // probes the packed target bitmap (bit-identical to the merge scan).
  const bool use_layout = layout_.num_rows() >= database_->size();
  PackedTarget packed;
  packed.Assign(target, database_->universe_size(),
                use_layout ? &layout_ : nullptr);
  BufferPool pool(&sequential_store_.page_store(), buffer_pool_pages_);
  pool.set_metrics(metrics_registry_);
  std::unordered_set<PageId> touched;
  std::vector<Neighbor> scored;
  scored.reserve(candidates.size());
  // Phase 2 in kScanChunk-candidate slices: each slice goes through one
  // gather-form kernel batch (ids are sorted ascending, so the kernel's row
  // prefetch still streams forward), and the budget is checked between
  // slices — never before the first, so a degraded answer always carries
  // real candidates. One scored candidate costs one "entry" against
  // max_entries (same unit as branch-and-bound and the sequential scanner;
  // overshoot bounded at kScanChunk - 1 by the per-slice check).
  const size_t num_candidates = candidates.size();
  const bool budget_limited = budget.limited();
  QueryTermination termination = QueryTermination::kCompleted;
  uint64_t rows_scanned = 0;
  uint32_t chunk_match[kScanChunk];
  uint32_t chunk_hamming[kScanChunk];
  for (size_t base = 0; base < num_candidates; base += kScanChunk) {
    if (budget_limited && rows_scanned > 0) {
      if (budget.cancelled()) {
        termination = QueryTermination::kCancelled;
        break;
      }
      if (rows_scanned >= budget.max_entries) {
        termination = QueryTermination::kEntryBudget;
        break;
      }
      if (budget.deadline_expired()) {
        termination = QueryTermination::kDeadline;
        break;
      }
    }
    const size_t len = std::min(kScanChunk, num_candidates - base);
    if (use_layout) {
      packed.MatchAndHammingBatch(candidates.data() + base, len, chunk_match,
                                  chunk_hamming);
    }
    for (size_t i = 0; i < len; ++i) {
      const TransactionId id = candidates[base + i];
      touched.insert(sequential_store_.PageOfTransaction(id));
      sequential_store_.FetchTransaction(
          id, buffer_pool_pages_ > 0 ? &pool : nullptr, &result.io);
      size_t match = 0, hamming = 0;
      if (use_layout) {
        match = chunk_match[i];
        hamming = chunk_hamming[i];
      } else {
        packed.MatchAndHamming(database_->Get(id), &match, &hamming);
      }
      scored.push_back({id, similarity->Evaluate(static_cast<int>(match),
                                                 static_cast<int>(hamming))});
    }
    rows_scanned += len;
  }
  result.pages_touched = touched.size();
  result.pages_total = sequential_store_.page_store().size();

  // Budget accounting + certificate (the same f(|target|, 0) pointwise bound
  // the sequential scanner uses; phase-1 completeness is reported separately
  // via candidates_complete). Entries are counted in candidate rows, the
  // common unit across every query path (DESIGN.md §13).
  result.stats.database_size = database_->size();
  result.stats.entries_total = num_candidates;
  result.stats.entries_scanned = rows_scanned;
  result.stats.entries_unexplored =
      result.stats.entries_total - rows_scanned;
  result.stats.transactions_evaluated = scored.size();
  result.stats.termination = termination;
  result.stats.is_exact = termination == QueryTermination::kCompleted;
  result.stats.certificate_bound =
      result.stats.is_exact
          ? -std::numeric_limits<double>::infinity()
          : similarity->Evaluate(static_cast<int>(target.size()), 0);

  // Every page pin taken during phase 2 must have been released, and the
  // pool's LRU bookkeeping must have survived the scattered access pattern.
  MBI_CHECK_EQ(pool.total_pins(), 0u);
  MBI_DCHECK((pool.CheckInvariants(), true));

  std::sort(scored.begin(), scored.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.id < b.id;
            });
  if (scored.size() > k) scored.resize(k);
  result.neighbors = std::move(scored);
  result.stats.io = result.io;
  if (metrics_.queries != nullptr) {
    metrics_.queries->Increment();
    metrics_.candidates->Increment(result.candidates);
    metrics_.latency->Record(timer.ElapsedUs());
  }
  return result;
}

std::vector<TransactionId> InvertedIndex::PostingsOf(ItemId item) const {
  MBI_CHECK(item < database_->universe_size());
  if (compress_postings_) return compressed_postings_[item].Decode();
  return postings_[item];
}

void InvertedIndex::CheckInvariants() const {
  const uint32_t universe = database_->universe_size();
  const uint64_t num_transactions = database_->size();

  // Sorted postings with in-range ids, and total length equal to the total
  // item occurrences of the database (each occurrence contributes exactly
  // one posting). Compressed lists are decoded once up front.
  std::vector<std::vector<TransactionId>> lists(universe);
  uint64_t total_postings = 0;
  for (ItemId item = 0; item < universe; ++item) {
    lists[item] = PostingsOf(item);
    const std::vector<TransactionId>& list = lists[item];
    total_postings += list.size();
    for (size_t i = 0; i < list.size(); ++i) {
      MBI_CHECK_LT(list[i], num_transactions);
      if (i > 0) MBI_CHECK_LT(list[i - 1], list[i]);
    }
  }
  MBI_CHECK_EQ(total_postings, database_->TotalItemOccurrences());

  // Membership: every item occurrence is findable in its posting list.
  // Together with the length check above this makes the lists *exactly* the
  // database's transpose — no missing and no phantom postings.
  for (TransactionId id = 0; id < num_transactions; ++id) {
    for (ItemId item : database_->Get(id).items()) {
      MBI_CHECK_LT(item, universe);
      MBI_CHECK_MSG(
          std::binary_search(lists[item].begin(), lists[item].end(), id),
          "transaction missing from its item's posting list");
    }

    // Sequential layout: the page mapped to this transaction holds it.
    PageId page = sequential_store_.PageOfTransaction(id);
    MBI_CHECK_LT(page, sequential_store_.page_store().size());
    const auto& ids =
        sequential_store_.page_store().pages()[page].transaction_ids;
    MBI_CHECK_MSG(std::find(ids.begin(), ids.end(), id) != ids.end(),
                  "transaction not present on its mapped page");
  }
}

uint64_t InvertedIndex::PostingsBytes() const {
  uint64_t total = 0;
  if (compress_postings_) {
    for (const auto& list : compressed_postings_) total += list.ByteSize();
  } else {
    for (const auto& list : postings_) {
      total += list.size() * sizeof(TransactionId);
    }
  }
  return total;
}

}  // namespace mbi
