#include "baseline/rtree.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/macros.h"

namespace mbi {
namespace {

/// Free dimensions of an MBR = dims where upper = 1 and lower = 0. Since
/// lower ⊆ upper always holds, this equals popcount(lower XOR upper).
size_t FreeDims(const Bitset& lower, const Bitset& upper) {
  return Bitset::XorCount(lower, upper);
}

}  // namespace

BinaryRTree::BinaryRTree(const TransactionDatabase* database,
                         const RTreeConfig& config)
    : database_(database), config_(config) {
  MBI_CHECK(database != nullptr);
  MBI_CHECK(config_.max_node_entries >= 4);
  MBI_CHECK(config_.min_node_entries >= 2 &&
            config_.min_node_entries <= config_.max_node_entries / 2);
  root_ = std::make_unique<Node>(database_->universe_size());
  for (TransactionId id = 0; id < database_->size(); ++id) {
    Insert(id, AsBitset(database_->Get(id)));
  }
}

Bitset BinaryRTree::AsBitset(const Transaction& transaction) const {
  Bitset bits(database_->universe_size());
  for (ItemId item : transaction.items()) bits.Set(item);
  return bits;
}

size_t BinaryRTree::MinDist(const Bitset& query, const Node& node) {
  // Dims where the query is 1 but no point of the subtree can be 1, plus
  // dims where every point of the subtree is 1 but the query is 0.
  return Bitset::AndNotCount(query, node.upper) +
         Bitset::AndNotCount(node.lower, query);
}

void BinaryRTree::Insert(TransactionId id, const Bitset& point) {
  std::unique_ptr<Node> sibling = InsertRecursive(root_.get(), id, point);
  if (sibling != nullptr) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>(database_->universe_size());
    new_root->is_leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    root_ = std::move(new_root);
    RecomputeMbr(root_.get());
  }
}

std::unique_ptr<BinaryRTree::Node> BinaryRTree::InsertRecursive(
    Node* node, TransactionId id, const Bitset& point) {
  node->lower &= point;
  node->upper |= point;

  if (node->is_leaf) {
    node->transaction_ids.push_back(id);
    if (node->transaction_ids.size() > config_.max_node_entries) {
      return SplitNode(node);
    }
    return nullptr;
  }

  // ChooseSubtree: least enlargement of the free-dimension count, ties by
  // fewer free dims, then fewer entries (Guttman's least-area / least-count
  // rule transported to binary MBRs).
  Node* best = nullptr;
  size_t best_enlargement = std::numeric_limits<size_t>::max();
  size_t best_free = std::numeric_limits<size_t>::max();
  size_t best_entries = std::numeric_limits<size_t>::max();
  for (const auto& child : node->children) {
    Bitset new_lower = child->lower;
    new_lower &= point;
    Bitset new_upper = child->upper;
    new_upper |= point;
    size_t old_free = FreeDims(child->lower, child->upper);
    size_t new_free = FreeDims(new_lower, new_upper);
    size_t enlargement = new_free - old_free;
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement &&
         (new_free < best_free ||
          (new_free == best_free && child->EntryCount() < best_entries)))) {
      best = child.get();
      best_enlargement = enlargement;
      best_free = new_free;
      best_entries = child->EntryCount();
    }
  }
  MBI_CHECK(best != nullptr);

  std::unique_ptr<Node> split_child = InsertRecursive(best, id, point);
  if (split_child != nullptr) {
    node->children.push_back(std::move(split_child));
    if (node->children.size() > config_.max_node_entries) {
      return SplitNode(node);
    }
  }
  return nullptr;
}

std::unique_ptr<BinaryRTree::Node> BinaryRTree::SplitNode(Node* node) {
  auto sibling = std::make_unique<Node>(database_->universe_size());
  sibling->is_leaf = node->is_leaf;

  if (node->is_leaf) {
    // Quadratic-style seeds: the two entries at maximum Hamming distance.
    std::vector<TransactionId> entries = std::move(node->transaction_ids);
    node->transaction_ids.clear();
    size_t seed_a = 0, seed_b = 1, best = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      for (size_t j = i + 1; j < entries.size(); ++j) {
        size_t distance = HammingDistance(database_->Get(entries[i]),
                                          database_->Get(entries[j]));
        if (distance >= best) {
          best = distance;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    // Greedy assignment to the closer seed, forcing the minimum fill: once a
    // group needs every remaining entry to reach the minimum, it gets them.
    std::vector<size_t> rest;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i != seed_a && i != seed_b) rest.push_back(i);
    }
    std::vector<TransactionId> group_a = {entries[seed_a]};
    std::vector<TransactionId> group_b = {entries[seed_b]};
    for (size_t r = 0; r < rest.size(); ++r) {
      size_t i = rest[r];
      size_t remaining = rest.size() - r;
      if (group_a.size() + remaining <= config_.min_node_entries) {
        group_a.push_back(entries[i]);
        continue;
      }
      if (group_b.size() + remaining <= config_.min_node_entries) {
        group_b.push_back(entries[i]);
        continue;
      }
      size_t da = HammingDistance(database_->Get(entries[i]),
                                  database_->Get(entries[seed_a]));
      size_t db = HammingDistance(database_->Get(entries[i]),
                                  database_->Get(entries[seed_b]));
      (da <= db ? group_a : group_b).push_back(entries[i]);
    }
    node->transaction_ids = std::move(group_a);
    sibling->transaction_ids = std::move(group_b);
  } else {
    // Internal split: seeds are the pair of children with the largest
    // OR-mask separation; assignment by least free-dim enlargement.
    std::vector<std::unique_ptr<Node>> entries = std::move(node->children);
    node->children.clear();
    size_t seed_a = 0, seed_b = 1, best = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      for (size_t j = i + 1; j < entries.size(); ++j) {
        size_t separation = Bitset::XorCount(entries[i]->upper,
                                             entries[j]->upper);
        if (separation >= best) {
          best = separation;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    std::vector<size_t> rest;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i != seed_a && i != seed_b) rest.push_back(i);
    }
    Bitset upper_a = entries[seed_a]->upper;
    Bitset upper_b = entries[seed_b]->upper;
    std::vector<std::unique_ptr<Node>> group_a, group_b;
    group_a.push_back(std::move(entries[seed_a]));
    group_b.push_back(std::move(entries[seed_b]));
    for (size_t r = 0; r < rest.size(); ++r) {
      size_t i = rest[r];
      size_t remaining = rest.size() - r;
      if (group_a.size() + remaining <= config_.min_node_entries) {
        upper_a |= entries[i]->upper;
        group_a.push_back(std::move(entries[i]));
        continue;
      }
      if (group_b.size() + remaining <= config_.min_node_entries) {
        upper_b |= entries[i]->upper;
        group_b.push_back(std::move(entries[i]));
        continue;
      }
      size_t grow_a = Bitset::AndNotCount(entries[i]->upper, upper_a);
      size_t grow_b = Bitset::AndNotCount(entries[i]->upper, upper_b);
      if (grow_a <= grow_b) {
        upper_a |= entries[i]->upper;
        group_a.push_back(std::move(entries[i]));
      } else {
        upper_b |= entries[i]->upper;
        group_b.push_back(std::move(entries[i]));
      }
    }
    node->children = std::move(group_a);
    sibling->children = std::move(group_b);
  }

  RecomputeMbr(node);
  RecomputeMbr(sibling.get());
  return sibling;
}

void BinaryRTree::RecomputeMbr(Node* node) const {
  node->lower.SetAll();
  node->upper.ClearAll();
  if (node->is_leaf) {
    for (TransactionId id : node->transaction_ids) {
      Bitset point = AsBitset(database_->Get(id));
      node->lower &= point;
      node->upper |= point;
    }
  } else {
    for (const auto& child : node->children) {
      node->lower &= child->lower;
      node->upper |= child->upper;
    }
  }
}

BinaryRTree::Result BinaryRTree::FindKNearestHamming(const Transaction& target,
                                                     size_t k) const {
  MBI_CHECK(k >= 1);
  Result result;
  result.stats.database_size = database_->size();
  if (database_->empty()) return result;
  Bitset query = AsBitset(target);

  // Best-first search (Roussopoulos et al. branch and bound): a min-heap of
  // nodes keyed by MINDIST; prune when MINDIST exceeds the k-th best exact
  // distance found so far.
  using HeapEntry = std::pair<size_t, const Node*>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  heap.push({MinDist(query, *root_), root_.get()});

  // Max-heap of the k best (distance, id): top is the current k-th best.
  std::priority_queue<std::pair<size_t, TransactionId>> best;

  while (!heap.empty()) {
    auto [mindist, node] = heap.top();
    heap.pop();
    if (best.size() == k && mindist > best.top().first) {
      ++result.stats.nodes_pruned;
      continue;
    }
    ++result.stats.nodes_visited;
    if (node->is_leaf) {
      for (TransactionId id : node->transaction_ids) {
        size_t distance = HammingDistance(target, database_->Get(id));
        ++result.stats.transactions_evaluated;
        if (best.size() < k) {
          best.push({distance, id});
        } else if (distance < best.top().first ||
                   (distance == best.top().first && id < best.top().second)) {
          best.pop();
          best.push({distance, id});
        }
      }
    } else {
      for (const auto& child : node->children) {
        heap.push({MinDist(query, *child), child.get()});
      }
    }
  }

  result.neighbors.resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    result.neighbors[i] = {best.top().second,
                           -static_cast<double>(best.top().first)};
    best.pop();
  }
  return result;
}

BinaryRTree::TreeStats BinaryRTree::ComputeTreeStats() const {
  TreeStats stats;
  // Height and node counts by BFS.
  std::vector<const Node*> level = {root_.get()};
  while (!level.empty()) {
    ++stats.height;
    std::vector<const Node*> next;
    for (const Node* node : level) {
      if (node->is_leaf) {
        ++stats.leaf_nodes;
      } else {
        ++stats.internal_nodes;
        for (const auto& child : node->children) next.push_back(child.get());
      }
    }
    level = std::move(next);
  }
  if (!root_->is_leaf && database_->universe_size() > 0) {
    double total = 0.0;
    for (const auto& child : root_->children) {
      total += static_cast<double>(FreeDims(child->lower, child->upper)) /
               static_cast<double>(database_->universe_size());
    }
    stats.root_child_free_dim_fraction =
        total / static_cast<double>(root_->children.size());
  }
  return stats;
}

}  // namespace mbi
