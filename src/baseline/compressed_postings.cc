#include "baseline/compressed_postings.h"

#include <algorithm>
#include <queue>

#include "util/macros.h"

namespace mbi {
namespace {

void EncodeVarint(uint32_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

uint32_t DecodeVarint(const std::vector<uint8_t>& bytes, size_t* offset) {
  uint32_t value = 0;
  int shift = 0;
  while (true) {
    MBI_CHECK(*offset < bytes.size());
    uint8_t byte = bytes[(*offset)++];
    value |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    MBI_CHECK_MSG(shift < 35, "varint too long");
  }
  return value;
}

}  // namespace

CompressedPostingList CompressedPostingList::Encode(
    const std::vector<TransactionId>& tids) {
  CompressedPostingList list;
  for (TransactionId tid : tids) list.Append(tid);
  return list;
}

void CompressedPostingList::Append(TransactionId tid) {
  if (count_ == 0) {
    EncodeVarint(tid, &bytes_);
  } else {
    MBI_CHECK_MSG(tid > last_, "postings must be appended in ascending order");
    EncodeVarint(tid - last_, &bytes_);
  }
  last_ = tid;
  ++count_;
}

std::vector<TransactionId> CompressedPostingList::Decode() const {
  std::vector<TransactionId> tids;
  tids.reserve(count_);
  for (Iterator it = begin(); it.valid(); it.Next()) {
    tids.push_back(it.value());
  }
  return tids;
}

CompressedPostingList::Iterator::Iterator(const CompressedPostingList* list)
    : list_(list), remaining_(list->count_) {
  if (remaining_ > 0) {
    current_ = DecodeVarint(list_->bytes_, &offset_);
  }
}

void CompressedPostingList::Iterator::Next() {
  MBI_CHECK(valid());
  --remaining_;
  if (remaining_ > 0) {
    current_ += DecodeVarint(list_->bytes_, &offset_);
  }
}

std::vector<TransactionId> UnionPostings(
    const std::vector<const CompressedPostingList*>& lists) {
  // K-way merge over streaming iterators via a min-heap of (value, cursor).
  using HeapEntry = std::pair<TransactionId, size_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  std::vector<CompressedPostingList::Iterator> cursors;
  cursors.reserve(lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    MBI_CHECK(lists[i] != nullptr);
    cursors.emplace_back(lists[i]);
    if (cursors[i].valid()) heap.push({cursors[i].value(), i});
  }
  std::vector<TransactionId> result;
  while (!heap.empty()) {
    auto [value, index] = heap.top();
    heap.pop();
    if (result.empty() || result.back() != value) result.push_back(value);
    cursors[index].Next();
    if (cursors[index].valid()) heap.push({cursors[index].value(), index});
  }
  return result;
}

std::vector<TransactionId> IntersectPostings(const CompressedPostingList& a,
                                             const CompressedPostingList& b) {
  std::vector<TransactionId> result;
  CompressedPostingList::Iterator ia = a.begin();
  CompressedPostingList::Iterator ib = b.begin();
  while (ia.valid() && ib.valid()) {
    if (ia.value() < ib.value()) {
      ia.Next();
    } else if (ia.value() > ib.value()) {
      ib.Next();
    } else {
      result.push_back(ia.value());
      ia.Next();
      ib.Next();
    }
  }
  return result;
}

}  // namespace mbi
