#include "baseline/sequential_scan.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "storage/page_store.h"
#include "txn/packed_target.h"
#include "util/macros.h"

namespace mbi {
namespace {

void SortBestFirst(std::vector<Neighbor>* neighbors) {
  std::sort(neighbors->begin(), neighbors->end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.id < b.id;
            });
}

/// Streaming-layout I/O model shared by every scan: one transaction fetch
/// per row, a page read whenever the current page cannot hold the next row.
class SequentialIoCharger {
 public:
  SequentialIoCharger(IoStats* stats, uint32_t page_size_bytes)
      : stats_(stats), page_size_bytes_(page_size_bytes) {}

  void Charge(const Transaction& candidate) {
    if (stats_ == nullptr) return;
    ++stats_->transactions_fetched;
    const uint64_t need = PageStore::SerializedSize(candidate);
    if (page_bytes_used_ == 0 ||
        page_bytes_used_ + need > page_size_bytes_) {
      ++stats_->pages_read;
      stats_->bytes_read += page_size_bytes_;
      page_bytes_used_ = 0;
    }
    page_bytes_used_ += need;
  }

 private:
  IoStats* stats_;
  uint32_t page_size_bytes_;
  uint64_t page_bytes_used_ = 0;
};

}  // namespace

SequentialScanner::SequentialScanner(const TransactionDatabase* database,
                                     const CandidateLayout* layout)
    : database_(database), layout_(layout) {
  MBI_CHECK(database != nullptr);
}

void SequentialScanner::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = MetricHandles{};
    metrics_enabled_ = false;
    return;
  }
  metrics_.knn_queries = registry->GetCounter(
      "mbi.scan.query.knn", "queries", "sequential-scan k-NN queries");
  metrics_.range_queries = registry->GetCounter(
      "mbi.scan.query.range", "queries", "sequential-scan range queries");
  metrics_.transactions_scanned = registry->GetCounter(
      "mbi.scan.transactions.scanned", "transactions",
      "transactions evaluated by sequential scans");
  metrics_.latency = registry->GetHistogram(
      "mbi.scan.latency", "us", "sequential-scan query latency");
  metrics_enabled_ = true;
}

void SequentialScanner::RecordScan(bool is_range, double elapsed_us) const {
  if (!metrics_enabled_) return;
  (is_range ? metrics_.range_queries : metrics_.knn_queries)->Increment();
  metrics_.transactions_scanned->Increment(database_->size());
  metrics_.latency->Record(elapsed_us);
}

MBI_HOT SequentialScanner::ScanOutcome SequentialScanner::ScoreAllCandidates(
    const PackedTarget& packed, const SimilarityFunction& similarity,
    IoStats* stats, uint32_t page_size_bytes, const QueryBudget& budget,
    std::vector<Neighbor>* scored) const {
  SequentialIoCharger charger(stats, page_size_bytes);
  const size_t n = database_->size();
  ScanOutcome outcome;
  outcome.rows_total = n;
  const bool budget_limited = budget.limited();
  // SIMD match-kernel output for one chunk (layout path). The buffers live
  // on the stack (const method, no mutable scratch), so the zero-allocation
  // contract holds without state.
  uint32_t match[kScanChunk];
  uint32_t hamming[kScanChunk];
  const bool use_layout = packed.has_layout();
  for (size_t base = 0; base < n; base += kScanChunk) {
    // Budget check between chunks, never before the first: a degraded scan
    // always carries at least kScanChunk real candidates (or the whole
    // database if smaller), mirroring RunKNearest's min-one-entry rule.
    // Rows — not chunks — are charged against max_entries so the scan path
    // enforces the budget in the same unit as branch-and-bound; checking at
    // chunk boundaries bounds the overshoot at kScanChunk - 1 rows.
    if (budget_limited && outcome.rows_scanned > 0) {
      if (budget.cancelled()) {
        outcome.termination = QueryTermination::kCancelled;
        break;
      }
      if (outcome.rows_scanned >= budget.max_entries) {
        outcome.termination = QueryTermination::kEntryBudget;
        break;
      }
      if (budget.deadline_expired()) {
        outcome.termination = QueryTermination::kDeadline;
        break;
      }
    }
    const size_t len = std::min(kScanChunk, n - base);
    if (use_layout) {
      // Stream the blocked layout through the SIMD match kernel.
      packed.MatchAndHammingRows(static_cast<TransactionId>(base), len, match,
                                 hamming);
      for (size_t i = 0; i < len; ++i) {
        const auto id = static_cast<TransactionId>(base + i);
        charger.Charge(database_->Get(id));
        scored->push_back(
            {id, similarity.Evaluate(static_cast<int>(match[i]),
                                     static_cast<int>(hamming[i]))});
      }
    } else {
      for (size_t i = 0; i < len; ++i) {
        const auto id = static_cast<TransactionId>(base + i);
        const Transaction& candidate = database_->Get(id);
        charger.Charge(candidate);
        size_t m = 0, h = 0;
        packed.MatchAndHamming(candidate, &m, &h);
        scored->push_back({id, similarity.Evaluate(static_cast<int>(m),
                                                   static_cast<int>(h))});
      }
    }
    outcome.rows_scanned += len;
  }
  return outcome;
}

std::vector<Neighbor> SequentialScanner::FindKNearest(
    const Transaction& target, const SimilarityFamily& family, size_t k,
    IoStats* stats, uint32_t page_size_bytes) const {
  MBI_CHECK(k >= 1);
  ScopedTimer timer(nullptr);
  std::unique_ptr<SimilarityFunction> similarity = family.ForTarget(target);

  PackedTarget packed;
  packed.Assign(target, database_->universe_size(), EffectiveLayout());
  std::vector<Neighbor> scored;
  scored.reserve(database_->size());
  ScoreAllCandidates(packed, *similarity, stats, page_size_bytes,
                     QueryBudget{}, &scored);
  SortBestFirst(&scored);
  if (scored.size() > k) scored.resize(k);
  RecordScan(/*is_range=*/false, timer.ElapsedUs());
  return scored;
}

namespace {

/// Shared stats fill for the budget-aware scans: row accounting maps onto
/// the entries_* fields (one row = one "entry", the same unit the
/// branch-and-bound path charges — DESIGN.md §13.4 stats-unit contract), and
/// an incomplete scan is certified with f(|target|, 0) — no unscanned
/// transaction can match more than the whole target or differ by less than
/// nothing, so for admissible f (monotone up in matches, down in Hamming)
/// this bound dominates every skipped similarity (Lemma 2.1 in pointwise
/// form).
void FillScanStats(const SequentialScanner::ScanOutcome& outcome,
                   const SimilarityFunction& similarity,
                   const Transaction& target, uint64_t evaluated,
                   uint64_t database_size, QueryStats* stats) {
  stats->database_size = database_size;
  stats->entries_total = outcome.rows_total;
  stats->entries_scanned = outcome.rows_scanned;
  stats->entries_unexplored = outcome.rows_total - outcome.rows_scanned;
  stats->transactions_evaluated = evaluated;
  stats->termination = outcome.termination;
  stats->is_exact = outcome.termination == QueryTermination::kCompleted;
  stats->certificate_bound =
      stats->is_exact
          ? -std::numeric_limits<double>::infinity()
          : similarity.Evaluate(static_cast<int>(target.size()), 0);
}

}  // namespace

void SequentialScanner::FindKNearest(const Transaction& target,
                                     const SimilarityFamily& family, size_t k,
                                     const QueryBudget& budget,
                                     NearestNeighborResult* result,
                                     uint32_t page_size_bytes) const {
  MBI_CHECK(k >= 1);
  MBI_CHECK(result != nullptr);
  ScopedTimer timer(nullptr);
  std::unique_ptr<SimilarityFunction> similarity = family.ForTarget(target);

  PackedTarget packed;
  packed.Assign(target, database_->universe_size(), EffectiveLayout());
  result->neighbors.clear();
  result->trace.clear();
  result->stats = QueryStats{};
  std::vector<Neighbor> scored;
  scored.reserve(database_->size());
  const ScanOutcome outcome =
      ScoreAllCandidates(packed, *similarity, &result->stats.io,
                         page_size_bytes, budget, &scored);
  const auto evaluated = static_cast<uint64_t>(scored.size());
  SortBestFirst(&scored);
  if (scored.size() > k) scored.resize(k);
  result->neighbors = std::move(scored);
  FillScanStats(outcome, *similarity, target, evaluated, database_->size(),
                &result->stats);
  result->guaranteed_exact = result->stats.is_exact;
  result->unexplored_optimistic_bound = result->stats.certificate_bound;
  result->best_unscanned_bound = result->stats.certificate_bound;
  RecordScan(/*is_range=*/false, timer.ElapsedUs());
}

void SequentialScanner::FindInRange(const Transaction& target,
                                    const SimilarityFamily& family,
                                    double threshold, const QueryBudget& budget,
                                    RangeQueryResult* result,
                                    uint32_t page_size_bytes) const {
  MBI_CHECK(result != nullptr);
  ScopedTimer timer(nullptr);
  std::unique_ptr<SimilarityFunction> similarity = family.ForTarget(target);
  PackedTarget packed;
  packed.Assign(target, database_->universe_size(), EffectiveLayout());
  result->matches.clear();
  result->stats = QueryStats{};
  std::vector<Neighbor> scored;
  scored.reserve(database_->size());
  const ScanOutcome outcome =
      ScoreAllCandidates(packed, *similarity, &result->stats.io,
                         page_size_bytes, budget, &scored);
  const auto evaluated = static_cast<uint64_t>(scored.size());
  for (const Neighbor& neighbor : scored) {
    if (neighbor.similarity >= threshold) result->matches.push_back(neighbor);
  }
  SortBestFirst(&result->matches);
  FillScanStats(outcome, *similarity, target, evaluated, database_->size(),
                &result->stats);
  result->guaranteed_complete = result->stats.is_exact;
  RecordScan(/*is_range=*/true, timer.ElapsedUs());
}

std::vector<Neighbor> SequentialScanner::FindKNearestMultiTarget(
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    size_t k) const {
  MBI_CHECK(k >= 1);
  MBI_CHECK(!targets.empty());
  std::vector<std::unique_ptr<SimilarityFunction>> functions;
  std::vector<PackedTarget> packed(targets.size());
  functions.reserve(targets.size());
  for (size_t t = 0; t < targets.size(); ++t) {
    functions.push_back(family.ForTarget(targets[t]));
    packed[t].Assign(targets[t], database_->universe_size());
  }
  std::vector<Neighbor> scored;
  scored.reserve(database_->size());
  for (TransactionId id = 0; id < database_->size(); ++id) {
    const Transaction& candidate = database_->Get(id);
    double sum = 0.0;
    for (size_t t = 0; t < targets.size(); ++t) {
      size_t match = 0, hamming = 0;
      packed[t].MatchAndHamming(candidate, &match, &hamming);
      sum += functions[t]->Evaluate(static_cast<int>(match),
                                    static_cast<int>(hamming));
    }
    scored.push_back({id, sum / static_cast<double>(targets.size())});
  }
  SortBestFirst(&scored);
  if (scored.size() > k) scored.resize(k);
  return scored;
}

std::vector<Neighbor> SequentialScanner::FindInRange(
    const Transaction& target, const SimilarityFamily& family,
    double threshold, IoStats* stats, uint32_t page_size_bytes) const {
  ScopedTimer timer(nullptr);
  std::unique_ptr<SimilarityFunction> similarity = family.ForTarget(target);
  PackedTarget packed;
  packed.Assign(target, database_->universe_size(), EffectiveLayout());
  SequentialIoCharger charger(stats, page_size_bytes);
  std::vector<Neighbor> matches;
  if (packed.has_layout()) {
    constexpr size_t kChunk = 256;
    uint32_t match[kChunk];
    uint32_t hamming[kChunk];
    const size_t n = database_->size();
    for (size_t base = 0; base < n; base += kChunk) {
      const size_t len = std::min(kChunk, n - base);
      packed.MatchAndHammingRows(static_cast<TransactionId>(base), len, match,
                                 hamming);
      for (size_t i = 0; i < len; ++i) {
        const auto id = static_cast<TransactionId>(base + i);
        charger.Charge(database_->Get(id));
        double value = similarity->Evaluate(static_cast<int>(match[i]),
                                            static_cast<int>(hamming[i]));
        if (value >= threshold) matches.push_back({id, value});
      }
    }
  } else {
    for (TransactionId id = 0; id < database_->size(); ++id) {
      const Transaction& candidate = database_->Get(id);
      charger.Charge(candidate);
      size_t match = 0, hamming = 0;
      packed.MatchAndHamming(candidate, &match, &hamming);
      double value = similarity->Evaluate(static_cast<int>(match),
                                          static_cast<int>(hamming));
      if (value >= threshold) matches.push_back({id, value});
    }
  }
  SortBestFirst(&matches);
  RecordScan(/*is_range=*/true, timer.ElapsedUs());
  return matches;
}

}  // namespace mbi
