#include "baseline/sequential_scan.h"

#include <algorithm>
#include <memory>

#include "storage/page_store.h"
#include "txn/packed_target.h"
#include "util/macros.h"

namespace mbi {
namespace {

void SortBestFirst(std::vector<Neighbor>* neighbors) {
  std::sort(neighbors->begin(), neighbors->end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.id < b.id;
            });
}

}  // namespace

SequentialScanner::SequentialScanner(const TransactionDatabase* database)
    : database_(database) {
  MBI_CHECK(database != nullptr);
}

std::vector<Neighbor> SequentialScanner::FindKNearest(
    const Transaction& target, const SimilarityFamily& family, size_t k,
    IoStats* stats, uint32_t page_size_bytes) const {
  MBI_CHECK(k >= 1);
  std::unique_ptr<SimilarityFunction> similarity = family.ForTarget(target);

  PackedTarget packed;
  packed.Assign(target, database_->universe_size());
  uint64_t page_bytes_used = 0;
  std::vector<Neighbor> scored;
  scored.reserve(database_->size());
  for (TransactionId id = 0; id < database_->size(); ++id) {
    const Transaction& candidate = database_->Get(id);
    if (stats != nullptr) {
      ++stats->transactions_fetched;
      uint64_t need = PageStore::SerializedSize(candidate);
      if (page_bytes_used == 0 || page_bytes_used + need > page_size_bytes) {
        ++stats->pages_read;
        stats->bytes_read += page_size_bytes;
        page_bytes_used = 0;
      }
      page_bytes_used += need;
    }
    size_t match = 0, hamming = 0;
    packed.MatchAndHamming(candidate, &match, &hamming);
    scored.push_back({id, similarity->Evaluate(static_cast<int>(match),
                                               static_cast<int>(hamming))});
  }
  SortBestFirst(&scored);
  if (scored.size() > k) scored.resize(k);
  return scored;
}

std::vector<Neighbor> SequentialScanner::FindKNearestMultiTarget(
    const std::vector<Transaction>& targets, const SimilarityFamily& family,
    size_t k) const {
  MBI_CHECK(k >= 1);
  MBI_CHECK(!targets.empty());
  std::vector<std::unique_ptr<SimilarityFunction>> functions;
  std::vector<PackedTarget> packed(targets.size());
  functions.reserve(targets.size());
  for (size_t t = 0; t < targets.size(); ++t) {
    functions.push_back(family.ForTarget(targets[t]));
    packed[t].Assign(targets[t], database_->universe_size());
  }
  std::vector<Neighbor> scored;
  scored.reserve(database_->size());
  for (TransactionId id = 0; id < database_->size(); ++id) {
    const Transaction& candidate = database_->Get(id);
    double sum = 0.0;
    for (size_t t = 0; t < targets.size(); ++t) {
      size_t match = 0, hamming = 0;
      packed[t].MatchAndHamming(candidate, &match, &hamming);
      sum += functions[t]->Evaluate(static_cast<int>(match),
                                    static_cast<int>(hamming));
    }
    scored.push_back({id, sum / static_cast<double>(targets.size())});
  }
  SortBestFirst(&scored);
  if (scored.size() > k) scored.resize(k);
  return scored;
}

std::vector<Neighbor> SequentialScanner::FindInRange(
    const Transaction& target, const SimilarityFamily& family,
    double threshold) const {
  std::unique_ptr<SimilarityFunction> similarity = family.ForTarget(target);
  PackedTarget packed;
  packed.Assign(target, database_->universe_size());
  std::vector<Neighbor> matches;
  for (TransactionId id = 0; id < database_->size(); ++id) {
    size_t match = 0, hamming = 0;
    packed.MatchAndHamming(database_->Get(id), &match, &hamming);
    double value = similarity->Evaluate(static_cast<int>(match),
                                        static_cast<int>(hamming));
    if (value >= threshold) matches.push_back({id, value});
  }
  SortBestFirst(&matches);
  return matches;
}

}  // namespace mbi
