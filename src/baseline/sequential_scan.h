#ifndef MBI_BASELINE_SEQUENTIAL_SCAN_H_
#define MBI_BASELINE_SEQUENTIAL_SCAN_H_

#include <vector>

#include "core/branch_and_bound.h"
#include "core/similarity.h"
#include "storage/io_stats.h"
#include "txn/database.h"
#include "txn/packed_target.h"
#include "util/hot_path.h"
#include "util/metrics.h"

namespace mbi {

/// Exact k-nearest-neighbour search by scanning every transaction.
///
/// This is both the "straightforward solution" the paper's introduction
/// dismisses for very large collections and the ground-truth oracle the
/// test suite and accuracy experiments compare against. When a non-null
/// `stats` is supplied, the scan charges one transaction fetch per row and
/// page reads as if streaming a sequential layout with the given page size —
/// both FindKNearest and FindInRange use the same charging model, so the
/// quarantine fallback reports real I/O for range queries too.
class SequentialScanner {
 public:
  /// With a non-null `layout` (a blocked candidate bitmap covering
  /// `database`, see txn/candidate_layout.h), single-target scans stream
  /// the dense rows through the runtime-dispatched SIMD match kernel in
  /// fixed-size chunks; the default keeps the legacy per-candidate probe,
  /// preserving this class's role as an independent oracle. Results are
  /// bit-identical either way.
  explicit SequentialScanner(const TransactionDatabase* database,
                             const CandidateLayout* layout = nullptr);

  /// Enables aggregate instrumentation: per-query counters and a latency
  /// histogram in `registry` (names mbi.scan.*, see DESIGN.md §8). Pass
  /// nullptr to disable (the default — the oracle role of this class must
  /// not pay for metrics).
  void set_metrics(MetricsRegistry* registry);

  /// Exact k best neighbours, best first (ties: ascending id).
  std::vector<Neighbor> FindKNearest(const Transaction& target,
                                     const SimilarityFamily& family, size_t k,
                                     IoStats* stats = nullptr,
                                     uint32_t page_size_bytes = 4096) const;

  /// Budget-aware variant filling a full NearestNeighborResult (certificate
  /// included) — the form the quarantine fallback propagates, so termination
  /// fields are never dropped. One scanned row costs one "entry" against
  /// QueryBudget::max_entries (the same unit the branch-and-bound path
  /// charges); the budget is checked between kScanChunk-row chunks, so a
  /// scan may overshoot the entry budget by at most kScanChunk - 1 rows and
  /// always scores at least one chunk. On expiry the returned prefix top-k
  /// is certified with f(|target|, 0), a pointwise optimistic bound for
  /// every admissible similarity (matches cannot exceed the target size and
  /// the Hamming distance cannot go below zero).
  void FindKNearest(const Transaction& target, const SimilarityFamily& family,
                    size_t k, const QueryBudget& budget,
                    NearestNeighborResult* result,
                    uint32_t page_size_bytes = 4096) const;

  /// Budget-aware range query (see the budget-aware FindKNearest).
  void FindInRange(const Transaction& target, const SimilarityFamily& family,
                   double threshold, const QueryBudget& budget,
                   RangeQueryResult* result,
                   uint32_t page_size_bytes = 4096) const;

  /// Rows scored per budget check in the budget-aware scans.
  static constexpr size_t kScanChunk = 256;

  /// How far a budgeted scan got: row accounting feeds the entries_* stats
  /// (row units — the stats-unit contract in DESIGN.md §13.4), termination
  /// the certificate.
  struct ScanOutcome {
    QueryTermination termination = QueryTermination::kCompleted;
    uint64_t rows_total = 0;
    uint64_t rows_scanned = 0;
  };

  /// Exact multi-target variant: maximizes average similarity to `targets`.
  std::vector<Neighbor> FindKNearestMultiTarget(
      const std::vector<Transaction>& targets, const SimilarityFamily& family,
      size_t k) const;

  /// Exact range query: every transaction with f >= threshold, best first.
  /// Charges the same streaming I/O as FindKNearest when `stats` is given.
  std::vector<Neighbor> FindInRange(const Transaction& target,
                                    const SimilarityFamily& family,
                                    double threshold, IoStats* stats = nullptr,
                                    uint32_t page_size_bytes = 4096) const;

 private:
  struct MetricHandles {
    Counter* knn_queries = nullptr;
    Counter* range_queries = nullptr;
    Counter* transactions_scanned = nullptr;
    LatencyHistogram* latency = nullptr;
  };

  void RecordScan(bool is_range, double elapsed_us) const;

  /// The scan's inner loop: scores transactions against the packed target in
  /// kScanChunk-row chunks, appending to the caller-owned `scored` buffer
  /// and charging the streaming I/O model, until the database is exhausted
  /// or `budget` expires (checked between chunks, always after at least one
  /// chunk). MBI_HOT: growth of `*scored` aside, the loop must not allocate
  /// (util/hot_path.h).
  MBI_HOT ScanOutcome ScoreAllCandidates(const PackedTarget& packed,
                                         const SimilarityFunction& similarity,
                                         IoStats* stats,
                                         uint32_t page_size_bytes,
                                         const QueryBudget& budget,
                                         std::vector<Neighbor>* scored) const;

  /// The layout in effect for this query, or null when the (optional)
  /// layout does not cover every current database row.
  const CandidateLayout* EffectiveLayout() const {
    return layout_ != nullptr && layout_->num_rows() >= database_->size()
               ? layout_
               : nullptr;
  }

  const TransactionDatabase* database_;
  const CandidateLayout* layout_;
  MetricHandles metrics_;
  bool metrics_enabled_ = false;
};

}  // namespace mbi

#endif  // MBI_BASELINE_SEQUENTIAL_SCAN_H_
