#ifndef MBI_BASELINE_RTREE_H_
#define MBI_BASELINE_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/branch_and_bound.h"
#include "txn/database.h"
#include "util/bitset.h"

namespace mbi {

/// Build/search parameters of the binary R-tree.
struct RTreeConfig {
  /// Maximum entries per node before a split (Guttman's M).
  uint32_t max_node_entries = 32;
  /// Minimum entries per node after a split (Guttman's m <= M/2).
  uint32_t min_node_entries = 8;
};

/// R-tree over transactions viewed as points of the boolean hypercube
/// {0,1}^|U| — the "available indexing technique for continuous valued
/// attributes" the paper's introduction rules out for market-basket data.
///
/// This baseline exists to *demonstrate* the dimensionality curse the paper
/// argues from (Guttman's R-tree, searched with the branch-and-bound
/// MINDIST method of Roussopoulos, Kelley & Vincent — the paper's reference
/// [17]). A node's minimum bounding rectangle over binary axes degenerates
/// to a pair of bitsets:
///
///   lower[d] = AND of the subtree's bit d   (1 iff every point has item d)
///   upper[d] = OR of the subtree's bit d    (1 iff any point has item d)
///
/// and MINDIST to a query q under Hamming distance (= L1 on the hypercube)
/// is `popcount(q & ~upper) + popcount(lower & ~q)`. With a universe of
/// hundreds of items and sparse correlated baskets, `upper` saturates and
/// `lower` empties a few levels up the tree, MINDIST collapses to ~0
/// everywhere, and nearest-neighbour search degenerates to a full scan —
/// exactly the paper's "as a rule of thumb, when the dimensionality is more
/// than 10, none of the above methods work well".
class BinaryRTree {
 public:
  /// Search accounting.
  struct SearchStats {
    uint64_t nodes_visited = 0;
    uint64_t nodes_pruned = 0;
    uint64_t transactions_evaluated = 0;
    uint64_t database_size = 0;

    /// Fraction of the database whose exact distance was computed.
    double AccessedFraction() const {
      return database_size == 0
                 ? 0.0
                 : static_cast<double>(transactions_evaluated) /
                       static_cast<double>(database_size);
    }
  };

  /// Result of a k-NN search: neighbours best-first by ascending Hamming
  /// distance (Neighbor::similarity holds the *distance* negated so that the
  /// shared best-first convention "larger is better" applies).
  struct Result {
    std::vector<Neighbor> neighbors;
    SearchStats stats;
  };

  /// Bulk-builds the tree by repeated insertion.
  BinaryRTree(const TransactionDatabase* database, const RTreeConfig& config);

  /// Exact k nearest neighbours by Hamming distance, best-first search with
  /// MINDIST pruning (Roussopoulos et al.).
  Result FindKNearestHamming(const Transaction& target, size_t k) const;

  /// Tree shape statistics.
  struct TreeStats {
    uint32_t height = 0;
    uint64_t internal_nodes = 0;
    uint64_t leaf_nodes = 0;
    /// Mean fraction of dimensions "free" (upper=1, lower=0) at the root's
    /// children — the saturation measure behind the dimensionality curse.
    double root_child_free_dim_fraction = 0.0;
  };
  TreeStats ComputeTreeStats() const;

 private:
  struct Node {
    bool is_leaf = true;
    Bitset lower;  // AND over the subtree.
    Bitset upper;  // OR over the subtree.
    std::vector<std::unique_ptr<Node>> children;   // Internal nodes.
    std::vector<TransactionId> transaction_ids;    // Leaves.

    explicit Node(size_t universe) : lower(universe), upper(universe) {
      lower.SetAll();
    }
    size_t EntryCount() const {
      return is_leaf ? transaction_ids.size() : children.size();
    }
  };

  /// MINDIST from a query bitset to a node's MBR under Hamming distance.
  static size_t MinDist(const Bitset& query, const Node& node);

  Bitset AsBitset(const Transaction& transaction) const;
  void Insert(TransactionId id, const Bitset& point);
  /// Descends to the leaf whose MBR needs the least enlargement, splitting
  /// full nodes on the way back up. Returns a new sibling when `node` split.
  std::unique_ptr<Node> InsertRecursive(Node* node, TransactionId id,
                                        const Bitset& point);
  std::unique_ptr<Node> SplitNode(Node* node);
  void RecomputeMbr(Node* node) const;

  const TransactionDatabase* database_;
  RTreeConfig config_;
  std::unique_ptr<Node> root_;
};

}  // namespace mbi

#endif  // MBI_BASELINE_RTREE_H_
