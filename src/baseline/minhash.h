#ifndef MBI_BASELINE_MINHASH_H_
#define MBI_BASELINE_MINHASH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/branch_and_bound.h"
#include "txn/database.h"

namespace mbi {

/// Parameters of the MinHash/LSH index.
struct MinHashConfig {
  /// Number of MinHash functions = bands * rows_per_band.
  uint32_t num_bands = 16;
  uint32_t rows_per_band = 4;

  /// Seed of the hash family.
  uint64_t seed = 0xC0FFEE;
};

/// MinHash signatures with banded locality-sensitive hashing — the technique
/// that historically superseded signature-table-style indexes for set
/// similarity (Broder's min-wise permutations + LSH banding).
///
/// Each transaction gets `num_bands * rows_per_band` MinHash values; the
/// probability that one hash collides for two sets equals their Jaccard
/// similarity, so a *band* (a tuple of `rows_per_band` hashes) collides with
/// probability J^rows, and at least one of `num_bands` bands collides with
/// probability 1 - (1 - J^rows)^bands — the classic S-curve. Candidates are
/// the transactions sharing at least one band bucket with the target; they
/// are re-ranked by exact Jaccard.
///
/// Included as the modern comparison point for the signature table: unlike
/// the signature table it is (a) approximate — recall < 1 with no
/// certificate — and (b) hard-wired to one similarity function (Jaccard),
/// whereas the paper's index answers any admissible f(x, y) exactly.
class MinHashIndex {
 public:
  struct Result {
    /// Up to k candidates re-ranked by exact Jaccard, best first. May hold
    /// fewer than k (or miss the true neighbours entirely) when LSH produces
    /// too few candidates.
    std::vector<Neighbor> neighbors;
    /// Phase-1 candidate count and fraction of the database.
    uint64_t candidates = 0;
    double accessed_fraction = 0.0;
  };

  MinHashIndex(const TransactionDatabase* database,
               const MinHashConfig& config);

  /// Approximate k-NN by Jaccard similarity.
  Result FindKNearestJaccard(const Transaction& target, size_t k) const;

  /// MinHash signature of an arbitrary transaction (num_hashes values).
  std::vector<uint64_t> SignatureOf(const Transaction& transaction) const;

  /// Estimated Jaccard similarity between two transactions from their
  /// signatures (fraction of colliding hash positions).
  double EstimateJaccard(const Transaction& a, const Transaction& b) const;

  uint32_t num_hashes() const {
    return config_.num_bands * config_.rows_per_band;
  }

  /// Bytes of signature + bucket storage.
  uint64_t MemoryBytes() const;

 private:
  /// Hash of one band of a signature (row values combined).
  uint64_t BandKey(const std::vector<uint64_t>& signature,
                   uint32_t band) const;

  MinHashConfig config_;
  const TransactionDatabase* database_;
  std::vector<uint64_t> hash_seeds_;
  /// Signatures of every database transaction, row-major.
  std::vector<uint64_t> signatures_;
  /// Per band: bucket hash -> transaction ids.
  std::vector<std::unordered_map<uint64_t, std::vector<TransactionId>>>
      band_buckets_;
};

}  // namespace mbi

#endif  // MBI_BASELINE_MINHASH_H_
