#ifndef MBI_BASELINE_INVERTED_INDEX_H_
#define MBI_BASELINE_INVERTED_INDEX_H_

#include <cstdint>
#include <vector>

#include "baseline/compressed_postings.h"
#include "core/branch_and_bound.h"
#include "core/similarity.h"
#include "storage/buffer_pool.h"
#include "storage/transaction_store.h"
#include "txn/candidate_layout.h"
#include "txn/database.h"
#include "util/metrics.h"

namespace mbi {

/// The inverted-index baseline of paper §5.1.
///
/// For every item, the index stores the ids of the transactions containing
/// it. A similarity query runs in two phases: (1) union the TID lists of the
/// target's items to form the candidate set; (2) fetch each candidate from
/// the database and score it. The paper's Table 1 reports the *minimum*
/// percentage of transactions such a query must access — the candidate-set
/// size — and argues that page scattering makes the real cost still higher
/// because candidates are spread over unrelated pages. Both effects are
/// measured here: logical candidates and distinct pages touched on a
/// sequential (arrival-order) layout.
///
/// Correctness caveat (also the paper's point): phase 1 only sees
/// transactions sharing at least one item with the target, so the two-phase
/// answer is exact only for similarity functions where a zero-match
/// transaction can never win (e.g. match count, match ratio, cosine — all
/// have f(0, y) <= f(x, y') for the winners). For functions like inverse
/// Hamming distance, a short transaction *disjoint* from the target can beat
/// every candidate; FindKNearest reports whether its answer is guaranteed by
/// construction via `candidates_complete`.
class InvertedIndex {
 public:
  /// Result of a two-phase k-NN query with access accounting.
  struct Result {
    std::vector<Neighbor> neighbors;  // Best first.
    /// Phase-1 candidate count (distinct TIDs in the union of lists).
    uint64_t candidates = 0;
    /// candidates / database size — Table 1's metric.
    double accessed_fraction = 0.0;
    /// Distinct data pages touched in phase 2 on the sequential layout
    /// (page-scattering effect) over total data pages.
    uint64_t pages_touched = 0;
    uint64_t pages_total = 0;
    /// False when the candidate set provably cannot be trusted to contain
    /// the true optimum for the supplied similarity family (zero-match
    /// transactions could win).
    bool candidates_complete = false;
    IoStats io;
    /// Budget accounting + quality certificate (termination, is_exact,
    /// certificate_bound), in the same shape as the engine's QueryStats.
    /// One "entry" is one phase-2 candidate row (the repo-wide stats unit;
    /// the budget is checked every kScanChunk candidates, bounding the
    /// overshoot at kScanChunk - 1).
    QueryStats stats;
  };

  /// Builds the index and a sequential page layout of `database`.
  /// `buffer_pool_pages` caches phase-2 page fetches (0 = no cache).
  /// With `compress_postings`, TID lists are stored delta+varint encoded
  /// (realistic IR index size accounting; query results are identical).
  explicit InvertedIndex(const TransactionDatabase* database,
                         uint32_t page_size_bytes = 4096,
                         size_t buffer_pool_pages = 0,
                         bool compress_postings = false);

  /// Enables aggregate instrumentation (names mbi.inverted.*, see DESIGN.md
  /// §8): query/candidate counters, a latency histogram, and — because each
  /// query builds its own BufferPool — per-query pool hit/miss traffic under
  /// mbi.bufferpool.*. Pass nullptr to disable (the default).
  void set_metrics(MetricsRegistry* registry);

  /// Phase 1 only: the candidate TIDs for `target`, ascending.
  std::vector<TransactionId> Candidates(const Transaction& target) const;

  /// Full two-phase k-NN.
  Result FindKNearest(const Transaction& target,
                      const SimilarityFamily& family, size_t k) const {
    return FindKNearest(target, family, k, QueryBudget{});
  }

  /// Budget-aware two-phase k-NN: phase 1 always completes (the union is
  /// the index's fixed cost), phase-2 re-ranking checks `budget` every
  /// kScanChunk candidates and, on expiry, returns the best of the scored
  /// prefix certified with f(|target|, 0) in Result::stats.
  Result FindKNearest(const Transaction& target, const SimilarityFamily& family,
                      size_t k, const QueryBudget& budget) const;

  /// Candidates re-ranked per budget check in phase 2.
  static constexpr size_t kScanChunk = 256;

  /// TID list of one item (decodes when the index is compressed).
  std::vector<TransactionId> PostingsOf(ItemId item) const;

  const TransactionDatabase& database() const { return *database_; }

  bool compressed() const { return compress_postings_; }

  /// Bytes of posting lists (index size accounting; compressed size when
  /// compression is on).
  uint64_t PostingsBytes() const;

  /// Walks the index and aborts (via MBI_CHECK) on any structural
  /// inconsistency: every posting list is strictly ascending with in-range
  /// ids (compressed lists are decoded first), the lists exactly mirror the
  /// database (transaction t appears in item i's list iff t contains i), and
  /// the sequential page layout maps every transaction to a page that
  /// actually holds it. O(total item occurrences · log); meant for tests and
  /// debug flags, not for query paths.
  void CheckInvariants() const;

 private:
  struct MetricHandles {
    Counter* queries = nullptr;
    Counter* candidates = nullptr;
    LatencyHistogram* latency = nullptr;
  };

  const TransactionDatabase* database_;
  bool compress_postings_;
  std::vector<std::vector<TransactionId>> postings_;           // Uncompressed.
  std::vector<CompressedPostingList> compressed_postings_;    // Compressed.
  TransactionStore sequential_store_;
  /// Blocked candidate bitmap for phase-2 re-ranking through the SIMD match
  /// kernel (built over the construction-time database snapshot; queries
  /// against a grown database fall back to the per-candidate probe).
  CandidateLayout layout_;
  size_t buffer_pool_pages_;
  MetricsRegistry* metrics_registry_ = nullptr;
  MetricHandles metrics_;
};

}  // namespace mbi

#endif  // MBI_BASELINE_INVERTED_INDEX_H_
