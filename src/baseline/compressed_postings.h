#ifndef MBI_BASELINE_COMPRESSED_POSTINGS_H_
#define MBI_BASELINE_COMPRESSED_POSTINGS_H_

#include <cstdint>
#include <vector>

#include "txn/transaction.h"

namespace mbi {

/// Delta + varint (LEB128) compressed TID list — the classic information-
/// retrieval posting-list representation the paper's inverted-index baseline
/// (§5.1, ref [18] Salton) would use in practice.
///
/// TIDs are sorted ascending; each is stored as the varint-encoded gap to
/// its predecessor. Decoding is sequential; `Contains` and intersection run
/// over the decoded form. The class exists so the baseline's index-size
/// accounting is realistic (4 bytes/TID uncompressed vs ~1-2 bytes/TID for
/// dense items) and so the storage cost comparison against the signature
/// table is fair.
class CompressedPostingList {
 public:
  /// Builds from a sorted, duplicate-free TID list (checked).
  static CompressedPostingList Encode(const std::vector<TransactionId>& tids);

  /// Decodes the full list.
  std::vector<TransactionId> Decode() const;

  /// Number of postings.
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Compressed size in bytes.
  size_t ByteSize() const { return bytes_.size(); }

  /// Appends a TID larger than every existing one (checked).
  void Append(TransactionId tid);

  /// Streaming cursor over the compressed list.
  class Iterator {
   public:
    explicit Iterator(const CompressedPostingList* list);

    /// False when the cursor is exhausted.
    bool valid() const { return remaining_ > 0; }

    /// Current TID; requires valid().
    TransactionId value() const { return current_; }

    /// Advances to the next TID.
    void Next();

   private:
    const CompressedPostingList* list_;
    size_t offset_ = 0;
    size_t remaining_ = 0;
    TransactionId current_ = 0;
  };

  Iterator begin() const { return Iterator(this); }

 private:
  std::vector<uint8_t> bytes_;
  size_t count_ = 0;
  TransactionId last_ = 0;
};

/// Unions many compressed lists into one sorted, duplicate-free TID vector
/// (the inverted index's phase 1 for a multi-item target).
std::vector<TransactionId> UnionPostings(
    const std::vector<const CompressedPostingList*>& lists);

/// Intersects two compressed lists (gallop-free linear merge).
std::vector<TransactionId> IntersectPostings(const CompressedPostingList& a,
                                             const CompressedPostingList& b);

}  // namespace mbi

#endif  // MBI_BASELINE_COMPRESSED_POSTINGS_H_
