#include "baseline/minhash.h"

#include <algorithm>
#include <limits>

#include "core/similarity.h"
#include "util/macros.h"
#include "util/rng.h"

namespace mbi {
namespace {

/// 64-bit mix (splitmix64 finalizer) of an item under one hash seed.
uint64_t HashItem(ItemId item, uint64_t seed) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (item + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

MinHashIndex::MinHashIndex(const TransactionDatabase* database,
                           const MinHashConfig& config)
    : config_(config), database_(database) {
  MBI_CHECK(database != nullptr);
  MBI_CHECK(config_.num_bands >= 1);
  MBI_CHECK(config_.rows_per_band >= 1);

  Rng rng(config_.seed);
  hash_seeds_.resize(num_hashes());
  for (uint64_t& seed : hash_seeds_) seed = rng.NextUint64();

  // Signatures for the whole database, then the banded buckets.
  const uint32_t hashes = num_hashes();
  signatures_.resize(static_cast<size_t>(database_->size()) * hashes);
  band_buckets_.resize(config_.num_bands);
  for (TransactionId id = 0; id < database_->size(); ++id) {
    std::vector<uint64_t> signature = SignatureOf(database_->Get(id));
    std::copy(signature.begin(), signature.end(),
              signatures_.begin() + static_cast<size_t>(id) * hashes);
    for (uint32_t band = 0; band < config_.num_bands; ++band) {
      band_buckets_[band][BandKey(signature, band)].push_back(id);
    }
  }
}

std::vector<uint64_t> MinHashIndex::SignatureOf(
    const Transaction& transaction) const {
  std::vector<uint64_t> signature(num_hashes(),
                                  std::numeric_limits<uint64_t>::max());
  for (ItemId item : transaction.items()) {
    for (uint32_t h = 0; h < num_hashes(); ++h) {
      signature[h] = std::min(signature[h], HashItem(item, hash_seeds_[h]));
    }
  }
  return signature;
}

uint64_t MinHashIndex::BandKey(const std::vector<uint64_t>& signature,
                               uint32_t band) const {
  uint64_t key = 1469598103934665603ULL ^ band;
  for (uint32_t row = 0; row < config_.rows_per_band; ++row) {
    key ^= signature[band * config_.rows_per_band + row];
    key *= 1099511628211ULL;
  }
  return key;
}

double MinHashIndex::EstimateJaccard(const Transaction& a,
                                     const Transaction& b) const {
  std::vector<uint64_t> sig_a = SignatureOf(a);
  std::vector<uint64_t> sig_b = SignatureOf(b);
  size_t collisions = 0;
  for (uint32_t h = 0; h < num_hashes(); ++h) {
    collisions += sig_a[h] == sig_b[h];
  }
  return static_cast<double>(collisions) / static_cast<double>(num_hashes());
}

MinHashIndex::Result MinHashIndex::FindKNearestJaccard(
    const Transaction& target, size_t k) const {
  MBI_CHECK(k >= 1);
  Result result;
  std::vector<uint64_t> signature = SignatureOf(target);

  // Phase 1: union of the band buckets the target falls into.
  std::vector<TransactionId> candidates;
  for (uint32_t band = 0; band < config_.num_bands; ++band) {
    auto it = band_buckets_[band].find(BandKey(signature, band));
    if (it != band_buckets_[band].end()) {
      candidates.insert(candidates.end(), it->second.begin(),
                        it->second.end());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  result.candidates = candidates.size();
  result.accessed_fraction =
      database_->empty() ? 0.0
                         : static_cast<double>(candidates.size()) /
                               static_cast<double>(database_->size());

  // Phase 2: exact Jaccard re-rank of the candidates.
  JaccardSimilarity jaccard;
  std::vector<Neighbor> scored;
  scored.reserve(candidates.size());
  for (TransactionId id : candidates) {
    size_t match = 0, hamming = 0;
    MatchAndHamming(target, database_->Get(id), &match, &hamming);
    scored.push_back({id, jaccard.Evaluate(static_cast<int>(match),
                                           static_cast<int>(hamming))});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.id < b.id;
            });
  if (scored.size() > k) scored.resize(k);
  result.neighbors = std::move(scored);
  return result;
}

uint64_t MinHashIndex::MemoryBytes() const {
  uint64_t total = signatures_.size() * sizeof(uint64_t);
  for (const auto& buckets : band_buckets_) {
    for (const auto& [key, ids] : buckets) {
      (void)key;
      total += sizeof(uint64_t) + ids.size() * sizeof(TransactionId);
    }
  }
  return total;
}

}  // namespace mbi
