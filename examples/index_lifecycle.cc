// Index lifecycle: everything a deployment does around the paper's
// algorithm — build an index, persist it, reopen it without re-mining,
// append new transactions incrementally, and answer a parallel batch of
// queries against the updated index.
//
//   ./index_lifecycle [--transactions=30000] [--inserts=5000] [--seed=23]

#include <cstdio>
#include <string>

#include "core/batch_query.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "core/table_io.h"
#include "gen/quest_generator.h"
#include "txn/database_io.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  mbi::FlagParser flags("Index persistence, incremental growth, batches.");
  int64_t transactions, inserts, seed;
  std::string dir;
  flags.AddInt64("transactions", 30'000, "initial database size",
                 &transactions);
  flags.AddInt64("inserts", 5'000, "transactions appended after reopening",
                 &inserts);
  flags.AddInt64("seed", 23, "generator seed", &seed);
  flags.AddString("dir", "/tmp", "directory for the data and index files",
                  &dir);
  if (!flags.Parse(argc, argv)) return 0;

  const std::string db_path = dir + "/lifecycle.mbid";
  const std::string index_path = dir + "/lifecycle.mbst";

  // Day 0: build and persist.
  mbi::QuestGeneratorConfig gen_config;
  gen_config.universe_size = 1000;
  gen_config.num_large_itemsets = 2000;
  gen_config.avg_transaction_size = 10.0;
  gen_config.seed = static_cast<uint64_t>(seed);
  mbi::QuestGenerator generator(gen_config);
  mbi::TransactionDatabase db =
      generator.GenerateDatabase(static_cast<uint64_t>(transactions));

  mbi::Stopwatch timer;
  mbi::IndexBuildConfig build;
  build.clustering.target_cardinality = 14;
  mbi::SignatureTable built = mbi::BuildIndex(db, build);
  std::printf("built index over %zu transactions in %.2fs\n", db.size(),
              timer.ElapsedSeconds());

  if (!mbi::SaveDatabase(db, db_path).ok() ||
      !mbi::SaveSignatureTable(built, index_path).ok()) {
    std::fprintf(stderr, "error: cannot write to %s\n", dir.c_str());
    return 1;
  }
  std::printf("persisted database -> %s, index -> %s\n", db_path.c_str(),
              index_path.c_str());

  // Day 1: reopen without re-mining or re-clustering.
  timer.Reset();
  auto reopened_db = mbi::LoadDatabase(db_path);
  if (!reopened_db.ok()) {
    std::fprintf(stderr, "error: %s\n", reopened_db.status().ToString().c_str());
    return 1;
  }
  auto table = mbi::LoadSignatureTable(index_path, *reopened_db);
  if (!table.ok()) {
    std::fprintf(stderr, "error: %s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("reopened in %.2fs (no support mining, no clustering)\n",
              timer.ElapsedSeconds());

  // New sales arrive: append incrementally — the partition is reused, each
  // basket lands in its supercoordinate's bucket.
  timer.Reset();
  for (int64_t i = 0; i < inserts; ++i) {
    mbi::Transaction fresh = generator.NextTransaction();
    table->InsertTransaction(reopened_db->Add(fresh), fresh);
  }
  std::printf("appended %lld transactions in %.2fs (%llu entries occupied)\n",
              static_cast<long long>(inserts), timer.ElapsedSeconds(),
              static_cast<unsigned long long>(table->entries().size()));

  // Evening batch job: score a batch of query baskets in parallel.
  mbi::BranchAndBoundEngine engine(&*reopened_db, &*table);
  mbi::MatchRatioFamily family;
  auto batch = generator.GenerateQueries(64);
  mbi::SearchOptions options;
  options.max_access_fraction = 0.02;
  timer.Reset();
  auto results = mbi::FindKNearestBatch(engine, batch, family, 5, options);
  double elapsed = timer.ElapsedSeconds();

  double avg_access = 0.0;
  int certified = 0;
  for (const auto& result : results) {
    avg_access += result.stats.AccessedFraction();
    certified += result.guaranteed_exact;
  }
  std::printf(
      "batch of %zu queries in %.2fs (%.1f ms/query): avg access %.2f%%, "
      "%d/%zu certified exact at 2%% termination\n",
      batch.size(), elapsed,
      1e3 * elapsed / static_cast<double>(batch.size()),
      100.0 * avg_access / static_cast<double>(results.size()), certified,
      results.size());

  std::remove(db_path.c_str());
  std::remove(index_path.c_str());
  return 0;
}
