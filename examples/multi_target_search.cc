// Multi-target similarity search (paper §2.1 / §4.3): given the baskets of a
// small customer segment, find the historical transactions with the highest
// *average* similarity to the whole segment — e.g. to seed a lookalike
// audience. Also demonstrates early termination with its a-posteriori
// optimality certificate.
//
//   ./multi_target_search [--transactions=40000] [--segment=3] [--seed=19]

#include <cstdio>
#include <vector>

#include "baseline/sequential_scan.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  mbi::FlagParser flags("Multi-target (segment) similarity search.");
  int64_t transactions, segment_size, seed;
  flags.AddInt64("transactions", 40'000, "history size", &transactions);
  flags.AddInt64("segment", 3, "number of segment baskets", &segment_size);
  flags.AddInt64("seed", 19, "generator seed", &seed);
  if (!flags.Parse(argc, argv)) return 0;

  mbi::QuestGeneratorConfig gen_config;
  gen_config.universe_size = 1000;
  gen_config.num_large_itemsets = 2000;
  gen_config.avg_transaction_size = 10.0;
  gen_config.seed = static_cast<uint64_t>(seed);
  mbi::QuestGenerator generator(gen_config);
  mbi::TransactionDatabase db =
      generator.GenerateDatabase(static_cast<uint64_t>(transactions));

  mbi::IndexBuildConfig build;
  build.clustering.target_cardinality = 13;
  mbi::SignatureTable table = mbi::BuildIndex(db, build);
  mbi::BranchAndBoundEngine engine(&db, &table);

  std::vector<mbi::Transaction> segment =
      generator.GenerateQueries(static_cast<uint64_t>(segment_size));
  std::printf("Customer segment (%zu baskets):\n", segment.size());
  for (const mbi::Transaction& basket : segment) {
    std::printf("  %s\n", basket.ToString().c_str());
  }

  mbi::MatchRatioFamily family;

  // Exact multi-target search.
  mbi::Stopwatch timer;
  mbi::NearestNeighborResult exact =
      engine.FindKNearestMultiTarget(segment, family, 5);
  double exact_ms = timer.ElapsedMillis();
  std::printf(
      "\nExact top-5 by average similarity (%.1f ms, pruned %.1f%%):\n",
      exact_ms, exact.stats.PruningEfficiencyPercent());
  for (const mbi::Neighbor& neighbor : exact.neighbors) {
    std::printf("  tx %-8u avg similarity %-8.4g %s\n", neighbor.id,
                neighbor.similarity, db.Get(neighbor.id).ToString().c_str());
  }

  // Early-terminated search with the paper's quality certificate.
  mbi::SearchOptions options;
  options.max_access_fraction = 0.005;
  timer.Reset();
  mbi::NearestNeighborResult fast =
      engine.FindKNearestMultiTarget(segment, family, 5, options);
  std::printf(
      "\nEarly-terminated at 0.5%% of the data (%.1f ms): best avg "
      "similarity %.4g, %s",
      timer.ElapsedMillis(), fast.neighbors[0].similarity,
      fast.guaranteed_exact
          ? "certified optimal by the unexplored-entry bound\n"
          : "not certified; ");
  if (!fast.guaranteed_exact) {
    std::printf("unexplored entries could reach %.4g\n",
                fast.unexplored_optimistic_bound);
  }

  // Cross-check against the scan oracle.
  mbi::SequentialScanner scanner(&db);
  auto oracle = scanner.FindKNearestMultiTarget(segment, family, 5);
  std::printf("\nSequential-scan cross-check: best id %u (engine found %u)\n",
              oracle[0].id, exact.neighbors[0].id);
  return 0;
}
