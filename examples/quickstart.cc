// Quickstart: build a signature table over synthetic market-basket data and
// run a few similarity queries with different similarity functions against
// the same index.
//
//   ./quickstart [--transactions=20000] [--cardinality=12] [--seed=42]

#include <cstdio>

#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  mbi::FlagParser flags("Quickstart for the signature table index.");
  int64_t transactions, cardinality, seed;
  flags.AddInt64("transactions", 20'000, "database size", &transactions);
  flags.AddInt64("cardinality", 12, "signature cardinality K", &cardinality);
  flags.AddInt64("seed", 42, "generator seed", &seed);
  if (!flags.Parse(argc, argv)) return 0;

  // 1. Generate market-basket data (IBM Quest-style, as in the paper's §5).
  mbi::QuestGeneratorConfig gen_config;
  gen_config.universe_size = 1000;
  gen_config.num_large_itemsets = 2000;
  gen_config.avg_itemset_size = 6.0;
  gen_config.avg_transaction_size = 10.0;
  gen_config.seed = static_cast<uint64_t>(seed);
  mbi::QuestGenerator generator(gen_config);
  mbi::TransactionDatabase db =
      generator.GenerateDatabase(static_cast<uint64_t>(transactions));
  std::printf("Generated %zu transactions (avg size %.1f) over %u items\n",
              db.size(), db.AverageTransactionSize(), db.universe_size());

  // 2. Build the index: mine pair supports, cluster items into K signatures,
  //    materialize the table. Construction is independent of the similarity
  //    function.
  mbi::Stopwatch build_timer;
  mbi::IndexBuildConfig build;
  build.clustering.target_cardinality = static_cast<uint32_t>(cardinality);
  mbi::SignatureTable table = mbi::BuildIndex(db, build);
  mbi::SignatureTable::Stats stats = table.ComputeStats();
  std::printf(
      "Built signature table in %.2fs: K=%u, %llu of %llu entries occupied, "
      "avg bucket %.1f, %llu disk pages\n",
      build_timer.ElapsedSeconds(), stats.cardinality,
      static_cast<unsigned long long>(stats.occupied_entries),
      static_cast<unsigned long long>(stats.directory_entries),
      stats.avg_bucket_size,
      static_cast<unsigned long long>(stats.disk_pages));

  // 3. Query with three different similarity functions — same table.
  mbi::BranchAndBoundEngine engine(&db, &table);
  mbi::Transaction target = generator.NextTransaction();
  std::printf("\nTarget basket: %s\n", target.ToString().c_str());

  for (const char* name : {"hamming", "match_ratio", "cosine"}) {
    auto family = mbi::MakeSimilarityFamily(name);
    mbi::Stopwatch query_timer;
    mbi::NearestNeighborResult result = engine.FindKNearest(target, *family, 3);
    std::printf("\n[%s] top-3 in %.1f ms, pruned %.1f%% of the database:\n",
                name, query_timer.ElapsedMillis(),
                result.stats.PruningEfficiencyPercent());
    for (const mbi::Neighbor& neighbor : result.neighbors) {
      std::printf("  tx %-8u similarity %-8.4g %s\n", neighbor.id,
                  neighbor.similarity, db.Get(neighbor.id).ToString().c_str());
    }
  }
  return 0;
}
