// Market-basket analysis with the mining substrate: mine frequent itemsets
// and association rules (the paper's reference framework [2, 3]), then show
// how the same pair-support statistics drive signature construction.
//
//   ./market_basket_analysis [--transactions=10000] [--min_support=0.02]

#include <algorithm>
#include <cstdio>

#include "core/clustering.h"
#include "gen/quest_generator.h"
#include "mining/apriori.h"
#include "mining/support_counter.h"
#include "util/flags.h"

namespace {

std::string ItemsToString(const std::vector<mbi::ItemId>& items) {
  std::string out = "{";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(items[i]);
  }
  return out + "}";
}

}  // namespace

int main(int argc, char** argv) {
  mbi::FlagParser flags("Frequent itemsets, rules, and signatures.");
  int64_t transactions, seed;
  double min_support, min_confidence;
  flags.AddInt64("transactions", 10'000, "database size", &transactions);
  flags.AddInt64("seed", 29, "generator seed", &seed);
  flags.AddDouble("min_support", 0.02, "minimum itemset support",
                  &min_support);
  flags.AddDouble("min_confidence", 0.6, "minimum rule confidence",
                  &min_confidence);
  if (!flags.Parse(argc, argv)) return 0;

  mbi::QuestGeneratorConfig gen_config;
  gen_config.universe_size = 500;
  gen_config.num_large_itemsets = 100;
  gen_config.avg_itemset_size = 4.0;
  gen_config.avg_transaction_size = 8.0;
  gen_config.seed = static_cast<uint64_t>(seed);
  mbi::QuestGenerator generator(gen_config);
  mbi::TransactionDatabase db =
      generator.GenerateDatabase(static_cast<uint64_t>(transactions));

  // Frequent itemsets (Apriori).
  mbi::AprioriConfig apriori;
  apriori.min_support = min_support;
  auto itemsets = mbi::MineFrequentItemsets(db, apriori);
  size_t pairs = 0, larger = 0;
  for (const auto& itemset : itemsets) {
    pairs += itemset.items.size() == 2;
    larger += itemset.items.size() > 2;
  }
  std::printf(
      "Mined %zu frequent itemsets at support >= %.3f "
      "(%zu pairs, %zu larger)\n",
      itemsets.size(), min_support, pairs, larger);
  std::printf("Largest frequent itemsets:\n");
  int shown = 0;
  for (auto it = itemsets.rbegin(); it != itemsets.rend() && shown < 5; ++it) {
    if (it->items.size() < 2) break;
    std::printf("  %-24s support %.3f\n", ItemsToString(it->items).c_str(),
                it->Support(db.size()));
    ++shown;
  }

  // Association rules.
  auto rules = mbi::GenerateAssociationRules(itemsets, db.size(),
                                             min_confidence);
  std::printf("\n%zu rules at confidence >= %.2f; strongest:\n", rules.size(),
              min_confidence);
  std::sort(rules.begin(), rules.end(),
            [](const mbi::AssociationRule& a, const mbi::AssociationRule& b) {
              return a.confidence > b.confidence;
            });
  for (size_t i = 0; i < rules.size() && i < 5; ++i) {
    std::printf("  %s => %s  (conf %.2f, supp %.3f)\n",
                ItemsToString(rules[i].antecedent).c_str(),
                ItemsToString(rules[i].consequent).c_str(),
                rules[i].confidence, rules[i].support);
  }

  // The same co-occurrence statistics drive signature construction.
  mbi::SupportCounter supports(db);
  mbi::ClusteringConfig clustering;
  clustering.target_cardinality = 8;
  mbi::SignaturePartition partition =
      mbi::BuildSignaturesSingleLinkage(supports, clustering);
  std::printf("\nSignatures built from the pair supports (K = %u):\n",
              partition.cardinality());
  for (uint32_t s = 0; s < partition.cardinality(); ++s) {
    double mass = 0.0;
    for (mbi::ItemId item : partition.ItemsOf(s)) {
      mass += supports.ItemSupport(item);
    }
    std::printf("  S%-2u: %4zu items, support mass %.3f\n", s,
                partition.ItemsOf(s).size(), mass);
  }
  return 0;
}
