// Peer recommendation: the application the paper's introduction motivates.
// For a customer's current basket, retrieve the k most similar historical
// baskets ("peers") and recommend the items those peers bought that the
// customer has not.
//
//   ./peer_recommendation [--transactions=50000] [--k=10] [--seed=7]

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"
#include "util/flags.h"

namespace {

/// Ranks items bought by peers but absent from the target basket, weighting
/// each peer's vote by its similarity rank (1/rank).
std::vector<std::pair<mbi::ItemId, double>> RecommendItems(
    const mbi::TransactionDatabase& db, const mbi::Transaction& target,
    const std::vector<mbi::Neighbor>& peers, size_t max_items) {
  std::map<mbi::ItemId, double> scores;
  for (size_t rank = 0; rank < peers.size(); ++rank) {
    double weight = 1.0 / static_cast<double>(rank + 1);
    for (mbi::ItemId item : db.Get(peers[rank].id).items()) {
      if (!target.Contains(item)) scores[item] += weight;
    }
  }
  std::vector<std::pair<mbi::ItemId, double>> ranked(scores.begin(),
                                                     scores.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > max_items) ranked.resize(max_items);
  return ranked;
}

}  // namespace

int main(int argc, char** argv) {
  mbi::FlagParser flags(
      "Peer recommendations from a signature-table similarity index.");
  int64_t transactions, k, seed;
  flags.AddInt64("transactions", 50'000, "history size", &transactions);
  flags.AddInt64("k", 10, "number of peers to retrieve", &k);
  flags.AddInt64("seed", 7, "generator seed", &seed);
  if (!flags.Parse(argc, argv)) return 0;

  mbi::QuestGeneratorConfig gen_config;
  gen_config.universe_size = 1000;
  gen_config.num_large_itemsets = 2000;
  gen_config.avg_transaction_size = 10.0;
  gen_config.seed = static_cast<uint64_t>(seed);
  mbi::QuestGenerator generator(gen_config);
  mbi::TransactionDatabase db =
      generator.GenerateDatabase(static_cast<uint64_t>(transactions));

  mbi::IndexBuildConfig build;
  build.clustering.target_cardinality = 13;
  mbi::SignatureTable table = mbi::BuildIndex(db, build);
  mbi::BranchAndBoundEngine engine(&db, &table);

  // A new customer walks in with this basket.
  mbi::Transaction customer = generator.NextTransaction();
  std::printf("Customer basket: %s\n\n", customer.ToString().c_str());

  // Retrieve peers under the match/hamming ratio: rewards shared items,
  // penalizes divergent ones — a sensible notion of "peer".
  mbi::MatchRatioFamily family;
  mbi::SearchOptions options;
  options.max_access_fraction = 0.02;  // Paper §4.2: 2% scan is plenty.
  mbi::NearestNeighborResult result =
      engine.FindKNearest(customer, family, static_cast<size_t>(k), options);

  std::printf("Top-%lld peers (accessed %.2f%% of %zu baskets%s):\n",
              static_cast<long long>(k),
              100.0 * result.stats.AccessedFraction(), db.size(),
              result.guaranteed_exact ? ", provably exact" : "");
  for (const mbi::Neighbor& peer : result.neighbors) {
    std::printf("  tx %-8u similarity %-8.4g %s\n", peer.id, peer.similarity,
                db.Get(peer.id).ToString().c_str());
  }

  auto recommendations = RecommendItems(db, customer, result.neighbors, 8);
  std::printf("\nRecommended items (peer-vote score):\n");
  for (const auto& [item, score] : recommendations) {
    std::printf("  item %-6u score %.3f\n", item, score);
  }
  return 0;
}
