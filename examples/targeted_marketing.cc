// Targeted marketing with range queries (paper §2.1 / §4.3):
//
//  * a single-threshold range query — "every historical basket with cosine
//    similarity at least t to the campaign's prototype basket";
//  * the paper's conjunctive example — "all transactions which have at least
//    p items in common and at most q items different from the target",
//    expressed as a two-function multi-range query.
//
//   ./targeted_marketing [--transactions=40000] [--seed=11]

#include <cstdio>

#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  mbi::FlagParser flags("Range-query driven audience selection.");
  int64_t transactions, seed;
  double cosine_threshold;
  int64_t min_matches, max_hamming;
  flags.AddInt64("transactions", 40'000, "history size", &transactions);
  flags.AddInt64("seed", 11, "generator seed", &seed);
  flags.AddDouble("cosine_threshold", 0.75,
                  "minimum cosine similarity to the prototype",
                  &cosine_threshold);
  flags.AddInt64("min_matches", 4, "minimum items in common", &min_matches);
  flags.AddInt64("max_hamming", 8, "maximum items different", &max_hamming);
  if (!flags.Parse(argc, argv)) return 0;

  mbi::QuestGeneratorConfig gen_config;
  gen_config.universe_size = 1000;
  gen_config.num_large_itemsets = 2000;
  gen_config.avg_transaction_size = 10.0;
  gen_config.seed = static_cast<uint64_t>(seed);
  mbi::QuestGenerator generator(gen_config);
  mbi::TransactionDatabase db =
      generator.GenerateDatabase(static_cast<uint64_t>(transactions));

  mbi::IndexBuildConfig build;
  build.clustering.target_cardinality = 13;
  mbi::SignatureTable table = mbi::BuildIndex(db, build);
  mbi::BranchAndBoundEngine engine(&db, &table);

  mbi::Transaction prototype = generator.NextTransaction();
  std::printf("Campaign prototype basket: %s\n", prototype.ToString().c_str());

  // --- Query 1: cosine range query. ---
  mbi::CosineFamily cosine;
  mbi::RangeQueryResult audience =
      engine.FindInRange(prototype, cosine, cosine_threshold);
  std::printf(
      "\n[cosine >= %.2f] %zu matching baskets; pruned %llu of %llu table "
      "entries, accessed %.2f%% of the database\n",
      cosine_threshold, audience.matches.size(),
      static_cast<unsigned long long>(audience.stats.entries_pruned),
      static_cast<unsigned long long>(audience.stats.entries_total),
      100.0 * audience.stats.AccessedFraction());
  for (size_t i = 0; i < audience.matches.size() && i < 5; ++i) {
    const mbi::Neighbor& match = audience.matches[i];
    std::printf("  tx %-8u cosine %.3f %s\n", match.id, match.similarity,
                db.Get(match.id).ToString().c_str());
  }

  // --- Query 2: the paper's conjunctive range query: at least p matches AND
  // at most q differing items. Both component functions satisfy the
  // monotonicity constraints, so the same table prunes both. ---
  mbi::CustomFamily matches_fn("matches",
                               [](int x, int) { return static_cast<double>(x); });
  mbi::CustomFamily neg_hamming_fn(
      "neg_hamming", [](int, int y) { return -static_cast<double>(y); });
  std::vector<const mbi::SimilarityFamily*> families = {&matches_fn,
                                                        &neg_hamming_fn};
  std::vector<double> thresholds = {static_cast<double>(min_matches),
                                    -static_cast<double>(max_hamming)};
  mbi::RangeQueryResult strict =
      engine.FindInRangeMulti(prototype, families, thresholds);
  std::printf(
      "\n[matches >= %lld AND hamming <= %lld] %zu matching baskets; "
      "accessed %.2f%% of the database\n",
      static_cast<long long>(min_matches), static_cast<long long>(max_hamming),
      strict.matches.size(), 100.0 * strict.stats.AccessedFraction());
  for (size_t i = 0; i < strict.matches.size() && i < 5; ++i) {
    const mbi::Neighbor& match = strict.matches[i];
    std::printf("  tx %-8u matches %.0f %s\n", match.id, match.similarity,
                db.Get(match.id).ToString().c_str());
  }
  return 0;
}
