#include <cstdio>

#include "gen/quest_generator.h"
#include "tools/cli_command.h"
#include "txn/database_io.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace mbi::cli {

int RunGenerate(int argc, char** argv) {
  FlagParser flags("mbi generate: synthesize a market-basket database file.");
  std::string out;
  int64_t transactions, universe, itemsets, seed;
  double avg_tx_size, avg_itemset_size;
  flags.AddString("out", "data.mbid", "output database file", &out);
  flags.AddInt64("transactions", 100'000, "number of transactions",
                 &transactions);
  flags.AddInt64("universe", 1000, "number of distinct items", &universe);
  flags.AddInt64("itemsets", 2000, "number of potentially large itemsets",
                 &itemsets);
  flags.AddDouble("avg_tx_size", 10.0, "average transaction size (T)",
                  &avg_tx_size);
  flags.AddDouble("avg_itemset_size", 6.0, "average itemset size (I)",
                  &avg_itemset_size);
  flags.AddInt64("seed", 42, "generator seed", &seed);
  if (!flags.Parse(argc, argv)) return 0;

  QuestGeneratorConfig config;
  config.universe_size = static_cast<uint32_t>(universe);
  config.num_large_itemsets = static_cast<uint32_t>(itemsets);
  config.avg_itemset_size = avg_itemset_size;
  config.avg_transaction_size = avg_tx_size;
  config.seed = static_cast<uint64_t>(seed);

  Stopwatch timer;
  QuestGenerator generator(config);
  TransactionDatabase db =
      generator.GenerateDatabase(static_cast<uint64_t>(transactions));
  if (Status saved = SaveDatabase(db, out); !saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  CorpusStats stats = ComputeCorpusStats(db);
  std::printf(
      "wrote %s: %llu transactions, avg size %.2f, %u distinct items, "
      "density %.4f (%.1fs)\n",
      out.c_str(), static_cast<unsigned long long>(stats.num_transactions),
      stats.avg_transaction_size, stats.distinct_items, stats.density,
      timer.ElapsedSeconds());
  return 0;
}

}  // namespace mbi::cli
