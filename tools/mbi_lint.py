#!/usr/bin/env python3
"""mbi-lint: project-specific architectural rules for the mbi codebase.

The repo's load-bearing invariants — the Env I/O seam, the mbi::Mutex lock
capability, Status-based error plumbing, arena-free ownership, and the
zero-steady-state-allocation query hot path — are architectural, not local:
no single translation unit can violate them "a little" without eroding the
guarantees the durability, thread-safety, and performance gates depend on.
clang-tidy checks style and bug patterns per-TU; mbi-lint checks the
*architecture*:

  no-raw-mutex                 only util/mutex.h wraps std::mutex /
                               pthread primitives; everything else uses the
                               annotated mbi::Mutex capability.
  no-raw-thread                only util/thread_pool.{h,cc} spawns
                               std::thread; everything else runs on pools.
  no-raw-io                    only storage/env.cc touches FILE* / open /
                               std::filesystem; all other I/O goes through
                               the Env seam (fault injection and the
                               durability tests depend on this).
  status-discipline            [advisory] the Status/StatusOr classes keep
                               their class-level [[nodiscard]], and no call
                               site drops a Status-returning call in
                               statement position. Superseded by the AST
                               status-discard check in tools/analyze/;
                               kept as a fast non-failing pre-check.
  no-naked-new                 no raw new/delete/malloc outside the
                               allocation-guard internals; ownership is
                               make_unique/containers.
  no-unbounded-container-in-hot  MBI_HOT code declares no local owning
                               containers (vector/string/map/function/...);
                               scratch lives in caller-owned reusable
                               buffers (QueryContext et al.).
  no-alloc-in-hot              [advisory] MBI_HOT code contains no per-call
                               allocation constructs (new, make_unique/
                               make_shared, malloc, std::to_string,
                               stringstreams). Superseded by the
                               interprocedural hot-path check in
                               tools/analyze/; kept as a fast non-failing
                               pre-check.
  no-raw-intrinsics            raw SIMD intrinsics (immintrin.h /
                               arm_neon.h, _mm*/__m*/v*q_* identifiers)
                               live only under src/kernel/, behind the
                               runtime dispatcher; everywhere else calls
                               the KernelOps table so scalar/AVX2/AVX-512/
                               NEON stay interchangeable and testable.
  no-raw-clock                 only util/deadline_clock.{h,cc} read
                               std::chrono::steady_clock (or system /
                               high_resolution); all other timing flows
                               through SteadyNowUs() / DeadlineClock so
                               query deadlines, admission patience, and
                               latency metrics stay mockable in tests.

Frontend: when the libclang Python bindings are importable the file is
tokenized through clang.cindex against the compile command recorded in
compile_commands.json (the same database tools/run_tidy.sh consumes);
otherwise a built-in C++ lexer produces an equivalent token stream
(comments, string/char literals, raw strings, and preprocessor lines are
handled; rules never see into literals or comments). Both frontends feed
the same rule engine, so findings are identical either way.

Escape hatches, in order of preference:
  * per-rule allowlists (ALLOWLIST below) for files that *are* the
    implementation the rule protects (util/mutex.h for no-raw-mutex, ...);
  * a `// mbi-lint: allow(<rule>)` comment on (or immediately above) the
    offending line, for individually justified exceptions — the comment
    should say why.

Usage:
  mbi_lint.py [--compile-commands build/compile_commands.json]
              [--rules no-raw-io,no-naked-new] [--list-rules] [files...]
  mbi_lint.py --self-test     # run the tests/lint_probes/ negative corpus

Exit codes: 0 clean, 1 findings (or a probe that failed to fire), 2 usage.

Every rule must stay provably live: tests/lint_probes/<rule>_probe.cc holds
a minimal violation that --self-test requires to fire, mirroring the
negative-compile probe of the thread-safety job (DESIGN.md §10).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ALLOW_RE = re.compile(r"mbi-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")


class Token:
    __slots__ = ("kind", "spelling", "line")

    def __init__(self, kind, spelling, line):
        self.kind = kind  # 'id', 'kw', 'punct', 'num', 'str', 'char'
        self.spelling = spelling
        self.line = line

    def __repr__(self):
        return f"{self.spelling}@{self.line}"


class SourceFile:
    """A lexed translation unit: tokens plus the allow()-comment map."""

    def __init__(self, path, rel_path, tokens, allowed_lines):
        self.path = path
        self.rel_path = rel_path
        self.tokens = tokens
        # line -> set of rule names allowed on that line.
        self.allowed_lines = allowed_lines

    def allows(self, rule, line):
        return rule in self.allowed_lines.get(line, ())


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Lexing
# --------------------------------------------------------------------------

KEYWORDS = {
    "new", "delete", "const", "return", "if", "while", "for", "do", "else",
    "class", "struct", "enum", "namespace", "using", "template", "typename",
    "static", "virtual", "override", "final", "operator", "sizeof", "auto",
    "void", "bool", "int", "char", "double", "float", "unsigned", "signed",
    "long", "short", "public", "private", "protected", "friend", "inline",
    "constexpr", "switch", "case", "default", "break", "continue", "goto",
    "try", "catch", "throw", "noexcept", "explicit", "this", "nullptr",
    "true", "false", "static_cast", "const_cast", "reinterpret_cast",
    "dynamic_cast", "extern", "mutable", "volatile", "decltype", "co_await",
    "co_return", "co_yield",
}

_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"\.?\d(?:[0-9a-fA-F'.xXbBuUlLfFeEpP]|[eEpP][+-])*")
_RAW_STR_RE = re.compile(r'R"([^(\\\s]{0,16})\(')
# Multi-char punctuators, longest first; everything else is single-char.
_PUNCTS = [
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", ".*",
]


def _record_allow(allowed_lines, text, line, whole_line_comment):
    match = ALLOW_RE.search(text)
    if not match:
        return
    rules = {r.strip() for r in match.group(1).split(",")}
    allowed_lines.setdefault(line, set()).update(rules)
    if whole_line_comment:
        # A comment on its own line covers the next line too.
        allowed_lines.setdefault(line + 1, set()).update(rules)


def lex_cpp(text):
    """Tokenizes C++ source. Returns (tokens, allowed_lines).

    Comments and literals never become id/kw/punct tokens, so rules cannot
    trip on the word "new" in documentation. Preprocessor lines are lexed
    like normal code (an #include <mutex> is not itself a violation; rules
    key on *uses*), except that the include's <header> is skipped.
    """
    tokens = []
    allowed_lines = {}
    i, n, line = 0, len(text), 1
    line_start = 0  # offset of the first char of the current line

    def only_ws_before(pos):
        return text[line_start:pos].strip() == ""

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            if end == -1:
                end = n
            _record_allow(allowed_lines, text[i:end], line, only_ws_before(i))
            i = end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            block = text[i:end]
            _record_allow(allowed_lines, block, line, only_ws_before(i))
            line += block.count("\n")
            i = end
            line_start = text.rfind("\n", 0, i) + 1
            continue
        raw = _RAW_STR_RE.match(text, i) if ch == "R" else None
        if raw:
            terminator = ")" + raw.group(1) + '"'
            end = text.find(terminator, raw.end())
            end = n if end == -1 else end + len(terminator)
            tokens.append(Token("str", "<raw-string>", line))
            line += text.count("\n", i, end)
            i = end
            line_start = text.rfind("\n", 0, i) + 1
            continue
        if ch == '"' or ch == "'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            tokens.append(Token("str" if quote == '"' else "char",
                                "<literal>", line))
            i = j
            continue
        if ch == "#" and only_ws_before(i):
            # Preprocessor directive: lex `#include <x>` header names away,
            # tokenize everything else (so macro bodies are still scanned).
            direct = _ID_RE.match(text, i + 1)
            if direct and direct.group(0) == "include":
                end = text.find("\n", i)
                i = n if end == -1 else end
                continue
            tokens.append(Token("punct", "#", line))
            i += 1
            continue
        m = _ID_RE.match(text, i)
        if m:
            spelling = m.group(0)
            kind = "kw" if spelling in KEYWORDS else "id"
            tokens.append(Token(kind, spelling, line))
            i = m.end()
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUM_RE.match(text, i)
            tokens.append(Token("num", m.group(0), line))
            i = m.end()
            continue
        for punct in _PUNCTS:
            if text.startswith(punct, i):
                tokens.append(Token("punct", punct, line))
                i += len(punct)
                break
        else:
            tokens.append(Token("punct", ch, line))
            i += 1
    return tokens, allowed_lines


# --------------------------------------------------------------------------
# Frontends
# --------------------------------------------------------------------------

def _try_libclang():
    try:
        from clang import cindex  # noqa: F401
        cindex.Index.create()
        return cindex
    except Exception:
        return None


_CINDEX = None
_CINDEX_PROBED = False


def cindex_module():
    global _CINDEX, _CINDEX_PROBED
    if not _CINDEX_PROBED:
        _CINDEX = _try_libclang()
        _CINDEX_PROBED = True
    return _CINDEX


def lex_with_libclang(cindex, path, text, compile_args):
    """Tokenizes through libclang; falls back to the internal lexer on any
    parse trouble. The allow-comment map always comes from the internal
    scan (libclang token ranges for comments need no compile args)."""
    _, allowed_lines = lex_cpp(text)
    try:
        index = cindex.Index.create()
        tu = index.parse(path, args=compile_args,
                         options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        tokens = []
        kind_map = {
            cindex.TokenKind.IDENTIFIER: "id",
            cindex.TokenKind.KEYWORD: "kw",
            cindex.TokenKind.PUNCTUATION: "punct",
            cindex.TokenKind.LITERAL: "str",
        }
        for tok in tu.get_tokens(extent=tu.cursor.extent):
            if tok.location.file is None or tok.location.file.name != path:
                continue
            if tok.kind == cindex.TokenKind.COMMENT:
                continue
            kind = kind_map.get(tok.kind, "punct")
            spelling = tok.spelling
            if kind == "id" and spelling in KEYWORDS:
                kind = "kw"
            tokens.append(Token(kind, spelling, tok.location.line))
        if tokens:
            return tokens, allowed_lines
    except Exception:
        pass
    return lex_cpp(text)


def load_source(path, compile_args=None):
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        text = handle.read()
    cindex = cindex_module()
    if cindex is not None:
        tokens, allowed = lex_with_libclang(cindex, path, text,
                                            compile_args or [])
    else:
        tokens, allowed = lex_cpp(text)
    rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
    return SourceFile(path, rel, tokens, allowed)


# --------------------------------------------------------------------------
# Token helpers
# --------------------------------------------------------------------------

def match_qualified(tokens, i, names):
    """True if tokens[i:] spell std::NAME for NAME in `names`. Returns the
    matched name or None."""
    if (tokens[i].spelling == "std" and i + 2 < len(tokens)
            and tokens[i + 1].spelling == "::"
            and tokens[i + 2].spelling in names):
        return tokens[i + 2].spelling
    return None


def prev_significant(tokens, i):
    return tokens[i - 1] if i > 0 else None


def find_matching(tokens, i, open_p, close_p):
    """Index just past the token matching tokens[i] == open_p."""
    depth = 0
    while i < len(tokens):
        s = tokens[i].spelling
        if s == open_p:
            depth += 1
        elif s == close_p:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return i


def hot_regions(tokens):
    """Yields (start, end) token-index ranges of MBI_HOT function bodies.

    The region runs from the MBI_HOT marker to the closing brace of the
    function body it annotates (a `;` before any `{` means a pure
    declaration — no body, no region). Lambdas and nested blocks inside the
    body are part of the region: an allocation is hot no matter how deeply
    it hides in a local lambda.
    """
    for i, tok in enumerate(tokens):
        if tok.spelling != "MBI_HOT":
            continue
        prev = tokens[i - 1] if i > 0 else None
        if prev is not None and prev.spelling in ("define", "ifdef",
                                                  "ifndef", "undef"):
            continue  # the macro's own definition, not an annotated function
        j = i + 1
        body_start = None
        while j < len(tokens):
            s = tokens[j].spelling
            if s == ";":
                break  # declaration only
            if s == "(":
                j = find_matching(tokens, j, "(", ")")
                continue
            if s == "{":
                body_start = j
                break
            j += 1
        if body_start is None:
            continue
        yield body_start, find_matching(tokens, body_start, "{", "}")


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

RULES = {}

# Rules superseded by the AST-level checks in tools/analyze/mbi_analyze.py
# (hot-path reachability, status-discard). They still run — as a fast
# pre-check whose findings print but do not fail the lint — because the
# lexer answers in milliseconds while the AST suite needs a compile per TU.
# `--strict-advisory` restores the old failing behaviour; the self-test
# still proves both rules live via their tests/lint_probes/ fixtures.
ADVISORY_RULES = {"no-alloc-in-hot", "status-discipline"}


def rule(name, scope_prefixes=("src/",)):
    def wrap(fn):
        RULES[name] = (fn, scope_prefixes)
        return fn
    return wrap


# Files that ARE the guarded implementation; rule findings there are the
# point of the file, not a violation.
ALLOWLIST = {
    "no-raw-mutex": {"src/util/mutex.h"},
    "no-raw-thread": {"src/util/thread_pool.h", "src/util/thread_pool.cc"},
    "no-raw-io": {"src/storage/env.cc"},
    "no-naked-new": {"src/util/alloc_guard.cc"},
    "status-discipline": set(),
    "no-unbounded-container-in-hot": set(),
    "no-alloc-in-hot": set(),
    "no-raw-intrinsics": set(),  # src/kernel/ is excluded by the rule itself.
    "no-raw-clock": {"src/util/deadline_clock.h",
                     "src/util/deadline_clock.cc"},
}

_MUTEX_TYPES = {
    "mutex", "recursive_mutex", "timed_mutex", "recursive_timed_mutex",
    "shared_mutex", "shared_timed_mutex", "lock_guard", "unique_lock",
    "scoped_lock", "condition_variable", "condition_variable_any",
    "counting_semaphore", "binary_semaphore",
}


@rule("no-raw-mutex")
def check_no_raw_mutex(source, emit):
    """std::mutex & friends live behind mbi::Mutex (util/mutex.h), whose
    capability annotations power the -Wthread-safety compile-time proofs.
    A raw mutex anywhere else is invisible to the analysis."""
    for i, tok in enumerate(source.tokens):
        name = match_qualified(source.tokens, i, _MUTEX_TYPES)
        if name:
            emit(tok.line, f"raw std::{name}; use mbi::Mutex / mbi::CondVar "
                           f"from util/mutex.h (thread-safety analysis "
                           f"only models the annotated capability)")
        elif tok.kind == "id" and tok.spelling.startswith(
                ("pthread_mutex", "pthread_cond", "pthread_rwlock",
                 "pthread_spin")):
            emit(tok.line, f"raw {tok.spelling}; use mbi::Mutex from "
                           f"util/mutex.h")


@rule("no-raw-thread")
def check_no_raw_thread(source, emit):
    """Threads are spawned only by util/thread_pool.cc; everything else
    submits work to a pool. (`std::thread::hardware_concurrency()` is a
    static query, not a spawn, and stays legal.)"""
    tokens = source.tokens
    for i, tok in enumerate(tokens):
        name = match_qualified(tokens, i, {"thread", "jthread"})
        if name:
            after = tokens[i + 3].spelling if i + 3 < len(tokens) else ""
            if after == "::":  # std::thread::hardware_concurrency()
                continue
            emit(tok.line, f"raw std::{name}; run work on a ThreadPool "
                           f"(util/thread_pool.h)")
        elif tok.kind == "id" and tok.spelling == "pthread_create":
            emit(tok.line, "raw pthread_create; use ThreadPool")


_IO_CALLS = {
    "fopen", "freopen", "fdopen", "fclose", "fread", "fwrite", "fflush",
    "fseek", "fseeko", "ftell", "ftello", "rewind", "fgets", "fgetc",
    "fputs", "fputc", "fscanf", "fsync", "fdatasync", "fileno", "tmpfile",
    "mkstemp", "openat", "creat", "unlink", "ftruncate",
}
_IO_STREAM_TYPES = {"ifstream", "ofstream", "fstream", "filebuf"}


@rule("no-raw-io")
def check_no_raw_io(source, emit):
    """All artifact bytes flow through the Env seam (storage/env.cc), where
    the fault injector, bounded retry, and mbi.env.* metrics sit. A direct
    fopen elsewhere is I/O the durability tests cannot fault-inject."""
    tokens = source.tokens
    for i, tok in enumerate(tokens):
        if tok.kind == "id" and tok.spelling in _IO_CALLS:
            # Match both ::fread / std::fread and bare fread, but only as a
            # call (next token '('), so a method *named* fread elsewhere
            # would still be caught — by design: don't shadow libc names.
            nxt = tokens[i + 1].spelling if i + 1 < len(tokens) else ""
            if nxt == "(":
                emit(tok.line, f"direct {tok.spelling}(); route I/O through "
                               f"the Env seam (storage/env.h) so fault "
                               f"injection and durability tests see it")
            continue
        name = match_qualified(tokens, i, _IO_STREAM_TYPES)
        if name:
            emit(tok.line, f"std::{name} bypasses the Env seam; use "
                           f"Env::New{{Writable,Sequential}}File")
            continue
        if (tok.spelling == "std" and i + 2 < len(tokens)
                and tokens[i + 1].spelling == "::"
                and tokens[i + 2].spelling == "filesystem"):
            emit(tok.line, "std::filesystem bypasses the Env seam; extend "
                           "Env instead")
        elif (tok.spelling == "rename" and i >= 2
                and tokens[i - 1].spelling == "::"
                and tokens[i - 2].spelling in ("std", ";", "{", "}")
                and source.rel_path != "src/storage/env.cc"):
            emit(tok.line, "direct rename(); use Env::RenameFile (the "
                           "atomic-commit point fault injection targets)")


def _harvest_status_returners():
    """Names of functions/methods declared to return Status or StatusOr in
    any src/ header, minus names that are also declared with a different
    return type (overload ambiguity would cause false drops). Harvested
    from the repo headers directly so that single-file runs and --self-test
    see the full declaration universe."""
    status_names = set()
    other_names = set()
    decl = re.compile(r"\b(Status(?:Or\s*<[^;{}()]{1,80}>)?|[A-Za-z_]\w*)"
                      r"[&*]?\s+(?:[A-Za-z_]\w*::)?([A-Z]\w*)\s*\(")
    header_paths = []
    for root, _dirs, names in os.walk(os.path.join(REPO_ROOT, "src")):
        header_paths.extend(os.path.join(root, n) for n in names
                            if n.endswith(".h"))
    for path in header_paths:
        try:
            with open(path, "r", encoding="utf-8",
                      errors="replace") as handle:
                text = handle.read()
        except OSError:
            continue
        for m in decl.finditer(text):
            ret, name = m.group(1), m.group(2)
            if ret in KEYWORDS:
                continue  # `return Foo(...)` is a call, not a declaration
            if ret == "Status" or ret.startswith("StatusOr"):
                status_names.add(name)
            else:
                other_names.add(name)
    return status_names - other_names


_STATUS_RETURNERS = None


@rule("status-discipline", scope_prefixes=("src/", "tools/"))
def check_status_discipline(source, emit):
    """Two halves: (1) util/status.h must keep the class-level [[nodiscard]]
    on Status and StatusOr — that single attribute is what makes every
    silently-dropped Status a compile warning (a -Werror break in CI), so
    removing it would turn off error-discipline repo-wide in one line.
    (2) Statement-position calls to known Status-returning functions are
    flagged directly: `env.RenameFile(a, b);` as a bare statement drops the
    error even in builds without -Werror. Intentional drops must say so:
    `(void)env.RemoveFile(tmp);` or MBI_CHECK(...ok())."""
    tokens = source.tokens
    if source.rel_path == "src/util/status.h":
        for cls in ("Status", "StatusOr"):
            ok = False
            for i, tok in enumerate(tokens):
                if tok.spelling == cls and i >= 1:
                    back = [t.spelling for t in tokens[max(0, i - 8):i]]
                    if "nodiscard" in back and ("class" in back
                                                or "struct" in back):
                        ok = True
                        break
            if not ok:
                emit(1, f"class {cls} lost its [[nodiscard]] attribute — "
                        f"every dropped {cls} becomes silent")
        return
    if _STATUS_RETURNERS is None:
        return
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.spelling not in _STATUS_RETURNERS:
            continue
        nxt = tokens[i + 1].spelling if i + 1 < len(tokens) else ""
        if nxt != "(":
            continue
        close = find_matching(tokens, i + 1, "(", ")")
        if close >= len(tokens) or tokens[close].spelling != ";":
            continue
        # Walk back over the receiver chain (`recv.`, `ptr->`, `Qual::`,
        # including call/index suffixes like `TestEnv()->`) to the first
        # token of the statement expression.
        j = i
        while j >= 2 and tokens[j - 1].spelling in (".", "->", "::"):
            k = j - 2
            while k >= 0 and tokens[k].spelling in (")", "]"):
                close_p = tokens[k].spelling
                open_p = "(" if close_p == ")" else "["
                depth = 0
                while k >= 0:
                    s = tokens[k].spelling
                    if s == close_p:
                        depth += 1
                    elif s == open_p:
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                k -= 1  # the callee / array name before the open bracket
            j = max(k, 0)
        prev = prev_significant(tokens, j)
        if prev is not None and prev.spelling in (";", "{", "}"):
            emit(tok.line, f"result of Status-returning {tok.spelling}() is "
                           f"dropped; handle it, or write "
                           f"(void){tok.spelling}(...) with a comment")


_ALLOC_CALLS = {"malloc", "calloc", "realloc", "free", "posix_memalign",
                "aligned_alloc", "strdup", "strndup", "valloc"}


@rule("no-naked-new")
def check_no_naked_new(source, emit):
    """Ownership is expressed with make_unique/containers; raw new/delete
    and malloc are reserved for the allocation-guard internals (which must
    sit underneath operator new) and individually justified singletons."""
    tokens = source.tokens
    for i, tok in enumerate(tokens):
        if tok.kind == "kw" and tok.spelling == "new":
            prev = prev_significant(tokens, i)
            # `operator new` definitions and `= delete`-style contexts are
            # judged at their own sites; `new` after `operator` is a
            # declaration, not an allocation.
            if prev is not None and prev.spelling == "operator":
                continue
            emit(tok.line, "naked new; use std::make_unique (or justify "
                           "with an allow comment: singletons, private "
                           "constructors)")
        elif tok.kind == "kw" and tok.spelling == "delete":
            prev = prev_significant(tokens, i)
            if prev is not None and prev.spelling in ("=", "operator"):
                continue  # deleted function / operator delete declaration
            emit(tok.line, "naked delete; owning pointers are unique_ptr")
        elif tok.kind == "id" and tok.spelling in _ALLOC_CALLS:
            nxt = tokens[i + 1].spelling if i + 1 < len(tokens) else ""
            if nxt == "(":
                emit(tok.line, f"raw {tok.spelling}(); library code "
                               f"allocates through new-expressions wrapped "
                               f"in owning types")


_OWNING_CONTAINERS = {
    "vector", "string", "deque", "list", "forward_list", "map", "multimap",
    "set", "multiset", "unordered_map", "unordered_multimap",
    "unordered_set", "unordered_multiset", "function", "stringstream",
    "ostringstream", "istringstream", "queue", "stack", "priority_queue",
    "basic_string",
}


def _skip_template_args(tokens, i):
    """tokens[i] == '<': index just past the matching '>'."""
    depth = 0
    while i < len(tokens):
        s = tokens[i].spelling
        if s == "<":
            depth += 1
        elif s in (">", ">>"):
            depth -= 2 if s == ">>" else 1
            if depth <= 0:
                return i + 1
        elif s in (";", "{"):
            return i  # not template args after all
        i += 1
    return i


@rule("no-unbounded-container-in-hot")
def check_no_unbounded_container_in_hot(source, emit):
    """An MBI_HOT function may *grow* caller-owned reusable buffers
    (amortized to zero in steady state) but may not declare local owning
    containers — a `std::vector` local is a guaranteed allocation on every
    call once it holds anything. References and pointers to containers are
    fine; so are parameters (they bind, they don't own)."""
    tokens = source.tokens
    for start, end in hot_regions(tokens):
        i = start
        while i < end:
            name = match_qualified(tokens, i, _OWNING_CONTAINERS)
            if not name:
                i += 1
                continue
            line = tokens[i].line
            j = i + 3  # past std :: name
            if j < end and tokens[j].spelling == "<":
                j = _skip_template_args(tokens, j)
            # Reference/pointer bindings don't own; skip them.
            while j < end and tokens[j].spelling in ("const", "&", "&&", "*"):
                if tokens[j].spelling in ("&", "&&", "*"):
                    break
                j += 1
            if j < end and tokens[j].spelling in ("&", "&&", "*"):
                i = j
                continue
            # A declaration: identifier then ; = { (
            if (j < end and tokens[j].kind == "id" and j + 1 < end
                    and tokens[j + 1].spelling in (";", "=", "{", "(")):
                emit(line, f"local std::{name} declared in MBI_HOT code; "
                           f"move the buffer into the caller-owned reusable "
                           f"workspace (QueryContext pattern)")
                i = j + 1
                continue
            # A temporary: std::vector<...>( or { mid-expression.
            if j < end and tokens[j].spelling in ("(", "{"):
                emit(line, f"std::{name} temporary constructed in MBI_HOT "
                           f"code; hot paths must not materialize owning "
                           f"containers per call")
                i = j + 1
                continue
            i = j
        # end while
    return


_HOT_ALLOC_CALLS = {"make_unique", "make_shared", "to_string"}


@rule("no-alloc-in-hot")
def check_no_alloc_in_hot(source, emit):
    """MBI_HOT code is the steady-state-zero-allocation contract's static
    half (util/alloc_guard.h ScopedAllocationBan is the dynamic half; each
    catches what the other can't). new/make_unique/malloc/to_string
    allocate on every execution — never acceptable in hot code, not even
    warm-up-amortized."""
    tokens = source.tokens
    for start, end in hot_regions(tokens):
        for i in range(start, end):
            tok = tokens[i]
            if tok.kind == "kw" and tok.spelling == "new":
                prev = prev_significant(tokens, i)
                if prev is not None and prev.spelling == "operator":
                    continue
                emit(tok.line, "new-expression in MBI_HOT code")
            elif tok.kind == "kw" and tok.spelling == "delete":
                prev = prev_significant(tokens, i)
                if prev is not None and prev.spelling in ("=", "operator"):
                    continue
                emit(tok.line, "delete-expression in MBI_HOT code")
            elif tok.kind == "id" and tok.spelling in _ALLOC_CALLS:
                nxt = tokens[i + 1].spelling if i + 1 < len(tokens) else ""
                if nxt == "(":
                    emit(tok.line, f"{tok.spelling}() in MBI_HOT code")
            elif tok.kind == "id" and tok.spelling in _HOT_ALLOC_CALLS:
                nxt = tokens[i + 1].spelling if i + 1 < len(tokens) else ""
                if nxt in ("(", "<"):
                    emit(tok.line, f"std::{tok.spelling} allocates on every "
                                   f"call; not allowed in MBI_HOT code")


# Intrinsic headers never appear as tokens (the lexer eats `#include <x>`
# lines), so the rule matches them against the raw source text.
_INTRINSIC_HEADER_RE = re.compile(
    r'^[ \t]*#[ \t]*include[ \t]*[<"]('
    r'immintrin|x86intrin|x86gprintrin|[a-z0-9]*mmintrin|avx[a-z0-9]*intrin|'
    r'arm_neon|arm_sve|arm_acle'
    r')\.h[>"]', re.MULTILINE)

# x86 vector types/ops all share a handful of reserved prefixes; NEON has no
# common prefix, so the distinctive q-form intrinsic families are listed.
_X86_INTRINSIC_PREFIXES = ("_mm_", "_mm256_", "_mm512_", "__m128", "__m256",
                           "__m512", "__mmask")
_NEON_INTRINSIC_PREFIXES = (
    "vld1", "vst1", "vandq", "vorrq", "veorq", "vbicq", "vcntq", "vaddq",
    "vaddvq", "vpaddlq", "vpaddq", "vdupq", "vmovq", "vgetq", "vsetq",
    "vbslq", "vtstq", "vceqq", "vshrq", "vshlq", "vreinterpretq",
)


@rule("no-raw-intrinsics", scope_prefixes=("src/", "tools/"))
def check_no_raw_intrinsics(source, emit):
    """SIMD intrinsics are confined to src/kernel/: every vector routine
    there has a scalar twin behind the same KernelOps signature, kernel_test
    proves them bit-identical, and MBI_FORCE_ISA can force any path. An
    intrinsic anywhere else is an ISA dependency the dispatcher cannot see,
    cannot clamp on older hardware, and the equivalence suite cannot cover."""
    if source.rel_path.startswith("src/kernel/"):
        return
    try:
        with open(source.path, "r", encoding="utf-8",
                  errors="replace") as handle:
            text = handle.read()
    except OSError:
        text = ""
    for m in _INTRINSIC_HEADER_RE.finditer(text):
        line = text.count("\n", 0, m.start()) + 1
        emit(line, f"#include <{m.group(1)}.h> outside src/kernel/; "
                   f"vector code goes behind the KernelOps dispatch table "
                   f"(kernel/dispatch.h)")
    for tok in source.tokens:
        if tok.kind != "id":
            continue
        if tok.spelling.startswith(_X86_INTRINSIC_PREFIXES) or \
                tok.spelling.startswith(_NEON_INTRINSIC_PREFIXES):
            emit(tok.line, f"raw intrinsic {tok.spelling} outside "
                           f"src/kernel/; add a kernel behind the dispatch "
                           f"table instead (kernel/kernels.h)")


_CLOCK_TYPES = {"steady_clock", "system_clock", "high_resolution_clock"}


@rule("no-raw-clock", scope_prefixes=("src/", "tools/"))
def check_no_raw_clock(source, emit):
    """Every time read flows through SteadyNowUs() / the DeadlineClock seam
    (util/deadline_clock.h): query deadlines, admission-queue patience, and
    latency instrumentation are all testable only because a ManualClock can
    stand in for the real clock. A raw std::chrono::*_clock::now() anywhere
    else is a time source deadline tests cannot script — the same argument
    that confines FILE* to the Env seam. (Durations like
    std::chrono::milliseconds stay legal; the rule keys on clock *types*.)"""
    for tok in source.tokens:
        if tok.kind == "id" and tok.spelling in _CLOCK_TYPES:
            emit(tok.line, f"raw std::chrono::{tok.spelling}; read time via "
                           f"SteadyNowUs() or a DeadlineClock "
                           f"(util/deadline_clock.h) so tests can inject a "
                           f"ManualClock")


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def discover_files(compile_commands_path):
    """The lintable set: every first-party .cc in the compilation database
    plus every header under src/ (headers have no compile command but carry
    most of the architecture)."""
    files = {}
    if compile_commands_path and os.path.exists(compile_commands_path):
        with open(compile_commands_path, "r", encoding="utf-8") as handle:
            for entry in json.load(handle):
                path = os.path.normpath(
                    os.path.join(entry.get("directory", "."), entry["file"]))
                rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
                if rel.startswith(("src/", "tools/")):
                    args = entry.get("arguments")
                    if args is None and "command" in entry:
                        args = entry["command"].split()
                    # Strip compiler, -c/-o and the file itself; keep
                    # include dirs / defines / std for libclang.
                    keep = []
                    skip_next = False
                    for arg in (args or [])[1:]:
                        if skip_next:
                            skip_next = False
                            continue
                        if arg in ("-c", "-o"):
                            skip_next = arg == "-o"
                            continue
                        if arg == entry["file"] or arg.endswith(rel):
                            continue
                        keep.append(arg)
                    files[path] = keep
    for root, _dirs, names in os.walk(os.path.join(REPO_ROOT, "src")):
        for name in names:
            if name.endswith((".h", ".cc")):
                files.setdefault(os.path.join(root, name), [])
    for name in sorted(os.listdir(os.path.join(REPO_ROOT, "tools"))):
        if name.endswith((".h", ".cc")):
            files.setdefault(os.path.join(REPO_ROOT, "tools", name), [])
    return files


def lint_sources(sources, rule_names, scoped=True):
    global _STATUS_RETURNERS
    if _STATUS_RETURNERS is None:
        _STATUS_RETURNERS = _harvest_status_returners()
    findings = []
    for source in sources:
        for name in rule_names:
            fn, prefixes = RULES[name]
            if scoped:
                if not source.rel_path.startswith(tuple(prefixes)):
                    continue
                if source.rel_path in ALLOWLIST.get(name, ()):
                    continue

            def emit(line, message, _name=name, _source=source):
                if not _source.allows(_name, line):
                    findings.append(
                        Finding(_name, _source.rel_path, line, message))

            fn(source, emit)
    return findings


def run_self_test():
    """Proves every rule live: each tests/lint_probes/<rule>_probe.cc must
    fire its rule, and the allow-escape-hatch probe must stay clean."""
    probes_dir = os.path.join(REPO_ROOT, "tests", "lint_probes")
    if not os.path.isdir(probes_dir):
        print("self-test: tests/lint_probes/ missing", file=sys.stderr)
        return 1
    failures = 0
    ran = 0
    for name in sorted(os.listdir(probes_dir)):
        if not name.endswith("_probe.cc"):
            continue
        path = os.path.join(probes_dir, name)
        stem = name[:-len("_probe.cc")]
        source = load_source(path)
        if stem == "allow_escape_hatch":
            # Must stay clean under every rule: the escape hatch suppresses.
            findings = lint_sources([source], sorted(RULES), scoped=False)
            ran += 1
            if findings:
                failures += 1
                print(f"self-test FAIL {name}: escape hatch leaked "
                      f"{len(findings)} finding(s):", file=sys.stderr)
                for f in findings:
                    print(f"  {f}", file=sys.stderr)
            else:
                print(f"self-test ok   {name}: allow() suppressed all rules")
            continue
        rule_name = stem.replace("_", "-")
        if rule_name not in RULES:
            failures += 1
            print(f"self-test FAIL {name}: no rule named {rule_name}",
                  file=sys.stderr)
            continue
        findings = lint_sources([source], [rule_name], scoped=False)
        ran += 1
        if findings:
            print(f"self-test ok   {name}: {rule_name} fired "
                  f"{len(findings)}x")
        else:
            failures += 1
            print(f"self-test FAIL {name}: rule {rule_name} did NOT fire — "
                  f"the analysis has gone dead", file=sys.stderr)
    missing = {r for r in RULES} - {
        n[:-len("_probe.cc")].replace("_", "-")
        for n in os.listdir(probes_dir) if n.endswith("_probe.cc")}
    if missing:
        failures += 1
        print(f"self-test FAIL: rules without a negative probe: "
              f"{sorted(missing)}", file=sys.stderr)
    print(f"self-test: {ran} probe(s), {failures} failure(s)")
    return 1 if failures else 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Architectural lint for the mbi codebase.")
    parser.add_argument("--compile-commands",
                        default=os.path.join(REPO_ROOT, "build",
                                             "compile_commands.json"),
                        help="compilation database (shared with "
                             "tools/run_tidy.sh); used for the file set and "
                             "libclang compile args")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rules to run")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on its "
                             "tests/lint_probes/ negative probe")
    parser.add_argument("files", nargs="*",
                        help="explicit files (default: src/** and tools/** "
                             "per the compilation database)")
    parser.add_argument("--strict-advisory", action="store_true",
                        help="treat advisory findings as failures (the "
                             "pre-AST behaviour of the retired rules)")
    args = parser.parse_args(argv[1:])

    if args.list_rules:
        for name in sorted(RULES):
            doc = (RULES[name][0].__doc__ or "").strip().split("\n")[0]
            print(f"{name:32} {doc}")
        return 0
    if args.self_test:
        return run_self_test()

    rule_names = sorted(RULES)
    if args.rules:
        rule_names = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rule_names if r not in RULES]
        if unknown:
            print(f"unknown rule(s): {unknown}", file=sys.stderr)
            return 2

    if args.files:
        file_map = {os.path.abspath(f): [] for f in args.files}
    else:
        file_map = discover_files(args.compile_commands)
    if not file_map:
        print("no files to lint (missing compile_commands.json and no "
              "files given)", file=sys.stderr)
        return 2

    sources = [load_source(path, compile_args)
               for path, compile_args in sorted(file_map.items())]
    findings = lint_sources(sources, rule_names)
    blocking = [f for f in findings if f.rule not in ADVISORY_RULES]
    advisory = [f for f in findings if f.rule in ADVISORY_RULES]
    for finding in sorted(blocking, key=lambda f: (f.path, f.line)):
        print(finding)
    for finding in sorted(advisory, key=lambda f: (f.path, f.line)):
        print(f"[advisory] {finding}")
    frontend = "libclang" if cindex_module() is not None else "builtin-lexer"
    print(f"mbi-lint: {len(sources)} file(s), {len(rule_names)} rule(s), "
          f"{len(blocking)} blocking + {len(advisory)} advisory finding(s) "
          f"[{frontend} frontend]",
          file=sys.stderr)
    if blocking:
        return 1
    if advisory and args.strict_advisory:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
