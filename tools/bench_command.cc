#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/branch_and_bound.h"
#include "engine/engine.h"
#include "gen/quest_generator.h"
#include "storage/env.h"
#include "tools/cli_command.h"
#include "tools/metrics_io.h"
#include "txn/database_io.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace mbi::cli {

int RunBench(int argc, char** argv) {
  FlagParser flags(
      "mbi bench: replay a query workload against an index and report "
      "latency / access-volume distributions.");
  std::string db_path, index_path, similarity;
  int64_t queries, k, seed;
  double termination;
  flags.AddString("db", "data.mbid", "database file", &db_path);
  flags.AddString("index", "index.mbst", "index file", &index_path);
  flags.AddString("similarity", "match_ratio",
                  "hamming | match_ratio | cosine", &similarity);
  flags.AddInt64("queries", 200, "number of query baskets", &queries);
  flags.AddInt64("k", 10, "neighbours per query", &k);
  flags.AddInt64("seed", 99, "workload generator seed", &seed);
  flags.AddDouble("termination", 1.0,
                  "early-termination access fraction in (0,1]", &termination);
  double deadline_ms;
  flags.AddDouble("deadline_ms", 0.0,
                  "per-query deadline in milliseconds; expired queries return "
                  "certified degraded answers (0 = no deadline)",
                  &deadline_ms);
  int64_t max_in_flight;
  flags.AddInt64("max_in_flight", 0,
                 "route queries through an AdmissionController with this many "
                 "execution tokens and report shed/degraded counts "
                 "(0 = no admission control)",
                 &max_in_flight);
  std::string metrics_json;
  flags.AddString("metrics_json", "",
                  "write an mbi.metrics.v1 JSON snapshot of every metric to "
                  "this path after the replay ('-' for stdout)",
                  &metrics_json);
  if (!flags.Parse(argc, argv)) return 0;

  MetricsRegistry* metrics =
      metrics_json.empty() ? nullptr : MetricsRegistry::Global();
  if (metrics != nullptr) Env::Default()->set_metrics(metrics);

  auto db = LoadDatabase(db_path);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  SignatureTableEngine engine(&*db);
  engine.set_metrics(metrics);
  if (Status opened = engine.OpenIndex(index_path); !opened.ok()) {
    if (!engine.quarantined()) {
      std::fprintf(stderr, "error: %s\n", opened.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "warning: index quarantined (%s); replaying the workload "
                 "through the sequential scan fallback\n",
                 engine.quarantine_reason().ToString().c_str());
  }

  // Workload: fresh baskets from the same kind of generator, seeded
  // independently of the data.
  QuestGeneratorConfig gen_config;
  gen_config.universe_size = db->universe_size();
  gen_config.avg_transaction_size = std::max(1.0, db->AverageTransactionSize());
  gen_config.seed = static_cast<uint64_t>(seed);
  QuestGenerator generator(gen_config);
  std::vector<Transaction> targets =
      generator.GenerateQueries(static_cast<uint64_t>(queries));

  auto family = MakeSimilarityFamily(similarity);
  SearchOptions options;
  options.max_access_fraction = termination;

  // Optional admission control in front of the replay loop. The loop is
  // closed (one request at a time), so nothing sheds here — the point is to
  // exercise the exact serving path `mbi serve` will use and to surface the
  // shed/degraded accounting in the CLI output.
  std::optional<AdmissionController> admission;
  if (max_in_flight > 0) {
    AdmissionOptions admission_options;
    admission_options.max_in_flight = static_cast<size_t>(max_in_flight);
    admission.emplace(admission_options);
    if (metrics != nullptr) admission->set_metrics(metrics);
  }

  Histogram latency_ms, access_percent, pages;
  int certified = 0;
  int degraded = 0;
  Stopwatch total;
  std::vector<Transaction> one_target(1);
  for (const Transaction& target : targets) {
    if (deadline_ms > 0.0) {
      options.budget = QueryBudget::WithDeadlineAfterMs(deadline_ms);
    }
    Stopwatch timer;
    NearestNeighborResult result;
    if (admission.has_value()) {
      one_target[0] = target;
      StatusOr<std::vector<NearestNeighborResult>> admitted =
          engine.FindKNearestBatchAdmitted(&*admission, one_target, *family,
                                           static_cast<size_t>(k), options,
                                           /*num_threads=*/1);
      if (!admitted.ok()) continue;  // Shed; admission->shed() counts it.
      result = std::move(admitted.value()[0]);
    } else {
      result =
          engine.FindKNearest(target, *family, static_cast<size_t>(k), options);
    }
    latency_ms.Add(timer.ElapsedMillis());
    access_percent.Add(100.0 * result.stats.AccessedFraction());
    pages.Add(static_cast<double>(result.stats.io.pages_read));
    certified += result.guaranteed_exact;
    degraded += !result.stats.is_exact;
  }

  std::printf("replayed %lld x top-%lld %s queries in %.2fs\n",
              static_cast<long long>(queries), static_cast<long long>(k),
              similarity.c_str(), total.ElapsedSeconds());
  std::printf("latency:  %s\n", latency_ms.Summary("ms").c_str());
  std::printf("accessed: %s\n", access_percent.Summary("%").c_str());
  std::printf("pages:    %s\n", pages.Summary("").c_str());
  std::printf("certified exact: %d/%lld\n", certified,
              static_cast<long long>(queries));
  if (degraded > 0) {
    std::printf("certified degraded (budget-limited): %d/%lld\n", degraded,
                static_cast<long long>(queries));
  }
  if (admission.has_value()) {
    std::printf("admission: admitted=%llu shed=%llu deadline-tightened=%llu\n",
                static_cast<unsigned long long>(admission->admitted()),
                static_cast<unsigned long long>(admission->shed()),
                static_cast<unsigned long long>(admission->degraded()));
  }
  if (engine.fallback_queries() > 0) {
    std::printf("sequential fallbacks: %llu\n",
                static_cast<unsigned long long>(engine.fallback_queries()));
  }
  if (metrics != nullptr) {
    if (const LatencyHistogram* hist =
            metrics->FindHistogram("mbi.engine.latency.knn");
        hist != nullptr && hist->count() > 0) {
      const LatencyHistogram::Snapshot snapshot = hist->GetSnapshot();
      std::printf("metrics:  p50<=%.0fus p95<=%.0fus p99<=%.0fus max=%.0fus\n",
                  snapshot.Quantile(0.5), snapshot.Quantile(0.95),
                  snapshot.Quantile(0.99), snapshot.max);
    }
    if (!WriteMetricsJson(metrics_json, *metrics)) return 1;
  }
  return 0;
}

}  // namespace mbi::cli
