"""gcc real-AST frontend for mbi-analyze.

Resolves the C++ front end's post-genericize tree dump
(`g++ -fsyntax-only -fdump-lang-raw`) into the frontend-neutral TuModel.
This is a *real* AST: overload resolution, template instantiation, and
implicit calls (constructors, conversions, `operator new` behind `new`)
have already happened, which is exactly what the retired regex lint could
never see.

Dump format notes (empirically pinned against g++ 12, see
tests/analyze_probes/):

- Records: `@<id> <kind> <fields...>`; a record continues until the next
  line starting with `@<id>`. Bytes are not guaranteed UTF-8 (raw string
  literals) — decode latin-1.
- Fields are `<key>: <value>` with keys padded to 4 columns (`fn  :`,
  `op 0:`, `0   :`); `note:` may repeat.
- Source locations (`srcp`) are `<basename>:<line>` — basenames only.
  Path resolution happens in the checks layer.
- Loops are genericized: a loop is a backward `goto_expr` to an
  already-visited artificial `label_decl`, whose `srcp` carries the loop's
  source line. Each loop has exactly one back edge (continue/break are
  forward gotos), and the back edge sits in a `cond_expr` whose guard is
  the loop condition.
- `operator new`/`operator delete` decls carry a *nameless* identifier and
  `srcp: new:<line>`; they are told apart by return type.
- Virtual calls appear as `obj_type_ref`, which dumps no operands — only
  the static class is recoverable (via the method type), so virtual call
  sites are recorded as `@virtual:<class>/<arity>` for the linker to
  expand over the class hierarchy.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from typing import Dict, List, Optional, Set, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from model import CallSite, ClassInfo, Discard, Field, Function, Loop, TuModel

_REC_HEAD = re.compile(r"@(\d+)\s+(\S+)\s*(.*)")
_KEY = re.compile(r"(?:(?<=^)|(?<= ))((?:op \d+)|(?:\d+)|(?:[a-zA-Z_][a-zA-Z_0-9]{0,6}))\s{0,3}: ")
_SRCP = re.compile(r"^(.*):(\d+)$")

# Scopes whose classes are never audited (still traversed for calls).
_SKIP_CLASS_PREFIXES = ("std::", "__gnu", "__cxx", "mbi_internal_std")

_CTOR_CLONES = {"__ct_comp", "__ct_base", "__ct "}
_DTOR_CLONES = {"__dt_comp", "__dt_base", "__dt_del", "__dt "}

# Child keys the body walker descends into. Everything else (types, scopes,
# chains, cleanups) is metadata, not evaluated code.
_CHILD_KEYS = ("op 0", "op 1", "op 2", "op 3", "body", "expr", "init", "hdlr")

_COMPARE_KINDS = {"eq_expr", "ne_expr", "lt_expr", "le_expr", "gt_expr",
                  "ge_expr"}
_WRAPPER_KINDS = {"nop_expr", "convert_expr", "non_lvalue_expr",
                  "save_expr", "float_expr", "fix_trunc_expr"}

# Types whose member reads/calls count as a budget poll, and the parameter
# types that make a function "budget-carrying" (SearchOptions embeds the
# budget by value).
BUDGET_TYPES = ("mbi::QueryBudget",)
BUDGET_PARAM_TYPES = ("QueryBudget", "SearchOptions")
STATUS_TYPES = ("mbi::Status", "mbi::StatusOr")


class RawDump:
    """Lazy record/field access over one `.raw` dump."""

    def __init__(self, text: str):
        self.kind: Dict[int, str] = {}
        self.raw: Dict[int, str] = {}
        self._fields: Dict[int, Dict[str, List[str]]] = {}
        self.by_kind: Dict[str, List[int]] = {}
        cur = None
        buf: List[str] = []
        for line in text.split("\n"):
            m = _REC_HEAD.match(line)
            if m:
                if cur is not None:
                    self.raw[cur] = " ".join(buf)
                cur = int(m.group(1))
                self.kind[cur] = m.group(2)
                self.by_kind.setdefault(m.group(2), []).append(cur)
                buf = [m.group(3)]
            elif cur is not None and line.strip():
                buf.append(line.strip())
        if cur is not None:
            self.raw[cur] = " ".join(buf)

    def fields(self, rid: int) -> Dict[str, List[str]]:
        f = self._fields.get(rid)
        if f is not None:
            return f
        f = {}
        raw = self.raw.get(rid, "")
        matches = list(_KEY.finditer(raw))
        for i, m in enumerate(matches):
            key = m.group(1).rstrip()
            end = matches[i + 1].start() if i + 1 < len(matches) else len(raw)
            f.setdefault(key, []).append(raw[m.end():end].strip())
        self._fields[rid] = f
        return f

    def val(self, rid: int, key: str) -> Optional[str]:
        vs = self.fields(rid).get(key)
        return vs[0] if vs else None

    def ref(self, rid: int, key: str) -> Optional[int]:
        v = self.val(rid, key)
        if v and v.startswith("@"):
            try:
                return int(v[1:].split()[0])
            except ValueError:
                return None
        return None

    def notes(self, rid: int) -> List[str]:
        return self.fields(rid).get("note", [])

    def chain(self, rid: int) -> Optional[int]:
        """Decl/list chains: decls use `chain:`, tree_lists use `chan:`."""
        r = self.ref(rid, "chain")
        return r if r is not None else self.ref(rid, "chan")

    def srcp(self, rid: int) -> Tuple[str, int]:
        v = self.val(rid, "srcp")
        if not v:
            return ("", 0)
        m = _SRCP.match(v)
        if not m:
            return (v, 0)
        try:
            return (m.group(1), int(m.group(2)))
        except ValueError:
            return (m.group(1), 0)

    def numbered_refs(self, rid: int) -> List[int]:
        """Numbered operands (`0:`, `1:`, ...) in order — call args and
        statement_list entries."""
        out = []
        i = 0
        fl = self.fields(rid)
        while str(i) in fl:
            v = fl[str(i)][0]
            if v.startswith("@"):
                try:
                    out.append(int(v[1:].split()[0]))
                except ValueError:
                    pass
            i += 1
        return out


class _TuExtractor:
    def __init__(self, dump: RawDump, source: str):
        self.d = dump
        self.source = source
        self._qual_cache: Dict[int, str] = {}
        self._type_cache: Dict[int, str] = {}
        self.functions: Dict[str, Function] = {}

    # ---------- names and types ----------

    def ident(self, rid: Optional[int]) -> str:
        if rid is None or self.d.kind.get(rid) != "identifier_node":
            return ""
        v = self.d.val(rid, "strg")
        return v or ""

    def decl_name(self, decl: int) -> str:
        name = self.ident(self.d.ref(decl, "name"))
        notes = self.d.notes(decl)
        cls = ""
        scpe = self.d.ref(decl, "scpe")
        if scpe is not None and self.d.kind.get(scpe) == "record_type":
            cls = self.record_base_name(scpe)
        if name in _CTOR_CLONES or (not name and any(
                n.startswith("constructor") for n in notes)):
            return cls or "<ctor>"
        if name in _DTOR_CLONES or (not name and any(
                n.startswith("destructor") for n in notes)):
            return "~" + cls if cls else "<dtor>"
        if not name and any(n.startswith("operator") for n in notes):
            # Global operator new/delete: nameless, srcp `new:<line>`;
            # new returns a pointer, delete returns void.
            file, _ = self.d.srcp(decl)
            if file == "new":
                ret = self.ret_type_kind(decl)
                return "operator new" if ret == "pointer_type" else "operator delete"
            return "operator?"
        return name

    def ret_type_kind(self, decl: int) -> str:
        t = self.d.ref(decl, "type")
        if t is None:
            return ""
        retn = self.d.ref(t, "retn")
        return self.d.kind.get(retn, "") if retn is not None else ""

    def record_base_name(self, rec: int) -> str:
        name_ref = self.d.ref(rec, "name")
        if name_ref is None:
            unql = self.d.ref(rec, "unql")
            return self.record_base_name(unql) if unql is not None else ""
        k = self.d.kind.get(name_ref)
        if k == "identifier_node":
            return self.ident(name_ref)
        if k == "type_decl":
            return self.ident(self.d.ref(name_ref, "name"))
        return ""

    def scope_qual(self, scpe: Optional[int], depth: int = 0) -> str:
        """Qualified name of a scope node (namespace_decl / record_type)."""
        if scpe is None or depth > 24:
            return ""
        if scpe in self._qual_cache:
            return self._qual_cache[scpe]
        self._qual_cache[scpe] = ""  # cycle guard
        k = self.d.kind.get(scpe)
        out = ""
        if k == "namespace_decl":
            name = self.ident(self.d.ref(scpe, "name"))
            if name and name != "::":
                parent = self.scope_qual(self.d.ref(scpe, "scpe"), depth + 1)
                out = f"{parent}::{name}" if parent else name
        elif k in ("record_type", "union_type"):
            base = self.record_base_name(scpe)
            tdecl = self.d.ref(scpe, "name")
            parent_scope = None
            if tdecl is not None and self.d.kind.get(tdecl) == "type_decl":
                parent_scope = self.d.ref(tdecl, "scpe")
            parent = self.scope_qual(parent_scope, depth + 1)
            out = f"{parent}::{base}" if parent and base else base
        elif k == "function_decl":
            out = self.scope_qual(self.d.ref(scpe, "scpe"), depth + 1)
        self._qual_cache[scpe] = out
        return out

    def type_qualname(self, t: Optional[int], depth: int = 0) -> str:
        """Canonical qualified spelling of a type node (qualifiers and
        typedef layers stripped; pointers/references marked)."""
        if t is None or depth > 16:
            return ""
        if t in self._type_cache:
            return self._type_cache[t]
        self._type_cache[t] = ""
        k = self.d.kind.get(t, "")
        out = ""
        if k == "pointer_type":
            out = self.type_qualname(self.d.ref(t, "ptd"), depth + 1) + "*"
        elif k == "reference_type":
            out = self.type_qualname(self.d.ref(t, "refd"), depth + 1) + "&"
        elif k in ("record_type", "union_type", "enumeral_type"):
            unql = self.d.ref(t, "unql")
            if unql is not None:
                out = self.type_qualname(unql, depth + 1)
            else:
                base = self.record_base_name(t)
                tdecl = self.d.ref(t, "name")
                parent = ""
                if tdecl is not None and self.d.kind.get(tdecl) == "type_decl":
                    parent = self.scope_qual(self.d.ref(tdecl, "scpe"), depth + 1)
                out = f"{parent}::{base}" if parent and base else base
        else:
            unql = self.d.ref(t, "unql")
            if unql is not None:
                out = self.type_qualname(unql, depth + 1)
            else:
                name_ref = self.d.ref(t, "name")
                if name_ref is not None:
                    if self.d.kind.get(name_ref) == "type_decl":
                        out = self.ident(self.d.ref(name_ref, "name"))
                    else:
                        out = self.ident(name_ref)
        self._type_cache[t] = out
        return out

    def type_is_const(self, t: Optional[int]) -> bool:
        if t is None:
            return False
        k = self.d.kind.get(t, "")
        if k == "reference_type":
            return True  # references cannot be reseated after construction
        q = self.d.val(t, "qual") or ""
        return "c" in q.split()

    # ---------- function identity ----------

    def fn_params(self, decl: int) -> Tuple[List[str], int]:
        parms, arity = [], 0
        p = self.d.ref(decl, "args")
        guard = 0
        while p is not None and self.d.kind.get(p) == "parm_decl" and guard < 64:
            guard += 1
            pname = self.ident(self.d.ref(p, "name"))
            if pname != "this":
                parms.append(self.type_qualname(self.d.ref(p, "type")))
                arity += 1
            p = self.d.chain(p)
        if guard:
            return parms, arity
        # Declaration without parm decls: fall back to the function type.
        t = self.d.ref(decl, "type")
        if t is None:
            return parms, arity
        is_method = self.d.kind.get(t) == "method_type"
        prm = self.d.ref(t, "prms")
        guard = 0
        while prm is not None and guard < 64:
            guard += 1
            valu = self.d.ref(prm, "valu")
            if valu is not None and self.d.kind.get(valu) != "void_type":
                parms.append(self.type_qualname(valu))
            prm = self.d.chain(prm)
        if is_method and parms:
            parms = parms[1:]
        return parms, len(parms)

    def fn_uid(self, decl: int) -> Tuple[str, str, str, int, List[str]]:
        name = self.decl_name(decl)
        qual = self.scope_qual(self.d.ref(decl, "scpe"))
        params, arity = self.fn_params(decl)
        uid = f"{qual}::{name}/{arity}" if qual else f"{name}/{arity}"
        return uid, name, qual, arity, params

    # ---------- body walking ----------

    def walk_body(self, fn: Function, body: int) -> None:
        d = self.d
        open_loops: List[Tuple[int, Loop]] = []  # (label_decl id, loop)
        state = {"line": fn.line}

        def guard_bounded(guard: Optional[int]) -> bool:
            """True if the back-edge guard compares against an integer
            constant (the only 'provably compile-time bounded' shape we
            accept)."""
            work = [guard]
            depth = 0
            while work and depth < 64:
                depth += 1
                n = work.pop()
                if n is None:
                    continue
                k = d.kind.get(n, "")
                if k in _COMPARE_KINDS:
                    for key in ("op 0", "op 1"):
                        op = d.ref(n, key)
                        hops = 0
                        while op is not None and d.kind.get(op) in _WRAPPER_KINDS and hops < 8:
                            op = d.ref(op, "op 0")
                            hops += 1
                        if op is not None and d.kind.get(op) == "integer_cst":
                            return True
                elif k in _WRAPPER_KINDS or k in ("truth_andif_expr",
                                                  "truth_orif_expr",
                                                  "truth_and_expr",
                                                  "truth_or_expr",
                                                  "truth_not_expr",
                                                  "cond_expr"):
                    for key in ("op 0", "op 1", "op 2"):
                        r = d.ref(n, key)
                        if r is not None:
                            work.append(r)
            return False

        def goto_target_in(n: Optional[int], depth: int = 0) -> Optional[int]:
            """Label targeted by a goto nested (shallowly) under n."""
            if n is None or depth > 4:
                return None
            k = d.kind.get(n, "")
            if k == "goto_expr":
                return d.ref(n, "labl")
            if k in ("statement_list",):
                for child in d.numbered_refs(n):
                    t = goto_target_in(child, depth + 1)
                    if t is not None:
                        return t
            if k in _WRAPPER_KINDS or k == "expr_stmt":
                return goto_target_in(d.ref(n, "op 0") or d.ref(n, "expr"),
                                      depth + 1)
            return None

        def record_call(callee: str, line: int) -> None:
            fn.calls.append(CallSite(callee=callee, line=line))
            for _, loop in open_loops:
                loop.calls.append(callee)

        def record_poll() -> None:
            fn.polls = True
            for _, loop in open_loops:
                loop.polls = True

        def resolve_callee(fnref: Optional[int], nargs: int) -> Optional[str]:
            hops = 0
            while fnref is not None and hops < 8:
                hops += 1
                k = d.kind.get(fnref, "")
                if k == "addr_expr":
                    fnref = d.ref(fnref, "op 0")
                elif k in _WRAPPER_KINDS:
                    fnref = d.ref(fnref, "op 0")
                elif k == "function_decl":
                    uid, name, qual, arity, _ = self.fn_uid(fnref)
                    if qual.startswith(BUDGET_TYPES) or qual in BUDGET_TYPES:
                        record_poll()
                    return uid
                elif k == "obj_type_ref":
                    # Virtual dispatch: only the static class is dumped.
                    t = d.ref(fnref, "type")
                    mt = d.ref(t, "ptd") if t is not None else None
                    cls = ""
                    if mt is not None:
                        clas = d.ref(mt, "clas")
                        if clas is not None:
                            cls = self.type_qualname(clas)
                    return f"@virtual:{cls}/{max(nargs - 1, 0)}" if cls else "@indirect"
                else:
                    return "@indirect"
            return None

        def walk(n: Optional[int], ctx: str, depth: int = 0) -> None:
            if n is None or depth > 768:
                return
            k = d.kind.get(n, "")
            line_v = d.val(n, "line")
            if line_v:
                try:
                    state["line"] = int(line_v)
                except ValueError:
                    pass

            if k == "label_expr":
                lab = d.ref(n, "name")
                if lab is not None:
                    lfile, lline = d.srcp(lab)
                    loop = Loop(file=lfile or fn.file,
                                line=lline or state["line"])
                    # Remember the enclosing loop *object*; indices into
                    # fn.loops don't exist yet (loops close inner-first).
                    loop._parent_obj = open_loops[-1][1] if open_loops else None
                    open_loops.append((lab, loop))
                return
            if k == "goto_expr":
                lab = d.ref(n, "labl")
                for i, (lid, loop) in enumerate(open_loops):
                    if lid == lab:  # back edge: close this loop
                        fn.loops.append(loop)
                        # Inner facts propagate to still-open outer loops.
                        for _, outer in open_loops[:i]:
                            outer.calls.extend(loop.calls)
                            outer.polls = outer.polls or loop.polls
                        del open_loops[i:]
                        break
                return
            if k == "cond_expr":
                # A cond whose arm jumps back to an open label is a loop
                # guard: evaluate boundedness before the goto closes it.
                for key in ("op 1", "op 2"):
                    t = goto_target_in(d.ref(n, key))
                    if t is not None:
                        for lid, loop in open_loops:
                            if lid == t:
                                loop.bounded = loop.bounded or guard_bounded(
                                    d.ref(n, "op 0"))
                walk(d.ref(n, "op 0"), "value", depth + 1)
                t_ref = d.ref(n, "type")
                arm_ctx = ctx
                if t_ref is not None and d.kind.get(t_ref) == "void_type" and \
                        ctx in ("stmt", "value"):
                    arm_ctx = "ternary"
                walk(d.ref(n, "op 1"), arm_ctx, depth + 1)
                walk(d.ref(n, "op 2"), arm_ctx, depth + 1)
                return
            if k == "compound_expr":
                walk(d.ref(n, "op 0"), "comma", depth + 1)
                walk(d.ref(n, "op 1"), ctx, depth + 1)
                return
            if k in ("convert_expr", "nop_expr"):
                t = d.ref(n, "type")
                inner_ctx = "value"
                if t is not None and d.kind.get(t) == "void_type":
                    inner_ctx = "cast" if ctx in ("stmt", "value") else ctx
                walk(d.ref(n, "op 0"), inner_ctx, depth + 1)
                return
            if k == "expr_stmt":
                walk(d.ref(n, "expr"), "stmt", depth + 1)
                return
            if k == "statement_list":
                for child in d.numbered_refs(n):
                    walk(child, "stmt", depth + 1)
                return
            if k == "bind_expr":
                walk(d.ref(n, "body"), "stmt", depth + 1)
                return
            if k == "target_expr":
                # A class-typed temporary: the call inside (aggr_init_expr)
                # is void-typed, the result type lives here.
                rt = self.type_qualname(d.ref(n, "type"))
                if ctx in ("stmt", "cast", "comma", "ternary") and \
                        rt in STATUS_TYPES:
                    fn.discards.append(Discard(
                        file=fn.file, line=state["line"], context=ctx,
                        type_name=rt.rsplit("::", 1)[-1]))
                    walk(d.ref(n, "init"), "value", depth + 1)
                    return
                walk(d.ref(n, "init"), ctx, depth + 1)
                return
            if k == "throw_expr":
                fn.throws.append(state["line"])
                walk(d.ref(n, "op 0"), "value", depth + 1)
                return
            if k in ("call_expr", "aggr_init_expr"):
                args = d.numbered_refs(n)
                callee = resolve_callee(d.ref(n, "fn"), len(args))
                if callee:
                    record_call(callee, state["line"])
                rt = self.type_qualname(d.ref(n, "type"))
                if ctx in ("stmt", "cast", "comma", "ternary") and \
                        rt in STATUS_TYPES:
                    fn.discards.append(Discard(
                        file=fn.file, line=state["line"], context=ctx,
                        type_name=rt.rsplit("::", 1)[-1]))
                for a in args:
                    walk(a, "value", depth + 1)
                return
            if k == "component_ref":
                obj = d.ref(n, "op 0")
                if obj is not None:
                    ot = self.type_qualname(d.ref(obj, "type"))
                    if ot.rstrip("*&") in BUDGET_TYPES:
                        record_poll()
                walk(obj, "value", depth + 1)
                return
            # Generic node: descend into child operands.
            fl = d.fields(n)
            for key in _CHILD_KEYS:
                if key in fl:
                    v = fl[key][0]
                    if v.startswith("@"):
                        try:
                            child = int(v[1:].split()[0])
                        except ValueError:
                            continue
                        ck = "stmt" if key in ("body", "hdlr") else "value"
                        walk(child, ck, depth + 1)
            for child in d.numbered_refs(n):
                walk(child, "stmt", depth + 1)

        walk(body, "stmt")
        # Unclosed loops (a label never jumped back to was not a loop) are
        # dropped by construction: only back edges append to fn.loops.
        # Resolve parent links now that the closed set is final: the chain
        # may pass through labels that never became loops, so walk upward
        # until an ancestor that actually closed (or the top) is found.
        pos = {id(lp): i for i, lp in enumerate(fn.loops)}
        for lp in fn.loops:
            anc = getattr(lp, "_parent_obj", None)
            while anc is not None and id(anc) not in pos:
                anc = getattr(anc, "_parent_obj", None)
            lp.parent = pos[id(anc)] if anc is not None else -1
            if hasattr(lp, "_parent_obj"):
                del lp._parent_obj

    # ---------- top-level extraction ----------

    def extract(self) -> TuModel:
        d = self.d
        for decl in d.by_kind.get("function_decl", []):
            file, line = d.srcp(decl)
            if file in ("<built-in>", ""):
                continue
            body = d.ref(decl, "body")
            has_body = body is not None and d.val(decl, "body") != "undefined"
            uid, name, qual, arity, params = self.fn_uid(decl)
            if not name:
                continue
            prev = self.functions.get(uid)
            if prev is not None and prev.has_body:
                continue
            fn = Function(uid=uid, name=name, qual=qual, arity=arity,
                          file=file, line=line, has_body=has_body,
                          params=params)
            if has_body and body is not None:
                try:
                    self.walk_body(fn, body)
                except RecursionError:
                    pass
            self.functions[uid] = fn

        classes: Dict[str, ClassInfo] = {}
        for rec in d.by_kind.get("record_type", []):
            if d.ref(rec, "unql") is not None:
                continue  # qualified/typedef variant, not the main record
            flds = d.ref(rec, "flds")
            if flds is None:
                continue
            tdecl = d.ref(rec, "name")
            if tdecl is None or d.kind.get(tdecl) != "type_decl":
                continue
            file, line = d.srcp(tdecl)
            base = self.record_base_name(rec)
            parent = self.scope_qual(d.ref(tdecl, "scpe"))
            qual_name = f"{parent}::{base}" if parent and base else base
            if not qual_name or qual_name.startswith(_SKIP_CLASS_PREFIXES):
                continue
            cls = ClassInfo(qual_name=qual_name, file=file, line=line)
            f = flds
            guard = 0
            while f is not None and guard < 512:
                guard += 1
                nxt = d.chain(f)
                if d.kind.get(f) == "field_decl" and \
                        "artificial" not in d.notes(f):
                    fname = self.ident(d.ref(f, "name"))
                    if fname:
                        t = d.ref(f, "type")
                        tq = self.type_qualname(t)
                        ffile, fline = d.srcp(f)
                        fld = Field(
                            name=fname, file=ffile, line=fline, type_name=tq,
                            is_const=self.type_is_const(t),
                            is_atomic=tq.startswith("std::atomic"),
                            is_sync_primitive=tq in ("mbi::Mutex",
                                                     "mbi::CondVar"))
                        cls.fields.append(fld)
                        if tq == "mbi::Mutex":
                            cls.owns_mutex = True
                f = nxt
            binf = d.ref(rec, "binf")
            if binf is not None:
                raw = d.raw.get(binf, "")
                for m in re.finditer(r"@(\d+)", raw):
                    bid = int(m.group(1))
                    if d.kind.get(bid) == "binfo":
                        bt = d.ref(bid, "type")
                        if bt is not None and bt != rec:
                            bq = self.type_qualname(bt)
                            if bq and not bq.startswith(_SKIP_CLASS_PREFIXES):
                                cls.bases.append(bq)
            prev = classes.get(qual_name)
            if prev is None or len(cls.fields) > len(prev.fields):
                classes[qual_name] = cls

        return TuModel(source=self.source, frontend="gcc",
                       functions=list(self.functions.values()),
                       classes=list(classes.values()))


def dump_tu(source: str, compile_args: List[str], workdir: str,
            gxx: str = "g++", timeout: int = 300) -> str:
    """Run the gcc front end over one TU, returning the raw dump path."""
    os.makedirs(workdir, exist_ok=True)
    base = re.sub(r"[^A-Za-z0-9_.-]", "_", os.path.basename(source))
    for old in os.listdir(workdir):
        if old.startswith(base + ".") and old.endswith("l.raw"):
            os.unlink(os.path.join(workdir, old))
    cmd = [gxx] + compile_args + [
        "-fsyntax-only", "-w", "-fdump-lang-raw",
        "-dumpdir", workdir + os.sep, "-dumpbase", base, source]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout)
    dumps = [f for f in os.listdir(workdir)
             if f.startswith(base + ".") and f.endswith("l.raw")]
    if not dumps:
        raise RuntimeError(
            f"gcc frontend produced no raw dump for {source}:\n"
            f"  cmd: {' '.join(cmd)}\n  stderr: {proc.stderr[-2000:]}")
    return os.path.join(workdir, sorted(dumps)[0])


def analyze_tu(source: str, compile_args: List[str], workdir: str,
               gxx: str = "g++") -> TuModel:
    dump_path = dump_tu(source, compile_args, workdir, gxx=gxx)
    with open(dump_path, "rb") as f:
        text = f.read().decode("latin-1")
    os.unlink(dump_path)  # dumps are ~70MB; never keep them around
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(20000)
    try:
        return _TuExtractor(RawDump(text), source).extract()
    finally:
        sys.setrecursionlimit(old_limit)
