"""mbi-analyze checks: the four AST-level contract verifications.

Each check consumes the linked Program (model.py) plus a RepoIndex that
resolves the dump's basename-only locations back to real repo files and
confirms lexical facts (`MBI_HOT`, `MBI_GUARDED_BY`, `(void)` sanctions) at
AST-anchored lines. The AST decides *what* is at a location; the source
text only confirms annotations the gcc front end cannot surface (the repo's
annotation macros expand to nothing, or to clang-only attributes, under
gcc — see util/hot_path.h and util/thread_annotations.h).

Finding fingerprints (`id`) are what the baseline keys on. They embed
symbols (uids, class::field) rather than raw positions wherever possible so
unrelated edits don't invalidate the baseline; loop and discard findings
additionally embed the line because one function can contain several.
"""

from __future__ import annotations

import os
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from model import Program, VIRTUAL_PREFIX

# ---------------------------------------------------------------------------
# Contract configuration
# ---------------------------------------------------------------------------

# std container methods that may grow a *caller-owned* buffer: the MBI_HOT
# contract (util/hot_path.h) explicitly allows amortized growth, so these are
# a traversal boundary — nothing beneath them (realloc, __throw_length_error)
# is charged to the hot path. Everything else reachable must be clean.
GROWTH_METHODS = {
    "push_back", "emplace_back", "pop_back", "resize", "reserve", "insert",
    "emplace", "emplace_hint", "append", "assign", "push", "pop", "clear",
    "erase", "operator[]", "at", "operator=",
    "_M_realloc_insert", "_M_realloc_append", "_M_default_append",
    "_M_fill_insert", "_M_insert_aux", "_M_create_storage", "_M_assign_aux",
    "_M_range_insert",
}

# Blocking acquire/wait entry points reported by name (traversal stops here:
# the finding anchors at the contract-relevant symbol, not at pthreads).
NAMED_BLOCKING = {
    ("mbi::Mutex", "Lock"),
    ("mbi::Mutex", "AssertHeld"),
    ("mbi::MutexLock", "MutexLock"),
    ("mbi::CondVar", "Wait"),
    ("mbi::CondVar", "WaitFor"),
    ("std::mutex", "lock"),
    ("std::condition_variable", "wait"),
    ("std::condition_variable", "wait_for"),
}

EXTERNAL_ALLOC = {
    "operator new", "operator new []", "operator delete",
    "operator delete []", "malloc", "calloc", "realloc", "free", "strdup",
    "aligned_alloc", "posix_memalign", "__cxa_allocate_exception",
}

EXTERNAL_BLOCKING = {
    "pthread_mutex_lock", "pthread_cond_wait", "pthread_cond_timedwait",
    "pthread_join", "sleep", "usleep", "nanosleep",
}

# File I/O outside the Env seam. The printf family is deliberately absent:
# MBI_CHECK diagnostics print-and-abort (util/macros.h), which is sanctioned
# on any path because it never returns.
EXTERNAL_IO = {
    "open", "open64", "openat", "creat", "close", "read", "write", "pread",
    "pwrite", "pread64", "pwrite64", "lseek", "lseek64", "fsync",
    "fdatasync", "rename", "renameat", "unlink", "unlinkat", "mkdir",
    "rmdir", "stat", "lstat", "fstat", "opendir", "readdir", "closedir",
    "fopen", "fopen64", "freopen", "fclose", "fread", "fwrite", "fflush",
    "fseek", "fseeko", "ftell", "fgets", "fgetc",
}

THROW_HELPER_PREFIXES = ("__throw_", "__cxa_throw", "__cxa_rethrow",
                         "__cxa_bad_cast")

# Functions defined in these files form the sanctioned I/O seam: reaching
# them is allowed, and traversal does not descend past them.
ENV_SEAM_FILES = {"env.h", "env.cc"}

BUDGET_PARAM_TOKENS = ("QueryBudget", "SearchOptions")

SANCTION_RE = re.compile(
    r"\(void\)|static_cast<\s*void\s*>|IgnoreError|mbi-analyze:\s*allow")
ALLOW_RE = re.compile(r"mbi-analyze:\s*allow")
GUARDED_RE = re.compile(r"MBI_GUARDED_BY|MBI_PT_GUARDED_BY")
HOT_RE = re.compile(r"\bMBI_HOT\b")


def split_uid(uid: str) -> Tuple[str, str, int]:
    head, _, arity_s = uid.rpartition("/")
    try:
        arity = int(arity_s)
    except ValueError:
        head, arity = uid, -1
    qual, sep, name = head.rpartition("::")
    if not sep:
        qual, name = "", head
    return qual, name, arity


class RepoIndex:
    """Maps dump basenames back to repo files and answers lexical queries."""

    def __init__(self, repo_root: str, extra_dirs: Iterable[str] = ()):
        self.repo_root = repo_root
        self.by_basename: Dict[str, List[str]] = {}
        self._lines: Dict[str, List[str]] = {}
        roots = [os.path.join(repo_root, "src"),
                 os.path.join(repo_root, "tools")]
        roots.extend(extra_dirs)
        for root in roots:
            if not os.path.isdir(root):
                continue
            for dirpath, _, names in os.walk(root):
                for n in names:
                    if n.endswith((".h", ".cc", ".hpp", ".cpp")):
                        self.by_basename.setdefault(n, []).append(
                            os.path.join(dirpath, n))
        for paths in self.by_basename.values():
            paths.sort()

    def lines(self, path: str) -> List[str]:
        cached = self._lines.get(path)
        if cached is None:
            try:
                with open(path, "r", encoding="utf-8", errors="replace") as f:
                    cached = f.read().split("\n")
            except OSError:
                cached = []
            self._lines[path] = cached
        return cached

    def is_repo_file(self, basename: str) -> bool:
        return basename in self.by_basename

    def region_matches(self, basename: str, line: int, pattern: re.Pattern,
                       before: int = 0, after: int = 0) -> bool:
        """True if pattern appears within [line-before, line+after] in any
        candidate file for this basename (1-indexed lines)."""
        for path in self.by_basename.get(basename, ()):  # usually unique
            lines = self.lines(path)
            lo = max(0, line - 1 - before)
            hi = min(len(lines), line + after)
            for text in lines[lo:hi]:
                if pattern.search(text):
                    return True
        return False

    def display_path(self, basename: str) -> str:
        paths = self.by_basename.get(basename)
        if paths:
            return os.path.relpath(paths[0], self.repo_root)
        return basename


def make_finding(check: str, fid: str, file: str, line: int, message: str,
                 chain: Optional[List[str]] = None) -> dict:
    return {"check": check, "id": fid, "file": file, "line": line,
            "message": message, "chain": chain or []}


# ---------------------------------------------------------------------------
# Check 1: hot-path reachability
# ---------------------------------------------------------------------------

def hot_entry_points(program: Program, repo: RepoIndex) -> List[str]:
    """Functions whose AST-resolved declaration line carries the MBI_HOT
    token. gcc erases the attribute (it is just `__attribute__((hot))`),
    so the anchor is lexical at the AST location — the repo convention
    (enforced here by construction) repeats MBI_HOT on out-of-line
    definitions."""
    out = []
    for uid, fn in program.functions.items():
        if not fn.has_body or not repo.is_repo_file(fn.file):
            continue
        if repo.region_matches(fn.file, fn.line, HOT_RE, before=2):
            out.append(uid)
    return sorted(out)


def _classify_callee(program: Program, repo: RepoIndex,
                     uid: str) -> Tuple[str, str]:
    """-> (action, fact_kind). action: descend | boundary | fact."""
    qual, name, _ = split_uid(uid)
    if (qual, name) in NAMED_BLOCKING:
        return ("fact", "blocking-lock")
    if (qual == "std" or qual.startswith("std::")) and name in GROWTH_METHODS:
        return ("boundary", "amortized-growth")
    fn = program.functions.get(uid)
    if fn is not None and fn.file in ENV_SEAM_FILES:
        return ("boundary", "env-seam")
    if fn is not None and fn.has_body:
        return ("descend", "")
    # External: classify by name.
    if name in EXTERNAL_ALLOC:
        return ("fact", "allocation")
    if name in EXTERNAL_BLOCKING:
        return ("fact", "blocking-lock")
    if name in EXTERNAL_IO and qual in ("", "std"):
        return ("fact", "io")
    if name.startswith(THROW_HELPER_PREFIXES):
        return ("fact", "throw")
    return ("ignore", "")


def check_hot_path(program: Program, repo: RepoIndex) -> List[dict]:
    findings: Dict[str, dict] = {}
    entries = hot_entry_points(program, repo)
    for entry in entries:
        # BFS with parent pointers for the offending call chain.
        parent: Dict[str, Tuple[str, int]] = {entry: ("", 0)}
        queue = [entry]
        while queue:
            cur = queue.pop(0)
            fn = program.functions.get(cur)
            if fn is None:
                continue
            if fn.throws and repo.is_repo_file(fn.file):
                _add_hot_finding(findings, program, repo, parent, cur,
                                 "throw", cur, fn.throws[0])
            for site in fn.calls:
                for callee in program.resolve_call(site):
                    if callee == "@indirect":
                        continue  # see DESIGN.md §14: covered dynamically
                    action, kind = _classify_callee(program, repo, callee)
                    if action == "fact":
                        if callee not in parent:
                            parent[callee] = (cur, site.line)
                        _add_hot_finding(findings, program, repo, parent,
                                         callee, kind, cur, site.line)
                    elif action == "descend" and callee not in parent:
                        parent[callee] = (cur, site.line)
                        queue.append(callee)
    return sorted(findings.values(), key=lambda f: f["id"])


def _add_hot_finding(findings, program, repo, parent, fact_uid, kind,
                     caller_uid, line):
    caller = program.functions.get(caller_uid)
    file = caller.file if caller else ""
    _, fact_name, _ = split_uid(fact_uid)
    if kind == "throw" and fact_uid == caller_uid:
        fid = f"hot-path:throw:{caller_uid}"
        msg = f"throw statement reachable from a hot entry in {caller_uid}"
    else:
        fid = f"hot-path:{kind}:{caller_uid}->{fact_name}"
        msg = (f"{kind} reachable from a hot entry: {caller_uid} calls "
               f"{fact_uid}")
    if fid in findings:
        return
    chain = []
    cur = caller_uid
    hops = 0
    while cur and hops < 64:
        chain.append(cur)
        cur = parent.get(cur, ("", 0))[0]
        hops += 1
    chain.reverse()
    if fact_uid != caller_uid:
        chain.append(fact_uid)
    findings[fid] = make_finding(
        "hot-path", fid, repo.display_path(file), line, msg, chain)


# ---------------------------------------------------------------------------
# Check 2: guarded-by completeness
# ---------------------------------------------------------------------------

def check_guarded_by(program: Program, repo: RepoIndex) -> List[dict]:
    findings = []
    for cls in sorted(program.classes.values(), key=lambda c: c.qual_name):
        if not cls.owns_mutex or not repo.is_repo_file(cls.file):
            continue
        for field in cls.fields:
            if field.is_const or field.is_atomic or field.is_sync_primitive:
                continue
            # Annotation may trail onto the next line for long declarations.
            if repo.region_matches(field.file, field.line, GUARDED_RE,
                                   after=1):
                continue
            fid = f"guarded-by:{cls.qual_name}::{field.name}"
            findings.append(make_finding(
                "guarded-by", fid, repo.display_path(field.file), field.line,
                f"{cls.qual_name}::{field.name} ({field.type_name}) is "
                f"mutable state in a mutex-owning class but is not "
                f"MBI_GUARDED_BY-annotated, atomic, or const"))
    return findings


# ---------------------------------------------------------------------------
# Check 3: budget-poll reachability
# ---------------------------------------------------------------------------

def budget_entry_points(program: Program, repo: RepoIndex) -> List[str]:
    out = []
    for uid, fn in program.functions.items():
        if not fn.has_body or not repo.is_repo_file(fn.file):
            continue
        if any(any(tok in p for tok in BUDGET_PARAM_TOKENS)
               for p in fn.params):
            out.append(uid)
    return sorted(out)


def _may_poll_closure(program: Program) -> Set[str]:
    may_poll = {uid for uid, fn in program.functions.items() if fn.polls}
    changed = True
    while changed:
        changed = False
        for uid, fn in program.functions.items():
            if uid in may_poll or not fn.has_body:
                continue
            for site in fn.calls:
                if any(c in may_poll for c in program.resolve_call(site)):
                    may_poll.add(uid)
                    changed = True
                    break
    return may_poll


def _loop_poller(program: Program, may_poll: Set[str]):
    """Returns effective_polls(fn, i): does loop i of fn poll QueryBudget —
    itself, via a may-poll callee, or via an enclosing loop that does?

    The ancestor rule encodes the repo's documented poll granularity
    (DESIGN §12): the outer chunk loop polls between chunks, and work nested
    inside it runs *between* two polls by construction. Boundedness does NOT
    propagate downward — an unbounded non-polling loop inside a bounded loop
    is still unbounded work between polls."""
    memo: Dict[Tuple[str, int], bool] = {}

    def self_polls(fn, i) -> bool:
        lp = fn.loops[i]
        if lp.polls:
            return True
        return any(c in may_poll
                   for callee in lp.calls
                   for c in program.resolve_call(_as_site(callee)))

    def eff(fn, i) -> bool:
        key = (fn.uid, i)
        if key in memo:
            return memo[key]
        memo[key] = False  # cycle guard against malformed parent links
        lp = fn.loops[i]
        val = self_polls(fn, i) or (
            0 <= lp.parent < len(fn.loops) and lp.parent != i
            and eff(fn, lp.parent))
        memo[key] = val
        return val

    return eff


def check_budget_poll(program: Program, repo: RepoIndex) -> List[dict]:
    findings: Dict[str, dict] = {}
    may_poll = _may_poll_closure(program)
    effective_polls = _loop_poller(program, may_poll)
    entries = budget_entry_points(program, repo)
    reach_via: Dict[str, str] = {}
    queue = []
    for e in entries:
        if e not in reach_via:
            reach_via[e] = e
            queue.append(e)
    while queue:
        cur = queue.pop(0)
        fn = program.functions.get(cur)
        if fn is None:
            continue
        # Callees invoked *only* from inside a polling loop run between two
        # polls at the documented granularity — their internal loops are
        # that loop's per-iteration work, so don't descend. A callee also
        # called from straight-line code or from a non-polling loop still
        # gets descended into via those occurrences. (Blind spot: membership
        # sets can't see a straight-line occurrence of a callee that is
        # *also* called inside some loop; such dual-context helpers are
        # reached through the polling context anyway.)
        all_loop_calls: Set[str] = set()
        covered: Set[str] = set()
        uncovered: Set[str] = set()
        for i, lp in enumerate(fn.loops):
            all_loop_calls.update(lp.calls)
            (covered if effective_polls(fn, i) else uncovered).update(lp.calls)
        straight = {site.callee for site in fn.calls} - all_loop_calls
        skip_descent = covered - uncovered - straight
        for site in fn.calls:
            if site.callee in skip_descent:
                continue
            for callee in program.resolve_call(site):
                qual, name, _ = split_uid(callee)
                if (qual == "std" or qual.startswith("std::")) and \
                        name in GROWTH_METHODS:
                    continue
                target = program.functions.get(callee)
                if target is not None and target.has_body and \
                        callee not in reach_via:
                    reach_via[callee] = reach_via[cur]
                    queue.append(callee)
    for uid, entry in sorted(reach_via.items()):
        fn = program.functions[uid]
        if not repo.is_repo_file(fn.file):
            continue
        for i, loop in enumerate(fn.loops):
            if not repo.is_repo_file(loop.file):
                continue
            if loop.bounded or effective_polls(fn, i):
                continue
            fid = f"budget-poll:{uid}:{loop.file}:{loop.line}"
            if fid in findings:
                continue
            findings[fid] = make_finding(
                "budget-poll", fid, repo.display_path(loop.file), loop.line,
                f"loop in {uid} is reachable from budget-carrying entry "
                f"{entry} but neither polls QueryBudget (itself or via an "
                f"enclosing loop) nor has a compile-time-bounded trip count",
                chain=[entry, uid] if entry != uid else [uid])
    return sorted(findings.values(), key=lambda f: f["id"])


def _as_site(callee: str):
    from model import CallSite
    return CallSite(callee=callee, line=0)


# ---------------------------------------------------------------------------
# Check 4: Status consumption
# ---------------------------------------------------------------------------

def check_status_discard(program: Program, repo: RepoIndex) -> List[dict]:
    findings: Dict[str, dict] = {}
    for uid, fn in sorted(program.functions.items()):
        if not fn.has_body or not repo.is_repo_file(fn.file):
            continue
        for disc in fn.discards:
            if disc.context in ("stmt", "cast"):
                # `(void)` / static_cast<void> / IgnoreError() at the
                # AST-anchored line is the sanctioned explicit drop.
                if repo.region_matches(fn.file, disc.line, SANCTION_RE):
                    continue
                label = "discarded as a bare statement"
            elif disc.context == "comma":
                label = "discarded on the left of a comma operator"
                if repo.region_matches(fn.file, disc.line, ALLOW_RE):
                    continue
            else:
                label = "discarded in a ternary arm"
                if repo.region_matches(fn.file, disc.line, SANCTION_RE):
                    continue
            fid = f"status-discard:{uid}:{fn.file}:{disc.line}"
            if fid in findings:
                continue
            findings[fid] = make_finding(
                "status-discard", fid, repo.display_path(fn.file), disc.line,
                f"{disc.type_name} result {label} in {uid} "
                f"(use (void)/IgnoreError() for an intentional drop)")
    return sorted(findings.values(), key=lambda f: f["id"])


# ---------------------------------------------------------------------------

ALL_CHECKS = {
    "hot-path": check_hot_path,
    "guarded-by": check_guarded_by,
    "budget-poll": check_budget_poll,
    "status-discard": check_status_discard,
}


def run_checks(program: Program, repo: RepoIndex,
               checks: Optional[Iterable[str]] = None) -> List[dict]:
    out = []
    for name in (checks or ALL_CHECKS):
        out.extend(ALL_CHECKS[name](program, repo))
    return out
