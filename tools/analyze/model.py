"""Frontend-neutral program model for mbi-analyze.

Both frontends (gcc_frontend resolving `g++ -fdump-lang-raw` trees,
clang_frontend resolving `clang -Xclang -ast-dump=json` trees) lower a
translation unit to the same TuModel: functions with their call sites, loops,
throw sites, allocation sites, budget polls, and Status discards; classes
with their fields and bases. The checks layer (checks.py) only ever sees
this model, so a check written once runs under either compiler.

Identity: functions are keyed by `uid = <qualified scope>::<name>/<arity>`
where arity counts declared parameters excluding `this`. Mangled names are
deliberately not used — gcc's raw dump omits them for plain functions, and
the uid must be stable across frontends because finding fingerprints (and
therefore the baseline) embed it.

Source locations carry *basenames* (gcc raw dumps never print directories);
path resolution against the repo tree happens in the checks layer, which
confirms every lexical fact (MBI_HOT, MBI_GUARDED_BY, `(void)` sanctions) at
the AST-resolved location before using it.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional

MODEL_VERSION = 4  # bump to invalidate cached TU models

VIRTUAL_PREFIX = "@virtual:"


@dataclasses.dataclass
class CallSite:
    callee: str  # uid, external symbol name, or "@virtual:<class>/<arity>"
    line: int = 0

    def to_dict(self):
        return {"c": self.callee, "l": self.line}

    @staticmethod
    def from_dict(d):
        return CallSite(callee=d["c"], line=d["l"])


@dataclasses.dataclass
class Loop:
    file: str = ""
    line: int = 0
    bounded: bool = False  # back-edge guard compares against an integer constant
    polls: bool = False  # direct QueryBudget poll lexically inside the loop
    calls: List[str] = dataclasses.field(default_factory=list)  # callee uids inside
    parent: int = -1  # index into Function.loops of the enclosing loop, -1 if top

    def to_dict(self):
        return {"f": self.file, "l": self.line, "b": self.bounded,
                "p": self.polls, "c": self.calls, "pa": self.parent}

    @staticmethod
    def from_dict(d):
        return Loop(file=d["f"], line=d["l"], bounded=d["b"], polls=d["p"],
                    calls=list(d["c"]), parent=d.get("pa", -1))


@dataclasses.dataclass
class Discard:
    file: str = ""
    line: int = 0
    context: str = "stmt"  # stmt | cast | comma | ternary
    type_name: str = "Status"

    def to_dict(self):
        return {"f": self.file, "l": self.line, "x": self.context,
                "t": self.type_name}

    @staticmethod
    def from_dict(d):
        return Discard(file=d["f"], line=d["l"], context=d["x"],
                       type_name=d["t"])


@dataclasses.dataclass
class Function:
    uid: str
    name: str = ""
    qual: str = ""  # enclosing scope ("mbi::BranchAndBoundEngine", "" for free)
    arity: int = 0
    file: str = ""  # basename of the definition (or declaration) location
    line: int = 0
    has_body: bool = False
    params: List[str] = dataclasses.field(default_factory=list)  # type spellings
    calls: List[CallSite] = dataclasses.field(default_factory=list)
    throws: List[int] = dataclasses.field(default_factory=list)  # stmt lines
    loops: List[Loop] = dataclasses.field(default_factory=list)
    discards: List[Discard] = dataclasses.field(default_factory=list)
    polls: bool = False  # direct QueryBudget poll anywhere in the body

    def to_dict(self):
        return {
            "uid": self.uid, "n": self.name, "q": self.qual, "a": self.arity,
            "f": self.file, "l": self.line, "body": self.has_body,
            "prm": self.params,
            "calls": [c.to_dict() for c in self.calls],
            "thr": self.throws,
            "loops": [lp.to_dict() for lp in self.loops],
            "disc": [d.to_dict() for d in self.discards],
            "polls": self.polls,
        }

    @staticmethod
    def from_dict(d):
        return Function(
            uid=d["uid"], name=d["n"], qual=d["q"], arity=d["a"], file=d["f"],
            line=d["l"], has_body=d["body"], params=list(d["prm"]),
            calls=[CallSite.from_dict(c) for c in d["calls"]],
            throws=list(d["thr"]),
            loops=[Loop.from_dict(lp) for lp in d["loops"]],
            discards=[Discard.from_dict(x) for x in d["disc"]],
            polls=d["polls"])


@dataclasses.dataclass
class Field:
    name: str
    file: str = ""
    line: int = 0
    type_name: str = ""
    is_const: bool = False
    is_atomic: bool = False
    is_sync_primitive: bool = False  # mbi::Mutex / mbi::CondVar member itself

    def to_dict(self):
        return {"n": self.name, "f": self.file, "l": self.line,
                "t": self.type_name, "c": self.is_const, "a": self.is_atomic,
                "s": self.is_sync_primitive}

    @staticmethod
    def from_dict(d):
        return Field(name=d["n"], file=d["f"], line=d["l"], type_name=d["t"],
                     is_const=d["c"], is_atomic=d["a"], is_sync_primitive=d["s"])


@dataclasses.dataclass
class ClassInfo:
    qual_name: str  # fully qualified ("mbi::dyn::Scheduler")
    file: str = ""
    line: int = 0
    fields: List[Field] = dataclasses.field(default_factory=list)
    bases: List[str] = dataclasses.field(default_factory=list)
    owns_mutex: bool = False  # has a direct mbi::Mutex member

    def to_dict(self):
        return {"q": self.qual_name, "f": self.file, "l": self.line,
                "flds": [f.to_dict() for f in self.fields],
                "bases": self.bases, "mu": self.owns_mutex}

    @staticmethod
    def from_dict(d):
        return ClassInfo(qual_name=d["q"], file=d["f"], line=d["l"],
                         fields=[Field.from_dict(f) for f in d["flds"]],
                         bases=list(d["bases"]), owns_mutex=d["mu"])


@dataclasses.dataclass
class TuModel:
    source: str  # full path of the TU's main source file
    frontend: str = ""
    functions: List[Function] = dataclasses.field(default_factory=list)
    classes: List[ClassInfo] = dataclasses.field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps({
            "v": MODEL_VERSION, "src": self.source, "fe": self.frontend,
            "fns": [f.to_dict() for f in self.functions],
            "cls": [c.to_dict() for c in self.classes],
        })

    @staticmethod
    def from_json(text: str) -> Optional["TuModel"]:
        try:
            d = json.loads(text)
        except (json.JSONDecodeError, ValueError):
            return None
        if d.get("v") != MODEL_VERSION:
            return None
        return TuModel(
            source=d["src"], frontend=d["fe"],
            functions=[Function.from_dict(f) for f in d["fns"]],
            classes=[ClassInfo.from_dict(c) for c in d["cls"]])


class Program:
    """Whole-program view: TU models linked by uid.

    A definition (has_body) always wins over a mere declaration; identical
    definitions from multiple TUs (inline/template functions) are assumed
    ODR-consistent and the first is kept. Virtual call sites are expanded to
    every method of the static class and its transitive derived classes with
    a matching arity — a sound over-approximation (gcc's raw dump does not
    name the dispatched member, only its class)."""

    def __init__(self, tus: List[TuModel]):
        self.functions: Dict[str, Function] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._derived: Dict[str, List[str]] = {}
        self._methods_of: Dict[str, List[str]] = {}
        for tu in tus:
            for fn in tu.functions:
                prev = self.functions.get(fn.uid)
                if prev is None or (fn.has_body and not prev.has_body):
                    self.functions[fn.uid] = fn
            for cls in tu.classes:
                prev = self.classes.get(cls.qual_name)
                if prev is None or len(cls.fields) > len(prev.fields):
                    self.classes[cls.qual_name] = cls
        for cls in self.classes.values():
            for base in cls.bases:
                self._derived.setdefault(base, []).append(cls.qual_name)
        for uid, fn in self.functions.items():
            if fn.qual:
                self._methods_of.setdefault(fn.qual, []).append(uid)

    def transitive_derived(self, qual_name: str) -> List[str]:
        out, work = [], [qual_name]
        seen = {qual_name}
        while work:
            cur = work.pop()
            out.append(cur)
            for d in self._derived.get(cur, ()):
                if d not in seen:
                    seen.add(d)
                    work.append(d)
        return out

    def resolve_call(self, site: CallSite) -> List[str]:
        """Resolve a call site to candidate callee uids.

        Returns uids present in the program; unresolved externals come back
        as-is (a bare symbol name) for the checks layer to classify."""
        if site.callee.startswith(VIRTUAL_PREFIX):
            spec = site.callee[len(VIRTUAL_PREFIX):]
            cls, _, arity_s = spec.rpartition("/")
            try:
                arity = int(arity_s)
            except ValueError:
                cls, arity = spec, -1
            out = []
            for qual in self.transitive_derived(cls):
                for uid in self._methods_of.get(qual, ()):
                    fn = self.functions[uid]
                    if arity in (-1, fn.arity) and not fn.name.startswith("~"):
                        out.append(uid)
            return out
        return [site.callee]
