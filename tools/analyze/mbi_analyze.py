#!/usr/bin/env python3
"""mbi-analyze: AST/call-graph static verification of the repo's load-bearing
contracts (DESIGN.md §14).

Four checks, all interprocedural and AST-resolved (never regex-over-code):

  hot-path        nothing transitively reachable from an MBI_HOT entry point
                  allocates, acquires a blocking mbi::Mutex, throws, or does
                  I/O outside the Env seam
  guarded-by      every mutable member of a mutex-owning class is
                  MBI_GUARDED_BY-annotated, std::atomic, const, or exempted
  budget-poll     every loop reachable from a budget-carrying entry polls
                  QueryBudget or has a compile-time-bounded trip count
  status-discard  no Status/StatusOr value is silently discarded (statement,
                  comma LHS, ternary arm, cast) without (void)/IgnoreError()

Frontends (same model, same checks — builder's note: the container has no
clang, CI has both):

  gcc     resolves `g++ -fsyntax-only -fdump-lang-raw` post-genericize trees
  clang   resolves `clang++ -Xclang -ast-dump=json` ASTs

Usage:
  mbi_analyze.py --compile-commands build/compile_commands.json \
      [--frontend auto|gcc|clang] [--baseline tools/analyze/baseline.json] \
      [--report out.json] [--checks hot-path,guarded-by,...] [-v]
  mbi_analyze.py --self-test        # probe corpus under tests/analyze_probes/

Exit codes: 0 clean (or all findings exempted), 1 findings, 2 tool error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shlex
import shutil
import subprocess
import sys
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import checks as checks_mod
import gcc_frontend
from model import MODEL_VERSION, Program, TuModel

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
TOOL_VERSION = 1  # bump with MODEL_VERSION to invalidate caches

PROBE_DIR = os.path.join(REPO_ROOT, "tests", "analyze_probes")

# Probe pair per check; the self-test fails on a missing pair, a silent
# violation probe, or a noisy ok probe (tests/analyze_probes/README.md).
EXPECTED_PROBES = {
    "hot-path": ("hot_path_violation_probe.cc", "hot_path_ok_probe.cc"),
    "guarded-by": ("guarded_by_violation_probe.cc", "guarded_by_ok_probe.cc"),
    "budget-poll": ("budget_poll_violation_probe.cc",
                    "budget_poll_ok_probe.cc"),
    "status-discard": ("status_discard_violation_probe.cc",
                       "status_discard_ok_probe.cc"),
}

CLANG_CANDIDATES = ("clang++", "clang++-19", "clang++-18", "clang++-17",
                    "clang++-16", "clang++-15", "clang++-14")

DROP_ARG_PREFIXES = ("-o", "-c", "-M", "-W", "-g", "-O")
KEEP_W_PREFIXES = ()  # all warnings dropped: analysis runs -w


def find_clang() -> Optional[str]:
    for c in CLANG_CANDIDATES:
        path = shutil.which(c)
        if path:
            return path
    return None


def pick_frontend(requested: str) -> Tuple[str, str]:
    """-> (frontend name, compiler path)."""
    if requested == "gcc":
        return "gcc", shutil.which("g++") or "g++"
    if requested == "clang":
        clang = find_clang()
        if not clang:
            raise RuntimeError("--frontend clang requested but no clang++ "
                               "found on PATH")
        return "clang", clang
    clang = find_clang()
    if clang:
        return "clang", clang
    return "gcc", shutil.which("g++") or "g++"


def filter_compile_args(args: List[str], source: str) -> List[str]:
    """Strip output/diagnostic/codegen flags from a compile command, keeping
    what shapes the AST: -I/-isystem/-D/-std/-f*/-m*."""
    out: List[str] = []
    it = iter(args[1:])  # drop the compiler itself
    for a in it:
        if a in ("-o", "-MF", "-MT", "-MQ"):
            next(it, None)
            continue
        if a in ("-isystem", "-I", "-D", "-include"):
            out.append(a)
            out.append(next(it, ""))
            continue
        if a == source or a == "-c" or os.path.basename(a) == \
                os.path.basename(source):
            continue
        if a.startswith(DROP_ARG_PREFIXES):
            continue
        out.append(a)
    return out


def load_compile_commands(path: str) -> List[dict]:
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def select_tus(db: List[dict], roots: Tuple[str, ...] = ("src", "tools")) \
        -> List[Tuple[str, List[str]]]:
    """(absolute source path, filtered args) for repo TUs under roots.
    Tests/bench/fuzz TUs are out of analysis scope (they may allocate and
    discard freely); gtest-linked code never runs on the serving path."""
    out = []
    seen = set()
    for entry in db:
        src = entry["file"]
        if not os.path.isabs(src):
            src = os.path.normpath(os.path.join(entry["directory"], src))
        rel = os.path.relpath(src, REPO_ROOT)
        if not any(rel.startswith(r + os.sep) for r in roots):
            continue
        if src in seen:
            continue
        seen.add(src)
        if "arguments" in entry:
            args = list(entry["arguments"])
        else:
            args = shlex.split(entry["command"])
        out.append((src, filter_compile_args(args, src)))
    return sorted(out)


def headers_digest() -> str:
    """Cheap global invalidation key: any repo header edit reruns all TUs."""
    h = hashlib.sha256()
    for root in ("src", "tools"):
        top = os.path.join(REPO_ROOT, root)
        if not os.path.isdir(top):
            continue
        for dirpath, _, names in sorted(os.walk(top)):
            for n in sorted(names):
                if n.endswith((".h", ".hpp")):
                    p = os.path.join(dirpath, n)
                    st = os.stat(p)
                    h.update(f"{p}:{st.st_mtime_ns}:{st.st_size}".encode())
    return h.hexdigest()


def analyze_one(source: str, args: List[str], frontend: str, compiler: str,
                cache_dir: Optional[str], hdr_digest: str,
                workdir: str, verbose: bool) -> TuModel:
    key = None
    if cache_dir:
        h = hashlib.sha256()
        h.update(f"{TOOL_VERSION}:{MODEL_VERSION}:{frontend}".encode())
        h.update(hdr_digest.encode())
        h.update(" ".join(args).encode())
        try:
            with open(source, "rb") as f:
                h.update(f.read())
        except OSError:
            pass
        key = os.path.join(cache_dir, h.hexdigest() + ".json")
        if os.path.exists(key):
            with open(key, "r", encoding="utf-8") as f:
                model = TuModel.from_json(f.read())
            if model is not None:
                if verbose:
                    print(f"  [cached] {os.path.relpath(source, REPO_ROOT)}")
                return model
    if verbose:
        print(f"  [{frontend}] {os.path.relpath(source, REPO_ROOT)}",
              flush=True)
    if frontend == "clang":
        import clang_frontend
        model = clang_frontend.analyze_tu(source, args, clangxx=compiler)
    else:
        model = gcc_frontend.analyze_tu(source, args, workdir, gxx=compiler)
    if key:
        os.makedirs(cache_dir, exist_ok=True)
        with open(key, "w", encoding="utf-8") as f:
            f.write(model.to_json())
    return model


def load_baseline(path: str) -> Dict[str, str]:
    """-> {finding id: reason}. Schema forbids blanket suppressions by
    construction: an exemption is one fingerprint plus one reason."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    out = {}
    for ex in data.get("exemptions", []):
        fid, reason = ex.get("id"), ex.get("reason", "")
        if not fid or not reason:
            raise RuntimeError(
                f"baseline entry missing id or reason: {ex!r} "
                f"(blanket suppressions are not supported)")
        out[fid] = reason
    return out


def print_findings(findings: List[dict], exempted: Dict[str, str]) -> None:
    for f in findings:
        status = "EXEMPT" if f["id"] in exempted else "FAIL"
        print(f"[{status}] {f['check']}: {f['file']}:{f['line']}: "
              f"{f['message']}")
        if f.get("chain") and len(f["chain"]) > 1:
            print("         call chain: " + " -> ".join(f["chain"]))
        if f["id"] in exempted:
            print(f"         exempt: {exempted[f['id']]}")
        print(f"         fingerprint: {f['id']}")


def run_repo_analysis(opts) -> int:
    frontend, compiler = pick_frontend(opts.frontend)
    db = load_compile_commands(opts.compile_commands)
    tus = select_tus(db)
    if not tus:
        print("mbi-analyze: no src/ or tools/ TUs in compile_commands.json",
              file=sys.stderr)
        return 2
    hdr = headers_digest()
    workdir = opts.workdir or os.path.join(
        os.path.dirname(os.path.abspath(opts.compile_commands)),
        "mbi_analyze_work")
    os.makedirs(workdir, exist_ok=True)
    models = []
    print(f"mbi-analyze: {len(tus)} TUs via the {frontend} frontend")
    for src, args in tus:
        try:
            models.append(analyze_one(src, args, frontend, compiler,
                                      opts.cache_dir, hdr, workdir,
                                      opts.verbose))
        except Exception as e:  # noqa: BLE001 — per-TU diagnostics
            print(f"mbi-analyze: error analyzing {src}: {e}",
                  file=sys.stderr)
            return 2
    program = Program(models)
    repo = checks_mod.RepoIndex(REPO_ROOT)
    selected = opts.checks.split(",") if opts.checks else None
    findings = checks_mod.run_checks(program, repo, selected)
    exempted = load_baseline(opts.baseline) if opts.baseline else {}
    print_findings(findings, exempted)
    fails = [f for f in findings if f["id"] not in exempted]
    stale = sorted(set(exempted) - {f["id"] for f in findings})
    for s in stale:
        print(f"[STALE] baseline exemption no longer matches any finding: "
              f"{s}")
    hot = checks_mod.hot_entry_points(program, repo)
    budget = checks_mod.budget_entry_points(program, repo)
    print(f"mbi-analyze: {len(program.functions)} functions, "
          f"{len(hot)} MBI_HOT entry points, "
          f"{len(budget)} budget-carrying functions, "
          f"{len(findings)} findings "
          f"({len(findings) - len(fails)} exempted, {len(fails)} failing, "
          f"{len(stale)} stale exemptions)")
    if opts.report:
        with open(opts.report, "w", encoding="utf-8") as f:
            json.dump({
                "tool": "mbi-analyze", "frontend": frontend,
                "tus": len(tus), "functions": len(program.functions),
                "hot_entry_points": hot, "budget_entry_points": budget,
                "findings": findings,
                "exempted": {f["id"]: exempted[f["id"]] for f in findings
                             if f["id"] in exempted},
                "stale_exemptions": stale,
            }, f, indent=2)
        print(f"mbi-analyze: report written to {opts.report}")
    return 1 if fails else 0


def run_self_test(opts) -> int:
    frontend, compiler = pick_frontend(opts.frontend)
    workdir = opts.workdir or os.path.join(PROBE_DIR, ".analyze_work")
    probe_args = ["-std=c++20", "-I", os.path.join(REPO_ROOT, "src")]
    failures = []
    print(f"mbi-analyze self-test via the {frontend} frontend")
    for check, (bad, good) in sorted(EXPECTED_PROBES.items()):
        for fname, expect_findings in ((bad, True), (good, False)):
            path = os.path.join(PROBE_DIR, fname)
            if not os.path.exists(path):
                failures.append(f"{check}: probe {fname} is missing")
                continue
            try:
                model = analyze_one(path, probe_args, frontend, compiler,
                                    None, "", workdir, opts.verbose)
            except Exception as e:  # noqa: BLE001
                failures.append(f"{check}: {fname} failed to analyze: {e}")
                continue
            program = Program([model])
            repo = checks_mod.RepoIndex(REPO_ROOT, extra_dirs=[PROBE_DIR])
            found = checks_mod.run_checks(program, repo, [check])
            found = [f for f in found if fname in f["file"]
                     or f["file"] == os.path.basename(fname)]
            if expect_findings and not found:
                failures.append(
                    f"{check}: violation probe {fname} produced no findings "
                    f"— the check is dead")
            elif not expect_findings and found:
                failures.append(
                    f"{check}: ok probe {fname} produced findings: " +
                    "; ".join(f["id"] for f in found))
            else:
                n = len(found)
                print(f"  ok: {fname} -> {n} finding(s), expected "
                      f"{'>=1' if expect_findings else '0'}")
                if opts.verbose:
                    for f in found:
                        print(f"     {f['id']}")
    if failures:
        print("mbi-analyze self-test FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("mbi-analyze self-test passed: every check fires on its violation "
          "probe and stays silent on its conforming probe")
    return 0


def main(argv: List[str]) -> int:
    p = argparse.ArgumentParser(description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("--compile-commands",
                   default=os.path.join(REPO_ROOT, "build",
                                        "compile_commands.json"))
    p.add_argument("--frontend", choices=["auto", "gcc", "clang"],
                   default="auto")
    p.add_argument("--baseline",
                   default=os.path.join(REPO_ROOT, "tools", "analyze",
                                        "baseline.json"))
    p.add_argument("--no-baseline", action="store_true",
                   help="report all findings, ignoring the baseline")
    p.add_argument("--checks", default="",
                   help="comma-separated subset of: " +
                        ",".join(checks_mod.ALL_CHECKS))
    p.add_argument("--cache-dir", default=None,
                   help="persist per-TU models keyed by content hashes "
                        "(default: <build>/mbi_analyze_cache)")
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--workdir", default=None)
    p.add_argument("--report", default=None, help="write a JSON report here")
    p.add_argument("--self-test", action="store_true",
                   help="run the tests/analyze_probes/ corpus")
    p.add_argument("-v", "--verbose", action="store_true")
    opts = p.parse_args(argv)
    if opts.no_baseline:
        opts.baseline = None
    if opts.self_test:
        return run_self_test(opts)
    if not os.path.exists(opts.compile_commands):
        print(f"mbi-analyze: {opts.compile_commands} not found — configure "
              f"with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first",
              file=sys.stderr)
        return 2
    if opts.cache_dir is None and not opts.no_cache:
        opts.cache_dir = os.path.join(
            os.path.dirname(os.path.abspath(opts.compile_commands)),
            "mbi_analyze_cache")
    if opts.no_cache:
        opts.cache_dir = None
    try:
        return run_repo_analysis(opts)
    except RuntimeError as e:
        print(f"mbi-analyze: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
