"""Clang frontend for mbi-analyze: lowers `clang -Xclang -ast-dump=json`
trees to the same TuModel the gcc frontend produces.

This is the CI frontend (the dev container ships only g++). The JSON dump is
a faithful pre-lowering AST, so some things are *easier* here than in gcc's
post-genericize raw dump — loops are still ForStmt/WhileStmt/DoStmt nodes,
discarded full-expressions appear directly under CompoundStmt — but the
format is only semi-stable across clang releases, so every field access below
is defensive: a node we cannot interpret contributes nothing rather than
crashing the run. The --self-test probe corpus is the contract that keeps
both frontends honest: CI runs it under clang, the dev loop under gcc.

Location tracking: clang's JSON elides unchanged loc fields (sticky
file/line state), so the walker threads a _Cursor through the traversal and
updates it from every "loc"/"range" it encounters.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
from typing import Dict, List, Optional, Tuple

from model import (CallSite, ClassInfo, Discard, Field, Function, Loop,
                   TuModel, VIRTUAL_PREFIX)

STATUS_TYPES = ("mbi::Status", "mbi::StatusOr")
BUDGET_TYPE = "mbi::QueryBudget"

_LOOP_KINDS = {"ForStmt", "WhileStmt", "DoStmt", "CXXForRangeStmt"}
_CALL_KINDS = {"CallExpr", "CXXMemberCallExpr", "CXXOperatorCallExpr"}
_FN_KINDS = {"FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
             "CXXDestructorDecl", "CXXConversionDecl"}

_TMPL_ARGS = re.compile(r"<.*>$")


def _strip_type(qual: str) -> str:
    """Normalize a clang type spelling to the gcc frontend's convention."""
    q = qual.replace("const ", "").replace("volatile ", "")
    q = q.replace("&", "").replace("struct ", "").replace("class ", "")
    return q.strip()


def _base_status_type(qual: str) -> Optional[str]:
    q = _strip_type(qual)
    q = _TMPL_ARGS.sub("", q)
    return q if q in STATUS_TYPES else None


class _Cursor:
    """Sticky source location, updated from partial loc dicts."""

    def __init__(self, main_file: str):
        self.file = os.path.basename(main_file)
        self.line = 0

    def update(self, node: dict) -> None:
        for key in ("loc", "range"):
            loc = node.get(key)
            if not isinstance(loc, dict):
                continue
            if key == "range":
                loc = loc.get("begin", {})
            # Macro expansions nest the interesting location one level down.
            if "expansionLoc" in loc:
                loc = loc["expansionLoc"]
            f = loc.get("file")
            if isinstance(f, str) and f and f != "<invalid>":
                self.file = os.path.basename(f)
            ln = loc.get("line")
            if isinstance(ln, int):
                self.line = ln

    def snapshot(self) -> Tuple[str, int]:
        return self.file, self.line


class _TuExtractor:
    def __init__(self, root: dict, source: str):
        self.root = root
        self.source = source
        self.functions: Dict[str, Function] = {}
        self.classes: Dict[str, ClassInfo] = {}
        # id -> (qualified name, arity) for referenced decls
        self._decl_sig: Dict[str, Tuple[str, str, int]] = {}

    # -- declaration identity ------------------------------------------------

    def _fn_sig(self, node: dict, scope: str) -> Optional[Tuple[str, str, int]]:
        name = node.get("name")
        if not isinstance(name, str) or not name:
            return None
        qt = node.get("type", {})
        spelling = qt.get("qualType", "") if isinstance(qt, dict) else ""
        arity = spelling.count(",") + 1 if "(" in spelling else 0
        if re.search(r"\(\s*\)", spelling) or "(" not in spelling:
            arity = 0
        kind = node.get("kind")
        if kind == "CXXConstructorDecl":
            name = scope.rpartition("::")[2] or name
        elif kind == "CXXDestructorDecl":
            name = "~" + (scope.rpartition("::")[2] or name.lstrip("~"))
        return name, scope, arity

    @staticmethod
    def _uid(name: str, scope: str, arity: int) -> str:
        qual = f"{scope}::{name}" if scope else name
        return f"{qual}/{arity}"

    def _callee_of(self, node: dict) -> Optional[str]:
        """Resolve a call expression to a callee uid/symbol, or @virtual."""
        # Direct reference through the callee subexpression.
        for sub in self._iter_inner(node):
            ref = self._find_decl_ref(sub, depth=0)
            if ref is not None:
                return ref
            break  # only the first inner child is the callee expression
        return None

    def _find_decl_ref(self, node: dict, depth: int) -> Optional[str]:
        if depth > 6 or not isinstance(node, dict):
            return None
        kind = node.get("kind")
        if kind in ("DeclRefExpr", "MemberExpr"):
            ref = node.get("referencedDecl") or node.get("foundReferencedDecl")
            if isinstance(ref, dict):
                rid = ref.get("id")
                sig = self._decl_sig.get(rid) if rid else None
                if sig is None:
                    # Fall back to the inline summary clang embeds.
                    name = ref.get("name", "")
                    qt = ref.get("type", {})
                    spelling = (qt.get("qualType", "")
                                if isinstance(qt, dict) else "")
                    arity = (spelling.count(",") + 1
                             if "(" in spelling
                             and not re.search(r"\(\s*\)", spelling) else 0)
                    return self._uid(name, "", arity) if name else None
                return self._uid(*sig)
        for sub in self._iter_inner(node):
            got = self._find_decl_ref(sub, depth + 1)
            if got is not None:
                return got
        return None

    @staticmethod
    def _iter_inner(node: dict):
        inner = node.get("inner")
        if isinstance(inner, list):
            for sub in inner:
                if isinstance(sub, dict):
                    yield sub

    def _node_type(self, node: dict) -> str:
        qt = node.get("type")
        if isinstance(qt, dict):
            return qt.get("qualType", "") or ""
        return ""

    # -- body walking --------------------------------------------------------

    def _walk_body(self, fn: Function, node: dict, cur: _Cursor,
                   loops: List[Loop], ctx: str) -> None:
        if not isinstance(node, dict):
            return
        cur.update(node)
        kind = node.get("kind")

        if kind in _FN_KINDS or kind == "LambdaExpr":
            return  # nested function boundary

        if kind in _LOOP_KINDS:
            f, ln = cur.snapshot()
            loop = Loop(file=f, line=ln, bounded=self._loop_bounded(node))
            # Loops are appended at open here (unlike gcc's close-order), so
            # the enclosing loop already has its fn.loops index. Identity via
            # a transient _idx: dataclass == would alias identical loops.
            loop.parent = loops[-1]._idx if loops else -1
            loop._idx = len(fn.loops)
            fn.loops.append(loop)
            loops = loops + [loop]
            for sub in self._iter_inner(node):
                self._walk_body(fn, sub, cur, loops, "value")
            return

        if kind == "CXXThrowExpr":
            fn.throws.append(cur.line)
        elif kind == "CXXNewExpr":
            site = CallSite(callee="operator new/1", line=cur.line)
            fn.calls.append(site)
            for lp in loops:
                lp.calls.append(site.callee)
        elif kind == "CXXDeleteExpr":
            site = CallSite(callee="operator delete/1", line=cur.line)
            fn.calls.append(site)
            for lp in loops:
                lp.calls.append(site.callee)
        elif kind in _CALL_KINDS:
            callee = self._callee_of(node)
            if callee is None and kind == "CXXMemberCallExpr":
                # Virtual dispatch without a resolvable decl: record the
                # static class so the linker can over-approximate.
                cls = self._member_call_class(node)
                if cls:
                    callee = f"{VIRTUAL_PREFIX}{cls}/-1"
            if callee is None:
                callee = "@indirect"
            site = CallSite(callee=callee, line=cur.line)
            fn.calls.append(site)
            for lp in loops:
                lp.calls.append(callee)
            if self._is_budget_poll(node, callee):
                fn.polls = True
                for lp in loops:
                    lp.polls = True
        elif kind == "MemberExpr":
            # Field read on a QueryBudget object counts as a poll.
            base_t = ""
            for sub in self._iter_inner(node):
                base_t = self._node_type(sub)
                break
            if BUDGET_TYPE in _strip_type(base_t):
                fn.polls = True
                for lp in loops:
                    lp.polls = True

        # Discard detection: statement-level expressions of Status type.
        if ctx in ("stmt", "cast", "comma", "ternary"):
            st = _base_status_type(self._node_type(node))
            if st is not None and kind not in ("CompoundStmt",):
                if kind in ("ExprWithCleanups", "CXXBindTemporaryExpr",
                            "MaterializeTemporaryExpr", "ImplicitCastExpr"):
                    pass  # transparent wrapper; keep context for the child
                else:
                    f, ln = cur.snapshot()
                    fn.discards.append(Discard(
                        file=f, line=ln, context=ctx,
                        type_name="StatusOr" if "StatusOr" in st
                        else "Status"))
                    ctx = "value"

        for sub in self._iter_inner(node):
            self._walk_body(fn, sub, cur, loops,
                            self._child_ctx(kind, node, sub, ctx))

    def _child_ctx(self, kind: str, node: dict, child: dict,
                   ctx: str) -> str:
        if kind == "CompoundStmt":
            return "stmt"
        if kind in ("ExprWithCleanups", "CXXBindTemporaryExpr",
                    "MaterializeTemporaryExpr"):
            return ctx
        if kind == "BinaryOperator" and node.get("opcode") == ",":
            inner = list(self._iter_inner(node))
            if inner and child is inner[0]:
                return "comma"
            return ctx
        if kind == "ConditionalOperator" and ctx in ("stmt", "cast"):
            inner = list(self._iter_inner(node))
            if inner and child is not inner[0]:
                return "ternary"
            return "value"
        if kind in ("CStyleCastExpr", "CXXStaticCastExpr",
                    "CXXFunctionalCastExpr"):
            if "void" == _strip_type(self._node_type(node)):
                return "value"  # (void) / static_cast<void> sanction
            return "value"
        return "value"

    def _loop_bounded(self, node: dict) -> bool:
        """ForStmt whose condition compares against an integer literal."""
        for sub in self._iter_inner(node):
            if self._has_int_compare(sub, 0):
                return True
        return False

    def _has_int_compare(self, node: dict, depth: int) -> bool:
        if depth > 4 or not isinstance(node, dict):
            return False
        if node.get("kind") == "BinaryOperator" and \
                node.get("opcode") in ("<", "<=", ">", ">=", "!="):
            for sub in self._iter_inner(node):
                if sub.get("kind") == "IntegerLiteral":
                    return True
                for s2 in self._iter_inner(sub):
                    if s2.get("kind") == "IntegerLiteral":
                        return True
        return any(self._has_int_compare(s, depth + 1)
                   for s in self._iter_inner(node))

    def _member_call_class(self, node: dict) -> str:
        for sub in self._iter_inner(node):
            if sub.get("kind") == "MemberExpr":
                for base in self._iter_inner(sub):
                    t = _strip_type(self._node_type(base)).lstrip("*")
                    t = t.replace("*", "").strip()
                    if t and not t.startswith("std::"):
                        return t
        return ""

    def _is_budget_poll(self, node: dict, callee: str) -> bool:
        if "QueryBudget" in callee:
            return True
        for sub in self._iter_inner(node):
            if sub.get("kind") == "MemberExpr":
                for base in self._iter_inner(sub):
                    if BUDGET_TYPE in _strip_type(self._node_type(base)):
                        return True
            break
        return False

    # -- declarations --------------------------------------------------------

    def _param_types(self, node: dict) -> List[str]:
        out = []
        for sub in self._iter_inner(node):
            if sub.get("kind") == "ParmVarDecl":
                out.append(_strip_type(self._node_type(sub)))
        return out

    def _visit_function(self, node: dict, scope: str, cur: _Cursor) -> None:
        cur.update(node)
        sig = self._fn_sig(node, scope)
        if sig is None:
            return
        name, _, _ = sig
        params = self._param_types(node)
        arity = len(params)
        uid = self._uid(name, scope, arity)
        nid = node.get("id")
        if isinstance(nid, str):
            self._decl_sig[nid] = (name, scope, arity)
        body = None
        for sub in self._iter_inner(node):
            if sub.get("kind") == "CompoundStmt":
                body = sub
        f, ln = cur.snapshot()
        fn = Function(uid=uid, name=name, qual=scope, arity=arity,
                      file=f, line=ln, has_body=body is not None,
                      params=params)
        if body is not None:
            self._walk_body(fn, body, cur, [], "stmt")
        prev = self.functions.get(uid)
        if prev is None or (fn.has_body and not prev.has_body):
            self.functions[uid] = fn

    def _visit_record(self, node: dict, scope: str, cur: _Cursor) -> None:
        cur.update(node)
        name = node.get("name")
        if not isinstance(name, str) or not name:
            return
        qual = f"{scope}::{name}" if scope else name
        if qual.startswith(("std::", "__gnu", "__cxx")):
            return
        f, ln = cur.snapshot()
        cls = ClassInfo(qual_name=qual, file=f, line=ln)
        for base in node.get("bases", []) or []:
            if isinstance(base, dict):
                bt = base.get("type", {})
                bq = _strip_type(bt.get("qualType", "")
                                 if isinstance(bt, dict) else "")
                if bq:
                    cls.bases.append(_TMPL_ARGS.sub("", bq))
        inner_cur = _Cursor(self.source)
        inner_cur.file, inner_cur.line = cur.snapshot()
        for sub in self._iter_inner(node):
            inner_cur.update(sub)
            k = sub.get("kind")
            if k == "FieldDecl":
                fname = sub.get("name")
                if not isinstance(fname, str) or not fname:
                    continue
                tq = _strip_type(self._node_type(sub))
                qt = sub.get("type", {})
                raw = qt.get("qualType", "") if isinstance(qt, dict) else ""
                ff, fl = inner_cur.snapshot()
                fld = Field(
                    name=fname, file=ff, line=fl, type_name=tq,
                    is_const="const" in raw.split("*")[0],
                    is_atomic=tq.startswith(("std::atomic", "_Atomic")),
                    is_sync_primitive=tq in ("mbi::Mutex", "mbi::CondVar"))
                cls.fields.append(fld)
                if tq == "mbi::Mutex":
                    cls.owns_mutex = True
            elif k in _FN_KINDS:
                self._visit_function(sub, qual, inner_cur)
            elif k == "CXXRecordDecl" and sub.get("name"):
                self._visit_record(sub, qual, inner_cur)
        prev = self.classes.get(qual)
        if prev is None or len(cls.fields) > len(prev.fields):
            self.classes[qual] = cls

    def _visit_scope(self, node: dict, scope: str, cur: _Cursor) -> None:
        for sub in self._iter_inner(node):
            cur.update(sub)
            k = sub.get("kind")
            try:
                if k == "NamespaceDecl":
                    name = sub.get("name", "")
                    inner_scope = (f"{scope}::{name}" if scope and name
                                   else (name or scope))
                    if name not in ("std", "__gnu_cxx"):
                        self._visit_scope(sub, inner_scope, cur)
                elif k == "CXXRecordDecl":
                    self._visit_record(sub, scope, cur)
                elif k in _FN_KINDS:
                    self._visit_function(sub, scope, cur)
                elif k in ("LinkageSpecDecl", "ExportDecl"):
                    self._visit_scope(sub, scope, cur)
            except RecursionError:
                continue

    def extract(self) -> TuModel:
        cur = _Cursor(self.source)
        # Pass 1: register decl ids so DeclRefExpr resolution sees
        # out-of-order references.
        self._register_ids(self.root, "", 0)
        self._visit_scope(self.root, "", cur)
        return TuModel(source=self.source, frontend="clang",
                       functions=list(self.functions.values()),
                       classes=list(self.classes.values()))

    def _register_ids(self, node: dict, scope: str, depth: int) -> None:
        if depth > 3 or not isinstance(node, dict):
            return
        for sub in self._iter_inner(node):
            k = sub.get("kind")
            if k in _FN_KINDS:
                sig = self._fn_sig(sub, scope)
                nid = sub.get("id")
                if sig and isinstance(nid, str):
                    params = self._param_types(sub)
                    self._decl_sig[nid] = (sig[0], scope, len(params))
            elif k == "NamespaceDecl":
                name = sub.get("name", "")
                self._register_ids(
                    sub, f"{scope}::{name}" if scope and name
                    else (name or scope), depth + 1)
            elif k == "CXXRecordDecl" and sub.get("name"):
                name = sub.get("name", "")
                self._register_ids(
                    sub, f"{scope}::{name}" if scope else name, depth + 1)


def analyze_tu(source: str, compile_args: List[str], workdir: str,
               clang: str = "clang++", timeout: int = 600) -> TuModel:
    """Dump and lower one TU via clang. Raises on compiler failure."""
    os.makedirs(workdir, exist_ok=True)
    cmd = [clang, *compile_args, "-fsyntax-only", "-Xclang",
           "-ast-dump=json", source]
    proc = subprocess.run(cmd, capture_output=True, timeout=timeout)
    if proc.returncode != 0 and not proc.stdout:
        raise RuntimeError(
            f"clang AST dump failed for {source}:\n"
            f"{proc.stderr.decode('utf-8', 'replace')[:2000]}")
    try:
        root = json.loads(proc.stdout.decode("utf-8", "replace"))
    except json.JSONDecodeError as e:
        raise RuntimeError(f"unparseable clang AST JSON for {source}: {e}")
    return _TuExtractor(root, source).extract()
