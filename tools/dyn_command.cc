// `mbi insert` / `mbi compact`: the dynamized index from the command line.
//
// The dynamic index lives as a path-prefix artifact family (DESIGN.md §13.5):
// `<prefix>` is the manifest, `<prefix>.c<i>.rows` / `.c<i>.table` the
// per-component shards. `insert` creates the family on first use, appends
// rows (from a database file or a literal basket), applies deletes, and
// persists the result; `compact` folds everything into one freshly mined
// component, purging tombstones and healing quarantined shards.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "dyn/dyn_io.h"
#include "dyn/dynamic_index.h"
#include "storage/env.h"
#include "tools/cli_command.h"
#include "txn/database_io.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace mbi::cli {
namespace {

/// Parses "3,17,204" into numeric ids; returns false on malformed input.
bool ParseIdList(const std::string& text, std::vector<uint32_t>* ids) {
  ids->clear();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string token = text.substr(pos, comma - pos);
    if (token.empty()) return false;
    char* end = nullptr;
    unsigned long value = std::strtoul(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') return false;
    ids->push_back(static_cast<uint32_t>(value));
    pos = comma + 1;
  }
  return !ids->empty();
}

void PrintBreakdown(const DynamicIndex& index) {
  std::printf("  live rows %zu, buffered %zu, tombstones %zu\n",
              index.live_size(), index.buffered_rows(),
              index.tombstone_count());
  for (const auto& level : index.LevelBreakdown()) {
    std::printf("  level %d: %zu component%s, %zu rows\n", level.level,
                level.components, level.components == 1 ? "" : "s",
                level.rows);
  }
}

}  // namespace

int RunInsert(int argc, char** argv) {
  FlagParser flags(
      "mbi insert: append rows to (or create) a dynamic index family.");
  std::string index_prefix, db_path, items_text, delete_text;
  int64_t universe, buffer_capacity, fanout, cardinality;
  flags.AddString("index", "index.mbdyn",
                  "dynamic index path prefix (created if absent)",
                  &index_prefix);
  flags.AddString("db", "",
                  "database file whose transactions are all inserted",
                  &db_path);
  flags.AddString("items", "",
                  "a single basket to insert, as comma-separated item ids",
                  &items_text);
  flags.AddString("delete", "",
                  "comma-separated row gids to tombstone after inserting",
                  &delete_text);
  flags.AddInt64("universe", 0,
                 "item universe size when creating a fresh index (defaults "
                 "to the --db universe; required for --items-only creation)",
                 &universe);
  flags.AddInt64("buffer_capacity", 256,
                 "mutable buffer rows before a spill (creation only)",
                 &buffer_capacity);
  flags.AddInt64("fanout", 4,
                 "components per level before a merge (creation only)",
                 &fanout);
  flags.AddInt64("cardinality", 15, "signature cardinality K for merges",
                 &cardinality);
  if (!flags.Parse(argc, argv)) return 0;

  DynamicIndexOptions options;
  options.buffer_capacity = static_cast<size_t>(buffer_capacity);
  options.level_fanout = static_cast<size_t>(fanout);
  options.build.clustering.target_cardinality =
      static_cast<uint32_t>(cardinality);

  // Rows to insert, from the bulk file and/or the literal basket.
  std::vector<Transaction> rows;
  size_t db_universe = 0;
  if (!db_path.empty()) {
    auto db = LoadDatabase(db_path);
    if (!db.ok()) {
      std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
      return 1;
    }
    db_universe = db->universe_size();
    rows.reserve(db->size());
    for (TransactionId i = 0; i < db->size(); ++i) rows.push_back(db->Get(i));
  }
  if (!items_text.empty()) {
    std::vector<uint32_t> items;
    if (!ParseIdList(items_text, &items)) {
      std::fprintf(stderr, "error: cannot parse --items '%s'\n",
                   items_text.c_str());
      return 1;
    }
    rows.push_back(Transaction(std::vector<ItemId>(items.begin(), items.end())));
  }

  // Open or create the family.
  std::unique_ptr<DynamicIndex> index;
  if (Env::Default()->FileExists(index_prefix)) {
    auto loaded = DynIo::Load(index_prefix, options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    index = std::move(loaded).value();
  } else {
    size_t universe_size = universe > 0 ? static_cast<size_t>(universe)
                                        : db_universe;
    if (universe_size == 0) {
      std::fprintf(stderr,
                   "error: creating %s needs --universe (or --db to infer "
                   "it from)\n",
                   index_prefix.c_str());
      return 1;
    }
    index = std::make_unique<DynamicIndex>(universe_size, options);
  }

  Stopwatch timer;
  for (const Transaction& txn : rows) {
    for (ItemId item : txn.items()) {
      if (item >= index->universe_size()) {
        std::fprintf(stderr, "error: item %u outside the universe [0, %zu)\n",
                     item, index->universe_size());
        return 1;
      }
    }
    auto gid = index->Insert(txn);
    if (!gid.ok()) {
      std::fprintf(stderr, "error: %s\n", gid.status().ToString().c_str());
      return 1;
    }
  }

  size_t deleted = 0;
  if (!delete_text.empty()) {
    std::vector<uint32_t> gids;
    if (!ParseIdList(delete_text, &gids)) {
      std::fprintf(stderr, "error: cannot parse --delete '%s'\n",
                   delete_text.c_str());
      return 1;
    }
    for (uint32_t gid : gids) {
      if (Status status = index->Delete(gid); !status.ok()) {
        std::fprintf(stderr, "error: delete %u: %s\n", gid,
                     status.ToString().c_str());
        return 1;
      }
      ++deleted;
    }
  }
  index->WaitForMaintenance();

  if (Status saved = DynIo::Save(*index, index_prefix); !saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("%s: +%zu rows, -%zu deletes in %.1f ms\n", index_prefix.c_str(),
              rows.size(), deleted, timer.ElapsedMillis());
  PrintBreakdown(*index);
  return 0;
}

int RunCompact(int argc, char** argv) {
  FlagParser flags(
      "mbi compact: fold a dynamic index into one freshly mined component, "
      "purging tombstones and healing quarantined shards.");
  std::string index_prefix;
  int64_t cardinality;
  flags.AddString("index", "index.mbdyn", "dynamic index path prefix",
                  &index_prefix);
  flags.AddInt64("cardinality", 15, "signature cardinality K for the rebuild",
                 &cardinality);
  if (!flags.Parse(argc, argv)) return 0;

  DynamicIndexOptions options;
  options.build.clustering.target_cardinality =
      static_cast<uint32_t>(cardinality);
  auto loaded = DynIo::Load(index_prefix, options);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<DynamicIndex> index = std::move(loaded).value();
  std::printf("before:\n");
  PrintBreakdown(*index);

  Stopwatch timer;
  if (Status status = index->Compact(); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  const double compact_ms = timer.ElapsedMillis();
  if (Status saved = DynIo::Save(*index, index_prefix); !saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("after (%.1f ms):\n", compact_ms);
  PrintBreakdown(*index);
  return 0;
}

}  // namespace mbi::cli
