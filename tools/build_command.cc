#include <cstdio>

#include "core/index_builder.h"
#include "core/table_io.h"
#include "tools/cli_command.h"
#include "txn/database_io.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace mbi::cli {

int RunBuild(int argc, char** argv) {
  FlagParser flags("mbi build: build and persist a signature table index.");
  std::string db_path, out;
  int64_t cardinality, activation_threshold, page_size;
  double min_pair_support;
  bool balanced;
  flags.AddString("db", "data.mbid", "input database file", &db_path);
  flags.AddString("out", "index.mbst", "output index file", &out);
  flags.AddInt64("cardinality", 15, "signature cardinality K (<= 31)",
                 &cardinality);
  flags.AddInt64("activation", 1, "activation threshold r", &activation_threshold);
  flags.AddInt64("page_size", 4096, "simulated disk page size in bytes",
                 &page_size);
  flags.AddDouble("min_pair_support", 0.0005,
                  "minimum pair support for clustering edges",
                  &min_pair_support);
  flags.AddBool("balanced", false,
                "use the correlation-blind balanced partitioner "
                "(ablation control)",
                &balanced);
  bool check_invariants;
  flags.AddBool("check_invariants", false,
                "walk the built index and verify its structural invariants "
                "before writing it (debug; O(N) extra work)",
                &check_invariants);
  if (!flags.Parse(argc, argv)) return 0;

  auto db = LoadDatabase(db_path);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }

  Stopwatch timer;
  IndexBuildConfig config;
  config.clustering.target_cardinality = static_cast<uint32_t>(cardinality);
  config.clustering.min_pair_support = min_pair_support;
  config.table.activation_threshold = static_cast<int>(activation_threshold);
  config.table.page_size_bytes = static_cast<uint32_t>(page_size);
  config.use_balanced_partitioner = balanced;
  SignatureTable table = BuildIndex(*db, config);
  double build_seconds = timer.ElapsedSeconds();

  if (check_invariants) {
    table.CheckInvariants(&*db);
    std::printf("index invariants verified (%llu transactions, %zu entries)\n",
                static_cast<unsigned long long>(
                    table.num_indexed_transactions()),
                table.entries().size());
  }

  if (Status saved = SaveSignatureTable(table, out); !saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  SignatureTable::Stats stats = table.ComputeStats();
  std::printf(
      "wrote %s: K=%u, r=%d, %llu/%llu entries occupied, avg bucket %.1f, "
      "%llu pages, directory %llu KiB (built in %.1fs)\n",
      out.c_str(), stats.cardinality, table.activation_threshold(),
      static_cast<unsigned long long>(stats.occupied_entries),
      static_cast<unsigned long long>(stats.directory_entries),
      stats.avg_bucket_size, static_cast<unsigned long long>(stats.disk_pages),
      static_cast<unsigned long long>(stats.directory_bytes / 1024),
      build_seconds);
  return 0;
}

}  // namespace mbi::cli
