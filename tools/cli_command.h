#ifndef MBI_TOOLS_CLI_COMMAND_H_
#define MBI_TOOLS_CLI_COMMAND_H_

#include <string>

/// \file
/// Subcommand entry points of the `mbi` command-line tool. Each takes the
/// argv tail after the subcommand name and returns a process exit code.
///
///   mbi generate --out data.mbid --transactions 100000 --avg_tx_size 10
///   mbi build    --db data.mbid --out index.mbst --cardinality 15
///   mbi query    --db data.mbid --index index.mbst --items 3,17,204 --k 5
///   mbi stats    --db data.mbid [--index index.mbst]
///   mbi mine     --db data.mbid --min_support 0.01 --min_confidence 0.5
///   mbi bench    --db data.mbid --index index.mbst --queries 500
///   mbi verify   data.mbid index.mbst
///   mbi insert   --index index.mbdyn --db data.mbid
///   mbi compact  --index index.mbdyn

namespace mbi::cli {

/// `mbi generate`: synthesize a Quest-style market-basket database file.
int RunGenerate(int argc, char** argv);

/// `mbi build`: build a signature table index over a database file and
/// persist it.
int RunBuild(int argc, char** argv);

/// `mbi query`: run a k-NN or range query against a database + index.
int RunQuery(int argc, char** argv);

/// `mbi stats`: print database (and optionally index) statistics.
int RunStats(int argc, char** argv);

/// `mbi mine`: mine frequent itemsets and association rules.
int RunMine(int argc, char** argv);

/// `mbi bench`: replay a query workload and report latency distributions.
int RunBench(int argc, char** argv);

/// `mbi verify`: checksum + structural health report for any artifact.
int RunVerify(int argc, char** argv);

/// `mbi insert`: append rows to (or create) a dynamic index family.
int RunInsert(int argc, char** argv);

/// `mbi compact`: fold a dynamic index into one freshly mined component.
int RunCompact(int argc, char** argv);

/// Prints the top-level usage text.
void PrintUsage(const std::string& program);

}  // namespace mbi::cli

#endif  // MBI_TOOLS_CLI_COMMAND_H_
