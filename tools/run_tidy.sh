#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the first-party
# sources, using the compilation database the CMake configure step exports.
#
#   tools/run_tidy.sh [build-dir]
#
# Exits non-zero if clang-tidy reports any finding (WarningsAsErrors: '*').
# If no clang-tidy binary is installed, prints a notice and exits 0 so that
# environments without LLVM (like the minimal CI/container images that only
# carry gcc) can still run the full check suite; the dedicated CI job
# installs clang-tidy and enforces the gate.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

# Accept versioned binaries (clang-tidy-18 etc.) so distro packages work.
tidy_bin=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    tidy_bin="$candidate"
    break
  fi
done
if [[ -z "$tidy_bin" ]]; then
  echo "run_tidy: no clang-tidy binary found on PATH; skipping (install" \
       "clang-tidy to enforce the static-analysis gate locally)" >&2
  exit 0
fi

# The compilation database is exported by every configure
# (CMAKE_EXPORT_COMPILE_COMMANDS is hard-enabled in CMakeLists.txt).
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_tidy: $build_dir/compile_commands.json not found; configuring..." >&2
  cmake -B "$build_dir" -S "$repo_root" >/dev/null || exit 1
fi

cd "$repo_root" || exit 1

# First-party translation units only: generated files and third-party code
# (none today) stay out of scope.
mapfile -t sources < <(git ls-files \
  'src/**/*.cc' 'tools/*.cc' 'tests/*.cc' 'bench/*.cc' 'bench/common/*.cc' \
  'examples/*.cc')

if [[ "${#sources[@]}" -eq 0 ]]; then
  echo "run_tidy: no sources found" >&2
  exit 1
fi

echo "run_tidy: $tidy_bin over ${#sources[@]} files" >&2
status=0
# Batch to keep memory bounded on small machines; -quiet suppresses the
# "N warnings generated" chatter so CI logs stay readable.
batch=20
for ((i = 0; i < ${#sources[@]}; i += batch)); do
  "$tidy_bin" -quiet -p "$build_dir" "${sources[@]:i:batch}" || status=1
done

if [[ "$status" -ne 0 ]]; then
  echo "run_tidy: findings reported (see above)" >&2
fi
exit "$status"
