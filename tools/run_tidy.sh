#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root, plus the stricter
# src/.clang-tidy overlay for library code) over the first-party sources,
# using the compilation database the CMake configure step exports.
#
#   tools/run_tidy.sh [--changed-only] [build-dir]
#
#   --changed-only   Scan only files changed relative to the merge base with
#                    origin/main (or main, or HEAD~1 as fallbacks) plus any
#                    uncommitted changes — what PR CI wants, so the tidy job
#                    stops re-scanning the whole tree on every pull request.
#                    A change to any header or .clang-tidy config widens the
#                    scan back to the full tree, since header edits can
#                    introduce findings in every includer.
#
# Default (no flag) remains the full tree: local runs and the post-merge
# main-branch job keep whole-repo coverage.
#
# Exits non-zero if clang-tidy reports any finding (WarningsAsErrors in the
# configs). If no clang-tidy binary is installed, prints a notice and exits 0
# so that environments without LLVM (like the minimal CI/container images
# that only carry gcc) can still run the full check suite; the dedicated CI
# job installs clang-tidy and enforces the gate.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
changed_only=0
build_dir=""
for arg in "$@"; do
  case "$arg" in
    --changed-only) changed_only=1 ;;
    *) build_dir="$arg" ;;
  esac
done
build_dir="${build_dir:-$repo_root/build}"

# Accept versioned binaries (clang-tidy-18 etc.) so distro packages work.
tidy_bin=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    tidy_bin="$candidate"
    break
  fi
done
if [[ -z "$tidy_bin" ]]; then
  echo "run_tidy: no clang-tidy binary found on PATH; skipping (install" \
       "clang-tidy to enforce the static-analysis gate locally)" >&2
  exit 0
fi

# The compilation database is exported by every configure
# (CMAKE_EXPORT_COMPILE_COMMANDS is hard-enabled in CMakeLists.txt); the
# same file drives tools/mbi_lint.py, so one configure serves both gates.
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_tidy: $build_dir/compile_commands.json not found; configuring..." >&2
  cmake -B "$build_dir" -S "$repo_root" >/dev/null || exit 1
fi

cd "$repo_root" || exit 1

# First-party translation units only: generated files and third-party code
# (none today) stay out of scope.
mapfile -t sources < <(git ls-files \
  'src/**/*.cc' 'tools/*.cc' 'tests/*.cc' 'bench/*.cc' 'bench/common/*.cc' \
  'examples/*.cc')

if [[ "$changed_only" -eq 1 ]]; then
  # Diff base: the merge base with the main line, so a stacked PR is only
  # charged for its own commits; fall back to HEAD~1 for shallow clones.
  base=""
  for ref in origin/main main; do
    if base="$(git merge-base HEAD "$ref" 2>/dev/null)" && [[ -n "$base" ]]; then
      break
    fi
    base=""
  done
  [[ -z "$base" ]] && base="$(git rev-parse HEAD~1 2>/dev/null || true)"
  if [[ -z "$base" ]]; then
    echo "run_tidy: --changed-only could not resolve a diff base;" \
         "falling back to the full tree" >&2
  else
    mapfile -t changed < <( { git diff --name-only "$base" HEAD;
                              git diff --name-only HEAD;
                              git diff --name-only --cached; } | sort -u)
    if [[ "${#changed[@]}" -eq 0 ]]; then
      echo "run_tidy: no files changed since $base; nothing to scan" >&2
      exit 0
    fi
    # Header or tidy-config changes can surface findings in any includer:
    # widen back to the full tree rather than under-scan.
    widen=0
    for file in "${changed[@]}"; do
      case "$file" in
        *.h|*.clang-tidy|.clang-tidy) widen=1 ;;
      esac
    done
    if [[ "$widen" -eq 1 ]]; then
      echo "run_tidy: changed set touches headers/config; scanning full tree" >&2
    else
      mapfile -t sources < <(printf '%s\n' "${sources[@]}" "${changed[@]}" \
                             | sort | uniq -d)
      if [[ "${#sources[@]}" -eq 0 ]]; then
        echo "run_tidy: no first-party .cc files in the changed set;" \
             "nothing to scan" >&2
        exit 0
      fi
      echo "run_tidy: --changed-only vs $base" >&2
    fi
  fi
fi

if [[ "${#sources[@]}" -eq 0 ]]; then
  echo "run_tidy: no sources found" >&2
  exit 1
fi

echo "run_tidy: $tidy_bin over ${#sources[@]} files" >&2
status=0
# Batch to keep memory bounded on small machines; -quiet suppresses the
# "N warnings generated" chatter so CI logs stay readable.
batch=20
for ((i = 0; i < ${#sources[@]}; i += batch)); do
  "$tidy_bin" -quiet -p "$build_dir" "${sources[@]:i:batch}" || status=1
done

if [[ "$status" -ne 0 ]]; then
  echo "run_tidy: findings reported (see above)" >&2
fi
exit "$status"
