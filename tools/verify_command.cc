#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/artifact_verify.h"
#include "tools/cli_command.h"
#include "util/flags.h"

namespace mbi::cli {

int RunVerify(int argc, char** argv) {
  // Artifact paths are positional; split them out before FlagParser sees the
  // argv (it aborts on anything that is not a registered flag).
  std::vector<char*> flag_args;
  std::vector<std::string> paths;
  flag_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      flag_args.push_back(argv[i]);
    } else {
      paths.emplace_back(argv[i]);
    }
  }

  FlagParser flags(
      "mbi verify <artifact>...: walk any mbi artifact (database, index, "
      "partition, page spill), verify every section checksum, and re-parse "
      "it for structural health. Exits 0 only when every artifact is sound.");
  bool checksums_only;
  flags.AddBool("checksums_only", false,
                "only verify the CRC32C section frames, skipping the full "
                "structural re-parse (fast; used by CI to price the checksum "
                "overhead on its own)",
                &checksums_only);
  if (!flags.Parse(static_cast<int>(flag_args.size()), flag_args.data())) {
    return 0;
  }
  if (paths.empty()) {
    std::fprintf(stderr, "error: mbi verify needs at least one artifact "
                         "path\n");
    return 2;
  }

  int failures = 0;
  for (const std::string& path : paths) {
    auto report = VerifyArtifact(path, checksums_only);
    if (!report.ok()) {
      // Unwalkable: missing, unrecognized, or framing too damaged to scan.
      std::printf("%s: FAILED\n  %s\n", path.c_str(),
                  report.status().ToString().c_str());
      ++failures;
      continue;
    }
    Status overall = report->Overall();
    std::printf("%s: %s (format v%u, %llu bytes) — %s\n", path.c_str(),
                report->type_name.c_str(), report->version,
                static_cast<unsigned long long>(report->file_size),
                overall.ok() ? "OK" : "FAILED");
    for (const SectionReport& section : report->sections) {
      std::printf("  section %-12s %10llu bytes  crc %s\n",
                  section.name.c_str(),
                  static_cast<unsigned long long>(section.bytes),
                  section.crc_ok ? "ok" : "MISMATCH");
    }
    if (report->version == 1) {
      std::printf("  legacy v1 artifact: no checksums on disk, health is "
                  "the structural parse only\n");
    }
    if (!overall.ok()) {
      std::printf("  %s\n", overall.ToString().c_str());
      ++failures;
    }
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace mbi::cli
