// `mbi` — command-line front end for the market-basket similarity index:
// generate synthetic data, build and persist signature table indexes, run
// similarity queries, inspect statistics, mine association rules, and verify
// artifact integrity.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "storage/env.h"
#include "storage/fault_injector.h"
#include "tools/cli_command.h"

namespace mbi::cli {

void PrintUsage(const std::string& program) {
  std::fprintf(stderr,
               "usage: %s <command> [flags]\n"
               "\n"
               "commands:\n"
               "  generate   synthesize a Quest-style market-basket database\n"
               "  build      build and persist a signature table index\n"
               "  query      k-NN / range similarity query\n"
               "  stats      database and index statistics\n"
               "  mine       frequent itemsets and association rules\n"
               "  bench      replay a query workload, report latencies\n"
               "  verify     checksum + structural health of any artifact\n"
               "  insert     append rows to (or create) a dynamic index\n"
               "  compact    fold a dynamic index into one fresh component\n"
               "\n"
               "run '%s <command> --help' for command flags\n"
               "\n"
               "set MBI_FAULT_INJECT (e.g. 'fail_write=3;seed=7') to inject\n"
               "deterministic storage faults for testing\n",
               program.c_str(), program.c_str());
}

namespace {

/// Installs the fault schedule from $MBI_FAULT_INJECT (if set) on the
/// default Env, so every artifact write in the process sees it. Returns
/// false when the spec does not parse.
bool InstallFaultInjectorFromEnv() {
  const char* spec = std::getenv("MBI_FAULT_INJECT");
  if (spec == nullptr || *spec == '\0') return true;
  auto injector = FaultInjector::FromSpec(spec);
  if (!injector.ok()) {
    std::fprintf(stderr, "error: bad MBI_FAULT_INJECT spec: %s\n",
                 injector.status().ToString().c_str());
    return false;
  }
  // Owned for the life of the process; Env keeps a raw pointer.
  static std::unique_ptr<FaultInjector> owned;
  owned = std::move(injector).value();
  Env::Default()->set_fault_injector(owned.get());
  return true;
}

}  // namespace
}  // namespace mbi::cli

int main(int argc, char** argv) {
  if (argc < 2) {
    mbi::cli::PrintUsage(argv[0]);
    return 2;
  }
  if (!mbi::cli::InstallFaultInjectorFromEnv()) return 2;
  std::string command = argv[1];
  // Hand each subcommand an argv whose [0] is the program name, so flag
  // parsing starts at its own flags.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (command == "generate") return mbi::cli::RunGenerate(sub_argc, sub_argv);
  if (command == "build") return mbi::cli::RunBuild(sub_argc, sub_argv);
  if (command == "query") return mbi::cli::RunQuery(sub_argc, sub_argv);
  if (command == "stats") return mbi::cli::RunStats(sub_argc, sub_argv);
  if (command == "mine") return mbi::cli::RunMine(sub_argc, sub_argv);
  if (command == "bench") return mbi::cli::RunBench(sub_argc, sub_argv);
  if (command == "verify") return mbi::cli::RunVerify(sub_argc, sub_argv);
  if (command == "insert") return mbi::cli::RunInsert(sub_argc, sub_argv);
  if (command == "compact") return mbi::cli::RunCompact(sub_argc, sub_argv);
  if (command == "--help" || command == "-h" || command == "help") {
    mbi::cli::PrintUsage(argv[0]);
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
  mbi::cli::PrintUsage(argv[0]);
  return 2;
}
