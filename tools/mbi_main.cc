// `mbi` — command-line front end for the market-basket similarity index:
// generate synthetic data, build and persist signature table indexes, run
// similarity queries, inspect statistics, and mine association rules.

#include <cstdio>
#include <cstring>
#include <string>

#include "tools/cli_command.h"

namespace mbi::cli {

void PrintUsage(const std::string& program) {
  std::fprintf(stderr,
               "usage: %s <command> [flags]\n"
               "\n"
               "commands:\n"
               "  generate   synthesize a Quest-style market-basket database\n"
               "  build      build and persist a signature table index\n"
               "  query      k-NN / range similarity query\n"
               "  stats      database and index statistics\n"
               "  mine       frequent itemsets and association rules\n"
               "  bench      replay a query workload, report latencies\n"
               "\n"
               "run '%s <command> --help' for command flags\n",
               program.c_str(), program.c_str());
}

}  // namespace mbi::cli

int main(int argc, char** argv) {
  if (argc < 2) {
    mbi::cli::PrintUsage(argv[0]);
    return 2;
  }
  std::string command = argv[1];
  // Hand each subcommand an argv whose [0] is the program name, so flag
  // parsing starts at its own flags.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (command == "generate") return mbi::cli::RunGenerate(sub_argc, sub_argv);
  if (command == "build") return mbi::cli::RunBuild(sub_argc, sub_argv);
  if (command == "query") return mbi::cli::RunQuery(sub_argc, sub_argv);
  if (command == "stats") return mbi::cli::RunStats(sub_argc, sub_argv);
  if (command == "mine") return mbi::cli::RunMine(sub_argc, sub_argv);
  if (command == "bench") return mbi::cli::RunBench(sub_argc, sub_argv);
  if (command == "--help" || command == "-h" || command == "help") {
    mbi::cli::PrintUsage(argv[0]);
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
  mbi::cli::PrintUsage(argv[0]);
  return 2;
}
