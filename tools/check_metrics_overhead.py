#!/usr/bin/env python3
"""Gates the cost of enabled metrics on the single-query hot path.

Usage: check_metrics_overhead.py BENCH_core.json [--max-overhead-pct 3.0]

Reads google-benchmark JSON produced by bench/perf_smoke and compares
BM_SingleQuery_MetricsOn against BM_SingleQuery_MetricsOff. With
--benchmark_repetitions=N the comparison uses the median of the per-repetition
real times (robust to one noisy repetition on shared CI runners); without
repetitions it falls back to the single reported time. Fails when the enabled
path is more than --max-overhead-pct slower than the disabled one.

The same file also carries the metric-derived counters the MetricsOn
benchmark exported (metric_queries, metric_pages_read, ...); this script
sanity-checks that metric_queries is ~1 per iteration, which proves the
registry actually observed the benchmark rather than sitting disconnected.
"""

import argparse
import json
import statistics
import sys


def median_real_time(benchmarks, name):
    """Median real_time over repetitions of `name`, in ns."""
    # With repetitions google-benchmark emits one entry per repetition
    # (run_type "iteration") plus aggregates; without, a single entry.
    times = [b["real_time"] for b in benchmarks
             if b["name"] == name and b.get("run_type", "iteration") ==
             "iteration"]
    if not times:
        return None
    return statistics.median(times)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json")
    parser.add_argument("--max-overhead-pct", type=float, default=3.0)
    args = parser.parse_args(argv[1:])

    with open(args.bench_json, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    benchmarks = doc.get("benchmarks", [])

    off = median_real_time(benchmarks, "BM_SingleQuery_MetricsOff")
    on = median_real_time(benchmarks, "BM_SingleQuery_MetricsOn")
    if off is None or on is None:
        print("error: BM_SingleQuery_MetricsOff/On not found in "
              f"{args.bench_json}", file=sys.stderr)
        return 2

    overhead_pct = 100.0 * (on - off) / off
    print(f"single-query k-NN: metrics off {off:.1f} us, on {on:.1f} us "
          f"-> overhead {overhead_pct:+.2f}% "
          f"(gate < {args.max_overhead_pct:.1f}%)")

    # The MetricsOn benchmark exports registry-derived counters; one query
    # per iteration means the registry really was wired into the hot path.
    queries_per_iter = None
    for bench in benchmarks:
        if (bench["name"].startswith("BM_SingleQuery_MetricsOn")
                and "metric_queries" in bench):
            queries_per_iter = bench["metric_queries"]
            break
    if queries_per_iter is None:
        print("error: BM_SingleQuery_MetricsOn exported no metric_queries "
              "counter", file=sys.stderr)
        return 2
    if not 0.99 <= queries_per_iter <= 1.01:
        print(f"error: metric_queries per iteration is {queries_per_iter}, "
              "expected ~1 (registry not observing the benchmark?)",
              file=sys.stderr)
        return 1

    if overhead_pct >= args.max_overhead_pct:
        print(f"error: metrics overhead {overhead_pct:.2f}% exceeds the "
              f"{args.max_overhead_pct:.1f}% budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
