#!/usr/bin/env bash
# Compile-time lock-proof gate (see DESIGN.md §9).
#
#   tools/check_thread_safety.sh [build-dir]
#
# Two checks, both requiring a Clang toolchain:
#
#  1. Positive: the full tree builds with -Wthread-safety -Werror, i.e.
#     every access to an MBI_GUARDED_BY field provably happens under its
#     mutex (src/util/thread_annotations.h, util/mutex.h).
#  2. Negative: tests/mutex_test.cc compiled with -DMBI_THREAD_SAFETY_NEGATIVE
#     MUST fail — it deliberately reads a guarded field without the lock.
#     This proves the analysis is live, not silently no-op'd (the annotation
#     macros expand to nothing off Clang, so a misconfigured toolchain would
#     otherwise pass check 1 vacuously).
#
# Without clang++ on PATH the script prints a notice and exits 0, mirroring
# run_tidy.sh: gcc-only environments (this container) still run the full
# ctest suite; the dedicated CI thread-safety job installs clang and
# enforces both checks.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-thread-safety}"

clang_bin=""
for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
                 clang++-15 clang++-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    clang_bin="$candidate"
    break
  fi
done
if [[ -z "$clang_bin" ]]; then
  echo "check_thread_safety: no clang++ on PATH; skipping (install clang to" \
       "enforce the -Wthread-safety gate locally)" >&2
  exit 0
fi

echo "check_thread_safety: positive build ($clang_bin, -Wthread-safety -Werror)" >&2
cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_CXX_COMPILER="$clang_bin" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMBI_WERROR=ON || exit 1
cmake --build "$build_dir" -j "$(nproc)" || {
  echo "check_thread_safety: FAIL — the tree does not build clean under" \
       "-Wthread-safety -Werror" >&2
  exit 1
}

echo "check_thread_safety: negative compile (unguarded access must fail)" >&2
negative_out="$build_dir/thread_safety_negative.o"
if "$clang_bin" -std=c++20 -Wthread-safety -Werror \
     -DMBI_THREAD_SAFETY_NEGATIVE -DGTEST_HAS_PTHREAD=1 \
     -I"$repo_root/src" \
     -c "$repo_root/tests/mutex_test.cc" -o "$negative_out" 2>/dev/null; then
  echo "check_thread_safety: FAIL — the unguarded access in mutex_test.cc" \
       "compiled; the thread-safety analysis is not firing" >&2
  exit 1
fi
rm -f "$negative_out"
echo "check_thread_safety: OK (positive build clean, negative compile rejected)" >&2
