#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/branch_and_bound.h"
#include "core/query_context.h"
#include "engine/engine.h"
#include "storage/env.h"
#include "tools/cli_command.h"
#include "tools/metrics_io.h"
#include "txn/database_io.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace mbi::cli {
namespace {

/// Parses "3,17,204" into item ids; returns false on malformed input.
bool ParseItems(const std::string& text, std::vector<ItemId>* items) {
  items->clear();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string token = text.substr(pos, comma - pos);
    if (token.empty()) return false;
    char* end = nullptr;
    unsigned long value = std::strtoul(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') return false;
    items->push_back(static_cast<ItemId>(value));
    pos = comma + 1;
  }
  return !items->empty();
}

}  // namespace

int RunQuery(int argc, char** argv) {
  FlagParser flags(
      "mbi query: k-NN or range similarity query against an index.");
  std::string db_path, index_path, items_text, similarity;
  int64_t k, random_target_seed;
  double termination, range_threshold;
  flags.AddString("db", "data.mbid", "database file", &db_path);
  flags.AddString("index", "index.mbst", "index file", &index_path);
  flags.AddString("items", "",
                  "target basket as comma-separated item ids; empty draws a "
                  "random database transaction as the target",
                  &items_text);
  flags.AddString("similarity", "match_ratio",
                  "hamming | match_ratio | cosine", &similarity);
  flags.AddInt64("k", 5, "neighbours to retrieve", &k);
  flags.AddDouble("termination", 1.0,
                  "early-termination access fraction in (0,1]", &termination);
  flags.AddDouble("range", -1.0,
                  "if >= 0, run a range query with this threshold instead of "
                  "k-NN",
                  &range_threshold);
  double deadline_ms;
  flags.AddDouble("deadline_ms", 0.0,
                  "per-query deadline in milliseconds; on expiry the engine "
                  "returns a certified degraded answer instead of running to "
                  "completion (0 = no deadline)",
                  &deadline_ms);
  flags.AddInt64("target_seed", 1,
                 "seed for picking a random target when --items is empty",
                 &random_target_seed);
  int64_t repeat;
  flags.AddInt64("repeat", 1,
                 "answer the k-NN query this many times through one reused "
                 "QueryContext and report per-query latency (steady-state "
                 "hot-path measurement)",
                 &repeat);
  bool explain;
  flags.AddBool("explain", false,
                "print the branch-and-bound's per-entry decisions", &explain);
  bool check_invariants;
  flags.AddBool("check_invariants", false,
                "verify the loaded index's structural invariants and the "
                "bound dominance (Lemma 2.1) for this target before querying "
                "(debug; O(N) extra work)",
                &check_invariants);
  std::string metrics_json;
  flags.AddString("metrics_json", "",
                  "write an mbi.metrics.v1 JSON snapshot of every metric to "
                  "this path after the query ('-' for stdout)",
                  &metrics_json);
  bool collect_spans;
  flags.AddBool("trace", false,
                "print the per-phase trace spans (load, open, query) of this "
                "invocation",
                &collect_spans);
  if (!flags.Parse(argc, argv)) return 0;

  // Instrumentation is opt-in: resolving handles only when a sink was asked
  // for keeps the default invocation on the uninstrumented fast path.
  MetricsRegistry* metrics =
      metrics_json.empty() ? nullptr : MetricsRegistry::Global();
  if (metrics != nullptr) Env::Default()->set_metrics(metrics);
  QueryTrace trace;
  QueryTrace* trace_sink = collect_spans ? &trace : nullptr;
  auto finish = [&](int code) {
    if (collect_spans) {
      std::printf("\ntrace:\n%s", trace.ToString().c_str());
    }
    if (metrics != nullptr && !WriteMetricsJson(metrics_json, *metrics)) {
      return 1;
    }
    return code;
  };

  StatusOr<TransactionDatabase> db = [&] {
    ScopedTimer span(nullptr, trace_sink, "load_db");
    return LoadDatabase(db_path);
  }();
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  SignatureTableEngine engine(&*db);
  engine.set_metrics(metrics);
  {
    ScopedTimer span(nullptr, trace_sink, "open_index");
    if (Status opened = engine.OpenIndex(index_path); !opened.ok()) {
      if (!engine.quarantined()) {
        std::fprintf(stderr, "error: %s\n", opened.ToString().c_str());
        return 1;
      }
      // Corrupt index: quarantine and keep serving (exact answers via
      // sequential scan). `mbi build` rebuilds the index from the database.
      std::fprintf(stderr,
                   "warning: index quarantined (%s); serving queries via "
                   "sequential scan\n",
                   engine.quarantine_reason().ToString().c_str());
    }
  }

  Transaction target;
  if (items_text.empty()) {
    Rng rng(static_cast<uint64_t>(random_target_seed));
    target = db->Get(static_cast<TransactionId>(rng.UniformUint64(db->size())));
  } else {
    std::vector<ItemId> items;
    if (!ParseItems(items_text, &items)) {
      std::fprintf(stderr, "error: cannot parse --items '%s'\n",
                   items_text.c_str());
      return 1;
    }
    for (ItemId item : items) {
      if (item >= db->universe_size()) {
        std::fprintf(stderr, "error: item %u outside the universe [0, %u)\n",
                     item, db->universe_size());
        return 1;
      }
    }
    target = Transaction(std::move(items));
  }

  auto family = MakeSimilarityFamily(similarity);
  std::printf("target: %s\n", target.ToString().c_str());

  if (check_invariants && engine.table() != nullptr) {
    engine.table()->CheckInvariants(&*db);
    BranchAndBoundEngine(&*db, engine.table())
        .CheckBoundDominance(target, *family);
    std::printf("index invariants and bound dominance verified\n");
  }

  Stopwatch timer;
  if (range_threshold >= 0.0) {
    RangeQueryResult result = [&] {
      ScopedTimer span(nullptr, trace_sink, "range_query");
      SearchOptions range_options;
      if (deadline_ms > 0.0) {
        range_options.budget = QueryBudget::WithDeadlineAfterMs(deadline_ms);
      }
      return engine.FindInRange(target, *family, range_threshold,
                                range_options);
    }();
    std::printf(
        "range query %s >= %.4g: %zu matches in %.1f ms "
        "(accessed %.2f%%, pruned %llu/%llu entries%s)\n",
        similarity.c_str(), range_threshold, result.matches.size(),
        timer.ElapsedMillis(), 100.0 * result.stats.AccessedFraction(),
        static_cast<unsigned long long>(result.stats.entries_pruned),
        static_cast<unsigned long long>(result.stats.entries_total),
        result.stats.sequential_fallbacks > 0 ? ", sequential fallback" : "");
    for (size_t i = 0; i < result.matches.size() && i < 20; ++i) {
      std::printf("  tx %-10u %-10.4g %s\n", result.matches[i].id,
                  result.matches[i].similarity,
                  db->Get(result.matches[i].id).ToString().c_str());
    }
    if (!result.guaranteed_complete) {
      std::printf("degraded answer (%s): unexplored entries could reach %.4g\n",
                  QueryTerminationName(result.stats.termination),
                  result.stats.certificate_bound);
    }
    return finish(0);
  }

  SearchOptions options;
  options.max_access_fraction = termination;
  options.collect_trace = explain;
  if (repeat < 1) repeat = 1;
  QueryContext context;
  NearestNeighborResult result;
  {
    ScopedTimer span(nullptr, trace_sink, "knn_query");
    for (int64_t run = 0; run < repeat; ++run) {
      // A fresh absolute deadline per repetition: --repeat measures the
      // steady state, not a budget shared across repetitions.
      if (deadline_ms > 0.0) {
        options.budget = QueryBudget::WithDeadlineAfterMs(deadline_ms);
      }
      result = engine.FindKNearest(target, *family, static_cast<size_t>(k),
                                   options, &context);
    }
  }
  double per_query_ms = timer.ElapsedMillis() / static_cast<double>(repeat);
  std::printf(
      "top-%lld by %s in %.3f ms%s (accessed %.2f%% of %zu transactions, "
      "%llu page reads%s%s)\n",
      static_cast<long long>(k), similarity.c_str(), per_query_ms,
      repeat > 1 ? " per query" : "", 100.0 * result.stats.AccessedFraction(),
      db->size(), static_cast<unsigned long long>(result.stats.io.pages_read),
      result.guaranteed_exact ? ", provably exact" : "",
      result.stats.sequential_fallbacks > 0 ? ", sequential fallback" : "");
  for (const Neighbor& neighbor : result.neighbors) {
    std::printf("  tx %-10u %-10.4g %s\n", neighbor.id, neighbor.similarity,
                db->Get(neighbor.id).ToString().c_str());
  }
  if (!result.guaranteed_exact) {
    std::printf("degraded answer (%s): unexplored entries could reach %.4g\n",
                QueryTerminationName(result.stats.termination),
                result.unexplored_optimistic_bound);
  }
  if (explain && engine.table() != nullptr) {
    std::printf("\nbranch-and-bound trace (first 20 entries in visit order,"
                " K=%u):\n", engine.table()->cardinality());
    size_t shown = 0;
    size_t pruned = 0, scanned = 0;
    for (const EntryTrace& entry : result.trace) {
      const char* action = entry.action == EntryTrace::Action::kScanned
                               ? "scan "
                               : entry.action == EntryTrace::Action::kPruned
                                     ? "prune"
                                     : "skip ";
      scanned += entry.action == EntryTrace::Action::kScanned;
      pruned += entry.action == EntryTrace::Action::kPruned;
      if (shown < 20) {
        std::printf("  %s %s  opt=%-9.4g pess=%-9.4g txs=%u\n", action,
                    SupercoordinateToString(entry.coordinate,
                                            engine.table()->cardinality())
                        .c_str(),
                    entry.optimistic_bound, entry.pessimistic_bound,
                    entry.transaction_count);
        ++shown;
      }
    }
    std::printf("  ... %zu entries total: %zu scanned, %zu pruned\n",
                result.trace.size(), scanned, pruned);
  }
  return finish(0);
}

}  // namespace mbi::cli
