#!/usr/bin/env python3
"""Validates an mbi.metrics.v1 JSON snapshot (the --metrics_json output).

Usage: check_metrics_json.py FILE [FILE...]

Checks, per file:
  - the document parses as JSON and is tagged "schema": "mbi.metrics.v1";
  - the three sections (counters, gauges, histograms) are objects whose keys
    are valid metric names (lowercase dot-separated, no empty segments) in
    sorted order (the exporter's stability contract);
  - counters are {"unit": str, "value": non-negative int};
  - gauges are {"unit": str, "value": number or "+inf"/"-inf"/"nan"};
  - histograms are {"unit", "count", "sum", "max", "buckets"} where buckets
    is a list of {"le", "count"} with strictly increasing positive bounds
    ending in "+inf", and the bucket counts sum to "count";
  - histogram cumulative bucket counts are monotone: every prefix sum is
    <= "count" (a corrupt per-bucket count surfaces at the first bad index,
    not just in the final total);
  - histogram "sum" and "max" are finite and non-negative — "nan", "+inf",
    "-inf", and negative latencies are recording bugs, never valid data
    (LatencyHistogram::Record clamps NaN/negative samples to 0); an empty
    histogram (count 0) must have sum == 0 and max == 0;
  - no metric name appears in more than one section.

Exits non-zero with one diagnostic line per violation.
"""

import json
import re
import sys

NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
SPECIAL_NUMBERS = {"+inf", "-inf", "nan"}


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def is_json_number(value):
    """A number as the exporter writes it: JSON number or quoted special."""
    return is_number(value) or value in SPECIAL_NUMBERS


def check_names(section, mapping, errors):
    names = list(mapping.keys())
    for name in names:
        if not NAME_RE.match(name):
            errors.append(f"{section}: invalid metric name {name!r}")
    if names != sorted(names):
        errors.append(f"{section}: keys are not in sorted order")


def check_counter(name, body, errors):
    if not isinstance(body.get("unit"), str):
        errors.append(f"counters.{name}: missing string 'unit'")
    value = body.get("value")
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        errors.append(f"counters.{name}: 'value' must be a non-negative "
                      f"integer, got {value!r}")
    extra = set(body) - {"unit", "value"}
    if extra:
        errors.append(f"counters.{name}: unexpected fields {sorted(extra)}")


def check_gauge(name, body, errors):
    if not isinstance(body.get("unit"), str):
        errors.append(f"gauges.{name}: missing string 'unit'")
    if not is_json_number(body.get("value")):
        errors.append(f"gauges.{name}: 'value' must be a number, "
                      f"got {body.get('value')!r}")
    extra = set(body) - {"unit", "value"}
    if extra:
        errors.append(f"gauges.{name}: unexpected fields {sorted(extra)}")


def check_histogram(name, body, errors):
    where = f"histograms.{name}"
    if not isinstance(body.get("unit"), str):
        errors.append(f"{where}: missing string 'unit'")
    count = body.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        errors.append(f"{where}: 'count' must be a non-negative integer")
        count = None
    # Latencies are clamped non-negative at record time, so a NaN, infinite,
    # or negative aggregate is always a recording/serialization bug.
    for field in ("sum", "max"):
        value = body.get(field)
        if not is_json_number(value):
            errors.append(f"{where}: '{field}' must be a number")
        elif value in SPECIAL_NUMBERS:
            errors.append(f"{where}: '{field}' must be finite, got {value!r}")
        elif value < 0:
            errors.append(f"{where}: '{field}' must be non-negative, "
                          f"got {value!r}")
    if count == 0:
        for field in ("sum", "max"):
            if body.get(field) not in (0, 0.0):
                errors.append(f"{where}: empty histogram (count 0) must have "
                              f"'{field}' == 0, got {body.get(field)!r}")
    buckets = body.get("buckets")
    if not isinstance(buckets, list) or not buckets:
        errors.append(f"{where}: 'buckets' must be a non-empty list")
        return
    previous = None
    cumulative = 0
    for i, bucket in enumerate(buckets):
        if not isinstance(bucket, dict) or set(bucket) != {"le", "count"}:
            errors.append(f"{where}: bucket {i} must be {{'le', 'count'}}")
            return
        le, bucket_count = bucket["le"], bucket["count"]
        if (not isinstance(bucket_count, int) or isinstance(bucket_count, bool)
                or bucket_count < 0):
            errors.append(f"{where}: bucket {i} count must be a non-negative "
                          f"integer")
        else:
            # Cumulative monotonicity: the running total is non-decreasing by
            # construction once per-bucket counts are non-negative, and no
            # prefix may exceed the histogram's total count. Flagging at the
            # first offending bucket localizes a corrupt counter.
            cumulative += bucket_count
            if count is not None and cumulative > count:
                errors.append(f"{where}: cumulative bucket count {cumulative} "
                              f"exceeds 'count' {count} at index {i}")
        is_last = i == len(buckets) - 1
        if is_last:
            if le != "+inf":
                errors.append(f"{where}: last bucket bound must be '+inf', "
                              f"got {le!r}")
        else:
            if not is_number(le):
                errors.append(f"{where}: bucket {i} bound must be a finite "
                              f"number, got {le!r}")
                return
            if le <= 0:
                errors.append(f"{where}: bucket {i} bound must be positive, "
                              f"got {le!r}")
            if previous is not None and le <= previous:
                errors.append(f"{where}: bucket bounds not strictly "
                              f"increasing at index {i}")
            previous = le
    if count is not None and cumulative != count:
        errors.append(f"{where}: bucket counts sum to {cumulative}, "
                      f"'count' says {count}")
    extra = set(body) - {"unit", "count", "sum", "max", "buckets"}
    if extra:
        errors.append(f"{where}: unexpected fields {sorted(extra)}")


def check_document(doc, errors):
    if not isinstance(doc, dict):
        errors.append("top level is not an object")
        return
    if doc.get("schema") != "mbi.metrics.v1":
        errors.append(f"bad schema tag: {doc.get('schema')!r}")
    sections = {"counters": check_counter, "gauges": check_gauge,
                "histograms": check_histogram}
    extra = set(doc) - set(sections) - {"schema"}
    if extra:
        errors.append(f"unexpected top-level fields {sorted(extra)}")
    seen = {}
    for section, checker in sections.items():
        mapping = doc.get(section)
        if not isinstance(mapping, dict):
            errors.append(f"missing '{section}' object")
            continue
        check_names(section, mapping, errors)
        for name, body in mapping.items():
            if name in seen:
                errors.append(f"{section}.{name}: name already used in "
                              f"{seen[name]}")
            seen[name] = section
            if not isinstance(body, dict):
                errors.append(f"{section}.{name}: entry is not an object")
                continue
            checker(name, body, errors)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(str(exc))
            doc = None
        if doc is not None:
            check_document(doc, errors)
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            counters = len(doc.get("counters", {}))
            gauges = len(doc.get("gauges", {}))
            histograms = len(doc.get("histograms", {}))
            print(f"{path}: OK ({counters} counters, {gauges} gauges, "
                  f"{histograms} histograms)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
