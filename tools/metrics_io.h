#ifndef MBI_TOOLS_METRICS_IO_H_
#define MBI_TOOLS_METRICS_IO_H_

#include <cstdio>
#include <string>

#include "util/metrics.h"

namespace mbi::cli {

/// Writes the registry's stable JSON snapshot ("mbi.metrics.v1", see
/// DESIGN.md §8) to `path`; "-" dumps to stdout. Returns false (with a
/// message on stderr) on I/O failure. Metrics are diagnostics rather than
/// durable artifacts, so this deliberately bypasses the Env/fault layer —
/// a fault schedule aimed at index writes must not corrupt the telemetry
/// describing it.
inline bool WriteMetricsJson(const std::string& path,
                             const MetricsRegistry& registry) {
  const std::string json = registry.ToJson();
  if (path == "-") {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return true;
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool wrote =
      std::fwrite(json.data(), 1, json.size(), file) == json.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    std::fprintf(stderr, "error: failed writing %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace mbi::cli

#endif  // MBI_TOOLS_METRICS_IO_H_
