#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/table_io.h"
#include "gen/quest_generator.h"
#include "mining/support_counter.h"
#include "storage/env.h"
#include "tools/cli_command.h"
#include "tools/metrics_io.h"
#include "txn/database_io.h"
#include "util/flags.h"
#include "util/metrics.h"

namespace mbi::cli {

int RunStats(int argc, char** argv) {
  FlagParser flags("mbi stats: database and index statistics.");
  std::string db_path, index_path;
  int64_t top_items;
  flags.AddString("db", "data.mbid", "database file", &db_path);
  flags.AddString("index", "", "optional index file", &index_path);
  flags.AddInt64("top_items", 10, "number of most frequent items to list",
                 &top_items);
  bool dump_metrics;
  flags.AddBool("metrics", false,
                "instrument this invocation and dump the live mbi.metrics.v1 "
                "registry as JSON to stdout after the report",
                &dump_metrics);
  if (!flags.Parse(argc, argv)) return 0;

  MetricsRegistry* metrics =
      dump_metrics ? MetricsRegistry::Global() : nullptr;
  if (metrics != nullptr) Env::Default()->set_metrics(metrics);

  auto db = LoadDatabase(db_path);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }

  CorpusStats stats = ComputeCorpusStats(*db);
  std::printf("database %s\n", db_path.c_str());
  std::printf("  transactions:        %llu\n",
              static_cast<unsigned long long>(stats.num_transactions));
  std::printf("  universe size:       %u\n", db->universe_size());
  std::printf("  distinct items used: %u\n", stats.distinct_items);
  std::printf("  avg transaction:     %.2f items\n",
              stats.avg_transaction_size);
  std::printf("  max transaction:     %zu items\n",
              stats.max_transaction_size);
  std::printf("  density:             %.5f\n", stats.density);

  SupportCounter supports(*db);
  std::vector<ItemId> order(db->universe_size());
  for (ItemId item = 0; item < db->universe_size(); ++item) order[item] = item;
  std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    return supports.ItemCount(a) > supports.ItemCount(b);
  });
  std::printf("  top items by support:\n");
  const size_t top_limit = top_items > 0 ? static_cast<size_t>(top_items) : 0;
  for (size_t i = 0; i < top_limit && i < order.size(); ++i) {
    std::printf("    item %-6u support %.4f\n", order[i],
                supports.ItemSupport(order[i]));
  }

  if (!index_path.empty()) {
    auto table = LoadSignatureTable(index_path, *db);
    if (!table.ok()) {
      std::fprintf(stderr, "error: %s\n", table.status().ToString().c_str());
      return 1;
    }
    table->set_metrics(metrics);
    SignatureTable::Stats index_stats = table->ComputeStats();
    std::printf("index %s\n", index_path.c_str());
    std::printf("  signature cardinality K: %u\n", index_stats.cardinality);
    std::printf("  activation threshold r:  %d\n",
                table->activation_threshold());
    std::printf("  directory entries:       %llu (2^K)\n",
                static_cast<unsigned long long>(index_stats.directory_entries));
    std::printf("  occupied entries:        %llu\n",
                static_cast<unsigned long long>(index_stats.occupied_entries));
    std::printf("  avg bucket size:         %.2f transactions\n",
                index_stats.avg_bucket_size);
    std::printf("  max bucket size:         %llu transactions\n",
                static_cast<unsigned long long>(index_stats.max_bucket_size));
    std::printf("  disk pages:              %llu (%u B each)\n",
                static_cast<unsigned long long>(index_stats.disk_pages),
                table->page_size_bytes());
    std::printf("  directory memory:        %llu KiB\n",
                static_cast<unsigned long long>(
                    index_stats.directory_bytes / 1024));
    std::printf("  signature sizes:");
    for (uint32_t s = 0; s < table->cardinality(); ++s) {
      std::printf(" %zu", table->partition().ItemsOf(s).size());
    }
    std::printf("\n");
  }
  if (metrics != nullptr) {
    std::printf("metrics:\n");
    if (!WriteMetricsJson("-", *metrics)) return 1;
  }
  return 0;
}

}  // namespace mbi::cli
