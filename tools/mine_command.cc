#include <algorithm>
#include <cstdio>
#include <string>

#include "mining/apriori.h"
#include "tools/cli_command.h"
#include "txn/database_io.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace mbi::cli {
namespace {

std::string ItemsToString(const std::vector<ItemId>& items) {
  std::string out = "{";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(items[i]);
  }
  return out + "}";
}

}  // namespace

int RunMine(int argc, char** argv) {
  FlagParser flags(
      "mbi mine: frequent itemsets and association rules (Apriori).");
  std::string db_path;
  double min_support, min_confidence;
  int64_t max_size, show;
  flags.AddString("db", "data.mbid", "database file", &db_path);
  flags.AddDouble("min_support", 0.01, "minimum itemset support",
                  &min_support);
  flags.AddDouble("min_confidence", 0.5, "minimum rule confidence",
                  &min_confidence);
  flags.AddInt64("max_size", 0, "largest itemset size to mine (0 = all)",
                 &max_size);
  flags.AddInt64("show", 15, "itemsets/rules to print", &show);
  if (!flags.Parse(argc, argv)) return 0;

  auto db = LoadDatabase(db_path);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }

  Stopwatch timer;
  AprioriConfig config;
  config.min_support = min_support;
  config.max_itemset_size = static_cast<uint32_t>(max_size);
  auto itemsets = MineFrequentItemsets(*db, config);
  std::printf("%zu frequent itemsets at support >= %.4f (%.1fs)\n",
              itemsets.size(), min_support, timer.ElapsedSeconds());

  // Print the highest-support itemsets of size >= 2.
  std::vector<const FrequentItemset*> interesting;
  for (const auto& itemset : itemsets) {
    if (itemset.items.size() >= 2) interesting.push_back(&itemset);
  }
  std::sort(interesting.begin(), interesting.end(),
            [](const FrequentItemset* a, const FrequentItemset* b) {
              return a->count > b->count;
            });
  const size_t show_limit = show > 0 ? static_cast<size_t>(show) : 0;
  for (size_t i = 0; i < show_limit && i < interesting.size(); ++i) {
    std::printf("  %-28s support %.4f\n",
                ItemsToString(interesting[i]->items).c_str(),
                interesting[i]->Support(db->size()));
  }

  auto rules = GenerateAssociationRules(itemsets, db->size(), min_confidence);
  std::printf("%zu rules at confidence >= %.2f; strongest:\n", rules.size(),
              min_confidence);
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.support > b.support;
            });
  for (size_t i = 0; i < show_limit && i < rules.size(); ++i) {
    std::printf("  %s => %s (conf %.3f, supp %.4f)\n",
                ItemsToString(rules[i].antecedent).c_str(),
                ItemsToString(rules[i].consequent).c_str(),
                rules[i].confidence, rules[i].support);
  }
  return 0;
}

}  // namespace mbi::cli
