#include "core/signature_table.h"

#include <gtest/gtest.h>

#include <set>

#include "core/index_builder.h"
#include "gen/quest_generator.h"
#include "mining/support_counter.h"

namespace mbi {
namespace {

QuestGeneratorConfig GeneratorConfig() {
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 50;
  config.avg_itemset_size = 4.0;
  config.avg_transaction_size = 8.0;
  config.seed = 31;
  return config;
}

SignatureTable BuildSmallTable(const TransactionDatabase& db, uint32_t k,
                               int activation_threshold = 1) {
  SupportCounter supports(db);
  ClusteringConfig clustering;
  clustering.target_cardinality = k;
  SignaturePartition partition =
      BuildSignaturesSingleLinkage(supports, clustering);
  SignatureTableConfig config;
  config.activation_threshold = activation_threshold;
  return SignatureTable::Build(db, std::move(partition), config);
}

TEST(SignatureTableTest, EntriesPartitionTheDatabase) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(800);
  SignatureTable table = BuildSmallTable(db, 10);

  std::set<TransactionId> seen;
  uint64_t counted = 0;
  for (size_t e = 0; e < table.entries().size(); ++e) {
    IoStats io;
    auto ids = table.FetchEntryTransactions(e, &io);
    EXPECT_EQ(ids.size(), table.entries()[e].transaction_count);
    counted += ids.size();
    for (TransactionId id : ids) {
      EXPECT_TRUE(seen.insert(id).second) << "transaction in two entries";
      // Every transaction lies in the entry of its own supercoordinate.
      EXPECT_EQ(table.CoordinateOfTransaction(id),
                table.entries()[e].coordinate);
      EXPECT_EQ(ComputeSupercoordinate(db.Get(id), table.partition(),
                                       table.activation_threshold()),
                table.entries()[e].coordinate);
    }
  }
  EXPECT_EQ(counted, db.size());
  table.CheckInvariants(&db);
}

TEST(SignatureTableTest, EntriesSortedAndUnique) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(500);
  SignatureTable table = BuildSmallTable(db, 12);
  const auto& entries = table.entries();
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].coordinate, entries[i].coordinate);
  }
  for (const auto& entry : entries) {
    EXPECT_GT(entry.transaction_count, 0u);
    EXPECT_LT(entry.coordinate, uint32_t{1} << table.cardinality());
  }
}

TEST(SignatureTableTest, StatsAreConsistent) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(600);
  SignatureTable table = BuildSmallTable(db, 13);
  SignatureTable::Stats stats = table.ComputeStats();
  EXPECT_EQ(stats.cardinality, 13u);
  EXPECT_EQ(stats.directory_entries, uint64_t{1} << 13);
  EXPECT_EQ(stats.occupied_entries, table.entries().size());
  EXPECT_EQ(stats.num_transactions, 600u);
  EXPECT_GT(stats.avg_bucket_size, 0.0);
  EXPECT_GE(stats.max_bucket_size, 1u);
  EXPECT_GT(stats.disk_pages, 0u);
  EXPECT_EQ(stats.directory_bytes, (uint64_t{1} << 13) * sizeof(void*));
}

TEST(SignatureTableTest, HigherActivationThresholdCoarsensCoordinates) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(500);
  SignatureTable r1 = BuildSmallTable(db, 10, 1);
  SignatureTable r3 = BuildSmallTable(db, 10, 3);
  // At a higher threshold fewer signatures activate, so supercoordinates
  // have fewer set bits on average.
  double bits_r1 = 0.0, bits_r3 = 0.0;
  for (TransactionId id = 0; id < db.size(); ++id) {
    bits_r1 += ActivatedCount(r1.CoordinateOfTransaction(id));
    bits_r3 += ActivatedCount(r3.CoordinateOfTransaction(id));
  }
  EXPECT_LT(bits_r3, bits_r1);
}

TEST(SignatureTableTest, EmptyTransactionGetsZeroCoordinate) {
  TransactionDatabase db(8);
  db.Add(Transaction{});
  db.Add(Transaction({0, 1}));
  SignaturePartition partition(2, {0, 0, 0, 0, 1, 1, 1, 1});
  SignatureTable table = SignatureTable::Build(db, partition, {});
  EXPECT_EQ(table.CoordinateOfTransaction(0), 0u);
  EXPECT_EQ(table.CoordinateOfTransaction(1), 0b01u);
}

TEST(SignatureTableTest, BuildIndexFacadeProducesWorkingTable) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(400);
  IndexBuildConfig config;
  config.clustering.target_cardinality = 9;
  SignatureTable table = BuildIndex(db, config);
  EXPECT_EQ(table.cardinality(), 9u);
  EXPECT_GT(table.entries().size(), 1u);

  IndexBuildConfig balanced = config;
  balanced.use_balanced_partitioner = true;
  SignatureTable control = BuildIndex(db, balanced);
  EXPECT_EQ(control.cardinality(), 9u);
}

TEST(SignatureTableTest, CorrelatedPartitionActivatesFewSignatures) {
  // Paper §3: "if the items in each signature are closely correlated, then a
  // transaction is likely to activate a small number of signatures."
  QuestGeneratorConfig gc = GeneratorConfig();
  gc.universe_size = 600;
  gc.num_large_itemsets = 60;
  QuestGenerator generator(gc);
  TransactionDatabase db = generator.GenerateDatabase(3000);

  IndexBuildConfig linked;
  linked.clustering.target_cardinality = 12;
  SignatureTable correlated = BuildIndex(db, linked);

  IndexBuildConfig blind = linked;
  blind.use_balanced_partitioner = true;
  SignatureTable control = BuildIndex(db, blind);

  double activated_correlated = 0.0, activated_control = 0.0;
  for (TransactionId id = 0; id < db.size(); ++id) {
    activated_correlated +=
        ActivatedCount(correlated.CoordinateOfTransaction(id));
    activated_control += ActivatedCount(control.CoordinateOfTransaction(id));
  }
  EXPECT_LT(activated_correlated, activated_control);
}

}  // namespace
}  // namespace mbi
