#include <gtest/gtest.h>

#include <set>

#include "gen/quest_generator.h"
#include "mining/support_counter.h"

namespace mbi {
namespace {

/// Edge cases of the synthetic generator: extreme parameter settings must
/// still yield valid, non-degenerate data.

TEST(GeneratorEdgeTest, SingleLargeItemset) {
  QuestGeneratorConfig config;
  config.universe_size = 50;
  config.num_large_itemsets = 1;
  config.avg_itemset_size = 4.0;
  config.avg_transaction_size = 6.0;
  config.seed = 1301;
  QuestGenerator generator(config);
  // Every transaction is a noisy variation of the one itemset (plus spill
  // mechanics); all generated items come from that itemset.
  const auto& itemset = generator.large_itemsets()[0];
  for (int i = 0; i < 200; ++i) {
    Transaction t = generator.NextTransaction();
    EXPECT_FALSE(t.empty());
    for (ItemId item : t.items()) {
      EXPECT_TRUE(itemset.Contains(item));
    }
  }
}

TEST(GeneratorEdgeTest, CorrelationFractionOneChainsItemsetsMaximally) {
  QuestGeneratorConfig config;
  config.universe_size = 2000;
  config.num_large_itemsets = 100;
  config.avg_itemset_size = 6.0;
  config.correlation_fraction = 1.0;
  config.seed = 1303;
  QuestGenerator generator(config);
  const auto& itemsets = generator.large_itemsets();
  // With full inheritance, each itemset draws as much as possible from its
  // predecessor: overlap is at least min(|prev|, round(1.0 * |cur|)) items
  // whenever the previous itemset is large enough.
  int strong_overlaps = 0;
  for (size_t i = 1; i < itemsets.size(); ++i) {
    size_t overlap = MatchCount(itemsets[i - 1], itemsets[i]);
    if (overlap * 2 >= itemsets[i].size()) ++strong_overlaps;
  }
  EXPECT_GT(strong_overlaps, static_cast<int>(itemsets.size()) * 2 / 3);
}

TEST(GeneratorEdgeTest, CorrelationFractionZeroStillCoversUniverse) {
  QuestGeneratorConfig config;
  config.universe_size = 100;
  config.num_large_itemsets = 200;
  config.correlation_fraction = 0.0;
  config.seed = 1307;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(3000);
  CorpusStats stats = ComputeCorpusStats(db);
  EXPECT_GT(stats.distinct_items, 80u);
}

TEST(GeneratorEdgeTest, ItemsetLargerThanUniverseIsClamped) {
  QuestGeneratorConfig config;
  config.universe_size = 5;
  config.num_large_itemsets = 10;
  config.avg_itemset_size = 50.0;  // Poisson mean far above |U|.
  config.avg_transaction_size = 3.0;
  config.seed = 1309;
  QuestGenerator generator(config);
  for (const auto& itemset : generator.large_itemsets()) {
    EXPECT_LE(itemset.size(), 5u);
    EXPECT_GE(itemset.size(), 1u);
  }
  Transaction t = generator.NextTransaction();
  EXPECT_LE(t.size(), 5u);
}

TEST(GeneratorEdgeTest, SpillProbabilityZeroCarriesOver) {
  // With spill probability 0 an oversized instance is always deferred
  // (unless the basket is empty), so transactions hug the target size from
  // below more tightly than with spill 1.
  QuestGeneratorConfig base;
  base.universe_size = 500;
  base.num_large_itemsets = 100;
  base.avg_itemset_size = 8.0;
  base.avg_transaction_size = 6.0;
  base.seed = 1313;

  QuestGeneratorConfig never_spill = base;
  never_spill.spill_probability = 0.0;
  QuestGeneratorConfig always_spill = base;
  always_spill.spill_probability = 1.0;

  QuestGenerator never(never_spill);
  QuestGenerator always(always_spill);
  double never_avg = never.GenerateDatabase(3000).AverageTransactionSize();
  double always_avg = always.GenerateDatabase(3000).AverageTransactionSize();
  EXPECT_LT(never_avg, always_avg);
}

TEST(GeneratorEdgeTest, HighNoiseShrinksTransactions) {
  QuestGeneratorConfig low_noise;
  low_noise.universe_size = 500;
  low_noise.num_large_itemsets = 100;
  low_noise.avg_transaction_size = 10.0;
  low_noise.noise_mean = 0.9;  // Geometric with high p -> few drops.
  low_noise.noise_variance = 0.001;
  low_noise.seed = 1319;

  QuestGeneratorConfig high_noise = low_noise;
  high_noise.noise_mean = 0.1;  // Many drops per itemset instance.

  QuestGenerator low(low_noise);
  QuestGenerator high(high_noise);
  // Both hit the target size eventually (the loop keeps adding instances),
  // but high noise needs more instances, so the per-item correlation is
  // diluted: measure via the strongest pair support.
  TransactionDatabase low_db = low.GenerateDatabase(3000);
  TransactionDatabase high_db = high.GenerateDatabase(3000);
  SupportCounter low_supports(low_db);
  SupportCounter high_supports(high_db);
  auto strongest = [](const SupportCounter& supports) {
    uint64_t best = 0;
    for (const auto& entry : supports.PairsWithMinCount(1)) {
      best = std::max(best, entry.count);
    }
    return best;
  };
  EXPECT_GT(strongest(low_supports), strongest(high_supports));
}

TEST(GeneratorEdgeTest, DatabaseAndQueriesShareOneDeterministicStream) {
  QuestGeneratorConfig config;
  config.universe_size = 100;
  config.num_large_itemsets = 30;
  config.seed = 1321;
  QuestGenerator a(config);
  QuestGenerator b(config);
  TransactionDatabase db_a = a.GenerateDatabase(100);
  TransactionDatabase db_b = b.GenerateDatabase(100);
  for (TransactionId id = 0; id < 100; ++id) {
    ASSERT_EQ(db_a.Get(id), db_b.Get(id));
  }
  // The query stream continues identically after the database.
  auto queries_a = a.GenerateQueries(20);
  auto queries_b = b.GenerateQueries(20);
  EXPECT_EQ(queries_a, queries_b);
}

}  // namespace
}  // namespace mbi
