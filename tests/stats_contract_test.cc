// The QueryStats unit + aggregation contract (DESIGN.md §13.4):
//
//  * entries_* are counted in the path's scan unit — occupied table entries
//    on the indexed path, candidate rows on the scan paths — and
//    scanned + pruned + unexplored == total on every path. On the scan
//    paths, where one "entry" is one row, entries_scanned equals
//    transactions_evaluated, so QueryBudget::max_entries bites at the same
//    magnitude everywhere (the chunk-unit regression let scans overshoot
//    the budget 256x).
//  * combined stats (batches, multi-component queries) aggregate through
//    MergeQueryStats: certificate_bound as max, is_exact as AND,
//    termination as most-severe, counters as sums.

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "baseline/inverted_index.h"
#include "baseline/sequential_scan.h"
#include "core/batch_query.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "core/query_stats.h"
#include "gen/quest_generator.h"

namespace mbi {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TransactionDatabase MakeDatabase(size_t rows, uint64_t seed = 4242) {
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 40;
  config.seed = seed;
  QuestGenerator generator(config);
  return generator.GenerateDatabase(rows);
}

Transaction QueryTarget(uint64_t seed = 77) {
  QuestGeneratorConfig config;
  config.universe_size = 200;
  config.num_large_itemsets = 40;
  config.seed = seed;
  QuestGenerator generator(config);
  return generator.GenerateQueries(1)[0];
}

// --- The entries_scanned unit regression --------------------------------

TEST(StatsUnitTest, ScannerChargesRowsNotChunksAgainstMaxEntries) {
  // 3000 rows = 12 chunks. Under the old chunk-unit bug a budget of 600
  // "entries" meant 600 *chunks*, which the 12-chunk scan never reached —
  // the query ran to completion, 256x looser than asked. In row units the
  // scan must stop within one chunk of 600 rows.
  TransactionDatabase db = MakeDatabase(3000);
  SequentialScanner scanner(&db);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();

  QueryBudget budget;
  budget.max_entries = 600;
  NearestNeighborResult result;
  scanner.FindKNearest(target, family, 5, budget, &result);
  EXPECT_EQ(result.stats.termination, QueryTermination::kEntryBudget)
      << "chunk-unit budget enforcement regressed: the scan completed";
  EXPECT_GE(result.stats.entries_scanned, 600u);
  EXPECT_LT(result.stats.entries_scanned, 600u + SequentialScanner::kScanChunk);
}

TEST(StatsUnitTest, ScanAndEnginePathsAgreeOnTheUnit) {
  TransactionDatabase db = MakeDatabase(2000);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 8;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  SequentialScanner scanner(&db);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();

  // Scan path: one entry == one row, so entries mirror evaluations and the
  // total is the database itself.
  NearestNeighborResult scan;
  scanner.FindKNearest(target, family, 5, QueryBudget{}, &scan);
  EXPECT_EQ(scan.stats.entries_total, db.size());
  EXPECT_EQ(scan.stats.entries_scanned, scan.stats.transactions_evaluated);
  EXPECT_EQ(scan.stats.entries_scanned + scan.stats.entries_pruned +
                scan.stats.entries_unexplored,
            scan.stats.entries_total);

  // Indexed path: entries are occupied directory entries, and the same
  // conservation law holds.
  NearestNeighborResult indexed = engine.FindKNearest(target, family, 5);
  EXPECT_EQ(indexed.stats.entries_total, table.entries().size());
  EXPECT_EQ(indexed.stats.entries_scanned + indexed.stats.entries_pruned +
                indexed.stats.entries_unexplored,
            indexed.stats.entries_total);

  // The shared consequence — what makes max_entries comparable across
  // paths: neither path's "entry" hides a 256-row multiplier. An entry
  // admits at most the transactions it actually indexes, so scanned
  // entries never exceed evaluations by orders of magnitude; on the scan
  // path they are equal, on the indexed path scanned <= evaluated.
  EXPECT_LE(indexed.stats.entries_scanned,
            indexed.stats.transactions_evaluated);
}

TEST(StatsUnitTest, InvertedIndexCountsCandidateRows) {
  TransactionDatabase db = MakeDatabase(2000);
  InvertedIndex index(&db);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();

  InvertedIndex::Result full = index.FindKNearest(target, family, 5);
  EXPECT_EQ(full.stats.entries_total, full.candidates);
  EXPECT_EQ(full.stats.entries_scanned, full.stats.transactions_evaluated);
  EXPECT_EQ(full.stats.entries_scanned + full.stats.entries_unexplored,
            full.stats.entries_total);
}

// --- MergeQueryStats / AggregateBatchStats ------------------------------

QueryStats ExactStats() {
  QueryStats stats;
  stats.database_size = 1000;
  stats.entries_total = 40;
  stats.entries_scanned = 25;
  stats.entries_pruned = 15;
  stats.transactions_evaluated = 600;
  stats.io.pages_read = 7;
  stats.io.bytes_read = 7 * 4096;
  return stats;  // is_exact = true, certificate = -inf, kCompleted
}

QueryStats DegradedStats(QueryTermination termination, double certificate) {
  QueryStats stats;
  stats.database_size = 1000;
  stats.entries_total = 40;
  stats.entries_scanned = 10;
  stats.entries_unexplored = 30;
  stats.transactions_evaluated = 240;
  stats.io.pages_read = 3;
  stats.termination = termination;
  stats.is_exact = false;
  stats.certificate_bound = certificate;
  return stats;
}

TEST(MergeQueryStatsTest, CertificateIsMaxNotLastWriterOrSum) {
  QueryStats agg;
  MergeQueryStats(DegradedStats(QueryTermination::kEntryBudget, 0.8), &agg);
  MergeQueryStats(DegradedStats(QueryTermination::kDeadline, 0.3), &agg);
  // Last-writer would report 0.3 (unsound: the 0.8 component's unexplored
  // region could hold a 0.7 neighbor); sum would report 1.1 (useless).
  EXPECT_DOUBLE_EQ(agg.certificate_bound, 0.8);
  EXPECT_FALSE(agg.is_exact);
  EXPECT_EQ(agg.termination, QueryTermination::kDeadline);  // most severe
}

TEST(MergeQueryStatsTest, OneDegradedComponentDegradesTheWhole) {
  QueryStats agg;
  MergeQueryStats(ExactStats(), &agg);
  EXPECT_TRUE(agg.is_exact);
  EXPECT_EQ(agg.termination, QueryTermination::kCompleted);
  MergeQueryStats(DegradedStats(QueryTermination::kAccessFraction, 0.5), &agg);
  EXPECT_FALSE(agg.is_exact);
  EXPECT_EQ(agg.termination, QueryTermination::kAccessFraction);
  // Exactness never comes back once lost.
  MergeQueryStats(ExactStats(), &agg);
  EXPECT_FALSE(agg.is_exact);
  EXPECT_DOUBLE_EQ(agg.certificate_bound, 0.5);
}

TEST(MergeQueryStatsTest, CountersAndIoSum) {
  QueryStats agg;
  MergeQueryStats(ExactStats(), &agg);
  MergeQueryStats(DegradedStats(QueryTermination::kEntryBudget, 0.2), &agg);
  EXPECT_EQ(agg.database_size, 2000u);  // components partition the data
  EXPECT_EQ(agg.entries_total, 80u);
  EXPECT_EQ(agg.entries_scanned, 35u);
  EXPECT_EQ(agg.entries_pruned, 15u);
  EXPECT_EQ(agg.entries_unexplored, 30u);
  EXPECT_EQ(agg.transactions_evaluated, 840u);
  EXPECT_EQ(agg.io.pages_read, 10u);
  EXPECT_EQ(agg.entries_scanned + agg.entries_pruned + agg.entries_unexplored,
            agg.entries_total);
}

TEST(MergeQueryStatsTest, TerminationSeverityOrderIsTotal) {
  const QueryTermination order[] = {
      QueryTermination::kCompleted, QueryTermination::kAccessFraction,
      QueryTermination::kEntryBudget, QueryTermination::kDeadline,
      QueryTermination::kCancelled};
  for (size_t a = 0; a < 5; ++a) {
    for (size_t b = 0; b < 5; ++b) {
      EXPECT_EQ(MergeTermination(order[a], order[b]),
                order[a > b ? a : b]);
    }
  }
}

TEST(AggregateBatchStatsTest, MixedExactAndDegradedBatch) {
  // Real results through the public batch path: same database, one query
  // unbudgeted (exact), one entry-budgeted (degraded). The aggregate must
  // carry the degraded certificate, AND-ed exactness, and a database_size
  // that is NOT multiplied by the batch size.
  TransactionDatabase db = MakeDatabase(2000);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 8;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;
  const Transaction target = QueryTarget();

  std::vector<NearestNeighborResult> results;
  results.push_back(engine.FindKNearest(target, family, 5));
  ASSERT_TRUE(results[0].stats.is_exact);

  SearchOptions limited;
  limited.budget.max_entries = 1;
  results.push_back(engine.FindKNearest(target, family, 5, limited));
  ASSERT_FALSE(results[1].stats.is_exact);
  ASSERT_GT(results[1].stats.certificate_bound, -kInf);

  const QueryStats agg = AggregateBatchStats(results);
  EXPECT_FALSE(agg.is_exact);
  EXPECT_EQ(agg.termination, QueryTermination::kEntryBudget);
  EXPECT_DOUBLE_EQ(agg.certificate_bound,
                   results[1].stats.certificate_bound);
  EXPECT_EQ(agg.database_size, db.size());  // max, not sum: same database
  EXPECT_EQ(agg.entries_scanned,
            results[0].stats.entries_scanned + results[1].stats.entries_scanned);

  // Empty batch: a clean identity (exact, no work, -inf certificate).
  const QueryStats none = AggregateBatchStats({});
  EXPECT_TRUE(none.is_exact);
  EXPECT_EQ(none.termination, QueryTermination::kCompleted);
  EXPECT_EQ(none.certificate_bound, -kInf);
}

}  // namespace
}  // namespace mbi
