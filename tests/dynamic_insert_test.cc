#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baseline/sequential_scan.h"
#include "core/branch_and_bound.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"

namespace mbi {
namespace {

QuestGeneratorConfig GeneratorConfig(uint64_t seed = 301) {
  QuestGeneratorConfig config;
  config.universe_size = 250;
  config.num_large_itemsets = 60;
  config.avg_itemset_size = 5.0;
  config.avg_transaction_size = 9.0;
  config.seed = seed;
  return config;
}

bool SameSimilarities(const std::vector<Neighbor>& a,
                      const std::vector<Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    bool both_inf = std::isinf(a[i].similarity) && std::isinf(b[i].similarity);
    if (!both_inf && a[i].similarity != b[i].similarity) return false;
  }
  return true;
}

TEST(DynamicInsertTest, InsertedTransactionsLandInTheirCoordinateEntry) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(400);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 8;
  SignatureTable table = BuildIndex(db, build);

  for (int i = 0; i < 200; ++i) {
    Transaction fresh = generator.NextTransaction();
    TransactionId id = db.Add(fresh);
    table.InsertTransaction(id, fresh);
    EXPECT_EQ(table.CoordinateOfTransaction(id),
              ComputeSupercoordinate(fresh, table.partition(),
                                     table.activation_threshold()));
  }
  EXPECT_EQ(table.num_indexed_transactions(), 600u);

  // The table must still partition the database exactly.
  std::set<TransactionId> seen;
  uint64_t total = 0;
  for (size_t e = 0; e < table.entries().size(); ++e) {
    IoStats io;
    auto ids = table.FetchEntryTransactions(e, &io);
    EXPECT_EQ(ids.size(), table.entries()[e].transaction_count);
    total += ids.size();
    for (TransactionId id : ids) {
      EXPECT_TRUE(seen.insert(id).second);
      EXPECT_EQ(table.CoordinateOfTransaction(id),
                table.entries()[e].coordinate);
    }
  }
  EXPECT_EQ(total, db.size());
}

TEST(DynamicInsertTest, EntriesStaySortedAndBucketsStayExclusive) {
  QuestGenerator generator(GeneratorConfig(311));
  TransactionDatabase db = generator.GenerateDatabase(300);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 10;
  SignatureTable table = BuildIndex(db, build);

  for (int i = 0; i < 300; ++i) {
    Transaction fresh = generator.NextTransaction();
    table.InsertTransaction(db.Add(fresh), fresh);
  }

  const auto& entries = table.entries();
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].coordinate, entries[i].coordinate);
  }
  std::set<PageId> pages_seen;
  for (size_t e = 0; e < entries.size(); ++e) {
    for (PageId page : table.PagesOfEntry(e)) {
      EXPECT_TRUE(pages_seen.insert(page).second)
          << "page shared between entries after inserts";
    }
  }
  table.CheckInvariants(&db);
}

TEST(DynamicInsertTest, QueriesStayExactAfterInserts) {
  QuestGenerator generator(GeneratorConfig(313));
  TransactionDatabase db = generator.GenerateDatabase(500);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 9;
  SignatureTable table = BuildIndex(db, build);

  for (int i = 0; i < 500; ++i) {
    Transaction fresh = generator.NextTransaction();
    table.InsertTransaction(db.Add(fresh), fresh);
  }

  BranchAndBoundEngine engine(&db, &table);
  SequentialScanner scanner(&db);
  for (const char* name : {"hamming", "match_ratio", "cosine"}) {
    auto family = MakeSimilarityFamily(name);
    for (int q = 0; q < 6; ++q) {
      Transaction target = generator.NextTransaction();
      auto result = engine.FindKNearest(target, *family, 5);
      auto oracle = scanner.FindKNearest(target, *family, 5);
      EXPECT_TRUE(result.guaranteed_exact);
      EXPECT_TRUE(SameSimilarities(result.neighbors, oracle)) << name;
    }
  }
}

TEST(DynamicInsertTest, InsertIntoEmptyBuiltTable) {
  TransactionDatabase db(16);
  // Build over a single-transaction database, then grow it.
  db.Add(Transaction({0, 1}));
  SignaturePartition partition(4, {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3,
                                   3, 3});
  SignatureTable table = SignatureTable::Build(db, partition, {});
  EXPECT_EQ(table.entries().size(), 1u);

  Transaction fresh({8, 12});  // Activates S2 and S3: a brand-new coordinate.
  table.InsertTransaction(db.Add(fresh), fresh);
  EXPECT_EQ(table.entries().size(), 2u);
  IoStats io;
  // The new entry is sorted after the old one (0b0011 < 0b1100).
  EXPECT_EQ(table.entries()[1].coordinate, 0b1100u);
  auto ids = table.FetchEntryTransactions(1, &io);
  EXPECT_EQ(ids, (std::vector<TransactionId>{1}));
}

TEST(DynamicInsertTest, RejectsOutOfOrderIds) {
  TransactionDatabase db(8);
  db.Add(Transaction({0}));
  SignaturePartition partition(2, {0, 0, 0, 0, 1, 1, 1, 1});
  SignatureTable table = SignatureTable::Build(db, partition, {});
  EXPECT_DEATH(table.InsertTransaction(5, Transaction({1})), "id order");
}

TEST(DynamicInsertTest, ManyInsertsReusePagesWithinBucket) {
  // Transactions with identical coordinates must pack onto shared pages, not
  // one page each.
  TransactionDatabase db(8);
  db.Add(Transaction({0}));
  SignaturePartition partition(2, {0, 0, 0, 0, 1, 1, 1, 1});
  SignatureTableConfig config;
  config.page_size_bytes = 4096;
  SignatureTable table = SignatureTable::Build(db, partition, config);
  for (int i = 0; i < 100; ++i) {
    Transaction t({static_cast<ItemId>(i % 4)});  // All map to coordinate 01.
    table.InsertTransaction(db.Add(t), t);
  }
  ASSERT_EQ(table.entries().size(), 1u);
  EXPECT_LE(table.PagesOfEntry(0).size(), 2u);
}

// --- Gap-bounded approximate search (paper §4.2, second mode) ---

TEST(OptimalityGapTest, GapZeroIsExactAndGapBoundsHold) {
  QuestGenerator generator(GeneratorConfig(317));
  TransactionDatabase db = generator.GenerateDatabase(2000);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 10;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  SequentialScanner scanner(&db);
  MatchRatioFamily family;

  for (int q = 0; q < 8; ++q) {
    Transaction target = generator.NextTransaction();
    auto oracle = scanner.FindKNearest(target, family, 1);
    for (double gap : {0.0, 0.1, 0.5}) {
      SearchOptions options;
      options.optimality_gap = gap;
      auto result = engine.FindNearest(target, family, options);
      double found = result.neighbors[0].similarity;
      double truth = oracle[0].similarity;
      if (std::isinf(truth)) {
        // Identical transaction exists; inf bounds prune only at inf.
        EXPECT_TRUE(std::isinf(found));
        continue;
      }
      EXPECT_GE(found + gap, truth) << "gap " << gap << " violated";
      if (gap == 0.0) {
        EXPECT_EQ(found, truth);
        EXPECT_TRUE(result.guaranteed_exact);
      }
      // The uniform quality bound must always hold.
      EXPECT_GE(std::max(found, result.best_unscanned_bound), truth);
    }
  }
}

TEST(OptimalityGapTest, LargerGapPrunesMore) {
  QuestGenerator generator(GeneratorConfig(331));
  TransactionDatabase db = generator.GenerateDatabase(3000);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 10;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;

  uint64_t evaluated_exact = 0, evaluated_gap = 0;
  for (int q = 0; q < 10; ++q) {
    Transaction target = generator.NextTransaction();
    evaluated_exact +=
        engine.FindNearest(target, family).stats.transactions_evaluated;
    SearchOptions options;
    options.optimality_gap = 0.5;
    auto result = engine.FindNearest(target, family, options);
    evaluated_gap += result.stats.transactions_evaluated;
  }
  EXPECT_LT(evaluated_gap, evaluated_exact);
}

TEST(OptimalityGapTest, RejectsNegativeGap) {
  QuestGenerator generator(GeneratorConfig(337));
  TransactionDatabase db = generator.GenerateDatabase(50);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 4;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;
  SearchOptions options;
  options.optimality_gap = -0.1;
  EXPECT_DEATH(engine.FindNearest(generator.NextTransaction(), family,
                                  options),
               "non-negative");
}

}  // namespace
}  // namespace mbi
