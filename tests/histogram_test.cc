#include "util/histogram.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace mbi {
namespace {

TEST(HistogramTest, BasicStatistics) {
  Histogram histogram;
  for (double value : {4.0, 1.0, 3.0, 2.0, 5.0}) histogram.Add(value);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 5.0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 5.0);
  EXPECT_NEAR(histogram.StdDev(), std::sqrt(2.0), 1e-12);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram histogram;
  histogram.Add(0.0);
  histogram.Add(10.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 5.0);
}

TEST(HistogramTest, SingleSample) {
  Histogram histogram;
  histogram.Add(7.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(histogram.StdDev(), 0.0);
}

TEST(HistogramTest, AddAfterQuantileInvalidatesCache) {
  Histogram histogram;
  histogram.Add(1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 1.0);
  histogram.Add(9.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 9.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 5.0);
}

TEST(HistogramTest, EmptyHistogramAborts) {
  Histogram histogram;
  EXPECT_EQ(histogram.Summary("ms"), "count=0");
  EXPECT_DEATH(histogram.Mean(), "");
  EXPECT_DEATH(histogram.Quantile(0.5), "");
}

TEST(HistogramTest, QuantilesOfUniformSamplesAreLinear) {
  Rng rng(77);
  Histogram histogram;
  for (int i = 0; i < 100'000; ++i) histogram.Add(rng.UniformDouble());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(histogram.Quantile(q), q, 0.01) << "q=" << q;
  }
}

/// Regression for the mutable sort-cache race: Quantile()/Summary() on a
/// const Histogram rebuild `sorted_` lazily, and two concurrent const readers
/// used to sort it in place at the same time (a data race TSan flagged).
/// Every accessor now locks, so readers may interleave freely with a writer.
/// The TSan CI job is what makes this test bite.
TEST(HistogramTest, ConcurrentReadersAndWriterAreSafe) {
  Histogram histogram;
  for (int i = 1; i <= 64; ++i) histogram.Add(static_cast<double>(i));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 2'000; ++i) histogram.Add(static_cast<double>(i % 64));
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // Each call may rebuild the shared sort cache.
        const double median = histogram.Quantile(0.5);
        EXPECT_GE(median, 0.0);
        EXPECT_LE(median, 64.0);
        EXPECT_GE(histogram.Max(), histogram.Min());
        EXPECT_GE(histogram.Mean(), 0.0);
        EXPECT_NE(histogram.Summary("us").find("count="), std::string::npos);
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(histogram.count(), 64u + 2'000u);
}

TEST(HistogramTest, CopyIsIndependentOfSource) {
  Histogram source;
  source.Add(1.0);
  source.Add(3.0);
  Histogram copy(source);
  source.Add(100.0);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.Max(), 3.0);
  Histogram assigned;
  assigned = copy;
  EXPECT_DOUBLE_EQ(assigned.Mean(), 2.0);
}

TEST(HistogramTest, SummaryMentionsAllFields) {
  Histogram histogram;
  histogram.Add(1.5);
  std::string summary = histogram.Summary("ms");
  EXPECT_NE(summary.find("count=1"), std::string::npos);
  EXPECT_NE(summary.find("p50="), std::string::npos);
  EXPECT_NE(summary.find("p95="), std::string::npos);
  EXPECT_NE(summary.find("p99="), std::string::npos);
  EXPECT_NE(summary.find("ms"), std::string::npos);
}

}  // namespace
}  // namespace mbi
