#include "util/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace mbi {
namespace {

TEST(HistogramTest, BasicStatistics) {
  Histogram histogram;
  for (double value : {4.0, 1.0, 3.0, 2.0, 5.0}) histogram.Add(value);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 5.0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 5.0);
  EXPECT_NEAR(histogram.StdDev(), std::sqrt(2.0), 1e-12);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram histogram;
  histogram.Add(0.0);
  histogram.Add(10.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 5.0);
}

TEST(HistogramTest, SingleSample) {
  Histogram histogram;
  histogram.Add(7.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(histogram.StdDev(), 0.0);
}

TEST(HistogramTest, AddAfterQuantileInvalidatesCache) {
  Histogram histogram;
  histogram.Add(1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 1.0);
  histogram.Add(9.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 9.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 5.0);
}

TEST(HistogramTest, EmptyHistogramAborts) {
  Histogram histogram;
  EXPECT_EQ(histogram.Summary("ms"), "count=0");
  EXPECT_DEATH(histogram.Mean(), "");
  EXPECT_DEATH(histogram.Quantile(0.5), "");
}

TEST(HistogramTest, QuantilesOfUniformSamplesAreLinear) {
  Rng rng(77);
  Histogram histogram;
  for (int i = 0; i < 100'000; ++i) histogram.Add(rng.UniformDouble());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(histogram.Quantile(q), q, 0.01) << "q=" << q;
  }
}

TEST(HistogramTest, SummaryMentionsAllFields) {
  Histogram histogram;
  histogram.Add(1.5);
  std::string summary = histogram.Summary("ms");
  EXPECT_NE(summary.find("count=1"), std::string::npos);
  EXPECT_NE(summary.find("p50="), std::string::npos);
  EXPECT_NE(summary.find("p95="), std::string::npos);
  EXPECT_NE(summary.find("p99="), std::string::npos);
  EXPECT_NE(summary.find("ms"), std::string::npos);
}

}  // namespace
}  // namespace mbi
