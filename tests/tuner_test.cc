#include "core/tuner.h"

#include <gtest/gtest.h>

#include "core/branch_and_bound.h"
#include "gen/quest_generator.h"

namespace mbi {
namespace {

QuestGeneratorConfig GeneratorConfig(uint64_t seed = 1001) {
  QuestGeneratorConfig config;
  config.universe_size = 400;
  config.num_large_itemsets = 100;
  config.avg_transaction_size = 9.0;
  config.seed = seed;
  return config;
}

TEST(TunerTest, RecommendationRespectsMemoryBudget) {
  QuestGenerator generator(GeneratorConfig());
  TransactionDatabase db = generator.GenerateDatabase(4000);
  auto queries = generator.GenerateQueries(10);
  InverseHammingFamily family;

  TunerConfig config;
  config.directory_memory_budget_bytes = 64 * 1024;  // K <= 13 at 8B slots.
  config.min_cardinality = 8;
  config.sample_size = 2000;
  TuningResult result = TuneIndex(db, queries, family, config);

  uint32_t k = result.recommended.clustering.target_cardinality;
  EXPECT_GE(k, 8u);
  EXPECT_LE((uint64_t{1} << k) * sizeof(void*),
            config.directory_memory_budget_bytes);
  EXPECT_FALSE(result.trials.empty());
  for (const TuningTrial& trial : result.trials) {
    EXPECT_LE(trial.directory_bytes, config.directory_memory_budget_bytes);
    EXPECT_GE(trial.pruning_efficiency, 0.0);
    EXPECT_LE(trial.pruning_efficiency, 100.0);
  }
}

TEST(TunerTest, RecommendedConfigBuildsAWorkingIndex) {
  QuestGenerator generator(GeneratorConfig(1009));
  TransactionDatabase db = generator.GenerateDatabase(3000);
  auto queries = generator.GenerateQueries(8);
  MatchRatioFamily family;

  TunerConfig config;
  config.directory_memory_budget_bytes = 256 * 1024;
  config.sample_size = 1500;
  TuningResult result = TuneIndex(db, queries, family, config);

  SignatureTable table = BuildIndex(db, result.recommended);
  BranchAndBoundEngine engine(&db, &table);
  auto answer = engine.FindNearest(queries[0], family);
  EXPECT_TRUE(answer.guaranteed_exact);
  EXPECT_GT(answer.stats.PruningEfficiencyPercent(), 50.0);
}

TEST(TunerTest, LargerBudgetNeverRecommendsWorsePruning) {
  QuestGenerator generator(GeneratorConfig(1013));
  TransactionDatabase db = generator.GenerateDatabase(4000);
  auto queries = generator.GenerateQueries(10);
  InverseHammingFamily family;

  auto best_pruning = [&](uint64_t budget) {
    TunerConfig config;
    config.directory_memory_budget_bytes = budget;
    config.sample_size = 2000;
    TuningResult result = TuneIndex(db, queries, family, config);
    double best = 0.0;
    for (const TuningTrial& trial : result.trials) {
      best = std::max(best, trial.pruning_efficiency);
    }
    return best;
  };
  // The larger budget's sweep is a superset, so its best can only be >=.
  EXPECT_GE(best_pruning(1 << 20) + 1e-9, best_pruning(16 * 1024));
}

TEST(TunerTest, ToStringListsTrialsAndRecommendation) {
  QuestGenerator generator(GeneratorConfig(1019));
  TransactionDatabase db = generator.GenerateDatabase(1000);
  auto queries = generator.GenerateQueries(5);
  CosineFamily family;
  TunerConfig config;
  config.directory_memory_budget_bytes = 32 * 1024;
  config.sample_size = 800;
  TuningResult result = TuneIndex(db, queries, family, config);
  std::string text = result.ToString();
  EXPECT_NE(text.find("trials:"), std::string::npos);
  EXPECT_NE(text.find("recommended: K="), std::string::npos);
}

TEST(TunerTest, RejectsImpossibleBudget) {
  QuestGenerator generator(GeneratorConfig(1021));
  TransactionDatabase db = generator.GenerateDatabase(200);
  auto queries = generator.GenerateQueries(3);
  MatchRatioFamily family;
  TunerConfig config;
  config.directory_memory_budget_bytes = 128;  // Not even K=8.
  EXPECT_DEATH(TuneIndex(db, queries, family, config), "budget");
}

}  // namespace
}  // namespace mbi
