#include "core/branch_and_bound.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baseline/sequential_scan.h"
#include "core/index_builder.h"
#include "gen/quest_generator.h"

namespace mbi {
namespace {

struct Fixture {
  TransactionDatabase db;
  SignatureTable table;
  std::vector<Transaction> queries;
};

Fixture MakeFixture(uint64_t seed, uint32_t cardinality,
                    int activation_threshold = 1, uint64_t db_size = 1200,
                    uint64_t num_queries = 12) {
  QuestGeneratorConfig config;
  config.universe_size = 300;
  config.num_large_itemsets = 70;
  config.avg_itemset_size = 5.0;
  config.avg_transaction_size = 9.0;
  config.seed = seed;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(db_size);
  IndexBuildConfig build;
  build.clustering.target_cardinality = cardinality;
  build.table.activation_threshold = activation_threshold;
  SignatureTable table = BuildIndex(db, build);
  auto queries = generator.GenerateQueries(num_queries);
  return {std::move(db), std::move(table), std::move(queries)};
}

bool SameSimilarities(const std::vector<Neighbor>& a,
                      const std::vector<Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    bool both_inf = std::isinf(a[i].similarity) && std::isinf(b[i].similarity);
    if (!both_inf && a[i].similarity != b[i].similarity) return false;
  }
  return true;
}

// --- Exactness against the sequential-scan oracle, swept over similarity
// family, k, activation threshold, and entry sort order. ---

class ExactnessTest
    : public ::testing::TestWithParam<
          std::tuple<const char*, size_t, int, EntrySortOrder>> {};

TEST_P(ExactnessTest, MatchesSequentialScan) {
  auto [family_name, k, activation_threshold, sort_order] = GetParam();
  Fixture fixture = MakeFixture(101, 9, activation_threshold);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  SequentialScanner scanner(&fixture.db);
  auto family = MakeSimilarityFamily(family_name);

  SearchOptions options;
  options.sort_order = sort_order;

  for (const Transaction& target : fixture.queries) {
    NearestNeighborResult result =
        engine.FindKNearest(target, *family, k, options);
    auto oracle = scanner.FindKNearest(target, *family, k);
    EXPECT_TRUE(result.guaranteed_exact);
    ASSERT_EQ(result.neighbors.size(), std::min<size_t>(k, fixture.db.size()));
    EXPECT_TRUE(SameSimilarities(result.neighbors, oracle))
        << family_name << " k=" << k << " r=" << activation_threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactnessTest,
    ::testing::Combine(
        ::testing::Values("hamming", "match_ratio", "cosine"),
        ::testing::Values(size_t{1}, size_t{5}),
        ::testing::Values(1, 2),
        ::testing::Values(EntrySortOrder::kOptimisticBound,
                          EntrySortOrder::kSupercoordinateSimilarity)));

// --- Result structure and statistics ---

TEST(BranchAndBoundTest, NeighborsSortedBestFirstWithIdTieBreak) {
  Fixture fixture = MakeFixture(7, 8);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  InverseHammingFamily family;
  auto result = engine.FindKNearest(fixture.queries[0], family, 10);
  for (size_t i = 1; i < result.neighbors.size(); ++i) {
    const Neighbor& prev = result.neighbors[i - 1];
    const Neighbor& here = result.neighbors[i];
    EXPECT_TRUE(prev.similarity > here.similarity ||
                (prev.similarity == here.similarity && prev.id < here.id));
  }
}

TEST(BranchAndBoundTest, StatsAccountForEveryEntry) {
  Fixture fixture = MakeFixture(13, 10);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  MatchRatioFamily family;
  for (const Transaction& target : fixture.queries) {
    auto result = engine.FindNearest(target, family);
    const QueryStats& stats = result.stats;
    EXPECT_EQ(stats.entries_total, fixture.table.entries().size());
    EXPECT_EQ(stats.entries_scanned + stats.entries_pruned +
                  stats.entries_unexplored,
              stats.entries_total);
    EXPECT_LE(stats.transactions_evaluated, fixture.db.size());
    EXPECT_GT(stats.transactions_evaluated, 0u);
    EXPECT_EQ(stats.io.transactions_fetched, stats.transactions_evaluated);
    EXPECT_GT(stats.io.pages_read, 0u);
    EXPECT_GE(stats.PruningEfficiencyPercent(), 0.0);
    EXPECT_LE(stats.PruningEfficiencyPercent(), 100.0);
  }
}

TEST(BranchAndBoundTest, PrunesSubstantiallyOnCorrelatedData) {
  Fixture fixture = MakeFixture(17, 12, 1, 4000);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  InverseHammingFamily family;
  double total_pruning = 0.0;
  for (const Transaction& target : fixture.queries) {
    auto result = engine.FindNearest(target, family);
    total_pruning += result.stats.PruningEfficiencyPercent();
  }
  EXPECT_GT(total_pruning / static_cast<double>(fixture.queries.size()), 50.0);
}

TEST(BranchAndBoundTest, DeterministicAcrossRuns) {
  Fixture fixture = MakeFixture(19, 9);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  CosineFamily family;
  auto first = engine.FindKNearest(fixture.queries[0], family, 5);
  auto second = engine.FindKNearest(fixture.queries[0], family, 5);
  ASSERT_EQ(first.neighbors.size(), second.neighbors.size());
  for (size_t i = 0; i < first.neighbors.size(); ++i) {
    EXPECT_EQ(first.neighbors[i].id, second.neighbors[i].id);
    EXPECT_EQ(first.neighbors[i].similarity, second.neighbors[i].similarity);
  }
}

TEST(BranchAndBoundTest, KLargerThanDatabaseReturnsEverything) {
  QuestGeneratorConfig config;
  config.universe_size = 50;
  config.num_large_itemsets = 10;
  config.seed = 3;
  QuestGenerator generator(config);
  TransactionDatabase db = generator.GenerateDatabase(20);
  IndexBuildConfig build;
  build.clustering.target_cardinality = 4;
  SignatureTable table = BuildIndex(db, build);
  BranchAndBoundEngine engine(&db, &table);
  MatchRatioFamily family;
  auto result = engine.FindKNearest(generator.NextTransaction(), family, 100);
  EXPECT_EQ(result.neighbors.size(), 20u);
  EXPECT_TRUE(result.guaranteed_exact);
}

// --- Early termination (paper §4.2) ---

TEST(BranchAndBoundTest, EarlyTerminationRespectsBudget) {
  Fixture fixture = MakeFixture(23, 10, 1, 5000);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  InverseHammingFamily family;
  SearchOptions options;
  options.max_access_fraction = 0.02;
  uint64_t budget =
      static_cast<uint64_t>(0.02 * static_cast<double>(fixture.db.size()));
  // The budget check runs at entry granularity, so allow one max-bucket
  // overshoot.
  uint64_t max_bucket = 0;
  for (const auto& entry : fixture.table.entries()) {
    max_bucket = std::max<uint64_t>(max_bucket, entry.transaction_count);
  }
  for (const Transaction& target : fixture.queries) {
    auto result = engine.FindNearest(target, family, options);
    EXPECT_LE(result.stats.transactions_evaluated, budget + max_bucket);
    EXPECT_FALSE(result.neighbors.empty());
  }
}

TEST(BranchAndBoundTest, EarlyTerminationCertificateIsSound) {
  Fixture fixture = MakeFixture(29, 10, 1, 5000);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  SequentialScanner scanner(&fixture.db);
  MatchRatioFamily family;
  SearchOptions options;
  options.max_access_fraction = 0.01;
  for (const Transaction& target : fixture.queries) {
    auto result = engine.FindNearest(target, family, options);
    auto oracle = scanner.FindKNearest(target, family, 1);
    if (result.guaranteed_exact) {
      // The certificate must never lie.
      EXPECT_TRUE(SameSimilarities(result.neighbors, oracle));
    } else {
      // The true optimum can never exceed max(found, unexplored bound).
      EXPECT_GE(std::max(result.neighbors[0].similarity,
                         result.unexplored_optimistic_bound),
                oracle[0].similarity);
    }
  }
}

TEST(BranchAndBoundTest, FullAccessFractionAlwaysExact) {
  Fixture fixture = MakeFixture(31, 8);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  CosineFamily family;
  SearchOptions options;
  options.max_access_fraction = 1.0;
  auto result = engine.FindNearest(fixture.queries[0], family, options);
  EXPECT_TRUE(result.guaranteed_exact);
  EXPECT_EQ(result.stats.entries_unexplored, 0u);
}

// --- Multi-target queries (paper §4.3) ---

TEST(BranchAndBoundTest, MultiTargetMatchesScanOracle) {
  Fixture fixture = MakeFixture(37, 9);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  SequentialScanner scanner(&fixture.db);
  MatchRatioFamily family;
  std::vector<Transaction> targets = {fixture.queries[0], fixture.queries[1],
                                      fixture.queries[2]};
  auto result = engine.FindKNearestMultiTarget(targets, family, 4);
  auto oracle = scanner.FindKNearestMultiTarget(targets, family, 4);
  EXPECT_TRUE(result.guaranteed_exact);
  EXPECT_TRUE(SameSimilarities(result.neighbors, oracle));
}

TEST(BranchAndBoundTest, MultiTargetCosineBindsEachTargetSize) {
  Fixture fixture = MakeFixture(41, 9);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  SequentialScanner scanner(&fixture.db);
  CosineFamily family;
  std::vector<Transaction> targets = {fixture.queries[3], fixture.queries[4]};
  auto result = engine.FindKNearestMultiTarget(targets, family, 3);
  auto oracle = scanner.FindKNearestMultiTarget(targets, family, 3);
  EXPECT_TRUE(SameSimilarities(result.neighbors, oracle));
}

// --- Range queries (paper §4.3) ---

TEST(BranchAndBoundTest, RangeQueryMatchesScanOracle) {
  Fixture fixture = MakeFixture(43, 9);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  SequentialScanner scanner(&fixture.db);
  MatchRatioFamily family;
  for (double threshold : {0.25, 0.5, 1.0}) {
    for (size_t q = 0; q < 5; ++q) {
      auto result = engine.FindInRange(fixture.queries[q], family, threshold);
      auto oracle = scanner.FindInRange(fixture.queries[q], family, threshold);
      EXPECT_TRUE(result.guaranteed_complete);
      ASSERT_EQ(result.matches.size(), oracle.size())
          << "threshold " << threshold << " query " << q;
      for (size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(result.matches[i].id, oracle[i].id);
      }
    }
  }
}

TEST(BranchAndBoundTest, RangeQueryPrunesEntries) {
  Fixture fixture = MakeFixture(47, 12, 1, 3000);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  MatchRatioFamily family;
  auto result = engine.FindInRange(fixture.queries[0], family, 2.0);
  EXPECT_GT(result.stats.entries_pruned, 0u);
}

TEST(BranchAndBoundTest, MultiRangeQueryIsConjunctive) {
  // "All transactions which have at least p items in common and at most q
  // items different from the target" (paper §2.1) — expressed as two custom
  // families over x and y.
  Fixture fixture = MakeFixture(53, 9);
  BranchAndBoundEngine engine(&fixture.db, &fixture.table);
  CustomFamily matches_family("matches", [](int x, int) {
    return static_cast<double>(x);
  });
  CustomFamily neg_hamming_family("neg_hamming", [](int, int y) {
    return -static_cast<double>(y);
  });
  const double min_matches = 3.0;
  const double max_hamming = 8.0;
  std::vector<const SimilarityFamily*> families = {&matches_family,
                                                   &neg_hamming_family};
  std::vector<double> thresholds = {min_matches, -max_hamming};

  for (size_t q = 0; q < 5; ++q) {
    const Transaction& target = fixture.queries[q];
    auto result = engine.FindInRangeMulti(target, families, thresholds);
    EXPECT_TRUE(result.guaranteed_complete);

    // Brute-force the expected id set.
    std::vector<TransactionId> expected;
    for (TransactionId id = 0; id < fixture.db.size(); ++id) {
      size_t x = 0, y = 0;
      MatchAndHamming(target, fixture.db.Get(id), &x, &y);
      if (static_cast<double>(x) >= min_matches &&
          static_cast<double>(y) <= max_hamming) {
        expected.push_back(id);
      }
    }
    std::vector<TransactionId> got;
    for (const Neighbor& neighbor : result.matches) got.push_back(neighbor.id);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

TEST(BranchAndBoundTest, RejectsMismatchedUniverse) {
  Fixture fixture = MakeFixture(59, 8);
  TransactionDatabase other(999);
  EXPECT_DEATH(BranchAndBoundEngine(&other, &fixture.table), "universe");
}

}  // namespace
}  // namespace mbi
