#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>

namespace mbi {
namespace {

/// End-to-end tests of the `mbi` command-line tool, driving the real binary
/// (path injected by CMake as MBI_CLI_PATH).

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

/// `env_prefix` is prepended to the shell command, for tests that drive the
/// binary's environment hooks (e.g. "MBI_FAULT_INJECT='nospace_write=3'").
CommandResult RunCli(const std::string& args,
                     const std::string& env_prefix = "") {
  std::string command = (env_prefix.empty() ? "" : env_prefix + " ") +
                        std::string(MBI_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CommandResult result;
  std::array<char, 4096> buffer;
  size_t read;
  while ((read = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), read);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CliTest, HelpAndUnknownCommand) {
  EXPECT_EQ(RunCli("--help").exit_code, 0);
  CommandResult unknown = RunCli("frobnicate");
  EXPECT_EQ(unknown.exit_code, 2);
  EXPECT_NE(unknown.output.find("unknown command"), std::string::npos);
  EXPECT_EQ(RunCli("").exit_code, 2);
}

TEST(CliTest, FullPipeline) {
  std::string db = TempPath("cli_pipeline.mbid");
  std::string index = TempPath("cli_pipeline.mbst");

  CommandResult generate = RunCli(
      "generate --out " + db +
      " --transactions 5000 --universe 300 --itemsets 100 --seed 7");
  ASSERT_EQ(generate.exit_code, 0) << generate.output;
  EXPECT_NE(generate.output.find("5000 transactions"), std::string::npos);

  CommandResult build =
      RunCli("build --db " + db + " --out " + index + " --cardinality 10");
  ASSERT_EQ(build.exit_code, 0) << build.output;
  EXPECT_NE(build.output.find("K=10"), std::string::npos);

  CommandResult query = RunCli("query --db " + db + " --index " + index +
                            " --k 3 --similarity cosine");
  ASSERT_EQ(query.exit_code, 0) << query.output;
  EXPECT_NE(query.output.find("top-3 by cosine"), std::string::npos);
  EXPECT_NE(query.output.find("provably exact"), std::string::npos);

  CommandResult range = RunCli("query --db " + db + " --index " + index +
                            " --similarity cosine --range 0.7");
  ASSERT_EQ(range.exit_code, 0) << range.output;
  EXPECT_NE(range.output.find("range query cosine >= 0.7"),
            std::string::npos);

  CommandResult explicit_target =
      RunCli("query --db " + db + " --index " + index + " --items 1,2,3 --k 2");
  ASSERT_EQ(explicit_target.exit_code, 0) << explicit_target.output;
  EXPECT_NE(explicit_target.output.find("target: {1, 2, 3}"),
            std::string::npos);

  CommandResult checked_build = RunCli("build --db " + db + " --out " + index +
                                       " --cardinality 10 --check_invariants");
  ASSERT_EQ(checked_build.exit_code, 0) << checked_build.output;
  EXPECT_NE(checked_build.output.find("index invariants verified"),
            std::string::npos);

  CommandResult checked_query =
      RunCli("query --db " + db + " --index " + index +
             " --k 3 --similarity match_ratio --check_invariants");
  ASSERT_EQ(checked_query.exit_code, 0) << checked_query.output;
  EXPECT_NE(
      checked_query.output.find("index invariants and bound dominance"),
      std::string::npos);

  CommandResult stats = RunCli("stats --db " + db + " --index " + index);
  ASSERT_EQ(stats.exit_code, 0) << stats.output;
  EXPECT_NE(stats.output.find("signature cardinality K: 10"),
            std::string::npos);

  CommandResult mine = RunCli("mine --db " + db + " --min_support 0.02");
  ASSERT_EQ(mine.exit_code, 0) << mine.output;
  EXPECT_NE(mine.output.find("frequent itemsets"), std::string::npos);

  CommandResult bench = RunCli("bench --db " + db + " --index " + index +
                               " --queries 20 --termination 0.05");
  ASSERT_EQ(bench.exit_code, 0) << bench.output;
  EXPECT_NE(bench.output.find("latency:"), std::string::npos);
  EXPECT_NE(bench.output.find("p95="), std::string::npos);

  std::remove(db.c_str());
  std::remove(index.c_str());
}

TEST(CliTest, ErrorsAreReported) {
  EXPECT_EQ(RunCli("build --db /no/such/file.mbid").exit_code, 1);
  EXPECT_EQ(RunCli("query --db /no/such/file.mbid").exit_code, 1);
  EXPECT_EQ(RunCli("stats --db /no/such/file.mbid").exit_code, 1);
  EXPECT_EQ(RunCli("mine --db /no/such/file.mbid").exit_code, 1);

  // Malformed --items and out-of-universe items.
  std::string db = TempPath("cli_errors.mbid");
  std::string index = TempPath("cli_errors.mbst");
  ASSERT_EQ(RunCli("generate --out " + db +
                " --transactions 200 --universe 50 --itemsets 20")
                .exit_code,
            0);
  ASSERT_EQ(
      RunCli("build --db " + db + " --out " + index + " --cardinality 6")
          .exit_code,
      0);
  EXPECT_EQ(RunCli("query --db " + db + " --index " + index + " --items abc")
                .exit_code,
            1);
  EXPECT_EQ(RunCli("query --db " + db + " --index " + index + " --items 99999")
                .exit_code,
            1);
  std::remove(db.c_str());
  std::remove(index.c_str());
}

void FlipByte(const std::string& path, long offset_from_end, uint8_t mask) {
  FILE* file = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fseek(file, -offset_from_end, SEEK_END), 0);
  int byte = std::fgetc(file);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(file, -1, SEEK_CUR), 0);
  ASSERT_NE(std::fputc(byte ^ mask, file), EOF);
  ASSERT_EQ(std::fclose(file), 0);
}

/// Every storage failure must surface as `error: <diagnostic naming the
/// artifact>` plus exit 1 — never an abort, assertion, or stack trace.
TEST(CliTest, StorageErrorsAreOneLineDiagnostics) {
  CommandResult missing = RunCli("build --db /no/such/file.mbid");
  EXPECT_EQ(missing.exit_code, 1);
  EXPECT_NE(missing.output.find("error:"), std::string::npos);
  EXPECT_NE(missing.output.find("/no/such/file.mbid"), std::string::npos);

  std::string db = TempPath("cli_corrupt.mbid");
  ASSERT_EQ(RunCli("generate --out " + db +
                   " --transactions 300 --universe 80 --itemsets 20")
                .exit_code,
            0);
  FlipByte(db, 10, 0x04);
  CommandResult corrupt = RunCli("stats --db " + db);
  EXPECT_EQ(corrupt.exit_code, 1);
  EXPECT_NE(corrupt.output.find("error:"), std::string::npos);
  EXPECT_NE(corrupt.output.find("corruption"), std::string::npos);
  EXPECT_NE(corrupt.output.find(db), std::string::npos) << corrupt.output;
  EXPECT_EQ(corrupt.output.find("MBI_CHECK"), std::string::npos);
  EXPECT_EQ(corrupt.output.find("Assertion"), std::string::npos);
  std::remove(db.c_str());
}

TEST(CliTest, FaultInjectionEnvDrivesOutOfSpace) {
  std::string db = TempPath("cli_fault.mbid");
  CommandResult nospace =
      RunCli("generate --out " + db + " --transactions 500 --universe 100",
             "MBI_FAULT_INJECT='nospace_write=3'");
  EXPECT_EQ(nospace.exit_code, 1) << nospace.output;
  EXPECT_NE(nospace.output.find("no space"), std::string::npos)
      << nospace.output;
  // The failed save left nothing behind: no artifact, no temp.
  FILE* leftover = std::fopen(db.c_str(), "rb");
  EXPECT_EQ(leftover, nullptr);
  if (leftover != nullptr) std::fclose(leftover);

  CommandResult bad_spec = RunCli("stats --db " + db,
                                  "MBI_FAULT_INJECT='not_a_fault=1'");
  EXPECT_EQ(bad_spec.exit_code, 2);
  EXPECT_NE(bad_spec.output.find("MBI_FAULT_INJECT"), std::string::npos);
}

TEST(CliTest, VerifyReportsArtifactHealth) {
  std::string db = TempPath("cli_verify.mbid");
  std::string index = TempPath("cli_verify.mbst");
  ASSERT_EQ(RunCli("generate --out " + db +
                   " --transactions 500 --universe 100 --itemsets 30")
                .exit_code,
            0);
  ASSERT_EQ(
      RunCli("build --db " + db + " --out " + index + " --cardinality 8")
          .exit_code,
      0);

  CommandResult healthy = RunCli("verify " + db + " " + index);
  EXPECT_EQ(healthy.exit_code, 0) << healthy.output;
  EXPECT_NE(healthy.output.find("OK"), std::string::npos);
  EXPECT_NE(healthy.output.find("crc ok"), std::string::npos);

  EXPECT_EQ(RunCli("verify " + db + " --checksums_only").exit_code, 0);
  EXPECT_NE(RunCli("verify /no/such/artifact.mbid").exit_code, 0);
  EXPECT_EQ(RunCli("verify").exit_code, 2);

  // A single flipped byte fails verification, naming the damaged section.
  FlipByte(index, 12, 0x20);
  CommandResult corrupt = RunCli("verify " + index);
  EXPECT_EQ(corrupt.exit_code, 1) << corrupt.output;
  EXPECT_NE(corrupt.output.find("FAILED"), std::string::npos);
  EXPECT_NE(corrupt.output.find("section"), std::string::npos);

  std::remove(db.c_str());
  std::remove(index.c_str());
}

TEST(CliTest, CorruptIndexDegradesToSequentialScan) {
  std::string db = TempPath("cli_degraded.mbid");
  std::string index = TempPath("cli_degraded.mbst");
  ASSERT_EQ(RunCli("generate --out " + db +
                   " --transactions 800 --universe 120 --itemsets 30")
                .exit_code,
            0);
  ASSERT_EQ(
      RunCli("build --db " + db + " --out " + index + " --cardinality 8")
          .exit_code,
      0);
  FlipByte(index, 40, 0x10);

  // Queries still succeed — exact answers through the fallback, with the
  // degradation reported on both stderr and in the result line.
  CommandResult query =
      RunCli("query --db " + db + " --index " + index + " --items 1,2,3 --k 3");
  EXPECT_EQ(query.exit_code, 0) << query.output;
  EXPECT_NE(query.output.find("quarantined"), std::string::npos);
  EXPECT_NE(query.output.find("sequential fallback"), std::string::npos);
  EXPECT_EQ(query.output.find("MBI_CHECK"), std::string::npos);

  CommandResult bench =
      RunCli("bench --db " + db + " --index " + index + " --queries 5");
  EXPECT_EQ(bench.exit_code, 0) << bench.output;
  EXPECT_NE(bench.output.find("sequential fallbacks: 5"), std::string::npos)
      << bench.output;

  std::remove(db.c_str());
  std::remove(index.c_str());
}

}  // namespace
}  // namespace mbi
